"""Tests for the PLUTO-style routing underlay."""

import pytest

from repro.algorithms.forwarding import SinkAlgorithm
from repro.errors import UnknownNodeError
from repro.testbed.planetlab import PlanetLabTestbed
from repro.underlay.pluto import PlutoUnderlay


@pytest.fixture(scope="module")
def underlay_and_testbed():
    testbed = PlanetLabTestbed(20, lambda i, bw: SinkAlgorithm(), seed=1)
    return PlutoUnderlay(testbed), testbed


def test_hops_zero_to_self_and_positive_otherwise(underlay_and_testbed):
    underlay, testbed = underlay_and_testbed
    a = testbed.nodes[0].node_id
    b = testbed.nodes[1].node_id
    assert underlay.router_hops(a, a) == 0
    assert underlay.router_hops(a, b) >= 2  # at least both access routers


def test_same_region_closer_than_cross_region(underlay_and_testbed):
    underlay, testbed = underlay_and_testbed
    by_region = {}
    for node in testbed.nodes:
        by_region.setdefault(node.site.region, []).append(node.node_id)
    regions = [r for r, nodes in by_region.items() if len(nodes) >= 2]
    assert regions
    region = regions[0]
    local_a, local_b = by_region[region][:2]
    other_region = next(r for r in by_region if r != region)
    remote = by_region[other_region][0]
    assert underlay.latency(local_a, local_b) < underlay.latency(local_a, remote)
    assert underlay.router_hops(local_a, local_b) <= underlay.router_hops(local_a, remote)


def test_latency_symmetric_and_triangleish(underlay_and_testbed):
    underlay, testbed = underlay_and_testbed
    a, b, c = (testbed.nodes[i].node_id for i in (0, 5, 10))
    assert underlay.latency(a, b) == pytest.approx(underlay.latency(b, a))
    # Shortest-path latencies always satisfy the triangle inequality.
    assert underlay.latency(a, c) <= underlay.latency(a, b) + underlay.latency(b, c) + 1e-9


def test_path_endpoints_and_structure(underlay_and_testbed):
    underlay, testbed = underlay_and_testbed
    a = testbed.nodes[0].node_id
    b = testbed.nodes[7].node_id
    path = underlay.path(a, b)
    assert path[0] == f"node:{a}"
    assert path[-1] == f"node:{b}"
    assert all(":" in vertex for vertex in path)


def test_disjointness_detects_shared_routers(underlay_and_testbed):
    underlay, testbed = underlay_and_testbed
    a, b = testbed.nodes[0].node_id, testbed.nodes[1].node_id
    # A path is never disjoint with itself.
    assert not underlay.paths_disjoint(a, b, a, b)


def test_closest_prefers_same_site_virtual_neighbor():
    testbed = PlanetLabTestbed(60, lambda i, bw: SinkAlgorithm(), seed=2)
    underlay = PlutoUnderlay(testbed)
    # With 60 nodes over 46 sites some sites host two virtual nodes.
    by_site = {}
    for node in testbed.nodes:
        by_site.setdefault(node.site.name, []).append(node.node_id)
    site, twins = next((s, n) for s, n in by_site.items() if len(n) >= 2)
    a, twin = twins[0], twins[1]
    others = [n.node_id for n in testbed.nodes if n.node_id not in (a, twin)]
    assert underlay.closest(a, [twin, *others[:10]]) == twin


def test_unknown_node_rejected(underlay_and_testbed):
    underlay, testbed = underlay_and_testbed
    from repro.core.ids import NodeId

    with pytest.raises(UnknownNodeError):
        underlay.latency(testbed.nodes[0].node_id, NodeId("1.2.3.4", 5))
    with pytest.raises(ValueError):
        underlay.closest(testbed.nodes[0].node_id, [])
