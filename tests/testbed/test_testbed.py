"""Unit tests for the synthetic PlanetLab testbed."""

import pytest

from repro.algorithms.forwarding import SinkAlgorithm
from repro.testbed.latency import LatencyMatrix, great_circle_km, one_way_latency
from repro.testbed.planetlab import PlanetLabTestbed
from repro.testbed.sites import SITES, north_american_sites, sites_by_region


def test_site_catalog_has_wide_coverage():
    assert len(SITES) >= 40
    regions = {site.region for site in SITES}
    assert {"na-east", "na-west", "eu", "asia"} <= regions
    assert len(north_american_sites()) >= 20
    assert all(site.region == "eu" for site in sites_by_region("eu"))


def test_great_circle_known_distances():
    mit = next(site for site in SITES if site.name == "mit")
    berkeley = next(site for site in SITES if site.name == "berkeley")
    cambridge = next(site for site in SITES if site.name == "cambridge")
    # Boston <-> Berkeley ~4300 km; Boston <-> Cambridge UK ~5300 km.
    assert great_circle_km(mit, berkeley) == pytest.approx(4300, rel=0.05)
    assert great_circle_km(mit, cambridge) == pytest.approx(5300, rel=0.05)
    assert great_circle_km(mit, mit) == 0.0


def test_latency_scales_with_distance():
    mit = next(site for site in SITES if site.name == "mit")
    harvard = next(site for site in SITES if site.name == "harvard")
    titech = next(site for site in SITES if site.name == "titech")
    near = one_way_latency(mit, harvard)
    far = one_way_latency(mit, titech)
    assert 0 < near < 0.01
    assert far > 5 * near
    assert far < 0.3  # still a plausible one-way Internet latency


def test_latency_jitter_requires_rng():
    a, b = SITES[0], SITES[1]
    with pytest.raises(ValueError):
        one_way_latency(a, b, jitter=0.5)


def test_latency_matrix_symmetric_and_positive():
    matrix = LatencyMatrix(SITES[:10], jitter=0.2, seed=1)
    for i in range(10):
        for j in range(10):
            assert matrix.latency(i, j) == matrix.latency(j, i)
            assert matrix.latency(i, j) > 0


def test_testbed_assigns_sites_and_bandwidth():
    testbed = PlanetLabTestbed(
        20, lambda i, bw: SinkAlgorithm(), last_mile_range=(50_000, 200_000),
        source_last_mile=100_000, seed=3,
    )
    assert len(testbed.nodes) == 20
    assert testbed.source.last_mile == 100_000
    for node in testbed.nodes[1:]:
        assert 50_000 <= node.last_mile <= 200_000
    # Round-robin site assignment: 20 nodes over 46 sites, no duplicates yet.
    assert len({node.site.name for node in testbed.nodes}) == 20


def test_testbed_virtualizes_when_larger_than_catalog():
    testbed = PlanetLabTestbed(60, lambda i, bw: SinkAlgorithm(), seed=0)
    sites = [node.site.name for node in testbed.nodes]
    assert len(set(sites)) == len(SITES)  # every site used
    assert len(sites) == 60  # some sites host multiple virtual nodes


def test_deploy_run_terminate_collect_cycle():
    testbed = PlanetLabTestbed(6, lambda i, bw: SinkAlgorithm(), seed=0)
    testbed.deploy()
    testbed.run(3.0)
    collected = testbed.collect()
    assert len(collected["nodes"]) == 6
    assert len(collected["statuses"]) >= 1  # observer polled someone
    testbed.terminate()
    assert all(not e.running for e in testbed.net.engines.values())


def test_latency_model_feeds_simnetwork():
    testbed = PlanetLabTestbed(10, lambda i, bw: SinkAlgorithm(), seed=0)
    a = testbed.nodes[0].node_id
    b = testbed.nodes[5].node_id
    latency = testbed.net.latency(a, b)
    assert latency >= 0.0005
    assert latency == testbed.net.latency(a, b)  # deterministic


def test_too_small_testbed_rejected():
    with pytest.raises(ValueError):
        PlanetLabTestbed(1, lambda i, bw: SinkAlgorithm())
