"""Unit tests for the Prometheus / JSON / Chrome-trace exporters."""

import json

from repro.telemetry.exporters import (
    chrome_trace_events,
    dump_chrome_trace,
    to_json,
    to_prometheus,
    write_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import EventType, TraceEvent


def build_registry():
    reg = MetricsRegistry()
    reg.counter("msgs_total", "messages seen", ("node", "peer")).labels(
        node="a", peer="b"
    ).inc(3)
    reg.gauge("depth", "buffer depth", ("node",)).labels(node="a").set(2)
    hist = reg.histogram("wait_seconds", "queue wait", ("node",), buckets=(0.1, 1.0))
    child = hist.labels(node="a")
    child.observe(0.05)
    child.observe(0.5)
    child.observe(5.0)
    return reg


# ------------------------------------------------------------------ Prometheus

def test_prometheus_counter_and_gauge_lines():
    text = to_prometheus(build_registry())
    assert "# HELP msgs_total messages seen" in text
    assert "# TYPE msgs_total counter" in text
    assert 'msgs_total{node="a",peer="b"} 3' in text
    assert "# TYPE depth gauge" in text
    assert 'depth{node="a"} 2' in text


def test_prometheus_histogram_rendering():
    text = to_prometheus(build_registry())
    assert 'wait_seconds_bucket{le="0.1",node="a"} 1' in text
    assert 'wait_seconds_bucket{le="1",node="a"} 2' in text
    assert 'wait_seconds_bucket{le="+Inf",node="a"} 3' in text
    assert 'wait_seconds_sum{node="a"} 5.55' in text
    assert 'wait_seconds_count{node="a"} 3' in text


def test_prometheus_accepts_snapshot_and_escapes_labels():
    reg = MetricsRegistry()
    reg.counter("c", 'with "quotes"\nand newline', ("tag",)).labels(
        tag='va"lue'
    ).inc()
    text = to_prometheus(reg.snapshot())
    assert '# HELP c with "quotes"\\nand newline' in text
    assert 'c{tag="va\\"lue"} 1' in text


def test_prometheus_empty_registry_is_empty_string():
    assert to_prometheus(MetricsRegistry()) == ""


def test_write_prometheus_atomic(tmp_path):
    target = tmp_path / "metrics.prom"
    write_prometheus(build_registry(), target)
    assert "msgs_total" in target.read_text()
    assert not (tmp_path / "metrics.prom.tmp").exists()


# ------------------------------------------------------------------------ JSON

def test_to_json_round_trips():
    reg = build_registry()
    parsed = json.loads(to_json(reg))
    assert parsed == reg.snapshot()


# ---------------------------------------------------------------- Chrome trace

def sample_events():
    return [
        TraceEvent(1.0, "node-a", EventType.SOURCE_EMIT, "m1", 1),
        TraceEvent(1.5, "node-b", EventType.ENQUEUE, "m1", 1, {"peer": "node-a"}),
        TraceEvent(2.0, "node-b", EventType.DELIVER, "m1", 1),
        TraceEvent(1.2, "node-a", EventType.CREDIT_EXHAUSTED, "", 0, {"peer": "x"}),
    ]


def test_chrome_trace_process_metadata_and_instants():
    records = chrome_trace_events(sample_events())
    meta = [r for r in records if r["ph"] == "M"]
    assert {m["args"]["name"] for m in meta} == {"node-a", "node-b"}
    instants = [r for r in records if r["ph"] == "i"]
    assert len(instants) == 4
    emit = next(r for r in instants if r["name"] == EventType.SOURCE_EMIT)
    assert emit["ts"] == 1.0e6  # microseconds
    assert emit["args"]["trace_id"] == "m1"


def test_chrome_trace_async_span_reconstructs_path():
    records = chrome_trace_events(sample_events())
    span = [r for r in records if r.get("cat") == "message" and r["id"] == "m1"]
    assert [r["ph"] for r in span] == ["b", "n", "e"]
    assert span[0]["args"]["node"] == "node-a"
    assert span[-1]["args"]["node"] == "node-b"
    assert span[-1]["args"]["event"] == EventType.DELIVER
    # Untraced events (empty id) get no span.
    assert all(r["id"] for r in records if r.get("cat") == "message")


def test_dump_chrome_trace_loadable_json(tmp_path):
    target = tmp_path / "trace.json"
    count = dump_chrome_trace(sample_events(), target)
    doc = json.loads(target.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert len(doc["traceEvents"]) == count
    assert not (tmp_path / "trace.json.tmp").exists()
