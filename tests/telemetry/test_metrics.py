"""Unit tests for the label-aware metrics registry."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


# --------------------------------------------------------------------- counter

def test_counter_inc_and_labels():
    counter = Counter("requests_total", "total requests", ("node",))
    counter.labels(node="a").inc()
    counter.labels(node="a").inc(2.5)
    counter.labels(node="b").inc()
    values = {labels["node"]: child.value for labels, child in counter.series()}
    assert values == {"a": 3.5, "b": 1.0}


def test_counter_child_is_cached():
    counter = Counter("c_total", labelnames=("node",))
    assert counter.labels(node="x") is counter.labels(node="x")


def test_counter_rejects_negative():
    counter = Counter("c_total")
    with pytest.raises(ValueError):
        counter.labels().inc(-1)


def test_labels_must_match_declaration():
    counter = Counter("c_total", labelnames=("node", "peer"))
    with pytest.raises(ValueError):
        counter.labels(node="a")
    with pytest.raises(ValueError):
        counter.labels(node="a", peer="b", extra="c")


# ----------------------------------------------------------------------- gauge

def test_gauge_set_inc_dec():
    gauge = Gauge("depth", labelnames=("node",))
    child = gauge.labels(node="a")
    child.set(5)
    child.inc(2)
    child.dec()
    assert child.value == 6


# ------------------------------------------------------------------- histogram

def test_histogram_buckets_and_sum():
    hist = Histogram("wait_seconds", buckets=(0.01, 0.1, 1.0))
    child = hist.labels()
    for value in (0.005, 0.05, 0.5, 5.0):
        child.observe(value)
    assert child.counts == [1, 1, 1, 1]  # one per bucket + one in +Inf
    assert child.cumulative() == [1, 2, 3, 4]
    assert child.count == 4
    assert child.sum == pytest.approx(5.555)


def test_histogram_boundary_lands_in_bucket():
    # Prometheus buckets are `le`: a value equal to the bound counts in it.
    hist = Histogram("h", buckets=(1.0, 2.0))
    child = hist.labels()
    child.observe(1.0)
    assert child.counts == [1, 0, 0]


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0))


# -------------------------------------------------------------------- registry

def test_registry_get_or_create_returns_same_metric():
    reg = MetricsRegistry()
    first = reg.counter("c_total", "help", ("node",))
    second = reg.counter("c_total", "other help", ("node",))
    assert first is second
    assert len(reg) == 1


def test_registry_rejects_kind_and_label_mismatch():
    reg = MetricsRegistry()
    reg.counter("m", labelnames=("node",))
    with pytest.raises(ValueError):
        reg.gauge("m", labelnames=("node",))
    with pytest.raises(ValueError):
        reg.counter("m", labelnames=("node", "peer"))


def test_registry_rejects_histogram_bucket_mismatch():
    reg = MetricsRegistry()
    reg.histogram("h", buckets=(1.0, 2.0))
    assert reg.histogram("h", buckets=(2.0, 1.0)) is reg.get("h")  # order-insensitive
    with pytest.raises(ValueError):
        reg.histogram("h", buckets=(1.0, 3.0))


def test_invalid_metric_names():
    reg = MetricsRegistry()
    for bad in ("", "1abc", "has space", "has-dash"):
        with pytest.raises(ValueError):
            reg.counter(bad)
    reg.counter("ok_name:subsystem")  # colon and underscore are legal


def test_default_buckets_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# -------------------------------------------------------------------- snapshot

def build_registry():
    reg = MetricsRegistry()
    reg.counter("msgs_total", "messages", ("node",)).labels(node="a").inc(3)
    reg.counter("msgs_total", "messages", ("node",)).labels(node="b").inc(4)
    reg.gauge("depth", "buffer depth", ("node",)).labels(node="a").set(7)
    reg.histogram("wait", "queue wait", ("node",), buckets=(0.1, 1.0)).labels(
        node="a"
    ).observe(0.05)
    return reg


def test_snapshot_shape():
    snap = build_registry().snapshot()
    assert set(snap) == {"msgs_total", "depth", "wait"}
    assert snap["msgs_total"]["kind"] == "counter"
    assert len(snap["msgs_total"]["series"]) == 2
    hist = snap["wait"]["series"][0]
    assert hist["buckets"] == [0.1, 1.0]
    assert hist["counts"] == [1, 0, 0]
    assert hist["count"] == 1


def test_snapshot_label_filter():
    snap = build_registry().snapshot(node="a")
    assert len(snap["msgs_total"]["series"]) == 1
    assert snap["msgs_total"]["series"][0]["labels"] == {"node": "a"}
    # every metric retains only node=a series; none dropped entirely here
    assert set(snap) == {"msgs_total", "depth", "wait"}
    empty = build_registry().snapshot(node="nope")
    assert empty == {}


def test_snapshot_is_json_serializable():
    import json

    json.dumps(build_registry().snapshot())


# ----------------------------------------------------------------------- merge

def test_merge_sums_counters_and_histograms():
    a, b = build_registry().snapshot(), build_registry().snapshot()
    merged = merge_snapshots([a, b])
    values = {
        tuple(s["labels"].items()): s["value"]
        for s in merged["msgs_total"]["series"]
    }
    assert values[(("node", "a"),)] == 6
    assert values[(("node", "b"),)] == 8
    hist = merged["wait"]["series"][0]
    assert hist["counts"] == [2, 0, 0]
    assert hist["count"] == 2


def test_merge_gauge_last_writer_wins():
    a = build_registry().snapshot()
    reg_b = build_registry()
    reg_b.gauge("depth", "buffer depth", ("node",)).labels(node="a").set(99)
    merged = merge_snapshots([a, reg_b.snapshot()])
    assert merged["depth"]["series"][0]["value"] == 99


def test_merge_disjoint_series_and_does_not_mutate_inputs():
    reg_a = MetricsRegistry()
    reg_a.counter("c", labelnames=("node",)).labels(node="a").inc()
    reg_b = MetricsRegistry()
    reg_b.counter("c", labelnames=("node",)).labels(node="b").inc(5)
    snap_a, snap_b = reg_a.snapshot(), reg_b.snapshot()
    merged = merge_snapshots([snap_a, snap_b])
    assert len(merged["c"]["series"]) == 2
    merged["c"]["series"][0]["value"] = 1234
    assert snap_a["c"]["series"][0]["value"] == 1


def test_merge_kind_mismatch_is_error():
    reg_a = MetricsRegistry()
    reg_a.counter("m").labels().inc()
    reg_b = MetricsRegistry()
    reg_b.gauge("m").labels().set(1)
    with pytest.raises(ValueError):
        merge_snapshots([reg_a.snapshot(), reg_b.snapshot()])


# ----------------------------------------------------------------------- delta

def test_delta_roundtrip_merge_reproduces_current():
    from repro.telemetry.metrics import snapshot_delta

    reg = build_registry()
    prev = reg.snapshot()
    reg.counter("msgs_total", "messages", ("node",)).labels(node="a").inc(2)
    reg.gauge("depth", "buffer depth", ("node",)).labels(node="a").set(11)
    reg.histogram("wait", "queue wait", ("node",), buckets=(0.1, 1.0)).labels(
        node="a"
    ).observe(0.5)
    curr = reg.snapshot()

    delta = snapshot_delta(prev, curr)
    # Only what moved is carried: node=b's counter stayed put.
    nodes = {s["labels"]["node"] for s in delta["msgs_total"]["series"]}
    assert nodes == {"a"}
    assert delta["msgs_total"]["series"][0]["value"] == 2
    assert merge_snapshots([prev, delta]) == curr


def test_delta_of_identical_snapshots_is_empty():
    from repro.telemetry.metrics import snapshot_delta

    snap = build_registry().snapshot()
    assert snapshot_delta(snap, snap) == {}


def test_delta_counter_reset_reemits_in_full():
    from repro.telemetry.metrics import snapshot_delta

    prev = build_registry().snapshot()
    fresh = MetricsRegistry()
    fresh.counter("msgs_total", "messages", ("node",)).labels(node="a").inc(1)
    delta = snapshot_delta(prev, fresh.snapshot())
    # The restarted node's counter went 3 -> 1: Prometheus reset
    # convention re-emits the current value, never a negative delta.
    assert delta["msgs_total"]["series"][0]["value"] == 1


# ------------------------------------------------------------------ regression

def test_regressed_false_on_pure_accumulation():
    from repro.telemetry.metrics import snapshot_regressed

    reg = build_registry()
    prev = reg.snapshot()
    assert not snapshot_regressed(prev, prev)
    reg.counter("msgs_total", "messages", ("node",)).labels(node="a").inc()
    assert not snapshot_regressed(prev, reg.snapshot())
    assert not snapshot_regressed({}, prev)  # growth from nothing


def test_regressed_on_vanished_series_and_metric():
    from repro.telemetry.metrics import snapshot_regressed

    prev = build_registry().snapshot()
    # Whole metric gone.
    curr = {k: v for k, v in prev.items() if k != "msgs_total"}
    assert snapshot_regressed(prev, curr)
    # One series gone (a child died).
    import copy

    curr = copy.deepcopy(prev)
    curr["msgs_total"]["series"] = [
        s for s in curr["msgs_total"]["series"] if s["labels"]["node"] != "b"
    ]
    assert snapshot_regressed(prev, curr)


def test_regressed_on_backwards_counter_and_histogram():
    import copy

    from repro.telemetry.metrics import snapshot_regressed

    prev = build_registry().snapshot()
    curr = copy.deepcopy(prev)
    curr["msgs_total"]["series"][0]["value"] -= 1
    assert snapshot_regressed(prev, curr)

    curr = copy.deepcopy(prev)
    curr["wait"]["series"][0]["count"] = 0
    curr["wait"]["series"][0]["counts"] = [0, 0, 0]
    assert snapshot_regressed(prev, curr)


# ------------------------------------------------------------------- quantiles

def test_quantile_from_counts_interpolates():
    from math import isnan

    from repro.telemetry.metrics import quantile_from_counts

    bounds = [1.0, 2.0, 4.0]
    # 10 observations uniformly inside (1, 2].
    assert quantile_from_counts(bounds, [0, 10, 0, 0], 0.5) == 1.5
    # Rank past the finite buckets clamps to the largest finite bound.
    assert quantile_from_counts(bounds, [0, 0, 0, 5], 0.99) == 4.0
    assert isnan(quantile_from_counts(bounds, [0, 0, 0, 0], 0.5))
    with pytest.raises(ValueError):
        quantile_from_counts(bounds, [1, 0, 0, 0], 1.5)


def test_histogram_child_quantile_matches_observations():
    hist = Histogram("lat", buckets=(0.1, 1.0, 10.0))
    child = hist.labels()
    for value in (0.05, 0.05, 0.5, 0.5, 0.5, 0.5, 5.0, 5.0, 5.0, 5.0):
        child.observe(value)
    # p50 falls in the (0.1, 1.0] bucket, p99 in (1.0, 10.0].
    assert 0.1 <= child.quantile(0.50) <= 1.0
    assert 1.0 <= child.quantile(0.99) <= 10.0
    assert child.quantile(0.0) <= child.quantile(1.0)
