"""Unit tests for the message-lifecycle tracer."""

import json

from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.telemetry.tracing import EventType, Tracer, trace_id

A = NodeId("10.0.0.1", 7000)


def test_trace_id_is_deterministic_and_wire_stable():
    msg = Message(MsgType.DATA, A, 1, b"payload", seq=42)
    assert trace_id(msg) == "10.0.0.1:7000/1#42"
    # A re-decoded copy (same header) carries the same id.
    copy = Message(MsgType.DATA, A, 1, b"payload", seq=42)
    assert trace_id(copy) == trace_id(msg)


def test_record_and_events_for_sorted_by_time():
    tracer = Tracer()
    tracer.record(2.0, "b", EventType.ENQUEUE, "m1", app=1, peer="a")
    tracer.record(1.0, "a", EventType.SOURCE_EMIT, "m1", app=1)
    tracer.record(3.0, "b", EventType.DELIVER, "m1", app=1)
    tracer.record(1.5, "a", EventType.FORWARD, "m2", app=1)
    events = tracer.events_for("m1")
    assert [e.event for e in events] == [
        EventType.SOURCE_EMIT, EventType.ENQUEUE, EventType.DELIVER
    ]
    assert events[0].time == 1.0
    assert tracer.trace_ids() == ["m1", "m2"]


def test_path_dedups_adjacent_nodes():
    tracer = Tracer()
    tracer.record(1.0, "a", EventType.SOURCE_EMIT, "m")
    tracer.record(2.0, "b", EventType.ENQUEUE, "m")
    tracer.record(2.5, "b", EventType.SWITCH_PICK, "m")
    tracer.record(3.0, "c", EventType.DELIVER, "m")
    assert tracer.path("m") == ["a", "b", "c"]


def test_ring_buffer_drops_oldest():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.record(float(i), "n", EventType.ENQUEUE, f"m{i}")
    assert len(tracer) == 3
    assert tracer.recorded == 5
    assert tracer.dropped == 2
    assert tracer.trace_ids() == ["m2", "m3", "m4"]


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.record(1.0, "n", EventType.ENQUEUE, "m")
    assert len(tracer) == 0 and tracer.recorded == 0


def test_clear_resets_all_counters():
    tracer = Tracer()
    tracer.record(1.0, "n", EventType.ENQUEUE, "m")
    tracer.clear()
    assert len(tracer) == 0 and tracer.recorded == 0 and tracer.dropped == 0


# ----------------------------------------------------------------- persistence

def test_dump_jsonl_incremental_append(tmp_path):
    tracer = Tracer()
    path = tmp_path / "events.jsonl"
    tracer.record(1.0, "a", EventType.SOURCE_EMIT, "m1")
    assert tracer.dump_jsonl(path) == 1
    tracer.record(2.0, "b", EventType.DELIVER, "m1", app=2)
    assert tracer.dump_jsonl(path) == 1  # only the new event
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    second = json.loads(lines[1])
    assert second["event"] == EventType.DELIVER
    assert second["app"] == 2
    # Nothing new: nothing written.
    assert tracer.dump_jsonl(path) == 0
    assert len(path.read_text().splitlines()) == 2


def test_dump_jsonl_append_skips_ring_dropped_events(tmp_path):
    tracer = Tracer(capacity=2)
    path = tmp_path / "events.jsonl"
    tracer.record(1.0, "a", EventType.ENQUEUE, "m1")
    tracer.dump_jsonl(path)
    for i in range(4):
        tracer.record(2.0 + i, "a", EventType.ENQUEUE, f"m{i + 2}")
    # Events m2..m3 rotated out before this dump; only the survivors land.
    written = tracer.dump_jsonl(path)
    assert written == 2
    ids = [json.loads(line)["trace_id"] for line in path.read_text().splitlines()]
    assert ids == ["m1", "m4", "m5"]


def test_dump_jsonl_full_rewrite_is_atomic(tmp_path):
    tracer = Tracer()
    path = tmp_path / "events.jsonl"
    tracer.record(1.0, "a", EventType.ENQUEUE, "m1")
    tracer.record(2.0, "a", EventType.DELIVER, "m1")
    assert tracer.dump_jsonl(path, append=False) == 2
    assert tracer.dump_jsonl(path, append=False) == 2  # idempotent rewrite
    assert len(path.read_text().splitlines()) == 2
    assert not (tmp_path / "events.jsonl.tmp").exists()


def test_events_since_is_an_incremental_cursor():
    tracer = Tracer()
    tracer.record(1.0, "a", EventType.SOURCE_EMIT, "m1")
    events, cursor = tracer.events_since(0)
    assert [e.trace_id for e in events] == ["m1"]
    # Nothing new: empty batch, cursor stable.
    events, cursor = tracer.events_since(cursor)
    assert events == [] and cursor == 1
    tracer.record(2.0, "a", EventType.FORWARD, "m1")
    tracer.record(3.0, "b", EventType.ENQUEUE, "m1")
    events, cursor = tracer.events_since(cursor)
    assert [e.event for e in events] == [EventType.FORWARD, EventType.ENQUEUE]
    assert cursor == 3


def test_events_since_skips_ring_dropped_events():
    tracer = Tracer(capacity=2)
    _, cursor = tracer.events_since(0)
    for i in range(5):
        tracer.record(float(i), "a", EventType.ENQUEUE, f"m{i}")
    events, cursor = tracer.events_since(cursor)
    # m0..m2 aged out of the 2-slot ring between reads.
    assert [e.trace_id for e in events] == ["m3", "m4"]
    assert tracer.dropped == 3


def test_ingest_rebuilds_events_and_stitches_paths():
    worker = Tracer()
    worker.record(1.0, "n1", EventType.SOURCE_EMIT, "m1", app=2)
    worker.record(2.0, "n1", EventType.FORWARD, "m1", app=2, peer="n2")
    events, _ = worker.events_since(0)

    root = Tracer()
    # A second worker saw the same message (identical wire-derived id).
    root.record(3.0, "n2", EventType.DELIVER, "m1", app=2)
    assert root.ingest(e.to_dict() for e in events) == 2
    assert root.path("m1") == ["n1", "n2"]
    restored = root.events_for("m1")[1]
    assert restored.detail == {"peer": "n2"}
    assert restored.app == 2
