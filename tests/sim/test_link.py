"""Unit tests for SimLink semantics (flow control, break, stall)."""

import pytest

from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.errors import LinkDownError
from repro.sim.kernel import Kernel
from repro.sim.link import SimLink

A = NodeId("10.0.0.1", 7000)
B = NodeId("10.0.0.2", 7000)


def make_msg(i=0):
    return Message(MsgType.DATA, A, 1, b"x" * 100, seq=i)


def test_deliver_and_receive_with_latency():
    kernel = Kernel()
    link = SimLink(kernel, A, B, latency=0.5)

    async def sender():
        await link.deliver(make_msg(1))

    async def receiver():
        msg, sent_at = await link.inbox.get()
        return msg.seq, sent_at

    kernel.spawn(sender())
    seq, sent_at = kernel.run_until_complete(receiver())
    assert seq == 1
    assert sent_at == 0.0  # receiver applies the latency itself


def test_socket_buffer_blocks_sender():
    kernel = Kernel()
    link = SimLink(kernel, A, B, latency=0.1, socket_buffer=2)
    progress = []

    async def sender():
        for i in range(4):
            await link.deliver(make_msg(i))
            progress.append((i, kernel.now))

    async def receiver():
        await kernel.sleep(5)
        for _ in range(4):
            await link.inbox.get()

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    # First two fit the window immediately; the rest wait for the drain.
    assert progress[0][1] == 0.0 and progress[1][1] == 0.0
    assert progress[2][1] == 5.0 and progress[3][1] == 5.0


def test_break_fails_sender_and_receiver():
    kernel = Kernel()
    link = SimLink(kernel, A, B, latency=0.1, socket_buffer=1)
    outcomes = []

    async def sender():
        try:
            await link.deliver(make_msg(0))
            await link.deliver(make_msg(1))  # blocks: window full
        except LinkDownError:
            outcomes.append("sender-error")

    async def receiver():
        try:
            while True:
                await link.inbox.get()
        except Exception:
            outcomes.append("receiver-error")

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.call_at(1.0, link.break_)
    kernel.run()
    assert link.alive is False
    assert "sender-error" in outcomes or "receiver-error" in outcomes


def test_deliver_on_broken_link_raises_immediately():
    kernel = Kernel()
    link = SimLink(kernel, A, B)
    link.break_()

    async def sender():
        with pytest.raises(LinkDownError):
            await link.deliver(make_msg())
        return "done"

    assert kernel.run_until_complete(sender()) == "done"


def test_stalled_link_blocks_forever_silently():
    kernel = Kernel()
    link = SimLink(kernel, A, B)
    link.stall()
    parked = []

    async def sender():
        parked.append("before")
        await link.deliver(make_msg())
        parked.append("after")  # must never run

    task = kernel.spawn(sender())
    kernel.run(until=100.0)
    assert parked == ["before"]
    assert not task.finished
    assert link.stalled and link.alive


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        SimLink(Kernel(), A, B, latency=-1.0)
