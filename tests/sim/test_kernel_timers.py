"""Timer cancellation, heap hygiene and timeout-path regression tests.

The kernel keeps cancelled timers in the heap as dead entries and
compacts lazily; these tests pin the observable contract: cancelled
work never fires, the heap stays bounded under churn, and
``run_until_complete``'s timeout path stops exactly at the deadline.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Cancelled, Kernel, gather


# --- TimerHandle ---------------------------------------------------------------


def test_cancelled_timer_never_fires():
    kernel = Kernel()
    fired = []
    handle = kernel.call_at(1.0, fired.append, "x")
    assert handle.when == 1.0
    assert not handle.cancelled
    handle.cancel()
    assert handle.cancelled
    kernel.run()
    assert fired == []
    assert kernel.pending_timers == 0


def test_cancel_is_idempotent_and_safe_after_firing():
    kernel = Kernel()
    fired = []
    handle = kernel.call_at(1.0, fired.append, "x")
    kernel.run()
    assert fired == ["x"]
    # Cancelling a timer that already fired must not corrupt the
    # dead-entry accounting (the entry is spent, not pending).
    handle.cancel()
    handle.cancel()
    assert kernel.pending_timers == 0
    kernel.call_at(2.0, fired.append, "y")
    kernel.run()
    assert fired == ["x", "y"]


def test_cancelling_one_of_many_timers_preserves_order():
    kernel = Kernel()
    order = []
    kernel.call_at(1.0, order.append, "a")
    doomed = kernel.call_at(2.0, order.append, "dead")
    kernel.call_at(2.0, order.append, "b")
    kernel.call_at(3.0, order.append, "c")
    doomed.cancel()
    kernel.run()
    assert order == ["a", "b", "c"]


# --- cancelled sleeps ----------------------------------------------------------


def test_cancelled_sleep_retires_its_timer():
    kernel = Kernel()
    progress = []

    async def sleeper():
        progress.append("start")
        try:
            await kernel.sleep(100.0)
        except Cancelled:
            progress.append("cancelled")
            raise
        progress.append("never")

    task = kernel.spawn(sleeper())
    kernel.call_at(1.0, task.cancel)
    kernel.run()
    assert progress == ["start", "cancelled"]
    # The abandoned sleep's heap entry was retired in place: nothing
    # forces the clock out to t=100.
    assert kernel.now == 1.0
    assert kernel.pending_timers == 0


def test_heap_stays_bounded_under_spawn_cancel_churn():
    kernel = Kernel()

    async def long_sleep():
        await kernel.sleep(10_000.0)

    for _ in range(2_000):
        task = kernel.spawn(long_sleep())
        kernel.run(until=kernel.now)  # let the task park on its sleep
        task.cancel()
        kernel.run(until=kernel.now)
    assert kernel.pending_timers == 0
    assert kernel.live_tasks == []
    # Lazy compaction keeps dead entries from accumulating: 2000
    # cancelled sleeps must not leave 2000 heap entries behind.
    assert len(kernel._heap) < 256


def test_mass_cancel_inside_run_loop_keeps_later_timers_firing():
    # Regression: compaction used to rebind the heap to a new list while
    # run() kept draining a stale local alias, so anything scheduled
    # after a mid-run compaction silently never fired.
    kernel = Kernel()
    done = []

    async def churner():
        handles = [kernel.call_at(kernel.now + 1_000.0, done.append, "never")
                   for _ in range(100)]
        for handle in handles:
            handle.cancel()  # >64 dead, outnumbering live -> compaction
        await kernel.sleep(5.0)
        done.append("resumed")

    kernel.spawn(churner())
    kernel.run()
    assert done == ["resumed"]
    assert kernel.now == 5.0
    assert kernel.pending_timers == 0


def test_mass_cancel_inside_run_until_complete_does_not_deadlock():
    kernel = Kernel()

    async def churner():
        handles = [kernel.call_later(1_000.0, lambda: None) for _ in range(100)]
        for handle in handles:
            handle.cancel()
        await kernel.sleep(5.0)
        return "ok"

    assert kernel.run_until_complete(churner()) == "ok"
    assert kernel.now == 5.0
    assert kernel.pending_timers == 0


def test_live_tasks_tracks_only_unfinished_tasks():
    kernel = Kernel()

    async def quick():
        await kernel.sleep(1.0)

    tasks = [kernel.spawn(quick()) for _ in range(50)]
    assert len(kernel.live_tasks) == 50
    kernel.run()
    assert kernel.live_tasks == []
    assert all(task.finished for task in tasks)


# --- gather over mixed futures -------------------------------------------------


def test_gather_mixed_resolved_and_pending_futures():
    kernel = Kernel()
    resolved = kernel.future()
    resolved.set_result("early")
    pending = kernel.future()
    kernel.call_at(2.0, pending.set_result, "late")
    results = []

    async def collector():
        results.append(await gather(resolved, pending))

    kernel.spawn(collector())
    kernel.run()
    assert results == [["early", "late"]]
    assert kernel.now == 2.0


# --- run_until_complete timeout path -------------------------------------------


def test_run_until_complete_times_out_at_deadline():
    kernel = Kernel()
    progress = []

    async def stuck():
        progress.append("start")
        await kernel.sleep(1_000.0)
        progress.append("never")

    with pytest.raises(SimulationError, match="timed out"):
        kernel.run_until_complete(stuck(), timeout=5.0)
    assert progress == ["start"]
    # The clock rests exactly at the deadline, like run(until=...).
    assert kernel.now == 5.0
    # The timed-out task was cancelled, not leaked.
    assert kernel.live_tasks == []
    assert kernel.pending_timers == 0


def test_run_until_complete_timeout_spares_earlier_completion():
    kernel = Kernel()

    async def quick():
        await kernel.sleep(1.0)
        return "done"

    assert kernel.run_until_complete(quick(), timeout=5.0) == "done"
    assert kernel.now == 1.0


def test_run_until_complete_usable_after_timeout():
    kernel = Kernel()

    async def stuck():
        await kernel.sleep(100.0)

    with pytest.raises(SimulationError):
        kernel.run_until_complete(stuck(), timeout=1.0)

    async def next_one():
        await kernel.sleep(2.0)
        return kernel.now

    assert kernel.run_until_complete(next_one()) == 3.0


def test_run_until_complete_timeout_cleanup_runs_finally_blocks():
    kernel = Kernel()
    cleaned = []

    async def careful():
        try:
            await kernel.sleep(50.0)
        finally:
            cleaned.append(True)

    with pytest.raises(SimulationError):
        kernel.run_until_complete(careful(), timeout=2.0)
    assert cleaned == [True]
