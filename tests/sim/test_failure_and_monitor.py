"""Tests for failure injection helpers and the rate recorder."""

import pytest

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.errors import UnknownNodeError
from repro.sim.engine import EngineConfig
from repro.sim.failure import FailureSchedule, cut_link, kill_node, stall_link
from repro.sim.monitor import RateRecorder
from repro.sim.network import NetworkConfig, SimNetwork

KB = 1000.0


def build_chain(inactivity=None):
    net = SimNetwork(NetworkConfig(engine=EngineConfig(
        buffer_capacity=16, inactivity_timeout=inactivity)))
    a_alg, b_alg, sink = CopyForwardAlgorithm(), CopyForwardAlgorithm(), SinkAlgorithm()
    a = net.add_node(a_alg, name="A", bandwidth=BandwidthSpec(up=100 * KB))
    b = net.add_node(b_alg, name="B")
    c = net.add_node(sink, name="C")
    a_alg.set_downstreams([b])
    b_alg.set_downstreams([c])
    net.start()
    net.observer.deploy_source(a, app=1, payload_size=5000)
    return net, (a, b, c), (a_alg, b_alg, sink)


def test_kill_node_stops_traffic_downstream():
    net, (a, b, c), (_, _, sink) = build_chain()
    net.run(5)
    before = sink.received
    assert before > 0
    kill_node(net, "B")
    net.run(10)
    settled = sink.received
    net.run(5)
    assert sink.received == settled


def test_cut_link_detected_by_both_sides():
    net, (a, b, c), (a_alg, _, _) = build_chain()
    net.run(5)
    cut_link(net, "A", "B")
    net.run(5)
    assert b not in net.engine(a).downstreams()
    assert a not in net.engine(b).upstreams()
    assert b not in a_alg.downstream_targets


def test_cut_unknown_link_raises():
    net, _, _ = build_chain()
    net.run(2)
    with pytest.raises(UnknownNodeError):
        cut_link(net, "C", "A")


def test_stall_link_only_caught_with_inactivity_detection():
    # Without a watchdog the stalled link lingers forever.
    net, (a, b, _), _ = build_chain(inactivity=None)
    net.run(5)
    stall_link(net, "A", "B")
    net.run(30)
    assert b in net.engine(a).downstreams()  # nobody noticed

    # With the watchdog both endpoints clean up.
    net, (a, b, _), _ = build_chain(inactivity=4.0)
    net.run(5)
    stall_link(net, "A", "B")
    net.run(30)
    assert b not in net.engine(a).downstreams()
    assert a not in net.engine(b).upstreams()


def test_failure_schedule_fires_in_order():
    net, (a, b, c), (_, _, sink) = build_chain()
    schedule = FailureSchedule()
    schedule.kill_source(6.0, "A", app=1).kill_node(12.0, "B")
    schedule.arm(net)
    net.run(5)
    assert net.engine(a)._sources  # still producing
    net.run(3)
    assert not net.engine(a)._sources  # source killed at t=6
    assert net.engine(b).running
    net.run(5)
    assert not net.engine(b).running  # node killed at t=12


def test_failure_schedule_tolerates_races():
    net, (a, b, c), _ = build_chain()
    schedule = FailureSchedule()
    schedule.kill_node(5.0, "B")
    schedule.cut_link(6.0, "A", "B")  # the link is already gone by then
    schedule.arm(net)
    net.run(10)  # must not raise
    assert not net.engine(b).running


def test_rate_recorder_tracks_convergence():
    net, (a, b, c), _ = build_chain()
    recorder = RateRecorder(net, period=1.0)
    series = recorder.watch("A", "B")
    recorder.start()
    net.run(20)
    assert len(series.times) >= 18
    assert series.latest() == pytest.approx(100 * KB, rel=0.15)
    reached = series.time_to_reach(100 * KB, tolerance=0.15)
    assert reached is not None and reached < 10


def test_rate_recorder_sees_failure_as_zero():
    net, (a, b, c), _ = build_chain()
    recorder = RateRecorder(net, period=1.0)
    series = recorder.watch("A", "B")
    recorder.start()
    net.run(5)
    kill_node(net, "B")
    net.run(15)
    assert series.latest() == 0.0
    assert series.time_to_reach(0.0) is not None
