"""Unit tests for SimQueue and SimEvent."""

import pytest

from repro.errors import BufferClosedError
from repro.sim.kernel import Kernel
from repro.sim.sync import SimEvent, SimQueue


def test_queue_fifo_order():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=10)

    async def scenario():
        for i in range(5):
            await queue.put(i)
        return [await queue.get() for _ in range(5)]

    assert kernel.run_until_complete(scenario()) == [0, 1, 2, 3, 4]


def test_put_blocks_until_space():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=1)
    log = []

    async def producer():
        await queue.put("first")
        log.append(("put-first", kernel.now))
        await queue.put("second")  # blocks until the consumer gets
        log.append(("put-second", kernel.now))

    async def consumer():
        await kernel.sleep(5)
        item = await queue.get()
        log.append(("got", item, kernel.now))

    kernel.spawn(producer())
    kernel.spawn(consumer())
    kernel.run()
    assert log == [("put-first", 0.0), ("got", "first", 5.0), ("put-second", 5.0)]


def test_get_blocks_until_item():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=1)

    async def consumer():
        item = await queue.get()
        return item, kernel.now

    async def producer():
        await kernel.sleep(3)
        await queue.put("x")

    kernel.spawn(producer())
    assert kernel.run_until_complete(consumer()) == ("x", 3.0)


def test_multiple_blocked_getters_fifo():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=5)
    received = []

    async def consumer(name):
        item = await queue.get()
        received.append((name, item))

    async def producer():
        await kernel.sleep(1)
        await queue.put("a")
        await kernel.sleep(1)
        await queue.put("b")

    kernel.spawn(consumer("c1"))
    kernel.spawn(consumer("c2"))
    kernel.spawn(producer())
    kernel.run()
    assert received == [("c1", "a"), ("c2", "b")]


def test_close_fails_blocked_putter():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=1)
    outcome = []

    async def producer():
        await queue.put(1)
        try:
            await queue.put(2)
        except BufferClosedError:
            outcome.append("closed")

    kernel.spawn(producer())
    kernel.call_at(1.0, queue.close)
    kernel.run()
    assert outcome == ["closed"]


def test_close_drains_remaining_items_then_raises():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=5)

    async def scenario():
        await queue.put("leftover")
        queue.close()
        first = await queue.get()
        try:
            await queue.get()
        except BufferClosedError:
            return first, "raised"
        return first, "no-raise"

    assert kernel.run_until_complete(scenario()) == ("leftover", "raised")


def test_cancelled_getter_does_not_steal_items():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=5)
    received = []

    async def doomed():
        received.append(await queue.get())

    async def survivor():
        received.append(("survivor", await queue.get()))

    doomed_task = kernel.spawn(doomed())
    kernel.spawn(survivor())
    kernel.call_at(1.0, doomed_task.cancel)

    async def producer():
        await kernel.sleep(2)
        await queue.put("item")

    kernel.spawn(producer())
    kernel.run()
    assert received == [("survivor", "item")]


def test_put_nowait_and_get_nowait():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=1)
    assert queue.put_nowait("a") is True
    assert queue.put_nowait("b") is False
    assert queue.get_nowait() == "a"
    with pytest.raises(IndexError):
        queue.get_nowait()


def test_event_wait_and_set():
    kernel = Kernel()
    event = SimEvent(kernel)
    log = []

    async def waiter():
        await event.wait()
        log.append(kernel.now)

    kernel.spawn(waiter())
    kernel.call_at(4.0, event.set)
    kernel.run()
    assert log == [4.0]
    assert event.is_set


def test_event_wait_returns_immediately_when_set():
    kernel = Kernel()
    event = SimEvent(kernel)
    event.set()

    async def waiter():
        await event.wait()
        return kernel.now

    assert kernel.run_until_complete(waiter()) == 0.0
