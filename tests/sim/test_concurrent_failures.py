"""Domino teardown under *concurrent* failures.

Two upstream peers of the same relay fail at the same virtual instant;
afterwards every piece of per-peer state on the relay — sender links,
receiver ports, throttle entries, pending forwards, app routing tables,
stats maps — must be free of the dead NodeIds, and unaffected streams
must keep flowing.
"""

from repro.core.algorithm import Algorithm, Disposition
from repro.core.bandwidth import BandwidthSpec
from repro.core.message import Message
from repro.sim.engine import EngineConfig
from repro.sim.failure import FailureSchedule
from repro.sim.network import NetworkConfig, SimNetwork

KB = 1000.0


class AppRouter(Algorithm):
    """Forward each application's data along a per-app downstream set."""

    def __init__(self, seed=None):
        super().__init__(seed=seed)
        self.routes: dict[int, list] = {}
        self.received = 0
        self.broken_sources: list[int] = []

    def on_data(self, msg: Message) -> Disposition:
        self.received += 1
        for dest in self.routes.get(msg.app, []):
            self.send(msg, dest)
        return Disposition.DONE

    def on_broken_source(self, msg: Message) -> Disposition:
        self.broken_sources.append(int(msg.fields().get("app", msg.app)))
        return Disposition.DONE


def build():
    """S, A, B feed relay R; R fans out to A, B and sink C.

    A and B are simultaneously *upstreams* of R (apps 1 and 2) and
    *downstreams* of R (copies of app 3), so their death exercises both
    sides of the relay's teardown in one event.
    """
    net = SimNetwork(NetworkConfig(engine=EngineConfig(buffer_capacity=8)))
    algs = {name: AppRouter() for name in "SABRC"}
    ids = {}
    for name in "SABRC":
        bandwidth = BandwidthSpec(up=400 * KB) if name in "SAB" else None
        ids[name] = net.add_node(algs[name], name=name, bandwidth=bandwidth)
    algs["S"].routes = {3: [ids["R"]]}
    algs["A"].routes = {1: [ids["R"]]}
    algs["B"].routes = {2: [ids["R"]]}
    algs["R"].routes = {
        1: [ids["C"]],
        2: [ids["C"]],
        3: [ids["A"], ids["B"], ids["C"]],
    }
    net.start()
    # Choke R's links to A and B so forwards to them defer and pending
    # forwards referencing A/B pile up on R's receiver ports.
    relay = net.engine("R")
    relay.throttle.set_link(ids["A"], 5 * KB)
    relay.throttle.set_link(ids["B"], 5 * KB)
    net.observer.deploy_source(ids["A"], app=1, payload_size=5000)
    net.observer.deploy_source(ids["B"], app=2, payload_size=5000)
    net.observer.deploy_source(ids["S"], app=3, payload_size=5000)
    return net, ids, algs


def test_two_upstreams_die_in_the_same_round_no_stale_state():
    net, ids, algs = build()
    relay = net.engine("R")
    a, b, c, s = ids["A"], ids["B"], ids["C"], ids["S"]

    net.run(8)
    # Preconditions: the relay is loaded on every axis we later assert on.
    assert algs["C"].received > 0
    assert {p.peer for p in relay._scheduler.ports} == {s, a, b}
    assert set(relay._senders) >= {a, b, c}
    assert a in relay.throttle._links and b in relay.throttle._links
    pending_targets = {
        dest
        for port in relay._scheduler.ports
        for forward in port.pending
        for dest in forward.remaining
    }
    assert pending_targets & {a, b}  # the chokes really created backlog

    # Both upstreams die at the same virtual instant.
    schedule = FailureSchedule().kill_node(8.5, "A").kill_node(8.5, "B")
    schedule.arm(net)
    net.run(6)

    # No stale NodeIds anywhere on the relay.
    for mapping in (relay._senders, relay._upstream_links,
                    relay._recv_stats, relay._last_recv_at):
        assert a not in mapping and b not in mapping, mapping
    assert {p.peer for p in relay._scheduler.ports} == {s}
    assert a not in relay.throttle._links and b not in relay.throttle._links
    for port in relay._scheduler.ports:
        for forward in port.pending:
            assert set(forward.remaining) <= {c}
    for app, ups in relay._app_upstreams.items():
        assert not (ups & {a, b}), (app, ups)
    for app, downs in relay._app_downstreams.items():
        assert not (downs & {a, b}), (app, downs)

    # The domino reached the sink for both dead apps...
    assert sorted(set(algs["C"].broken_sources)) == [1, 2]
    # ... while the surviving stream kept flowing through the relay.
    before = algs["C"].received
    net.run(5)
    assert algs["C"].received > before

    status = relay._status_report().fields()
    dead = {str(a), str(b)}
    assert not (set(status["recv_rates"]) & dead)
    assert not (set(status["send_rates"]) & dead)
    assert not (set(status["upstreams"]) & dead)
    assert not (set(status["downstreams"]) & dead)
