"""Property-based tests of the discrete-event kernel's core guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Kernel
from repro.sim.sync import SimQueue

times = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


@given(st.lists(times, min_size=1, max_size=60))
def test_property_events_fire_in_time_then_fifo_order(schedule):
    """Callbacks run sorted by time; equal times preserve creation order."""
    kernel = Kernel()
    fired: list[tuple[float, int]] = []
    for creation_index, when in enumerate(schedule):
        kernel.call_at(when, lambda w=when, i=creation_index: fired.append((w, i)))
    kernel.run()
    assert fired == sorted(fired)  # (time, creation index) lexicographic
    assert len(fired) == len(schedule)


@given(st.lists(times, min_size=1, max_size=40), st.integers(0, 1000))
def test_property_run_until_is_a_clean_partition(schedule, cut_scale):
    """run(until=T) fires exactly the events with time <= T, then the rest."""
    cut = cut_scale / 1000 * 1000.0
    kernel = Kernel()
    fired: list[float] = []
    for when in schedule:
        kernel.call_at(when, lambda w=when: fired.append(w))
    kernel.run(until=cut)
    early = list(fired)
    assert all(w <= cut for w in early)
    assert len(early) == sum(1 for w in schedule if w <= cut)
    kernel.run()
    assert sorted(fired) == sorted(schedule)


@settings(max_examples=30, deadline=None)
@given(
    items=st.lists(st.integers(), min_size=1, max_size=30),
    capacity=st.integers(min_value=1, max_value=5),
    consumer_delay=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)
def test_property_queue_transfers_everything_in_order(items, capacity, consumer_delay):
    """Whatever the capacity and consumer pacing, a producer/consumer pair
    moves every item across exactly once, in order."""
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=capacity)
    received: list[int] = []

    async def producer():
        for item in items:
            await queue.put(item)

    async def consumer():
        for _ in items:
            if consumer_delay:
                await kernel.sleep(consumer_delay)
            received.append(await queue.get())

    kernel.spawn(producer())
    kernel.spawn(consumer())
    kernel.run()
    assert received == items


@settings(max_examples=25, deadline=None)
@given(
    n_producers=st.integers(min_value=1, max_value=4),
    per_producer=st.integers(min_value=1, max_value=10),
    capacity=st.integers(min_value=1, max_value=3),
)
def test_property_multiple_producers_lose_nothing(n_producers, per_producer, capacity):
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=capacity)
    received: list[tuple[int, int]] = []
    total = n_producers * per_producer

    def make_producer(pid):
        async def producer():
            for i in range(per_producer):
                await queue.put((pid, i))
        return producer

    async def consumer():
        for _ in range(total):
            received.append(await queue.get())

    for pid in range(n_producers):
        kernel.spawn(make_producer(pid)())
    kernel.spawn(consumer())
    kernel.run()
    assert len(received) == total
    # Per-producer FIFO holds even under interleaving.
    for pid in range(n_producers):
        sequence = [i for p, i in received if p == pid]
        assert sequence == sorted(sequence)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_seeded_runs_are_identical(seed):
    def run():
        kernel = Kernel(seed=seed)
        trace = []

        async def worker(name):
            for _ in range(3):
                await kernel.sleep(kernel.rng.random())
                trace.append((name, round(kernel.now, 9)))

        kernel.spawn(worker("a"))
        kernel.spawn(worker("b"))
        kernel.run()
        return trace

    assert run() == run()
