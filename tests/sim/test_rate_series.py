"""Edge-case tests for RateSeries convergence detection and tool registry."""

import pytest

from repro.sim.monitor import RateSeries
from repro.core.ids import NodeId

A = NodeId("10.0.0.1", 7000)
B = NodeId("10.0.0.2", 7000)


def series_with(rates, period=1.0):
    series = RateSeries(A, B)
    for i, rate in enumerate(rates):
        series.times.append(i * period)
        series.rates.append(rate)
    return series


def test_time_to_reach_requires_hold():
    # One sample at target is not convergence; three consecutive are.
    series = series_with([0, 100, 0, 100, 100, 100, 100])
    assert series.time_to_reach(100, hold=3) == 3.0


def test_time_to_reach_tolerance_band():
    series = series_with([0, 90, 95, 105, 110])
    assert series.time_to_reach(100, tolerance=0.15, hold=3) == 1.0
    assert series.time_to_reach(100, tolerance=0.01, hold=3) is None


def test_time_to_reach_zero_target():
    series = series_with([50, 10, 0, 0, 0])
    assert series.time_to_reach(0.0, hold=3) == 2.0


def test_time_to_reach_with_repeated_sample_times():
    # Two samples can land on the same virtual instant; convergence must
    # be located by position, not by the first occurrence of the time.
    series = RateSeries(A, B)
    series.times = [0.0, 1.0, 1.0, 2.0, 2.0, 3.0]
    series.rates = [0, 100, 0, 100, 100, 100]
    # The hold=3 run is positions 3..5, starting at time 2.0 (position 3),
    # not at the *first* sample stamped 2.0 being misread via .index().
    assert series.time_to_reach(100, hold=3) == 2.0


def test_time_to_reach_all_times_identical():
    series = RateSeries(A, B)
    series.times = [5.0, 5.0, 5.0, 5.0]
    series.rates = [0, 100, 100, 100]
    assert series.time_to_reach(100, hold=3) == 5.0


def test_never_converges():
    series = series_with([1, 2, 3, 4, 5])
    assert series.time_to_reach(100) is None
    assert series_with([]).time_to_reach(5) is None


def test_latest():
    assert series_with([1, 2, 7]).latest() == 7
    assert series_with([]).latest() == 0.0


def test_all_registered_scenario_algorithms_instantiate():
    from repro.tools.scenario import ALGORITHMS
    from repro.core.algorithm import Algorithm

    for name, factory in ALGORITHMS.items():
        instance = factory({"seed": 1})
        assert isinstance(instance, Algorithm), name


def test_registered_tree_factories_accept_last_mile():
    from repro.tools.scenario import ALGORITHMS

    tree = ALGORITHMS["tree_ns_aware"]({"last_mile": 123_000.0})
    assert tree.last_mile == pytest.approx(123_000.0)
