"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Cancelled, Kernel


def test_sleep_advances_virtual_time():
    kernel = Kernel()
    times = []

    async def sleeper():
        await kernel.sleep(1.5)
        times.append(kernel.now)
        await kernel.sleep(2.5)
        times.append(kernel.now)

    kernel.spawn(sleeper())
    kernel.run()
    assert times == [1.5, 4.0]


def test_events_fire_in_time_then_fifo_order():
    kernel = Kernel()
    order = []
    kernel.call_at(2.0, order.append, "b")
    kernel.call_at(1.0, order.append, "a")
    kernel.call_at(2.0, order.append, "c")  # same time as "b", created later
    kernel.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_at_boundary():
    kernel = Kernel()
    seen = []
    kernel.call_at(1.0, seen.append, 1)
    kernel.call_at(5.0, seen.append, 5)
    stopped = kernel.run(until=3.0)
    assert seen == [1]
    assert stopped == 3.0
    kernel.run()
    assert seen == [1, 5]


def test_run_until_complete_returns_value():
    kernel = Kernel()

    async def compute():
        await kernel.sleep(1)
        return 42

    assert kernel.run_until_complete(compute()) == 42


def test_task_exception_propagates():
    kernel = Kernel()

    async def boom():
        await kernel.sleep(1)
        raise ValueError("kaput")

    kernel.spawn(boom())
    with pytest.raises(SimulationError) as excinfo:
        kernel.run()
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_cancel_waiting_task():
    kernel = Kernel()
    progress = []

    async def sleeper():
        progress.append("start")
        await kernel.sleep(100)
        progress.append("never")

    task = kernel.spawn(sleeper())
    kernel.call_at(1.0, task.cancel)
    kernel.run()
    assert progress == ["start"]
    assert task.cancelled and task.finished


def test_cancelled_is_not_swallowed_by_except_exception():
    kernel = Kernel()
    caught = []

    async def stubborn():
        try:
            await kernel.sleep(100)
        except Exception:  # must NOT catch Cancelled
            caught.append("exception")

    task = kernel.spawn(stubborn())
    kernel.call_at(1.0, task.cancel)
    kernel.run()
    assert caught == []
    assert task.cancelled


def test_join_waits_for_task():
    kernel = Kernel()

    async def worker():
        await kernel.sleep(3)
        return "done"

    async def waiter():
        task = kernel.spawn(worker())
        result = await task.join()
        return result, kernel.now

    assert kernel.run_until_complete(waiter()) == ("done", 3.0)


def test_nested_coroutines_delegate():
    kernel = Kernel()

    async def inner():
        await kernel.sleep(2)
        return "inner"

    async def outer():
        return await inner()

    assert kernel.run_until_complete(outer()) == "inner"


def test_scheduling_in_the_past_rejected():
    kernel = Kernel()
    kernel.call_at(5.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.call_at(1.0, lambda: None)


def test_determinism_same_seed_same_interleaving():
    def run_once():
        kernel = Kernel(seed=7)
        trace = []

        async def worker(name, delay):
            for i in range(3):
                await kernel.sleep(delay)
                trace.append((name, kernel.now, kernel.rng.random()))

        kernel.spawn(worker("a", 1.0))
        kernel.spawn(worker("b", 1.0))
        kernel.run()
        return trace

    assert run_once() == run_once()


def test_run_until_complete_deadlock_detection():
    kernel = Kernel()

    async def stuck():
        await kernel.future()  # never resolved

    with pytest.raises(SimulationError, match="deadlock"):
        kernel.run_until_complete(stuck())
