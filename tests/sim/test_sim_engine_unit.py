"""Focused engine-behaviour tests: hold, zero copy, weights, timers, status."""

import pytest

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.algorithm import Algorithm, Disposition
from repro.core.bandwidth import BandwidthSpec
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.sim.engine import EngineConfig
from repro.sim.network import NetworkConfig, SimNetwork

KB = 1000.0


def test_zero_copy_forwarding_preserves_object_identity():
    """A relayed data message is the same object end to end (no deep copy)."""
    seen_at_relay = []
    seen_at_sink = []

    class IdentityRelay(Algorithm):
        def on_data(self, msg):
            seen_at_relay.append(msg)
            self.send(msg, self._next)
            return Disposition.DONE

    class IdentitySink(Algorithm):
        def on_data(self, msg):
            seen_at_sink.append(msg)
            return Disposition.DONE

    net = SimNetwork()
    relay, sink = IdentityRelay(), IdentitySink()
    n_relay = net.add_node(relay, name="r", bandwidth=BandwidthSpec(up=100 * KB))
    n_sink = net.add_node(sink, name="s")
    relay._next = n_sink
    net.start()
    net.observer.deploy_source(n_relay, app=1, payload_size=1000)
    net.run(3)
    assert seen_at_relay and seen_at_sink
    # Same Python objects flowed through relay and sink buffers.
    assert seen_at_relay[0] is seen_at_sink[0]


def test_hold_disposition_keeps_message_in_algorithm():
    held_messages = []

    class Holder(Algorithm):
        def on_data(self, msg):
            held_messages.append(msg)
            return Disposition.HOLD

    net = SimNetwork()
    src_alg = CopyForwardAlgorithm()
    holder = Holder()
    src = net.add_node(src_alg, name="src", bandwidth=BandwidthSpec(up=50 * KB))
    dst = net.add_node(holder, name="holder")
    src_alg.set_downstreams([dst])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(5)
    assert len(held_messages) > 10
    port = net.engine(dst)._scheduler.ports[0]
    assert port.held == len(held_messages)


def test_engine_timer_fires_once_at_requested_delay():
    fired = []

    class TimerAlg(SinkAlgorithm):
        def on_start(self):
            self.engine.set_timer(2.5, token=9)

        def on_timer(self, token):
            fired.append((self.engine.now(), token))
            return Disposition.DONE

    net = SimNetwork()
    net.add_node(TimerAlg(), name="t")
    net.start()
    net.run(10)
    assert len(fired) == 1
    when, token = fired[0]
    assert token == 9
    assert when == pytest.approx(2.5, abs=0.1)


def test_status_report_contents():
    net = SimNetwork()
    src_alg, sink = CopyForwardAlgorithm(), SinkAlgorithm()
    src = net.add_node(src_alg, name="src", bandwidth=BandwidthSpec(up=100 * KB))
    dst = net.add_node(sink, name="dst")
    src_alg.set_downstreams([dst])
    net.start()
    net.observer.deploy_source(src, app=3, payload_size=5000)
    net.run(5)
    report = net.engine(src)._status_report().fields()
    assert report["node"] == str(src)
    assert str(dst) in report["downstreams"]
    assert report["apps"] == [3]
    assert str(dst) in report["send_rates"]
    sink_report = net.engine(dst)._status_report().fields()
    assert str(src) in sink_report["upstreams"]
    assert sink_report["recv_rates"][str(src)] > 0


def test_send_to_self_loops_back_through_control():
    received = []

    class SelfTalker(SinkAlgorithm):
        def on_start(self):
            self.send(Message(MsgType.GOSSIP, self.node_id, 0, b"note to self"),
                      self.node_id)

        def on_unhandled(self, msg):
            received.append(msg.payload)
            return Disposition.DONE

    class SelfGossip(SelfTalker):
        pass

    net = SimNetwork()
    alg = SelfGossip()
    alg.register(MsgType.GOSSIP, alg.on_unhandled)
    net.add_node(alg, name="solo")
    net.start()
    net.run(1)
    assert received == [b"note to self"]


def test_send_to_unknown_destination_reports_broken_link():
    from repro.core.ids import NodeId

    broken = []

    class Reporter(SinkAlgorithm):
        def on_start(self):
            self.send(Message(MsgType.DATA, self.node_id, 1, b"x"),
                      NodeId("10.9.9.9", 1))

        def on_broken_link(self, msg):
            broken.append(msg.fields()["peer"])
            return Disposition.DONE

    net = SimNetwork()
    net.add_node(Reporter(), name="rep")
    net.start()
    net.run(1)
    assert broken == ["10.9.9.9:1"]


def test_duplicate_start_rejected():
    net = SimNetwork()
    node = net.add_node(SinkAlgorithm(), name="x")
    net.start()
    with pytest.raises(RuntimeError):
        net.engine(node).start()


def test_weights_validated_through_engine():
    net = SimNetwork()
    a_alg, b_alg = CopyForwardAlgorithm(), SinkAlgorithm()
    a = net.add_node(a_alg, name="a")
    b = net.add_node(b_alg, name="b")
    a_alg.set_downstreams([b])
    net.start()
    net.observer.deploy_source(a, app=1, payload_size=1000)
    net.run(2)
    engine_b = net.engine(b)
    engine_b.set_port_weight(a, 4)
    assert engine_b._scheduler.get_port(a).weight == 4
    with pytest.raises(ValueError):
        engine_b.set_port_weight(a, 0)


def test_source_interval_caps_unthrottled_production():
    net = SimNetwork(NetworkConfig(engine=EngineConfig(source_interval=0.1)))
    src_alg, sink = CopyForwardAlgorithm(), SinkAlgorithm()
    src = net.add_node(src_alg, name="s")
    dst = net.add_node(sink, name="d")
    src_alg.set_downstreams([dst])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=100)
    net.run(10)
    # 0.1 s pacing => at most ~100 messages in 10 s.
    assert sink.received <= 101


def test_on_demand_measurement_returns_rtt_and_rate():
    replies = []

    class Prober(SinkAlgorithm):
        def on_measure_reply(self, peer, rtt, send_rate):
            replies.append((peer, rtt, send_rate))
            return Disposition.DONE

    net = SimNetwork(NetworkConfig(default_latency=0.020))
    prober = Prober()
    a = net.add_node(prober, name="a")
    b = net.add_node(SinkAlgorithm(), name="b")
    net.start()
    net.run(1)
    net.engine(a).measure(b)
    net.run(2)
    assert len(replies) == 1
    peer, rtt, _ = replies[0]
    assert peer == b
    # RTT is at least two one-way latencies of 20 ms.
    assert 0.04 <= rtt < 0.2
