"""Unit tests for SimNetwork construction and configuration."""

import pytest

from repro.algorithms.forwarding import SinkAlgorithm
from repro.core.ids import NodeId
from repro.errors import ConfigurationError, UnknownNodeError
from repro.sim.network import NetworkConfig, SimNetwork


def test_node_ids_are_unique_and_virtualizable():
    net = SimNetwork()
    ids = [net.add_node(SinkAlgorithm()) for _ in range(300)]
    assert len(set(ids)) == 300
    # All addresses are well-formed ip:port pairs.
    for node in ids:
        assert isinstance(node, NodeId)


def test_explicit_node_id_and_duplicate_rejection():
    net = SimNetwork()
    explicit = NodeId("10.9.9.9", 1234)
    assert net.add_node(SinkAlgorithm(), node_id=explicit) == explicit
    with pytest.raises(ConfigurationError):
        net.add_node(SinkAlgorithm(), node_id=explicit)


def test_named_lookup_and_labels():
    net = SimNetwork()
    node = net.add_node(SinkAlgorithm(), name="alpha")
    assert net["alpha"] == node
    assert net.label(node) == "alpha"
    with pytest.raises(UnknownNodeError):
        net["beta"]
    with pytest.raises(ConfigurationError):
        net.add_node(SinkAlgorithm(), name="alpha")


def test_engine_lookup_by_name_or_id():
    net = SimNetwork()
    node = net.add_node(SinkAlgorithm(), name="x")
    assert net.engine("x") is net.engine(node)
    with pytest.raises(UnknownNodeError):
        net.engine(NodeId("8.8.8.8", 8))


def test_zero_latency_configs_rejected():
    with pytest.raises(ConfigurationError):
        SimNetwork(NetworkConfig(default_latency=0.0))
    net = SimNetwork()
    net.set_latency_model(lambda a, b: 0.0)
    a = net.add_node(SinkAlgorithm(), name="a")
    b = net.add_node(SinkAlgorithm(), name="b")
    with pytest.raises(ConfigurationError):
        net.latency(a, b)


def test_nodes_added_after_start_are_started():
    net = SimNetwork()
    net.add_node(SinkAlgorithm(), name="early")
    net.start()
    net.run(1)
    late = net.add_node(SinkAlgorithm(), name="late")
    assert net.engines[late].running
    net.run(1)
    assert late in net.observer.alive


def test_run_advances_virtual_time_only():
    net = SimNetwork()
    net.add_node(SinkAlgorithm(), name="n")
    assert net.now == 0.0
    net.run(5)
    assert net.now == 5.0
    net.run(2.5)
    assert net.now == 7.5
