"""The deterministic churn generator and its lowering onto both backends."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.errors import ConfigurationError
from repro.membership.churn import (
    ChurnConfig,
    ChurnSchedule,
    FlashCrowd,
    adversarial_edges,
)
from repro.membership.swim import SwimMembershipAlgorithm
from repro.net.chaos import ChaosCluster
from repro.sim.network import NetworkConfig, SimNetwork


# ---------------------------------------------------------------- generation


class TestGenerate:
    def test_same_seed_same_schedule(self):
        cfg = ChurnConfig(seed=5, duration=30.0, arrival_rate=1.0,
                          departure_rate=1.0, leave_fraction=0.5)
        initial = [f"n{i}" for i in range(10)]
        a = ChurnSchedule.generate(cfg, initial)
        b = ChurnSchedule.generate(cfg, initial)
        assert a.events == b.events
        c = ChurnSchedule.generate(
            ChurnConfig(**{**cfg.__dict__, "seed": 6}), initial
        )
        assert a.events != c.events

    def test_departures_always_name_a_live_node(self):
        schedule = ChurnSchedule.generate(
            ChurnConfig(seed=2, duration=60.0, arrival_rate=2.0,
                        departure_rate=2.0, min_population=3),
            [f"n{i}" for i in range(5)],
        )
        alive = set(schedule.initial)
        for event in schedule.events:
            if event.kind == "join":
                alive.add(event.name)
            else:
                assert event.name in alive
                alive.discard(event.name)
            assert len(alive) >= 3

    def test_flash_crowd_joins_at_instant(self):
        crowd = FlashCrowd(at=10.0, size=25)
        schedule = ChurnSchedule.generate(
            ChurnConfig(seed=1, duration=20.0, arrival_rate=0.0,
                        departure_rate=0.0, flash_crowds=(crowd,)),
            ["n0", "n1", "n2"],
        )
        joins = schedule.joins()
        assert len(joins) == 25
        assert all(10.0 <= e.at < 10.001 for e in joins)

    def test_alive_after_tracks_ground_truth(self):
        schedule = ChurnSchedule.generate(
            ChurnConfig(seed=3, duration=30.0, arrival_rate=1.0,
                        departure_rate=1.0),
            [f"n{i}" for i in range(6)],
        )
        assert schedule.alive_after(-1.0) == set(schedule.initial)
        final = schedule.final_alive()
        expected = set(schedule.initial)
        for event in schedule.events:
            (expected.add if event.kind == "join" else expected.discard)(
                event.name
            )
        assert final == expected

    def test_negative_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnSchedule.generate(
                ChurnConfig(arrival_rate=-1.0), ["a", "b", "c"]
            )


# ------------------------------------------------------------------ lowering


def test_lowering_maps_event_kinds():
    schedule = ChurnSchedule.generate(
        ChurnConfig(seed=4, duration=30.0, arrival_rate=1.0,
                    departure_rate=1.0, leave_fraction=0.5),
        [f"n{i}" for i in range(8)],
    )
    lowered = schedule.to_failure_schedule()
    kinds = {"join": "join_node", "crash": "kill_node", "leave": "leave_node"}
    assert len(lowered.events) == len(schedule.events)
    for ours, theirs in zip(schedule.events, lowered.events):
        assert theirs.kind == kinds[ours.kind]
        assert str(theirs.node) == ours.name
        assert theirs.at == ours.at


def test_sim_arm_requires_node_factory_for_joins():
    net = SimNetwork()
    net.add_node(SwimMembershipAlgorithm(seed=0), name="n0")
    net.start()
    schedule = ChurnSchedule(
        events=[], initial=("n0",)
    ).to_failure_schedule().join_node(1.0, "late")
    with pytest.raises(ConfigurationError):
        schedule.arm(net)


def test_churn_replays_on_sim_network():
    """End to end: generated churn drives a live SWIM deployment."""
    net = SimNetwork(NetworkConfig(seed=7))
    for i in range(5):
        net.add_node(SwimMembershipAlgorithm(seed=i), name=f"n{i}")
    net.start()
    net.run(8)  # bootstrap, views converge

    seeds = iter(range(100, 200))

    def node_factory(network, name):
        # add_node on a started network starts the engine immediately
        network.add_node(SwimMembershipAlgorithm(seed=next(seeds)), name=name)

    schedule = ChurnSchedule(
        events=[], initial=tuple(f"n{i}" for i in range(5))
    )
    lowered = schedule.to_failure_schedule()
    # sim arming is at absolute virtual times: offset past the bootstrap
    lowered.join_node(net.now + 1.0, "late-1")
    lowered.kill_node(net.now + 3.0, "n1")
    lowered.arm(net, node_factory=node_factory)
    net.run(20)

    late = net["late-1"]
    dead = net["n1"]
    for name in ("n0", "n2", "n3", "n4"):
        alg = net.engine(name).algorithm
        assert late in alg.known_hosts, f"{name} never learned the joiner"
        assert dead not in alg.known_hosts, f"{name} still believes the dead"


def test_chaos_arm_requires_node_factory_for_joins():
    async def scenario():
        cluster = ChaosCluster()
        schedule = ChurnSchedule(
            events=[], initial=()
        ).to_failure_schedule().join_node(0.5, "late")
        try:
            with pytest.raises(ValueError):
                cluster.arm(schedule)
        finally:
            await cluster.stop()

    asyncio.run(scenario())


# ------------------------------------------------------- adversarial topology


class TestAdversarialEdges:
    @staticmethod
    def components(n: int, edges: list[tuple[int, int]]) -> int:
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i, j in edges:
            parent[find(i)] = find(j)
        return len({find(i) for i in range(n)})

    @pytest.mark.parametrize("kind", ["line", "star", "clusters", "random"])
    def test_weakly_connected(self, kind):
        n = 60
        edges = adversarial_edges(kind, n, random.Random(3))
        assert self.components(n, edges) == 1
        assert all(0 <= i < n and 0 <= j < n for i, j in edges)

    def test_line_is_sparsest(self):
        assert len(adversarial_edges("line", 50)) == 49

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            adversarial_edges("clique", 10)
