"""The slotted round-based simulator: convergence, churn replay, determinism."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.membership.churn import ChurnConfig, ChurnSchedule, adversarial_edges
from repro.membership.slotted import SlottedChurnSim, slot_node_id


def make_sim(n: int, topology: str = "line", seed: int = 7, **kwargs):
    edges = adversarial_edges(topology, n, random.Random(seed))
    return SlottedChurnSim(n, edges, seed=seed, **kwargs)


def test_converges_from_adversarial_line():
    sim = make_sim(64, "line")
    stats = sim.run(max_rounds=120)
    assert stats.convergence_round is not None
    last = stats.samples[-1]
    assert last.disrupted == 0
    assert last.alive == 64


@pytest.mark.parametrize("topology", ["star", "clusters", "random"])
def test_converges_from_every_adversarial_topology(topology):
    sim = make_sim(48, topology)
    stats = sim.run(max_rounds=120)
    assert stats.convergence_round is not None, f"{topology} did not converge"


def test_identical_seeds_identical_runs():
    a = make_sim(40, "random", seed=11).run(max_rounds=80)
    b = make_sim(40, "random", seed=11).run(max_rounds=80)
    assert a.convergence_round == b.convergence_round
    assert a.packets == b.packets
    assert a.samples == b.samples


def test_different_seeds_differ():
    a = make_sim(40, "random", seed=11).run(max_rounds=80)
    b = make_sim(40, "random", seed=12).run(max_rounds=80)
    # Different topology draws + probe orders: the per-round trajectories
    # must diverge even if totals happen to coincide.
    assert a.samples != b.samples


def test_churn_replay_tracks_ground_truth_population():
    n = 60
    churn = ChurnSchedule.generate(
        ChurnConfig(seed=3, duration=20.0, arrival_rate=1.0,
                    departure_rate=1.0, leave_fraction=0.5),
        initial=[f"n{i}" for i in range(n)],
    )
    sim = make_sim(n, "random", churn=churn)
    stats = sim.run(max_rounds=200)
    assert len(sim.nodes) == len(churn.final_alive())
    assert stats.convergence_round is not None
    assert stats.samples[-1].disrupted == 0
    # Residual disruption during the churn window is a real measurement.
    assert 0.0 <= stats.residual_disruption <= 1.0


def test_graceful_leaves_beat_crashes():
    """A 100%-leave run spends less time disrupted than a 100%-crash run."""
    n = 60

    def run(leave_fraction):
        churn = ChurnSchedule.generate(
            ChurnConfig(seed=5, duration=15.0, arrival_rate=0.0,
                        departure_rate=1.5, leave_fraction=leave_fraction),
            initial=[f"n{i}" for i in range(n)],
        )
        sim = make_sim(n, "random", churn=churn)
        return sim.run(max_rounds=200, stop_on_convergence=False)

    leave, crash = run(1.0), run(0.0)
    disruption = lambda s: sum(x.disrupted for x in s.samples)
    assert disruption(leave) < disruption(crash)


def test_slot_node_ids_unique_and_interned():
    ids = [slot_node_id(i) for i in range(300)]
    assert len(set(ids)) == 300
    assert slot_node_id(5) is ids[5]


def test_rejects_trivial_population():
    with pytest.raises(ConfigurationError):
        SlottedChurnSim(1, [])
