"""The SWIM adapter as a live algorithm on the simulation backend."""

from __future__ import annotations

import pytest

from repro.membership.protocol import DEAD, LEFT, SwimConfig
from repro.membership.swim import SwimMembershipAlgorithm
from repro.sim.failure import kill_node, leave_node
from repro.sim.network import NetworkConfig, SimNetwork
from repro.telemetry import Telemetry


def build_swim_net(n: int, telemetry: Telemetry | None = None, **cfg):
    net = SimNetwork(NetworkConfig(seed=1, telemetry=telemetry))
    algorithms = [
        SwimMembershipAlgorithm(SwimConfig(**cfg), seed=i) for i in range(n)
    ]
    for i, algorithm in enumerate(algorithms):
        net.add_node(algorithm, name=f"s{i}")
    net.start()
    return net, algorithms


def test_views_converge_to_full_membership():
    net, algorithms = build_swim_net(6)
    net.run(12)  # bootstrap + a dozen protocol periods
    ids = {alg.node_id for alg in algorithms}
    for alg in algorithms:
        others = ids - {alg.node_id}
        assert set(alg.core.alive_members()) == others
        assert others <= set(alg.known_hosts)


def test_crash_is_detected_and_pruned_from_known_hosts():
    net, algorithms = build_swim_net(6)
    net.run(10)
    victim = algorithms[0].node_id
    kill_node(net, "s0")
    net.run(15)  # probe -> suspect -> dead -> rumour spread
    for alg in algorithms[1:]:
        assert alg.core.state_of(victim) == DEAD
        assert victim not in alg.known_hosts
        assert not alg.core.is_alive(victim)


def test_graceful_leave_gossips_left_immediately():
    net, algorithms = build_swim_net(6)
    net.run(10)
    victim = algorithms[2].node_id
    leave_node(net, "s2")
    # A LEFT rumour needs only dissemination, not a suspicion timeout:
    # well under the ~suspicion_mult periods a crash detection takes.
    net.run(4)
    for alg in algorithms:
        if alg.node_id == victim:
            continue
        assert alg.core.state_of(victim) == LEFT
        assert victim not in alg.known_hosts


def test_membership_telemetry_counters_recorded():
    tel = Telemetry()
    net, algorithms = build_swim_net(5, telemetry=tel)
    net.run(10)
    kill_node(net, "s0")
    net.run(15)
    events = tel.registry.get("ioverlay_membership_events_total")
    assert events is not None
    by_kind = {labels["kind"]: child.value for labels, child in events.series()}
    assert by_kind.get("joins", 0) > 0
    assert by_kind.get("deaths", 0) > 0
    packets = tel.registry.get("ioverlay_membership_packets_total")
    by_kind = {labels["kind"]: child.value for labels, child in packets.series()}
    assert by_kind.get("pings", 0) > 0
    assert by_kind.get("acks", 0) > 0


def test_broken_link_fast_paths_suspicion():
    net, algorithms = build_swim_net(4)
    net.run(10)
    victim = algorithms[3].node_id
    kill_node(net, "s3")
    # Fail-fast via BROKEN_LINK plus the probe cycle: detection must not
    # need more than a couple of suspicion windows.
    net.run(3.0 * SwimConfig().suspicion_mult * SwimConfig().period)
    assert all(
        not alg.core.is_alive(victim) for alg in algorithms[:3]
    )
