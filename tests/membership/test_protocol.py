"""Unit tests for the transport-agnostic SWIM core."""

from __future__ import annotations

import random

import pytest

from repro.core.ids import NodeId
from repro.membership.protocol import (
    ALIVE,
    DEAD,
    LEFT,
    SUSPECT,
    SwimConfig,
    SwimCore,
    _overrides,
)


def nid(i: int) -> NodeId:
    return NodeId(f"10.0.0.{i}", 9000)


def make_core(i: int = 1, **cfg) -> SwimCore:
    return SwimCore(nid(i), SwimConfig(**cfg), rng=random.Random(i), now=0.0)


# ----------------------------------------------------------- override rules


class TestOverrides:
    def test_alive_needs_strictly_newer_incarnation(self):
        assert not _overrides(ALIVE, 0, ALIVE, 0)
        assert not _overrides(ALIVE, 1, SUSPECT, 1)
        assert _overrides(ALIVE, 2, SUSPECT, 1)

    def test_suspect_beats_alive_at_same_incarnation(self):
        assert _overrides(SUSPECT, 0, ALIVE, 0)
        assert not _overrides(SUSPECT, 0, ALIVE, 1)
        assert not _overrides(SUSPECT, 0, SUSPECT, 0)
        assert _overrides(SUSPECT, 1, SUSPECT, 0)

    def test_dead_is_final_but_rejoin_overrides(self):
        assert _overrides(DEAD, 0, ALIVE, 0)
        assert _overrides(DEAD, 0, SUSPECT, 0)
        assert not _overrides(DEAD, 5, DEAD, 0)
        assert not _overrides(SUSPECT, 9, DEAD, 0)
        # rejoin: alive with a *newer* incarnation resurrects a tombstone
        assert _overrides(ALIVE, 1, DEAD, 0)
        assert not _overrides(ALIVE, 0, DEAD, 0)
        assert not _overrides(DEAD, 0, ALIVE, 1)

    def test_left_behaves_like_dead(self):
        assert _overrides(LEFT, 0, ALIVE, 0)
        assert not _overrides(LEFT, 0, LEFT, 0)
        assert _overrides(ALIVE, 1, LEFT, 0)


# --------------------------------------------------------------- probe cycle


class TestProbeCycle:
    def test_ping_is_acked_and_probe_cleared(self):
        a, b = make_core(1), make_core(2)
        a.note_member(b.node_id)
        out = a.tick(0.0)
        assert len(out) == 1
        dest, ping = out[0]
        assert dest == b.node_id and ping["k"] == "p"
        replies = b.handle(a.node_id, ping, 0.01)
        assert len(replies) == 1
        rdest, ack = replies[0]
        assert rdest == a.node_id and ack["k"] == "a"
        a.handle(b.node_id, ack, 0.02)
        assert not a._pending
        # sender learning: b now knows a
        assert b.is_alive(a.node_id)

    def test_unacked_probe_escalates_to_suspicion_then_death(self):
        a = make_core(1, period=1.0, ping_timeout=0.3, suspicion_mult=3.0)
        a.note_member(nid(2))
        a.tick(0.0)  # sends the ping
        a.tick(2.0)  # final deadline passed, no relays available -> suspect
        assert a.state_of(nid(2)) == SUSPECT
        assert not a.is_alive(nid(2))
        a.tick(2.0 + 3.0)  # suspicion window expires
        assert a.state_of(nid(2)) == DEAD
        assert ("dead", nid(2), 0) in a.events

    def test_indirect_probe_relays_verdict_home(self):
        cfg = dict(period=1.0, ping_timeout=0.3, indirect_probes=1)
        a = make_core(1, **cfg)
        relay = make_core(2, **cfg)
        target = make_core(3, **cfg)
        a.note_member(relay.node_id)
        a.note_member(target.node_id)
        out = a.tick(0.0)
        probed = out[0][0]
        other = relay.node_id if probed == target.node_id else target.node_id
        probed_core = target if probed == target.node_id else relay
        relay_core = relay if probed == target.node_id else target
        # The direct ping is "lost"; the direct deadline passes.
        out = a.tick(0.5)
        reqs = [(d, p) for d, p in out if p["k"] == "q"]
        assert reqs and reqs[0][0] == other
        # The relay pings the target on a's behalf...
        pings = relay_core.handle(a.node_id, reqs[0][1], 0.6)
        assert pings and pings[0][0] == probed and pings[0][1]["k"] == "p"
        acks = probed_core.handle(relay_core.node_id, pings[0][1], 0.7)
        # ...and forwards the ack home with the target annotated.
        home = relay_core.handle(probed_core.node_id, acks[0][1], 0.8)
        assert home and home[0][0] == a.node_id
        assert home[0][1]["k"] == "a" and home[0][1]["t"] == str(probed)
        a.handle(relay_core.node_id, home[0][1], 0.9)
        a.tick(1.0)
        assert a.state_of(probed) == ALIVE

    def test_fail_fast_suspects_immediately(self):
        a = make_core(1)
        a.note_member(nid(2))
        a.fail_fast(nid(2), 0.0)
        assert a.state_of(nid(2)) == SUSPECT


# ----------------------------------------------------------------- rumours


class TestRumours:
    def test_refutation_bumps_incarnation(self):
        a = make_core(1)
        a.note_member(nid(2))
        # Someone claims WE are suspect at our current incarnation.
        a.handle(nid(2), {"k": "g", "r": [[str(a.node_id), SUSPECT, 0]]}, 0.0)
        assert a.incarnation == 1
        assert ("refute", a.node_id, 1) in a.events
        # The refutation rumour rides the next packet out.
        pkt = a._packet("p", 99)
        assert [str(a.node_id), ALIVE, 1] in pkt["r"]

    def test_stale_alive_does_not_resurrect(self):
        a = make_core(1)
        a.note_member(nid(2))
        a.handle(nid(3), {"k": "g", "r": [[str(nid(2)), DEAD, 0]]}, 0.0)
        assert a.state_of(nid(2)) == DEAD
        a.handle(nid(4), {"k": "g", "r": [[str(nid(2)), ALIVE, 0]]}, 0.1)
        assert a.state_of(nid(2)) == DEAD
        # ...but a rejoin with a newer incarnation does resurrect.
        a.handle(nid(4), {"k": "g", "r": [[str(nid(2)), ALIVE, 1]]}, 0.2)
        assert a.state_of(nid(2)) == ALIVE

    def test_rumor_budget_decrements_and_expires(self):
        a = make_core(1, piggyback=4)
        for i in range(2, 6):
            a.note_member(nid(i))
        a.announce_join()
        budget = a._rumors._rumors[a.node_id][2]
        assert budget >= 3
        for _ in range(budget):
            assert any(r[0] == str(a.node_id) for r in a._rumors.take(4))
        assert a.node_id not in a._rumors._rumors

    def test_piggyback_prefers_freshest_rumors(self):
        a = make_core(1, piggyback=1)
        a._rumors.put(nid(2), ALIVE, 0, 1)   # nearly spent
        a._rumors.put(nid(3), ALIVE, 0, 5)   # fresh
        taken = a._rumors.take(1)
        assert taken == [[str(nid(3)), ALIVE, 0, ][:3]]

    def test_samples_spread_knowledge_without_rumors(self):
        a, b = make_core(1, sample_size=4), make_core(2, sample_size=4)
        a.note_member(nid(7))
        a.note_member(b.node_id)
        pkt = a._packet("p", 1)
        assert str(nid(7)) in pkt["m"]
        b.handle(a.node_id, pkt, 0.0)
        assert b.is_alive(nid(7))


# ------------------------------------------------------------- bounded view


class TestBoundedView:
    def test_unranked_full_view_refuses_newcomers(self):
        a = make_core(1, max_view=3)
        for i in range(2, 5):
            a.note_member(nid(i))
        a.note_member(nid(9))
        assert not a.is_alive(nid(9))
        assert a.counters["view_overflow"] == 1

    def test_ranked_view_evicts_worst_for_better_newcomer(self):
        ranks = {nid(i): float(i) for i in range(2, 10)}
        core = SwimCore(
            nid(1), SwimConfig(max_view=3), rng=random.Random(1),
            rank=lambda n: ranks[n],
        )
        for i in (5, 6, 7):
            core.note_member(nid(i))
        core.note_member(nid(2))  # rank 2 beats worst rank 7
        assert core.is_alive(nid(2))
        assert not core.is_alive(nid(7))
        assert core.n_alive() == 3
        core.note_member(nid(9))  # rank 9 is worse than everyone
        assert not core.is_alive(nid(9))

    def test_graves_do_not_occupy_view_slots(self):
        a = make_core(1, max_view=3, dead_retention=1000.0)
        for i in range(2, 5):
            a.note_member(nid(i))
        a.handle(nid(2), {"k": "g", "r": [[str(nid(3)), DEAD, 0]]}, 0.0)
        # The grave remembers the death but frees the view slot.
        assert a.state_of(nid(3)) == DEAD
        a.note_member(nid(9))
        assert a.is_alive(nid(9))

    def test_grave_blocks_stale_sample(self):
        a = make_core(1, sample_size=4)
        a.note_member(nid(2))
        a.handle(nid(4), {"k": "g", "r": [[str(nid(3)), DEAD, 0]]}, 0.0)
        # A stale anti-entropy sample naming the dead node is ignored.
        a.handle(nid(2), {"k": "p", "s": 1, "m": [str(nid(3))]}, 0.1)
        assert not a.is_alive(nid(3))
        assert a.state_of(nid(3)) == DEAD

    def test_unknown_dead_rumor_not_regossiped(self):
        a = make_core(1)
        a.note_member(nid(2))
        a.handle(nid(2), {"k": "g", "r": [[str(nid(7)), DEAD, 0]]}, 0.0)
        assert a.state_of(nid(7)) == DEAD
        # Never believed alive -> nothing to tell peers: no re-rumour.
        assert nid(7) not in a._rumors._rumors


# ------------------------------------------------------------------- leave


class TestLeave:
    def test_announce_leave_blasts_left_rumor(self):
        a = make_core(1)
        for i in range(2, 8):
            a.note_member(nid(i))
        out = a.announce_leave(0.0)
        assert out
        for _dest, pkt in out:
            assert pkt["k"] == "g"
            assert [str(a.node_id), LEFT, 1] in pkt["r"]

    def test_left_rumor_removes_member(self):
        a = make_core(1)
        a.note_member(nid(2))
        a.handle(nid(3), {"k": "g", "r": [[str(nid(2)), LEFT, 1]]}, 0.0)
        assert not a.is_alive(nid(2))
        assert ("left", nid(2), 1) in a.events


# ------------------------------------------------------------- determinism


class TestDeterminism:
    def test_same_seed_same_packets(self):
        def run():
            core = SwimCore(
                nid(1), SwimConfig(), rng=random.Random(42), now=0.0
            )
            for i in range(2, 30):
                core.note_member(nid(i))
            trace = []
            for r in range(20):
                trace.append(core.tick(float(r)))
            return trace

        assert run() == run()
