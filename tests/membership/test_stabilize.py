"""Detector/corrector ring repair: pure arithmetic and the live algorithm."""

from __future__ import annotations

from repro.algorithms.stabilize import (
    SelfStabilizingRingAlgorithm,
    ideal_successors,
    plan_repair,
    ring_targets,
)
from repro.core.ids import NodeId
from repro.sim.failure import kill_node
from repro.sim.network import NetworkConfig, SimNetwork


def nid(i: int) -> NodeId:
    return NodeId(f"10.1.0.{i}", 9000)


# ------------------------------------------------------------- pure invariant


class TestRingArithmetic:
    def test_targets_are_clockwise_successors(self):
        nodes = [nid(i) for i in range(8)]
        oracle = ideal_successors(nodes)
        for node in nodes:
            alive = [n for n in nodes if n != node]
            assert ring_targets(node, alive, 1) == [oracle[node]]

    def test_tiny_ring_is_a_clique(self):
        a, b, c = nid(1), nid(2), nid(3)
        assert set(ring_targets(a, [b, c], r=5)) == {b, c}
        assert ring_targets(a, [], r=1) == []

    def test_plan_connects_missing_and_drops_stale(self):
        nodes = [nid(i) for i in range(6)]
        me, alive = nodes[0], nodes[1:]
        succ = ring_targets(me, alive, 1)[0]
        stale = next(n for n in alive if n != succ)
        plan = plan_repair(me, alive, ring_links={stale}, r=1)
        assert not plan.legal
        assert plan.connect == (succ,)
        assert plan.disconnect == (stale,)
        legal = plan_repair(me, alive, ring_links={succ}, r=1)
        assert legal.legal and not legal.connect and not legal.disconnect

    def test_oracle_forms_a_single_cycle(self):
        nodes = [nid(i) for i in range(9)]
        oracle = ideal_successors(nodes)
        seen, cur = set(), nodes[0]
        while cur not in seen:
            seen.add(cur)
            cur = oracle[cur]
        assert seen == set(nodes)


# --------------------------------------------------------------- live repair


def build_ring_net(n: int, seed: int = 1):
    net = SimNetwork(NetworkConfig(seed=seed))
    algorithms = [
        SelfStabilizingRingAlgorithm(seed=seed + i) for i in range(n)
    ]
    for i, algorithm in enumerate(algorithms):
        net.add_node(algorithm, name=f"r{i}")
    net.start()
    return net, algorithms


def assert_ring_converged(net, algorithms):
    alive = [alg.node_id for alg in algorithms]
    oracle = ideal_successors(alive)
    for alg in algorithms:
        assert alg.successor() == oracle[alg.node_id]
        assert oracle[alg.node_id] in net.engine(alg.node_id).downstreams()
        assert alg.ring_legal()


def test_ring_emerges_from_bootstrap_knowledge():
    net, algorithms = build_ring_net(8)
    net.run(20)
    assert_ring_converged(net, algorithms)


def test_ring_reconverges_after_crash():
    net, algorithms = build_ring_net(8)
    net.run(20)
    assert_ring_converged(net, algorithms)
    kill_node(net, "r0")
    survivors = algorithms[1:]
    net.run(25)  # detect the death, then repair around the gap
    assert_ring_converged(net, survivors)


def test_repairs_counted_and_stop_when_legal():
    net, algorithms = build_ring_net(6)
    net.run(20)
    assert all(alg.repairs > 0 for alg in algorithms)
    before = [alg.repairs for alg in algorithms]
    net.run(10)  # stable: the corrector must go quiet
    assert [alg.repairs for alg in algorithms] == before
