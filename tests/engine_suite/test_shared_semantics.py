"""Engine semantics that must behave identically on both backends.

These tests run twice — once against :class:`SimEngine`, once against
:class:`AsyncioEngine` (see ``conftest.py``) — and only touch the API
surface :class:`~repro.core.engine_core.EngineCore` defines.  Before
the shared core existed, several of these behaviours (graceful
``disconnect``, loss counters in status reports, broken-source
broadcast) only worked on one backend.
"""

from __future__ import annotations

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.algorithm import Disposition
from repro.core.ids import NodeId

APP = 7


class RecordingSink(SinkAlgorithm):
    """Sink that records engine notifications for assertions."""

    def __init__(self) -> None:
        super().__init__()
        self.broken_links: list[dict] = []
        self.broken_sources: list[int] = []
        self.measure_replies: list[tuple[NodeId, float, float]] = []

    def on_broken_link(self, msg):
        self.broken_links.append(msg.fields())
        return super().on_broken_link(msg)

    def on_broken_source(self, msg):
        self.broken_sources.append(msg.app)
        return super().on_broken_source(msg)

    def on_measure_reply(self, peer, rtt, send_rate):
        self.measure_replies.append((peer, rtt, send_rate))
        return Disposition.DONE


class HoldingSink(SinkAlgorithm):
    """Keeps every data message (coding-style HOLD disposition)."""

    def __init__(self) -> None:
        super().__init__()
        self.held_msgs = []

    def on_data(self, msg):
        self.received += 1
        self.held_msgs.append(msg)
        return Disposition.HOLD


def test_chain_delivery(cluster):
    """Source -> relay -> sink moves data end to end."""
    a_alg, b_alg, c_alg = CopyForwardAlgorithm(), CopyForwardAlgorithm(), SinkAlgorithm()
    a, b, c = (cluster.add_node(alg) for alg in (a_alg, b_alg, c_alg))
    cluster.start()
    a_alg.set_downstreams([b.node_id])
    b_alg.set_downstreams([c.node_id])
    cluster.connect(a, b)
    cluster.connect(b, c)
    a.start_source(app=APP, payload_size=1000)
    cluster.settle(0.6)
    assert b_alg.received > 0
    assert c_alg.received > 0


def test_status_report_surface(cluster):
    """Both backends report the same status fields to the observer."""
    src_alg, sink_alg = CopyForwardAlgorithm(), SinkAlgorithm()
    src, sink = cluster.add_node(src_alg), cluster.add_node(sink_alg)
    cluster.start()
    src_alg.set_downstreams([sink.node_id])
    cluster.connect(src, sink)
    src.start_source(app=APP, payload_size=500)
    cluster.settle(0.4)
    for engine in (src, sink):
        fields = engine._status_report().fields()
        assert set(fields) == {
            "node", "upstreams", "downstreams", "recv_buffers", "send_buffers",
            "recv_rates", "send_rates", "lost_messages", "lost_bytes", "apps",
            "queues",
        }, f"status surface diverged on {cluster.backend}"
        queues = fields["queues"]
        assert set(queues) == {"recv", "send", "total_messages", "total_bytes"}
        for depth_bytes in queues["recv"].values():
            depth, nbytes = depth_bytes
            assert depth >= 0 and nbytes >= 0
    assert str(sink.node_id) in src._status_report().fields()["downstreams"]
    assert APP in src._status_report().fields()["apps"]
    # the relay learned the app from traffic, not from deployment
    assert APP in sink._status_report().fields()["apps"]


def test_graceful_disconnect_is_locally_silent(cluster):
    """disconnect() removes the link without a local BROKEN_LINK.

    Historically sim-only; now EngineCore guarantees it on both backends.
    """
    src_alg, sink_alg = RecordingSink(), SinkAlgorithm()
    src, sink = cluster.add_node(src_alg), cluster.add_node(sink_alg)
    cluster.start()
    src_alg.set_downstreams([sink.node_id])
    cluster.connect(src, sink)
    src.start_source(app=APP, payload_size=500)
    cluster.settle(0.3)
    assert sink.node_id in src.downstreams()
    src.stop_source(APP)
    cluster.settle(0.1)
    src.disconnect(sink.node_id)
    cluster.settle(0.2)
    assert sink.node_id not in src.downstreams()
    assert src_alg.broken_links == [], (
        f"{cluster.backend} raised BROKEN_LINK on graceful disconnect"
    )


def test_stop_source_broadcasts_broken_source(cluster):
    src_alg, sink_alg = CopyForwardAlgorithm(), RecordingSink()
    src, sink = cluster.add_node(src_alg), cluster.add_node(sink_alg)
    cluster.start()
    src_alg.set_downstreams([sink.node_id])
    cluster.connect(src, sink)
    src.start_source(app=APP, payload_size=500)
    cluster.settle(0.3)
    assert sink_alg.received > 0
    src.stop_source(APP)
    cluster.settle(0.3)
    assert APP in sink_alg.broken_sources


def test_hold_disposition_counts_on_the_port(cluster):
    """HOLD keeps messages with the algorithm and is visible per-port."""
    src_alg, hold_alg = CopyForwardAlgorithm(), HoldingSink()
    src, holder = cluster.add_node(src_alg), cluster.add_node(hold_alg)
    cluster.start()
    src_alg.set_downstreams([holder.node_id])
    cluster.connect(src, holder)
    src.start_source(app=APP, payload_size=200)
    cluster.settle(0.4)
    assert hold_alg.received > 0
    assert len(hold_alg.held_msgs) == hold_alg.received
    held_total = sum(port.held for port in holder._scheduler.ports_view())
    assert held_total == hold_alg.received


def test_measure_round_trip(cluster):
    """measure() produces MEASURE_REPLY with the probed peer and an RTT."""
    probe_alg, echo_alg = RecordingSink(), SinkAlgorithm()
    prober, echoer = cluster.add_node(probe_alg), cluster.add_node(echo_alg)
    cluster.start()
    cluster.connect(prober, echoer)
    prober.measure(echoer.node_id)
    cluster.settle(0.3)
    assert len(probe_alg.measure_replies) == 1
    peer, rtt, send_rate = probe_alg.measure_replies[0]
    assert peer == echoer.node_id
    assert rtt >= 0.0
    assert send_rate >= 0.0
