"""Backpressure routing semantics, identical on both backends.

The same scenario runs on the discrete-event and the asyncio backend
(parametrized via the shared ``cluster`` fixture) and must deliver the
*byte-identical* message set: injected payloads are pure functions of
``(commodity, seq, size)``, so the sink's order-independent digest is
computable up front and both backends are held to it.

The broken-link case exercises re-routing through the existing failure
ladder: killing a relay mid-run tears its links (BROKEN_LINK on both
backends), the source forgets the dead neighbor's backlog view, and
traffic keeps flowing over the surviving path.
"""

from __future__ import annotations

import hashlib

from repro.algorithms.routing import BackpressureRoutingAlgorithm, routing_payload
from repro.algorithms.routing.algorithm import _combined

APP = 7
APP_B = 8
SIZE = 256


def expected_digest(commodity: int, total: int, size: int = SIZE) -> str:
    """The digest a sink must hold after consuming seq 0..total-1."""
    parts = {
        f"{commodity}#{seq}":
            hashlib.sha256(routing_payload(commodity, seq, size)).hexdigest()
        for seq in range(total)
    }
    return _combined(parts)


def settle_until(cluster, predicate, total: float = 12.0, step: float = 0.25) -> bool:
    waited = 0.0
    while waited < total:
        cluster.settle(step)
        waited += step
        if predicate():
            return True
    return predicate()


def test_backpressure_chain_byte_identical(cluster):
    """source -> relay -> sink delivers every injected byte, exactly."""
    total = 40
    src_alg = BackpressureRoutingAlgorithm(
        inject={APP: {"count": 2, "size": SIZE, "total": total}}, inject_tick=0.05,
    )
    relay_alg = BackpressureRoutingAlgorithm()
    sink_alg = BackpressureRoutingAlgorithm()
    src, relay, sink = (
        cluster.add_node(alg) for alg in (src_alg, relay_alg, sink_alg)
    )
    cluster.start()
    # sinks are set post-start: the asyncio backend only binds node
    # identities (ip:port) when the engine starts
    for alg in (src_alg, relay_alg, sink_alg):
        alg.set_sink(APP, sink.node_id)
    cluster.connect(src, relay)
    cluster.connect(relay, sink)
    assert settle_until(cluster, lambda: sink_alg.delivered.get(APP, 0) >= total)
    assert sink_alg.delivered[APP] == total
    assert sink_alg.digest(APP) == expected_digest(APP, total)
    # the relay held and re-dispatched (stateful routing, not copy-forward)
    assert relay_alg.core.dispatched > 0
    # backlogs fully drained end to end
    assert src_alg.core.total_backlog() == 0
    assert relay_alg.core.total_backlog() == 0


def test_multi_commodity_diamond_byte_identical(cluster):
    """Two commodities share a diamond; each reaches only its own sink."""
    total = 30
    s_alg = BackpressureRoutingAlgorithm(
        inject={
            APP: {"count": 2, "size": SIZE, "total": total},
            APP_B: {"count": 2, "size": SIZE, "total": total},
        },
        inject_tick=0.05,
    )
    a_alg = BackpressureRoutingAlgorithm()
    b_alg = BackpressureRoutingAlgorithm()
    t_alg = BackpressureRoutingAlgorithm()
    u_alg = BackpressureRoutingAlgorithm()
    s, a, b, t, u = (
        cluster.add_node(alg) for alg in (s_alg, a_alg, b_alg, t_alg, u_alg)
    )
    cluster.start()
    for alg in (s_alg, a_alg, b_alg, t_alg, u_alg):
        alg.set_sink(APP, t.node_id)
        alg.set_sink(APP_B, u.node_id)
    # s fans out to both relays; both relays reach both sinks
    for upstream, downstream in (
        (s, a), (s, b), (a, t), (b, t), (a, u), (b, u),
    ):
        cluster.connect(upstream, downstream)
    assert settle_until(
        cluster,
        lambda: t_alg.delivered.get(APP, 0) >= total
        and u_alg.delivered.get(APP_B, 0) >= total,
    )
    assert t_alg.delivered[APP] == total
    assert u_alg.delivered[APP_B] == total
    # no cross-delivery: each sink consumed only its own commodity
    assert APP_B not in t_alg.delivered
    assert APP not in u_alg.delivered
    assert t_alg.digest(APP) == expected_digest(APP, total)
    assert u_alg.digest(APP_B) == expected_digest(APP_B, total)


def test_broken_link_reroutes_over_surviving_path(cluster):
    """Killing one relay re-routes traffic through the failure ladder."""
    src_alg = BackpressureRoutingAlgorithm(
        inject={APP: {"count": 2, "size": SIZE}}, inject_tick=0.05,
    )
    r1_alg = BackpressureRoutingAlgorithm()
    r2_alg = BackpressureRoutingAlgorithm()
    sink_alg = BackpressureRoutingAlgorithm()
    src, r1, r2, sink = (
        cluster.add_node(alg) for alg in (src_alg, r1_alg, r2_alg, sink_alg)
    )
    cluster.start()
    for alg in (src_alg, r1_alg, r2_alg, sink_alg):
        alg.set_sink(APP, sink.node_id)
    for upstream, downstream in ((src, r1), (src, r2), (r1, sink), (r2, sink)):
        cluster.connect(upstream, downstream)
    # let traffic flow over both paths first
    assert settle_until(cluster, lambda: sink_alg.delivered.get(APP, 0) >= 20)
    r1_label = str(r1.node_id)
    assert r1_label in src_alg.core.neighbors()
    cluster.kill(r1)
    # the ladder tears the links; the source forgets the dead neighbor
    assert settle_until(
        cluster, lambda: r1_label not in src_alg.core.neighbors()
    ), "source never observed the relay's death"
    delivered_at_kill = sink_alg.delivered.get(APP, 0)
    # traffic keeps flowing over the surviving relay
    assert settle_until(
        cluster,
        lambda: sink_alg.delivered.get(APP, 0) >= delivered_at_kill + 20,
    ), "no re-routed delivery after the relay died"
    assert str(r2.node_id) in src_alg.core.neighbors()
