"""Chord lookup correctness under churn, on both backends.

The integration suite proves Chord converges on a quiet simulated
network; these tests crash and add nodes *mid-run* and require that
lookups issued afterwards still resolve to the node the ring arithmetic
says owns the key — on the DES backend and on real asyncio engines
(VirtualHost) alike.  Everything is seeded, so the sim leg is exactly
reproducible and the net leg differs only in timing.
"""

from __future__ import annotations

from repro.algorithms.dht import ChordAlgorithm, ring

SEED = 11
STABILIZE = 0.25


def build_chord(cluster, n, seed=SEED):
    """Start ``n`` Chord nodes and hand every one the full host list.

    The net driver's VirtualHost has no observer, so there is no
    bootstrap reply; seeding ``known_hosts`` by hand and invoking the
    bootstrap hook keeps one code path for both backends (on sim the
    observer's own BOOT_REPLY is a no-op once ``_joined`` is set).
    """
    algorithms = [
        ChordAlgorithm(stabilize_interval=STABILIZE, seed=seed + i)
        for i in range(n)
    ]
    engines = [cluster.add_node(alg) for alg in algorithms]
    cluster.start()
    cluster.settle(0.1)  # let on_start run so node hashes and timers exist
    ids = [engine.node_id for engine in engines]
    # Symmetry break: if every node bootstraps with a full host list at
    # once, each waits to join some existing ring and none ever forms
    # the ring of one (the observer avoids this naturally by answering
    # the first BOOT with an empty list).  Node 0 bootstraps alone.
    algorithms[0].on_bootstrapped()
    for alg in algorithms:
        for node_id in ids:
            if node_id != alg.node_id:
                alg.known_hosts.add(node_id)
        if alg is not algorithms[0]:
            alg.on_bootstrapped()
    return algorithms, engines


def settle_until(cluster, predicate, step=0.4, max_steps=50):
    for _ in range(max_steps):
        if predicate():
            return True
        cluster.settle(step)
    return predicate()


def ring_is_consistent(algorithms):
    """Successor pointers form one cycle covering every node, and every
    predecessor pointer agrees with that cycle.  Predecessors matter for
    correctness, not just liveness: a node answers "I own this key" by
    testing the key against its *predecessor*, so a stale predecessor
    makes lookups resolve to the wrong owner even while the successor
    cycle already looks healed."""
    by_id = {alg.node_id: alg for alg in algorithms}
    start = algorithms[0]
    seen = []
    current = start
    for _ in range(len(algorithms) + 1):
        seen.append(current.node_id)
        if current.successor is None:
            return False
        nxt = by_id.get(current.successor)
        if nxt is None or nxt.predecessor != current.node_id:
            return False
        current = nxt
        if current is start:
            break
    return len(set(seen)) == len(algorithms)


def oracle_owner(key_id, algorithms):
    """The node the ring arithmetic says owns ``key_id``."""
    ordered = sorted(algorithms, key=lambda a: a.ring_position())
    for i, alg in enumerate(ordered):
        pred = ordered[i - 1].ring_position()
        if ring.in_open_closed(key_id, pred, alg.ring_position()):
            return alg
    return ordered[0]


def resolved_lookup(cluster, alg, key, attempts=6):
    """Issue ``lookup`` until it resolves (a request routed through a
    not-yet-pruned dead finger simply evaporates; retrying after the
    next stabilization round is the protocol's own recovery story)."""
    for _ in range(attempts):
        request = alg.lookup(key)
        settle_until(cluster, lambda: request in alg.results, max_steps=10)
        if request in alg.results:
            return alg.results[request]
    return None


def test_lookups_route_to_live_owner_after_crashes(cluster):
    algorithms, engines = build_chord(cluster, n=6)
    assert settle_until(cluster, lambda: ring_is_consistent(algorithms)), (
        f"initial ring never converged on {cluster.backend}"
    )

    # Crash the two nodes highest on the ring — deterministic given the
    # seeds, and adjacent arcs are the worst case for successor repair.
    order = sorted(range(len(algorithms)), key=lambda i: algorithms[i].ring_position())
    doomed = set(order[-2:])
    for i in doomed:
        cluster.kill(engines[i])
    survivors = [alg for i, alg in enumerate(algorithms) if i not in doomed]

    assert settle_until(cluster, lambda: ring_is_consistent(survivors)), (
        f"ring never re-converged after crashes on {cluster.backend}"
    )

    for origin in survivors:
        for k in range(4):
            key = f"probe-{k}"
            result = resolved_lookup(cluster, origin, key)
            assert result is not None, (
                f"lookup {key!r} from {origin.node_id} never resolved"
            )
            expected = oracle_owner(ring.hash_to_id(key), survivors)
            assert result.owner == expected.node_id, (
                f"{key!r} resolved to {result.owner}, ring arithmetic "
                f"says {expected.node_id} ({cluster.backend})"
            )


def test_stored_keys_survive_when_owner_survives(cluster):
    algorithms, engines = build_chord(cluster, n=6)
    assert settle_until(cluster, lambda: ring_is_consistent(algorithms))

    keys = [f"item-{i}" for i in range(16)]
    for i, key in enumerate(keys):
        algorithms[i % len(algorithms)].put(key, key.upper())
    cluster.settle(1.0)

    victim = sorted(range(len(algorithms)),
                    key=lambda i: algorithms[i].ring_position())[0]
    cluster.kill(engines[victim])
    survivors = [alg for i, alg in enumerate(algorithms) if i != victim]
    assert settle_until(cluster, lambda: ring_is_consistent(survivors))

    # Without replication the crashed node's arc is lost; every key whose
    # owner is the same surviving node before and after the crash must
    # still be served.
    checked = 0
    reader = survivors[0]
    for key in keys:
        key_id = ring.hash_to_id(key)
        before = oracle_owner(key_id, algorithms)
        after = oracle_owner(key_id, survivors)
        if before is not after:
            continue
        checked += 1
        for _ in range(4):
            request = reader.get(key)
            settle_until(
                cluster,
                lambda: reader.results.get(request) is not None
                and reader.results[request].found,
                max_steps=8,
            )
            if reader.results.get(request) is not None and reader.results[request].found:
                break
        result = reader.results[request]
        assert result.found and result.value == key.upper(), (
            f"{key!r} lost although its owner {after.node_id} survived "
            f"({cluster.backend})"
        )
    assert checked > 0, "seeded key set never exercised a surviving owner"


def test_join_during_churn_lands_in_a_correct_ring(cluster):
    algorithms, engines = build_chord(cluster, n=5)
    assert settle_until(cluster, lambda: ring_is_consistent(algorithms))

    # One node crashes while another is joining — the overlapping repair
    # and join must both resolve.
    victim = sorted(range(len(algorithms)),
                    key=lambda i: algorithms[i].ring_position())[-1]
    cluster.kill(engines[victim])
    survivors = [alg for i, alg in enumerate(algorithms) if i != victim]

    newcomer = ChordAlgorithm(stabilize_interval=STABILIZE, seed=SEED + 99)
    cluster.add_late_node(newcomer)
    cluster.settle(0.1)
    for alg in survivors:
        newcomer.known_hosts.add(alg.node_id)
    newcomer.on_bootstrapped()

    everyone = survivors + [newcomer]
    assert settle_until(cluster, lambda: ring_is_consistent(everyone)), (
        f"join during churn never converged on {cluster.backend}"
    )
    for k in range(4):
        key = f"late-{k}"
        result = resolved_lookup(cluster, newcomer, key)
        assert result is not None
        expected = oracle_owner(ring.hash_to_id(key), everyone)
        assert result.owner == expected.node_id
