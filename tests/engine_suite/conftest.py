"""Parametrizes every test in this package over both engine backends.

The CI backend-parity matrix sets ``IOVERLAY_BACKEND=sim`` or ``=net``
to run one leg per job; locally (unset) each test runs against both.
"""

import os

import pytest

from tests.engine_suite.drivers import NetCluster, SimCluster

BACKENDS = ("sim", "net")


def pytest_generate_tests(metafunc):
    if "backend_name" in metafunc.fixturenames:
        only = os.environ.get("IOVERLAY_BACKEND", "")
        selected = [b for b in BACKENDS if only in ("", b)]
        if not selected:
            raise pytest.UsageError(
                f"IOVERLAY_BACKEND={only!r} matches no backend in {BACKENDS}"
            )
        metafunc.parametrize("backend_name", selected)


@pytest.fixture
def cluster(backend_name):
    driver = SimCluster() if backend_name == "sim" else NetCluster()
    try:
        yield driver
    finally:
        driver.close()
