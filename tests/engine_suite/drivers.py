"""Backend drivers for the shared engine-semantics suite.

Both drivers expose the same synchronous facade so one body of tests
exercises :class:`~repro.core.engine_core.EngineCore` semantics through
both backends:

* :class:`SimCluster` — engines under the discrete-event kernel;
  ``settle`` advances virtual time (instant in wall-clock terms).
* :class:`NetCluster` — real :class:`AsyncioEngine` instances packed on
  a :class:`~repro.net.virtual.VirtualHost` (zero-copy loopback links,
  no sockets for co-hosted pairs); ``settle`` runs the event loop for
  that many wall-clock seconds.

Tests receive engine objects and talk to the shared EngineCore API
(``start_source``, ``disconnect``, ``measure``, ``_status_report`` ...)
— anything used here must exist identically on both backends.
"""

from __future__ import annotations

import asyncio

from repro.net.engine import NetEngineConfig
from repro.net.virtual import VirtualHost
from repro.sim.engine import EngineConfig
from repro.sim.network import SimNetwork

#: short enough that the net leg stays fast, long enough for reports
REPORT_INTERVAL = 0.2


class SimCluster:
    """Shared-suite driver over the simulation backend."""

    backend = "sim"

    def __init__(self) -> None:
        self.net = SimNetwork()
        self._engines = []

    def add_node(self, algorithm):
        node_id = self.net.add_node(
            algorithm, config=EngineConfig(report_interval=REPORT_INTERVAL)
        )
        engine = self.net.engine(node_id)
        self._engines.append(engine)
        return engine

    def start(self) -> None:
        self.net.start()

    def connect(self, src, dst) -> None:
        assert src.connect(dst.node_id)

    def settle(self, seconds: float) -> None:
        """Advance time until the cluster has processed its backlog."""
        self.net.run(seconds)

    def kill(self, engine) -> None:
        """Crash one node; peers observe BROKEN_LINK on their next send."""
        engine.terminate()

    def add_late_node(self, algorithm):
        """Add (and start) a node while the cluster is already running."""
        node_id = self.net.add_node(
            algorithm, config=EngineConfig(report_interval=REPORT_INTERVAL)
        )
        engine = self.net.engine(node_id)
        self._engines.append(engine)
        return engine

    def close(self) -> None:
        for engine in self._engines:
            if engine.running:
                engine.terminate()


class NetCluster:
    """Shared-suite driver over the asyncio backend (virtual-hosted)."""

    backend = "net"

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.host = VirtualHost()
        self._started = False

    def add_node(self, algorithm):
        return self.host.add_node(
            algorithm, config=NetEngineConfig(report_interval=REPORT_INTERVAL)
        )

    def start(self) -> None:
        self.loop.run_until_complete(self.host.start())
        self._started = True

    def connect(self, src, dst) -> None:
        assert self.loop.run_until_complete(src.connect(dst.node_id))

    def settle(self, seconds: float) -> None:
        self.loop.run_until_complete(asyncio.sleep(seconds))

    def kill(self, engine) -> None:
        """Take one node down mid-run; its links tear and peers see
        BROKEN_LINK, the same signal a process crash produces."""
        self.loop.run_until_complete(self.host.stop_node(engine))

    def add_late_node(self, algorithm):
        """Add (and start) a node while the cluster is already running."""
        engine = self.host.add_node(
            algorithm, config=NetEngineConfig(report_interval=REPORT_INTERVAL)
        )
        self.loop.run_until_complete(self.host.start_node(engine))
        return engine

    def close(self) -> None:
        try:
            if self._started:
                self.loop.run_until_complete(self.host.stop())
        finally:
            self.loop.close()
            asyncio.set_event_loop(None)
