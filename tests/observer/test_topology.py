"""Unit tests for topology snapshots (degree, tree check, DOT export)."""

from repro.core.ids import CONTROL_APP, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.observer.status import NodeStatus
from repro.observer.topology import TopologySnapshot

N = [NodeId("10.0.0.1", 7000 + i) for i in range(5)]


def status(node, downstreams, rates=None):
    msg = Message.with_fields(
        MsgType.STATUS, node, CONTROL_APP,
        node=str(node),
        downstreams=[str(d) for d in downstreams],
        send_rates={str(d): (rates or {}).get(d, 0.0) for d in downstreams},
    )
    return NodeStatus.from_message(msg, received_at=0.0)


def tree_snapshot():
    # N0 -> N1, N0 -> N2, N1 -> N3, N1 -> N4
    return TopologySnapshot({
        N[0]: status(N[0], [N[1], N[2]], rates={N[1]: 100.0, N[2]: 200.0}),
        N[1]: status(N[1], [N[3], N[4]]),
        N[2]: status(N[2], []),
        N[3]: status(N[3], []),
        N[4]: status(N[4], []),
    })


def test_degrees():
    topo = tree_snapshot()
    assert topo.out_degree(N[0]) == 2 and topo.in_degree(N[0]) == 0
    assert topo.degree(N[1]) == 3  # one parent + two children
    assert topo.degree(N[3]) == 1


def test_children_and_parents():
    topo = tree_snapshot()
    assert topo.children(N[0]) == [N[1], N[2]]
    assert topo.parents(N[3]) == [N[1]]


def test_is_tree_rooted_at():
    topo = tree_snapshot()
    assert topo.is_tree_rooted_at(N[0])
    assert not topo.is_tree_rooted_at(N[1])


def test_cycle_is_not_a_tree():
    topo = TopologySnapshot({
        N[0]: status(N[0], [N[1]]),
        N[1]: status(N[1], [N[0]]),
    })
    assert not topo.is_tree_rooted_at(N[0])


def test_disconnected_graph_is_not_a_tree():
    topo = TopologySnapshot({
        N[0]: status(N[0], [N[1]]),
        N[1]: status(N[1], []),
        N[2]: status(N[2], []),  # unreachable and parentless
    })
    assert not topo.is_tree_rooted_at(N[0])


def test_dot_export_contains_every_edge_and_label():
    topo = tree_snapshot()
    dot = topo.to_dot(labels={N[0]: "source"})
    assert dot.startswith("digraph")
    assert '"10.0.0.1:7000" -> "10.0.0.1:7001"' in dot
    assert 'label="source"' in dot
    assert "0.1 KB/s" in dot  # the 100 B/s edge


def test_edge_list_is_sorted_and_stringified():
    topo = tree_snapshot()
    edges = topo.to_edge_list()
    assert edges == sorted(edges)
    assert edges[0][0] == "10.0.0.1:7000"
