"""Unit tests for the transport-agnostic observer core."""

import pytest

from repro.core.ids import CONTROL_APP, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.observer.observer import Observer

N = [NodeId("10.0.0.1", 7000 + i) for i in range(12)]


class StubTransport:
    def __init__(self):
        self.sent = []
        self.clock = 0.0

    def observer_send(self, node, msg):
        self.sent.append((node, msg))

    def observer_now(self):
        return self.clock


@pytest.fixture
def observer():
    return Observer(StubTransport(), bootstrap_fanout=3, seed=0)


def boot(node):
    return Message.with_fields(MsgType.BOOT, node, CONTROL_APP, node=str(node))


def test_boot_registers_and_replies_with_subset(observer):
    transport = observer._transport
    for node in N[:5]:
        observer.on_message(boot(node))
    assert list(observer.alive) == N[:5]
    # The first booter got an empty host list, later ones get peers.
    first_dest, first_reply = transport.sent[0]
    assert first_dest == N[0]
    assert first_reply.fields()["hosts"] == []
    last_dest, last_reply = transport.sent[4]
    hosts = last_reply.fields()["hosts"]
    assert 1 <= len(hosts) <= 3  # fanout-bounded
    assert str(N[4]) not in hosts  # never includes the requester


def test_boot_is_idempotent(observer):
    observer.on_message(boot(N[0]))
    observer.on_message(boot(N[0]))
    assert list(observer.alive) == [N[0]]
    assert observer.boot_count == 2


def test_status_parsed_and_stored(observer):
    observer._transport.clock = 12.5
    status = Message.with_fields(
        MsgType.STATUS, N[0], CONTROL_APP,
        node=str(N[0]),
        upstreams=[str(N[1])],
        downstreams=[str(N[2])],
        recv_buffers={str(N[1]): 3},
        send_buffers={str(N[2]): 4},
        recv_rates={str(N[1]): 1000.0},
        send_rates={str(N[2]): 2000.0},
        apps=[1, 2],
    )
    observer.on_message(status)
    stored = observer.statuses[N[0]]
    assert stored.received_at == 12.5
    assert stored.upstreams == [N[1]]
    assert stored.downstreams == [N[2]]
    assert stored.total_buffered == 7
    assert stored.apps == [1, 2]


def test_trace_recorded_with_time_and_node(observer):
    observer._transport.clock = 3.0
    observer.on_message(Message(MsgType.TRACE, N[0], 7, b"something happened"))
    records = list(observer.traces)
    assert len(records) == 1
    assert records[0].time == 3.0
    assert records[0].node == N[0]
    assert records[0].app == 7
    assert records[0].text == "something happened"


def test_unknown_message_types_ignored(observer):
    observer.on_message(Message(9999, N[0], 0, b""))
    assert not observer.alive and not observer.statuses


def test_poll_all_requests_every_alive_node(observer):
    for node in N[:4]:
        observer.on_message(boot(node))
    observer._transport.sent.clear()
    count = observer.poll_all()
    assert count == 4
    requests = [(dest, msg) for dest, msg in observer._transport.sent]
    assert {dest for dest, _ in requests} == set(N[:4])
    assert all(msg.type == MsgType.REQUEST for _, msg in requests)


def test_mark_down_forgets_node(observer):
    observer.on_message(boot(N[0]))
    observer.mark_down(N[0])
    assert N[0] not in observer.alive
    observer.mark_down(N[0])  # idempotent


def test_control_panel_message_shapes(observer):
    transport = observer._transport
    observer.deploy_source(N[0], app=4, payload_size=1000)
    observer.terminate_source(N[0], app=4)
    observer.terminate_node(N[0])
    observer.connect(N[0], N[1])
    observer.disconnect(N[0], N[1])
    observer.set_node_bandwidth(N[0], "up", 1000.0)
    observer.set_link_bandwidth(N[0], N[1], 2000.0)
    observer.send_control(N[0], type_=9, param1=1, param2=2)
    types = [msg.type for _, msg in transport.sent]
    assert types == [
        MsgType.S_DEPLOY, MsgType.S_TERMINATE, MsgType.TERMINATE,
        MsgType.CONNECT, MsgType.DISCONNECT, MsgType.SET_BANDWIDTH,
        MsgType.SET_BANDWIDTH, MsgType.CONTROL,
    ]
    control = transport.sent[-1][1].fields()
    assert (control["type"], control["param1"], control["param2"]) == (9, 1, 2)


def test_bandwidth_category_validated(observer):
    with pytest.raises(ValueError):
        observer.set_node_bandwidth(N[0], "sideways", 1.0)


def test_topology_snapshot_from_statuses(observer):
    for node, downstream in [(N[0], N[1]), (N[1], N[2])]:
        observer.on_message(Message.with_fields(
            MsgType.STATUS, node, CONTROL_APP,
            node=str(node), downstreams=[str(downstream)],
            send_rates={str(downstream): 5000.0},
        ))
    topology = observer.topology()
    assert [(e.src, e.dst) for e in topology.edges] == [(N[0], N[1]), (N[1], N[2])]
    assert topology.edges[0].rate == 5000.0


# ------------------------------------------------------ trace-id determinism

def test_trace_log_ids_identical_across_backends(tmp_path):
    """The determinism guard covers cross-worker traces (satellite fix).

    The same logical data message traced about on the simulator backend
    (message delivered by reference) and on the net backend (TRACE frame
    re-decoded from wire bytes) must land in the TraceLog with the
    identical wire-propagated trace id, and incremental dump_jsonl must
    write byte-identical lines on both.
    """
    from repro.telemetry.tracing import trace_id

    data = Message(MsgType.DATA, N[3], 4, b"x" * 16, seq=9)
    traced = Message.with_fields(
        MsgType.TRACE, N[0], 4, text="relayed", trace_id=trace_id(data)
    )

    sim_observer = Observer(StubTransport(), seed=0)
    net_observer = Observer(StubTransport(), seed=0)
    sim_observer._transport.clock = 5.0
    net_observer._transport.clock = 5.0
    sim_observer.on_message(traced)                              # by reference
    net_observer.on_message(Message.unpack(traced.pack()))       # off the wire

    tid = f"{N[3]}/4#9"
    assert trace_id(data) == tid
    for obs in (sim_observer, net_observer):
        records = obs.traces.for_trace(tid)
        assert len(records) == 1
        assert records[0].text == "relayed"
        assert records[0].node == N[0]

    sim_path = tmp_path / "sim.jsonl"
    net_path = tmp_path / "net.jsonl"
    assert sim_observer.traces.dump_jsonl(sim_path) == 1
    assert net_observer.traces.dump_jsonl(net_path) == 1
    assert sim_path.read_text() == net_path.read_text()
    # Incremental: a second dump writes only what arrived in between.
    sim_observer._transport.clock = 6.0
    net_observer._transport.clock = 6.0
    follow_up = Message.with_fields(
        MsgType.TRACE, N[1], 4, text="delivered", trace_id=trace_id(data)
    )
    sim_observer.on_message(follow_up)
    net_observer.on_message(Message.unpack(follow_up.pack()))
    assert sim_observer.traces.dump_jsonl(sim_path) == 1
    assert net_observer.traces.dump_jsonl(net_path) == 1
    assert sim_path.read_text() == net_path.read_text()
    import json

    ids = [json.loads(line)["trace_id"]
           for line in sim_path.read_text().splitlines()]
    assert ids == [tid, tid]


def test_plain_text_trace_has_no_trace_id(observer):
    observer.on_message(Message(MsgType.TRACE, N[0], 1, b"free-form note"))
    assert len(observer.traces) == 1
    record = next(iter(observer.traces))
    assert record.text == "free-form note"
    assert record.trace_id == ""
