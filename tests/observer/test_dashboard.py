"""Tests for the headless observer dashboard."""

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.observer.dashboard import (
    render_dashboard,
    render_edges,
    render_metrics,
    render_nodes,
    render_tree,
)
from repro.sim.network import NetworkConfig, SimNetwork
from repro.telemetry import Telemetry

KB = 1000.0


def build_running_net():
    net = SimNetwork()
    src_alg, mid_alg, sink = CopyForwardAlgorithm(), CopyForwardAlgorithm(), SinkAlgorithm()
    src = net.add_node(src_alg, name="S", bandwidth=BandwidthSpec(total=100 * KB))
    mid = net.add_node(mid_alg, name="M")
    dst = net.add_node(sink, name="D")
    src_alg.set_downstreams([mid])
    mid_alg.set_downstreams([dst])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(6)
    labels = {node: name for name, node in net.names.items()}
    return net, labels, (src, mid, dst)


def test_render_nodes_has_rates_and_apps():
    net, labels, _ = build_running_net()
    text = render_nodes(net.observer, labels)
    assert "S" in text and "M" in text and "D" in text
    assert "1" in text  # the deployed app id
    # Source pushes ~100 KB/s out.
    source_line = next(line for line in text.splitlines() if line.startswith("S "))
    assert "10" in source_line


def test_render_edges_lists_links():
    net, labels, _ = build_running_net()
    text = render_edges(net.observer, labels)
    assert "S -> M" in text
    assert "M -> D" in text
    assert "KB/s" in text


def test_render_tree_ascii_shape():
    net, labels, (src, mid, dst) = build_running_net()
    text = render_tree(net.observer.topology(), src, labels)
    lines = text.splitlines()
    assert lines[0] == "S"
    assert any("`-- M" in line for line in lines)
    assert any("`-- D" in line for line in lines)


def test_render_tree_falls_back_on_non_tree():
    net, labels, (src, mid, dst) = build_running_net()
    # Ask for a tree rooted at the sink: not a tree from there.
    text = render_tree(net.observer.topology(), dst, labels)
    assert "->" in text  # edge-list fallback


def test_full_dashboard_includes_traces():
    net, labels, (src, _, _) = build_running_net()
    algorithm = net.engine(src).algorithm
    algorithm.trace("checkpoint reached")
    net.run(1)
    text = render_dashboard(net.observer, labels, root=src)
    assert "== nodes ==" in text
    assert "== overlay links ==" in text
    assert "== dissemination tree ==" in text
    assert "checkpoint reached" in text


def test_dashboard_with_no_statuses_yet():
    net = SimNetwork()
    net.add_node(SinkAlgorithm(), name="lonely")
    net.start()
    net.run(0.1)  # booted, but not polled yet
    text = render_dashboard(net.observer)
    assert "(no links reported)" in text


def test_render_nodes_dead_node_placeholder_row():
    net, labels, _ = build_running_net()
    # A node that booted but never reported status renders a dash row.
    from repro.core.ids import NodeId

    ghost = NodeId("10.9.9.9", 7000)
    net.observer.alive.setdefault(ghost, None)
    labels = dict(labels)
    labels[ghost] = "ghost"
    text = render_nodes(net.observer, labels)
    ghost_line = next(line for line in text.splitlines() if line.startswith("ghost"))
    assert ghost_line.split()[1:] == ["-", "-", "-", "-"]


def test_render_tree_handles_dead_subtree():
    net, labels, (src, mid, dst) = build_running_net()
    # Terminate the sink: it must vanish from the rendering, whether the
    # remaining graph still qualifies as a tree or falls back to edges.
    net.observer.terminate_node(dst)
    net.run(3)
    text = render_tree(net.observer.topology(), src, labels)
    assert "D" not in text
    assert "S" in text and "M" in text


def test_render_metrics_panel_totals():
    telemetry = Telemetry()
    net = SimNetwork(NetworkConfig(telemetry=telemetry))
    src_alg, sink = CopyForwardAlgorithm(), SinkAlgorithm()
    src = net.add_node(src_alg, name="S", bandwidth=BandwidthSpec(total=100 * KB))
    dst = net.add_node(sink, name="D")
    src_alg.set_downstreams([dst])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(6)
    text = render_metrics(net.observer)
    header, *rows = text.splitlines()
    assert "metric" in header and "total" in header
    assert "p50" in header and "p99" in header
    rounds = next(r for r in rows if "switch_rounds_total" in r)
    # counter rows: numeric total, dash percentiles
    assert int(rounds.split()[-3]) > 0
    assert rounds.split()[-2:] == ["-", "-"]
    # histogram rows carry interpolated percentiles within bucket range
    hist = next(r for r in rows if "queue_wait_seconds" in r)
    p50, p99 = (float(v) for v in hist.split()[-2:])
    assert 0.0 <= p50 <= p99
    # limit trims the table deterministically (sorted by name).
    assert len(render_metrics(net.observer, limit=2).splitlines()) == 3
