"""The robustness extension's backend-parity run.

One declarative FailureSchedule, executed on the discrete-event sim and
on a chaos-wrapped asyncio cluster: both must confirm the silent stall
through inactivity detection and report the same availability.
"""

from repro.experiments.ext_robustness import run_detection_parity


def test_stall_detection_parity_across_backends():
    result = run_detection_parity(seed=0)
    assert result.agrees()
    for run in result.runs.values():
        assert run.torn_down, run
        assert run.detections == 1, run
        assert abs(run.availability - 2 / 3) < 1e-9, run
    text = result.table().render()
    assert "sim" in text and "asyncio+chaos" in text
