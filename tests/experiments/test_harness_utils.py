"""Tests for the experiment-harness utilities and registries."""

import pytest

from repro.experiments.common import KB, Table, fmt_rate, kbps, series_table
from repro.experiments.fig6_correctness import PAPER_RATES as FIG6_PAPER
from repro.experiments.fig5_chain import PAPER_CHAIN_SIZES, PAPER_END_TO_END
from repro.experiments.topologies import NODE_NAMES, SEVEN_NODE_EDGES
from repro.tools.cli import EXPERIMENTS


def test_units():
    assert kbps(5000.0) == 5.0
    assert fmt_rate(12_345.0) == "12.3"
    assert fmt_rate(None) == "[closed]"
    assert KB == 1000.0


def test_table_renders_aligned_rows_and_notes():
    table = Table("Title", ["a", "bb"])
    table.add_row(1, "x")
    table.add_row(100, "longer")
    table.note("context")
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert lines[1] == "====="
    assert "a" in lines[2] and "bb" in lines[2]
    assert text.endswith("note: context")
    # all data lines are equally wide columns
    assert lines[4].startswith("1 ")
    assert lines[5].startswith("100")


def test_table_rejects_wrong_arity():
    table = Table("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_series_table_zips_columns():
    table = series_table("s", "x", {"y1": [1.0, 2.0], "y2": [3.0, 4.0]}, xs=[10, 20])
    assert table.columns == ["x", "y1", "y2"]
    assert table.rows == [[10, "1.0", "3.0"], [20, "2.0", "4.0"]]


def test_seven_node_topology_shape():
    assert len(SEVEN_NODE_EDGES) == 9
    assert NODE_NAMES == "ABCDEFG"
    # Every node appears; A is the only root (no in-edges).
    sources = {src for src, _ in SEVEN_NODE_EDGES}
    sinks = {dst for _, dst in SEVEN_NODE_EDGES}
    assert sources | sinks == set(NODE_NAMES)
    assert "A" not in sinks
    # The paper's expected phase tables cover exactly the topology edges.
    for phase in "abcd":
        assert set(FIG6_PAPER[phase]) == set(SEVEN_NODE_EDGES)


def test_fig5_paper_reference_is_monotone():
    values = [PAPER_END_TO_END[n] for n in PAPER_CHAIN_SIZES]
    assert values == sorted(values, reverse=True)


def test_cli_registry_modules_importable():
    import importlib

    for name, module_path in EXPERIMENTS.items():
        module = importlib.import_module(module_path)
        assert hasattr(module, "main"), f"{name} lacks a main()"
