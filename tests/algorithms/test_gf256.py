"""Field-axiom and bulk-operation tests for GF(2^8)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.coding import gf256

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


@given(a=elements, b=elements)
def test_addition_commutative_and_self_inverse(a, b):
    assert gf256.add(a, b) == gf256.add(b, a)
    assert gf256.add(gf256.add(a, b), b) == a  # add == sub


@given(a=elements, b=elements, c=elements)
def test_multiplication_axioms(a, b, c):
    assert gf256.mul(a, b) == gf256.mul(b, a)
    assert gf256.mul(a, gf256.mul(b, c)) == gf256.mul(gf256.mul(a, b), c)
    # distributivity
    assert gf256.mul(a, gf256.add(b, c)) == gf256.add(gf256.mul(a, b), gf256.mul(a, c))


@given(a=elements)
def test_identities(a):
    assert gf256.mul(a, 1) == a
    assert gf256.mul(a, 0) == 0
    assert gf256.add(a, 0) == a


@given(a=nonzero)
def test_inverse(a):
    assert gf256.mul(a, gf256.inv(a)) == 1


@given(a=elements, b=nonzero)
def test_division_inverts_multiplication(a, b):
    assert gf256.div(gf256.mul(a, b), b) == a


def test_zero_division_raises():
    with pytest.raises(ZeroDivisionError):
        gf256.inv(0)
    with pytest.raises(ZeroDivisionError):
        gf256.div(1, 0)


@given(a=nonzero, e=st.integers(min_value=-10, max_value=10))
def test_pow_matches_repeated_multiplication(a, e):
    if e >= 0:
        expected = 1
        for _ in range(e):
            expected = gf256.mul(expected, a)
    else:
        expected = 1
        for _ in range(-e):
            expected = gf256.mul(expected, gf256.inv(a))
    assert gf256.pow_(a, e) == expected


def test_pow_zero_base():
    assert gf256.pow_(0, 0) == 1
    assert gf256.pow_(0, 3) == 0
    with pytest.raises(ZeroDivisionError):
        gf256.pow_(0, -1)


def test_generator_has_full_order():
    seen = set()
    value = 1
    for _ in range(255):
        seen.add(value)
        value = gf256.mul(value, gf256.GENERATOR)
    assert len(seen) == 255
    assert value == 1  # cycles back


@given(c=elements, data=st.binary(max_size=64))
def test_scale_bytes_matches_scalar(c, data):
    scaled = gf256.scale_bytes(c, data)
    assert list(scaled) == [gf256.mul(c, byte) for byte in data]


@given(a=st.binary(min_size=8, max_size=8), b=st.binary(min_size=8, max_size=8))
def test_add_bytes_is_xor(a, b):
    assert gf256.add_bytes(a, b) == bytes(x ^ y for x, y in zip(a, b))


def test_add_bytes_length_mismatch():
    with pytest.raises(ValueError):
        gf256.add_bytes(b"ab", b"abc")


@given(c=elements, x=st.binary(min_size=4, max_size=4), y=st.binary(min_size=4, max_size=4))
def test_axpy(c, x, y):
    result = gf256.axpy_bytes(c, x, y)
    assert list(result) == [gf256.add(gf256.mul(c, xi), yi) for xi, yi in zip(x, y)]
