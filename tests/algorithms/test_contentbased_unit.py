"""Unit tests for broker routing decisions with a stub engine."""

from repro.algorithms.contentbased import (
    PUBLISH,
    SUBSCRIBE,
    ContentBasedBroker,
    ContentBasedClient,
    Predicate,
    event_to_wire,
)
from repro.core.ids import NodeId
from repro.core.message import Message

SELF = NodeId("10.0.0.1", 7000)
CLIENT = NodeId("10.0.0.2", 7000)
NEIGHBOR = NodeId("10.0.0.3", 7000)
FAR = NodeId("10.0.0.4", 7000)


class StubEngine:
    def __init__(self):
        self.sent = []

    @property
    def node_id(self):
        return SELF

    def now(self):
        return 0.0

    def send(self, msg, dest):
        self.sent.append((msg, dest))

    def send_to_observer(self, msg):
        pass

    def upstreams(self):
        return []

    def downstreams(self):
        return []

    def link_stats(self, peer):
        return None

    def start_source(self, app, payload_size):
        pass

    def stop_source(self, app):
        pass

    def set_timer(self, delay, token=0):
        pass


def bound_broker(neighbors=()):
    broker = ContentBasedBroker(neighbors=list(neighbors))
    engine = StubEngine()
    broker.bind(engine)
    return broker, engine


def subscribe_msg(subscriber, predicate, seq=1):
    return Message.with_fields(
        SUBSCRIBE, subscriber, 0, seq=seq,
        subscriber=str(subscriber), predicate=predicate.to_wire(),
    )


def publish_msg(sender, event):
    return Message(PUBLISH, sender, 0, event_to_wire(event))


def test_subscription_stored_and_propagated_to_other_neighbors():
    broker, engine = bound_broker(neighbors=[NEIGHBOR, FAR])
    predicate = Predicate.of({"x": ("<", 10)})
    broker.process(subscribe_msg(CLIENT, predicate))
    assert broker.routing_predicates(CLIENT) == [predicate]
    propagated = [(m, d) for m, d in engine.sent if m.type == SUBSCRIBE]
    assert {d for _, d in propagated} == {NEIGHBOR, FAR}
    # The broker aggregates: propagated subscriptions name the broker.
    assert all(m.fields()["subscriber"] == str(SELF) for m, _ in propagated)


def test_subscription_not_echoed_back_to_its_origin():
    broker, engine = bound_broker(neighbors=[NEIGHBOR])
    predicate = Predicate.of({"x": ("<", 10)})
    broker.process(subscribe_msg(NEIGHBOR, predicate))
    propagated = [(m, d) for m, d in engine.sent if m.type == SUBSCRIBE]
    assert propagated == []  # only neighbour was the origin


def test_event_routed_to_matching_subscribers_only():
    broker, engine = bound_broker()
    broker.process(subscribe_msg(CLIENT, Predicate.of({"x": ("<", 10)})))
    broker.process(subscribe_msg(NEIGHBOR, Predicate.of({"x": (">", 100)})))
    engine.sent.clear()
    broker.process(publish_msg(FAR, {"x": 5}))
    deliveries = [(m, d) for m, d in engine.sent if m.type == PUBLISH]
    assert [d for _, d in deliveries] == [CLIENT]


def test_event_never_bounced_to_its_sender():
    broker, engine = bound_broker()
    broker.process(subscribe_msg(CLIENT, Predicate.of({"x": ("<", 10)})))
    engine.sent.clear()
    broker.process(publish_msg(CLIENT, {"x": 5}))
    assert [d for m, d in engine.sent if m.type == PUBLISH] == []
    assert broker.dropped_events == 1


def test_covered_subscription_suppressed():
    broker, engine = bound_broker(neighbors=[NEIGHBOR])
    broker.process(subscribe_msg(CLIENT, Predicate.of({"x": ("<", 100)})))
    engine.sent.clear()
    broker.process(subscribe_msg(FAR, Predicate.of({"x": ("<", 10)}), seq=2))
    assert [m for m, _ in engine.sent if m.type == SUBSCRIBE] == []
    assert broker.suppressed_subscriptions == 1
    # Delivery still works for both.
    engine.sent.clear()
    broker.process(publish_msg(NEIGHBOR, {"x": 5}))
    assert {d for m, d in engine.sent if m.type == PUBLISH} == {CLIENT, FAR}


def test_client_requires_broker():
    client = ContentBasedClient()
    client.bind(StubEngine())
    import pytest

    with pytest.raises(RuntimeError):
        client.subscribe(Predicate.of({"x": ("=", 1)}))
