"""Property tests for the playout buffer and frame codec."""

from hypothesis import given
from hypothesis import strategies as st

from repro.apps.streaming import PlayoutBuffer, pack_frame, unpack_frame


@given(index=st.integers(min_value=0, max_value=2**31 - 1),
       media_time=st.floats(min_value=0, max_value=1e6, allow_nan=False),
       size=st.integers(min_value=12, max_value=10_000))
def test_property_frame_roundtrip(index, media_time, size):
    payload = pack_frame(index, media_time, size)
    assert len(payload) == size
    decoded_index, decoded_time = unpack_frame(payload)
    assert decoded_index == index
    assert decoded_time == media_time


@given(
    frame_interval=st.floats(min_value=0.01, max_value=0.2),
    startup=st.floats(min_value=0.1, max_value=5.0),
    jitter=st.lists(st.floats(min_value=0.0, max_value=0.005), min_size=5, max_size=50),
)
def test_property_punctual_stream_is_always_on_time(frame_interval, startup, jitter):
    """Frames arriving at (or marginally after) their media pace are never
    late when the startup buffer exceeds the worst jitter."""
    buffer = PlayoutBuffer(startup_delay=startup)
    base_arrival = 100.0
    for i, wobble in enumerate(jitter):
        media_time = i * frame_interval
        arrival = base_arrival + media_time + min(wobble, startup * 0.9)
        buffer.on_frame(i, media_time, arrival)
    assert buffer.stats.late == 0
    assert buffer.stats.on_time == len(jitter)
    assert buffer.stats.rebuffer_events == 0
    assert buffer.stats.continuity() == 1.0


@given(stall=st.floats(min_value=0.5, max_value=10.0))
def test_property_single_stall_causes_single_rebuffer(stall):
    buffer = PlayoutBuffer(startup_delay=0.2)
    buffer.on_frame(0, 0.0, now=0.0)
    # Frame 1 arrives 'stall' seconds after its deadline.
    deadline_1 = 0.2 + 0.5
    buffer.on_frame(1, 0.5, now=deadline_1 + stall)
    assert buffer.stats.late == 1
    assert buffer.stats.rebuffer_events == 1
    # After the playback origin shifted, the stream is punctual again.
    buffer.on_frame(2, 1.0, now=deadline_1 + stall + 0.4)
    assert buffer.stats.late == 1  # no new lateness


@given(order=st.permutations(list(range(8))))
def test_property_arrival_order_does_not_double_count(order):
    """However frames are reordered, counts always total the distinct set."""
    buffer = PlayoutBuffer(startup_delay=100.0)  # generous: nothing is late
    for i in order:
        buffer.on_frame(i, i * 0.1, now=float(i))
        buffer.on_frame(i, i * 0.1, now=float(i))  # duplicate delivery
    stats = buffer.stats
    assert stats.received == 8
    assert stats.duplicates == 8
    assert stats.highest_index == 7
    assert stats.missing() == 0
