"""Unit tests for Chord routing decisions with a stub engine."""

from repro.algorithms.dht import ChordAlgorithm, ring
from repro.algorithms.dht.chord import FIND_SUCC, FIND_SUCC_REPLY, NOTIFY, STORE
from repro.core.ids import NodeId
from repro.core.message import Message

SELF = NodeId("10.0.0.1", 7000)
PEERS = [NodeId("10.0.0.2", 7000 + i) for i in range(6)]


class StubEngine:
    def __init__(self):
        self.sent = []
        self.timers = []

    @property
    def node_id(self):
        return SELF

    def now(self):
        return 0.0

    def send(self, msg, dest):
        self.sent.append((msg, dest))

    def send_to_observer(self, msg):
        pass

    def upstreams(self):
        return []

    def downstreams(self):
        return []

    def link_stats(self, peer):
        return None

    def start_source(self, app, payload_size):
        pass

    def stop_source(self, app):
        pass

    def set_timer(self, delay, token=0):
        self.timers.append((delay, token))


def bound_chord():
    algorithm = ChordAlgorithm(seed=0)
    engine = StubEngine()
    algorithm.bind(engine)
    algorithm.on_start()
    return algorithm, engine


def test_on_start_sets_hash_and_timers():
    algorithm, engine = bound_chord()
    assert algorithm.node_hash == ring.node_to_id(SELF)
    assert len(engine.timers) == 3  # stabilize, fingers, join retry


def test_single_node_owns_everything():
    algorithm, engine = bound_chord()
    algorithm.on_bootstrapped()  # no known hosts: ring of one
    assert algorithm.successor == SELF
    request = algorithm.lookup("anything")
    assert algorithm.results[request].owner == SELF
    assert algorithm.results[request].hops == 0


def test_find_succ_answered_when_target_in_arc():
    algorithm, engine = bound_chord()
    algorithm.successor = PEERS[0]
    succ_hash = ring.node_to_id(PEERS[0])
    # Pick a target strictly inside (self, successor].
    target = succ_hash  # the successor's own id is always in the arc
    msg = Message.with_fields(
        FIND_SUCC, PEERS[1], 0,
        target=target, request=9, origin=str(PEERS[1]), hops=0,
    )
    algorithm.process(msg)
    replies = [(m, d) for m, d in engine.sent if m.type == FIND_SUCC_REPLY]
    assert len(replies) == 1
    reply, dest = replies[0]
    assert dest == PEERS[1]
    assert reply.fields()["owner"] == str(PEERS[0])
    assert reply.fields()["hops"] == 1


def test_find_succ_forwarded_when_outside_arc():
    algorithm, engine = bound_chord()
    algorithm.successor = PEERS[0]
    succ_hash = ring.node_to_id(PEERS[0])
    target = (succ_hash + 1) % ring.CIRCLE  # just past the arc
    msg = Message.with_fields(
        FIND_SUCC, PEERS[1], 0,
        target=target, request=9, origin=str(PEERS[1]), hops=0,
    )
    algorithm.process(msg)
    forwards = [(m, d) for m, d in engine.sent if m.type == FIND_SUCC]
    assert len(forwards) == 1
    assert forwards[0][0].fields()["hops"] == 1


def test_notify_updates_predecessor_and_triggers_handoff():
    algorithm, engine = bound_chord()
    algorithm.successor = SELF
    assert algorithm.node_hash is not None
    # Give us a key that the new predecessor should own.
    pred = PEERS[2]
    pred_hash = ring.node_to_id(pred)
    foreign_key = pred_hash  # key == predecessor id: predecessor's arc
    algorithm.store[foreign_key] = "move-me"
    own_key = algorithm.node_hash  # our own id: always ours
    algorithm.store[own_key] = "keep-me"
    algorithm.process(Message.with_fields(NOTIFY, pred, 0, node=str(pred)))
    assert algorithm.predecessor == pred
    assert algorithm.successor == pred  # lone node adopts first contact
    assert own_key in algorithm.store
    assert foreign_key not in algorithm.store
    from repro.algorithms.dht.chord import HANDOFF

    handoffs = [(m, d) for m, d in engine.sent if m.type == HANDOFF]
    assert len(handoffs) == 1
    assert handoffs[0][1] == pred
    assert handoffs[0][0].fields()["entries"] == {str(foreign_key): "move-me"}


def test_store_message_persists_key():
    algorithm, engine = bound_chord()
    algorithm.process(Message.with_fields(STORE, PEERS[0], 0, key_id=123, value="v"))
    assert algorithm.store[123] == "v"


def test_broken_successor_falls_back_to_finger():
    algorithm, engine = bound_chord()
    algorithm.successor = PEERS[0]
    algorithm.fingers[3] = PEERS[1]
    from repro.core.msgtypes import MsgType

    broken = Message.with_fields(
        MsgType.BROKEN_LINK, SELF, 0, peer=str(PEERS[0]), direction="down",
    )
    algorithm.process(broken)
    assert algorithm.successor == PEERS[1]
    assert PEERS[0] not in algorithm.fingers
