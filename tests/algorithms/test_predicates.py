"""Unit and property tests for content-based predicates and covering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.contentbased.predicates import (
    Constraint,
    Filter,
    Predicate,
    event_from_wire,
    event_to_wire,
)
from repro.errors import CodecError


def test_constraint_operators():
    event = {"price": 50, "symbol": "ACME-X"}
    assert Constraint("price", "=", 50).matches(event)
    assert Constraint("price", "!=", 51).matches(event)
    assert Constraint("price", "<", 51).matches(event)
    assert Constraint("price", "<=", 50).matches(event)
    assert Constraint("price", ">", 49).matches(event)
    assert Constraint("price", ">=", 50).matches(event)
    assert Constraint("symbol", "prefix", "ACME").matches(event)
    assert Constraint("symbol", "contains", "ME-").matches(event)
    assert not Constraint("price", "<", 50).matches(event)
    assert not Constraint("volume", "=", 1).matches(event)  # missing attribute


def test_type_confusion_never_crashes():
    assert not Constraint("price", "<", 10).matches({"price": "not-a-number"})
    assert not Constraint("symbol", "prefix", "A").matches({"symbol": 5})


def test_invalid_operator_rejected():
    with pytest.raises(ValueError):
        Constraint("a", "~", 1)
    with pytest.raises(ValueError):
        Constraint("a", "prefix", 5)


def test_filter_is_conjunction():
    filter_ = Filter((Constraint("price", "<", 100), Constraint("price", ">", 10)))
    assert filter_.matches({"price": 50})
    assert not filter_.matches({"price": 5})
    assert not filter_.matches({"price": 500})
    with pytest.raises(ValueError):
        Filter(())


def test_predicate_is_disjunction():
    predicate = Predicate.of(
        {"price": ("<", 10)},
        {"symbol": ("=", "ACME")},
    )
    assert predicate.matches({"price": 5})
    assert predicate.matches({"symbol": "ACME", "price": 999})
    assert not predicate.matches({"price": 50, "symbol": "OTHER"})


def test_covering_basic_cases():
    broad = Constraint("x", "<", 100)
    narrow = Constraint("x", "<", 50)
    assert broad.covers(narrow)
    assert not narrow.covers(broad)
    assert broad.covers(Constraint("x", "=", 20))
    assert not broad.covers(Constraint("x", "=", 150))
    assert Constraint("x", "<=", 100).covers(Constraint("x", "<", 100))
    assert not Constraint("x", "<", 100).covers(Constraint("x", "<=", 100))
    assert Constraint("x", ">", 0).covers(Constraint("x", ">=", 1))
    assert not Constraint("x", "<", 100).covers(Constraint("y", "<", 50))


def test_filter_covering():
    broad = Filter((Constraint("x", "<", 100),))
    narrow = Filter((Constraint("x", "<", 50), Constraint("y", "=", 1)))
    assert broad.covers(narrow)
    assert not narrow.covers(broad)


def test_predicate_covering():
    broad = Predicate.of({"x": ("<", 100)})
    narrow = Predicate.of({"x": ("<", 10)}, {"x": ("=", 42)})
    assert broad.covers(narrow)
    assert not narrow.covers(broad)


def test_wire_roundtrip():
    predicate = Predicate.of({"price": ("<", 99.5), "symbol": ("prefix", "AC")})
    assert Predicate.from_wire(predicate.to_wire()) == predicate
    with pytest.raises(CodecError):
        Predicate.from_wire("{broken")


def test_event_wire_roundtrip():
    event = {"price": 10, "note": "hello", "ratio": 0.5}
    assert event_from_wire(event_to_wire(event)) == event
    with pytest.raises(CodecError):
        event_from_wire(b"[1,2,3]")
    with pytest.raises(CodecError):
        event_from_wire(b"\xff\xff")


numeric_ops = st.sampled_from(["<", "<=", ">", ">="])
values = st.integers(min_value=-100, max_value=100)


@given(op1=numeric_ops, v1=values, op2=numeric_ops, v2=values,
       probe=st.integers(min_value=-150, max_value=150))
def test_property_covering_is_sound(op1, v1, op2, v2, probe):
    """If c1 covers c2, every event matching c2 matches c1 (soundness).

    Covering may be incomplete (conservative) but must never be wrong.
    """
    c1 = Constraint("x", op1, v1)
    c2 = Constraint("x", op2, v2)
    if c1.covers(c2):
        event = {"x": probe}
        if c2.matches(event):
            assert c1.matches(event)


@given(v=values, probe=values)
def test_property_equality_coverage_sound(v, probe):
    c1 = Constraint("x", "<", v)
    c2 = Constraint("x", "=", probe)
    if c1.covers(c2):
        assert c1.matches({"x": probe})
