"""Unit tests for tree-algorithm policy logic with a stub engine."""

import pytest

from repro.algorithms.trees import (
    AllUnicastTree,
    NodeStressAwareTree,
    RandomizedTree,
    STRESS_UNIT,
    TreeAlgorithm,
)
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType

SELF = NodeId("10.0.0.1", 7000)
PARENT = NodeId("10.0.0.2", 7000)
CHILD = NodeId("10.0.0.3", 7000)
JOINER = NodeId("10.0.0.9", 7000)
SOURCE = NodeId("10.0.0.8", 7000)


class StubEngine:
    def __init__(self):
        self.sent = []
        self.timers = []
        self.sources = []

    @property
    def node_id(self):
        return SELF

    def now(self):
        return 0.0

    def send(self, msg, dest):
        self.sent.append((msg, dest))

    def send_to_observer(self, msg):
        pass

    def upstreams(self):
        return []

    def downstreams(self):
        return []

    def link_stats(self, peer):
        return None

    def start_source(self, app, payload_size):
        self.sources.append(app)

    def stop_source(self, app):
        pass

    def set_timer(self, delay, token=0):
        self.timers.append((delay, token))


def make_in_tree(cls=NodeStressAwareTree, last_mile=100_000.0, **kwargs):
    algorithm = cls(last_mile=last_mile, **kwargs)
    engine = StubEngine()
    algorithm.bind(engine)
    algorithm.app = 1
    algorithm.in_tree = True
    return algorithm, engine


def query(ttl=8):
    return Message.with_fields(MsgType.S_QUERY, JOINER, 1,
                               app=1, joiner=str(JOINER), ttl=ttl)


def sent_types(engine):
    return [msg.type for msg, _ in engine.sent]


def test_stress_definition():
    algorithm, _ = make_in_tree(last_mile=200_000.0)
    algorithm.parent = PARENT
    algorithm.children = [CHILD]
    assert algorithm.degree == 2
    assert algorithm.stress == pytest.approx(2 / (200_000.0 / STRESS_UNIT))


def test_ns_aware_acks_when_it_is_the_minimum():
    algorithm, engine = make_in_tree()
    algorithm.parent = PARENT
    algorithm.neighbor_stress[PARENT] = 5.0  # parent is worse
    algorithm.process(query())
    assert sent_types(engine) == [MsgType.S_QUERY_ACK]
    assert engine.sent[0][1] == JOINER


def test_ns_aware_forwards_to_better_neighbor():
    algorithm, engine = make_in_tree()
    algorithm.parent = PARENT
    algorithm.neighbor_stress[PARENT] = 0.1  # parent is much better
    algorithm.process(query())
    msg, dest = engine.sent[0]
    assert msg.type == MsgType.S_QUERY
    assert dest == PARENT
    assert msg.fields()["ttl"] == 7  # decremented


def test_ns_aware_tie_breaks_by_node_id():
    algorithm, engine = make_in_tree()
    algorithm.parent = PARENT
    algorithm.neighbor_stress[PARENT] = algorithm.stress  # exact tie
    algorithm.process(query())
    # PARENT has a smaller NodeId than SELF? 10.0.0.2 > 10.0.0.1: no —
    # the tie goes to the smaller id, which is SELF here, so we ack.
    assert sent_types(engine) == [MsgType.S_QUERY_ACK]


def test_ttl_exhaustion_forces_ack():
    algorithm, engine = make_in_tree()
    algorithm.parent = PARENT
    algorithm.neighbor_stress[PARENT] = 0.0
    algorithm.process(query(ttl=0))
    assert sent_types(engine) == [MsgType.S_QUERY_ACK]


def test_unicast_forwards_to_source_else_parent():
    algorithm, engine = make_in_tree(cls=AllUnicastTree)
    algorithm.source_node = SOURCE
    algorithm.process(query())
    assert engine.sent[0][1] == SOURCE
    engine.sent.clear()
    algorithm.source_node = None
    algorithm.parent = PARENT
    algorithm.process(query())
    assert engine.sent[0][1] == PARENT


def test_unicast_source_acks():
    algorithm, engine = make_in_tree(cls=AllUnicastTree)
    algorithm.is_source = True
    algorithm.process(query())
    assert sent_types(engine) == [MsgType.S_QUERY_ACK]


def test_randomized_acks_immediately():
    algorithm, engine = make_in_tree(cls=RandomizedTree)
    algorithm.process(query())
    assert sent_types(engine) == [MsgType.S_QUERY_ACK]


def test_out_of_tree_node_relays():
    algorithm, engine = make_in_tree()
    algorithm.in_tree = False
    algorithm.known_hosts.add(PARENT)
    algorithm.known_hosts.add(CHILD)
    algorithm.process(query())
    msg, dest = engine.sent[0]
    assert msg.type == MsgType.S_QUERY
    assert dest in (PARENT, CHILD)


def test_ack_then_join_handshake():
    algorithm, engine = make_in_tree()
    algorithm.in_tree = False
    algorithm._joining = True
    ack = Message.with_fields(MsgType.S_QUERY_ACK, PARENT, 1,
                              app=1, parent=str(PARENT))
    algorithm.process(ack)
    assert algorithm.parent == PARENT and algorithm.in_tree
    join_msgs = [m for m, d in engine.sent if m.type == MsgType.S_JOIN]
    assert len(join_msgs) == 1
    # A second (late) ack from someone else is ignored.
    other = Message.with_fields(MsgType.S_QUERY_ACK, CHILD, 1,
                                app=1, parent=str(CHILD))
    algorithm.process(other)
    assert algorithm.parent == PARENT


def test_join_registers_child_and_leave_removes_it():
    algorithm, engine = make_in_tree()
    join = Message.with_fields(MsgType.S_JOIN, CHILD, 1, app=1, child=str(CHILD))
    algorithm.process(join)
    algorithm.process(join)  # idempotent
    assert algorithm.children == [CHILD]
    leave = Message.with_fields(MsgType.S_LEAVE, CHILD, 1, app=1, child=str(CHILD))
    algorithm.process(leave)
    assert algorithm.children == []


def test_deploy_starts_source_and_announces():
    algorithm, engine = make_in_tree()
    algorithm.in_tree = False
    algorithm.is_source = False
    algorithm.known_hosts.add(PARENT)
    deploy = Message.with_fields(MsgType.S_DEPLOY, PARENT, 1, app=1, payload_size=5000)
    algorithm.process(deploy)
    assert algorithm.is_source and algorithm.in_tree
    assert engine.sources == [1]
    announces = [m for m, d in engine.sent if m.type == MsgType.S_ANNOUNCE]
    assert announces


def test_data_forwards_to_children_and_meters():
    algorithm, engine = make_in_tree()
    algorithm.children = [CHILD, PARENT]
    data = Message(MsgType.DATA, SOURCE, 1, b"x" * 100)
    algorithm.process(data)
    dests = [d for m, d in engine.sent if m.type == MsgType.DATA]
    assert dests == [CHILD, PARENT]
    assert algorithm.received.total_bytes == data.size
