"""Unit and property tests for service requirements (federation DAGs)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.federation.requirement import Requirement, RequirementNode
from repro.errors import FederationError


def test_path_shape():
    requirement = Requirement.path([1, 2, 3])
    assert requirement.size == 3
    assert requirement.depth() == 3
    assert requirement.leaves() == [2]
    assert requirement.types() == {1, 2, 3}
    assert requirement.node(0).children == (1,)


def test_empty_path_rejected():
    with pytest.raises(FederationError):
        Requirement.path([])


def test_fork_requirement():
    requirement = Requirement(
        nodes={
            0: RequirementNode(0, 1, (1, 2)),
            1: RequirementNode(1, 2, ()),
            2: RequirementNode(2, 3, ()),
        },
        root=0,
    )
    requirement.validate()
    assert sorted(requirement.leaves()) == [1, 2]
    assert requirement.depth() == 2


def test_cycle_rejected():
    requirement = Requirement(
        nodes={
            0: RequirementNode(0, 1, (1,)),
            1: RequirementNode(1, 2, (0,)),
        },
        root=0,
    )
    with pytest.raises(FederationError):
        requirement.validate()


def test_join_rejected():
    requirement = Requirement(
        nodes={
            0: RequirementNode(0, 1, (1, 2)),
            1: RequirementNode(1, 2, (3,)),
            2: RequirementNode(2, 3, (3,)),  # two parents for node 3
            3: RequirementNode(3, 4, ()),
        },
        root=0,
    )
    with pytest.raises(FederationError):
        requirement.validate()


def test_unreachable_node_rejected():
    requirement = Requirement(
        nodes={
            0: RequirementNode(0, 1, ()),
            1: RequirementNode(1, 2, ()),  # orphan
        },
        root=0,
    )
    with pytest.raises(FederationError):
        requirement.validate()


def test_dangling_child_rejected():
    requirement = Requirement(nodes={0: RequirementNode(0, 1, (7,))}, root=0)
    with pytest.raises(FederationError):
        requirement.validate()


def test_wire_roundtrip():
    requirement = Requirement.path([4, 5, 6, 7])
    decoded = Requirement.from_wire(requirement.to_wire())
    assert decoded.nodes == requirement.nodes
    assert decoded.root == requirement.root


def test_malformed_wire_rejected():
    with pytest.raises(FederationError):
        Requirement.from_wire("not json at all {")
    with pytest.raises(FederationError):
        Requirement.from_wire('{"root": 0, "nodes": []}')


@given(seed=st.integers(min_value=0, max_value=10_000),
       size=st.integers(min_value=1, max_value=12),
       max_fanout=st.integers(min_value=1, max_value=4))
def test_property_random_tree_is_valid_and_roundtrips(seed, size, max_fanout):
    rng = random.Random(seed)
    requirement = Requirement.random_tree(rng, types=[1, 2, 3, 4], size=size,
                                          max_fanout=max_fanout)
    requirement.validate()  # no exception
    assert requirement.size == size
    fanouts = [len(node.children) for node in requirement.nodes.values()]
    assert all(f <= max(max_fanout, 1) for f in fanouts)
    assert Requirement.from_wire(requirement.to_wire()).nodes == requirement.nodes
