"""Unit tests for the pure backpressure core (no engine, no messages)."""

import pytest

from repro.algorithms.routing.core import (
    BackpressurePolicy,
    DelayAwarePolicy,
    RouteDecision,
    RoutingCore,
)


def make_core(policy=None, quantum=4):
    return RoutingCore(policy or BackpressurePolicy(beta=1.0), quantum=quantum)


def fill(core, commodity, count):
    for i in range(count):
        core.enqueue(commodity, (commodity, i))


# --------------------------------------------------------------------- queues

def test_enqueue_take_fifo_per_commodity():
    core = make_core()
    fill(core, 1, 3)
    fill(core, 2, 2)
    assert core.backlogs() == {1: 3, 2: 2}
    assert core.take(1, 2) == [(1, 0), (1, 1)]
    assert core.backlog(1) == 1
    assert core.take(2, 10) == [(2, 0), (2, 1)]
    assert core.take(3, 5) == []
    assert core.total_backlog() == 1


def test_quantum_validation():
    with pytest.raises(ValueError):
        RoutingCore(BackpressurePolicy(), quantum=0)


# --------------------------------------------------------------------- weights

def test_backpressure_weight_is_differential_minus_tunnel_penalty():
    policy = BackpressurePolicy(beta=0.5)
    assert policy.weight(1, local=10, remote=4, tunnel=4, deficit=0.0) == 4.0
    assert policy.weight(1, local=3, remote=5, tunnel=0, deficit=9.0) == -2.0


def test_delay_aware_thresholds_and_deficit():
    policy = DelayAwarePolicy(beta=0.0, threshold=4, gamma=0.5)
    # backlogs at/below the threshold exert no pressure
    assert policy.weight(1, local=4, remote=0, tunnel=0, deficit=0.0) == 0.0
    # above the threshold only the excess counts
    assert policy.weight(1, local=10, remote=6, tunnel=0, deficit=0.0) == 4.0
    # deficit biases an otherwise pressureless commodity
    assert policy.weight(1, local=4, remote=0, tunnel=0, deficit=6.0) == 3.0


# --------------------------------------------------------------------- decide

def test_decide_picks_largest_positive_differential():
    core = make_core()
    fill(core, 1, 6)
    fill(core, 2, 3)
    core.note_neighbor("n1", {1: 1, 2: 5})
    decisions = core.decide({"n1": 0})
    assert decisions == [RouteDecision("n1", 1, 4, 5.0)]  # quantum-capped


def test_decide_requires_strictly_positive_weight():
    core = make_core()
    fill(core, 1, 2)
    core.note_neighbor("n1", {1: 2})   # zero differential
    core.note_neighbor("n2", {1: 5})   # negative differential
    assert core.decide({}) == []


def test_decide_never_double_allocates_across_neighbors():
    core = make_core(quantum=8)
    fill(core, 1, 5)
    core.note_neighbor("a", {})
    core.note_neighbor("b", {})
    decisions = core.decide({})
    assert [d.neighbor for d in decisions] == ["a"]  # b sees nothing left
    assert decisions[0].count == 5


def test_decide_spills_to_second_neighbor_when_quantum_binds():
    core = make_core(quantum=3)
    fill(core, 1, 5)
    core.note_neighbor("a", {})
    core.note_neighbor("b", {})
    decisions = core.decide({})
    assert [(d.neighbor, d.count) for d in decisions] == [("a", 3), ("b", 2)]


def test_decide_tunnel_penalty_steers_away_from_loaded_tunnel():
    core = make_core(BackpressurePolicy(beta=1.0), quantum=2)
    fill(core, 1, 4)
    core.note_neighbor("near", {1: 0})
    core.note_neighbor("far", {1: 0})
    # "near" has 10 in-flight messages: its weight goes negative, so
    # only "far" is served this tick.
    decisions = core.decide({"near": 10, "far": 0})
    assert [d.neighbor for d in decisions] == ["far"]


def test_decide_candidates_filter():
    core = make_core()
    fill(core, 1, 4)
    core.note_neighbor("a", {})
    core.note_neighbor("b", {})
    decisions = core.decide({}, candidates=["b"])
    assert [d.neighbor for d in decisions] == ["b"]


def test_decide_is_deterministic():
    def build():
        core = make_core(quantum=2)
        fill(core, 2, 4)
        fill(core, 7, 4)
        core.note_neighbor("x", {2: 1})
        core.note_neighbor("y", {7: 1})
        return core

    runs = [build().decide({"x": 1, "y": 0}) for _ in range(3)]
    assert runs[0] == runs[1] == runs[2]


# --------------------------------------------------------------------- deficits

def test_unserved_backlogged_commodity_accrues_deficit():
    core = make_core(DelayAwarePolicy(beta=0.0, threshold=4, gamma=1.0), quantum=4)
    fill(core, 1, 3)
    # the neighbor is *more* backlogged: raw differential is negative,
    # so only the accruing deficit can ever push the weight positive
    core.note_neighbor("n", {1: 10})
    for _ in range(4):
        assert core.decide({}) == []
    assert core.deficit(1) == pytest.approx(4.0)
    # accumulated deficit eventually out-weighs the negative differential
    decisions = []
    for _ in range(10):
        decisions = core.decide({})
        if decisions:
            break
    assert decisions and decisions[0].commodity == 1


def test_served_commodity_pays_deficit_down():
    core = make_core(DelayAwarePolicy(beta=0.0, threshold=0, gamma=1.0), quantum=8)
    fill(core, 1, 6)
    core.note_neighbor("n", {})
    core.decide({})  # serves 6 (deficit 0 -> stays 0)
    assert core.deficit(1) == 0.0


# --------------------------------------------------------------------- neighbors

def test_neighbor_reports_replace_and_forget():
    core = make_core()
    core.note_neighbor("n", {1: 5, 2: 2})
    core.note_neighbor("n", {1: 1})
    fill(core, 2, 3)
    assert core.differential("n", 2) == 3  # absent commodity = empty
    assert core.differential("missing", 2) is None
    core.forget_neighbor("n")
    assert core.neighbors() == []
    assert core.decide({}) == []


def test_drop_commodity_returns_held_items():
    core = make_core()
    fill(core, 9, 3)
    dropped = core.drop_commodity(9)
    assert dropped == [(9, 0), (9, 1), (9, 2)]
    assert core.backlog(9) == 0
