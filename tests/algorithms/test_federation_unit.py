"""Unit tests for FederationAlgorithm internals (stub engine, no network)."""

import pytest

from repro.algorithms.federation import FederationAlgorithm, Requirement
from repro.algorithms.federation.algorithm import ServiceInfo
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType

SELF = NodeId("10.0.0.1", 7000)
P1 = NodeId("10.0.0.2", 7000)
P2 = NodeId("10.0.0.3", 7000)
P3 = NodeId("10.0.0.4", 7000)


class StubEngine:
    def __init__(self):
        self.sent = []
        self.timers = []
        self._now = 0.0

    @property
    def node_id(self):
        return SELF

    def now(self):
        return self._now

    def send(self, msg, dest):
        self.sent.append((msg, dest))

    def send_to_observer(self, msg):
        pass

    def upstreams(self):
        return []

    def downstreams(self):
        return []

    def link_stats(self, peer):
        return None

    def start_source(self, app, payload_size):
        pass

    def stop_source(self, app):
        pass

    def set_timer(self, delay, token=0):
        self.timers.append((delay, token))


def bound_algorithm(policy="sflow", capacity=100_000.0, seed=0):
    algorithm = FederationAlgorithm(capacity=capacity, policy=policy, seed=seed)
    engine = StubEngine()
    algorithm.bind(engine)
    return algorithm, engine


def seed_directory(algorithm, service_type, infos):
    algorithm.directory[service_type] = {
        info.node: info for info in infos
    }


def test_invalid_construction():
    with pytest.raises(ValueError):
        FederationAlgorithm(capacity=0)
    with pytest.raises(ValueError):
        FederationAlgorithm(capacity=1.0, policy="psychic")


def test_service_info_available_share():
    info = ServiceInfo(P1, capacity=100.0, sessions=3, updated_at=0.0)
    assert info.available == pytest.approx(25.0)


def test_selection_policies():
    infos = [
        ServiceInfo(P1, capacity=300.0, sessions=5, updated_at=0.0),  # avail 50
        ServiceInfo(P2, capacity=120.0, sessions=0, updated_at=0.0),  # avail 120
        ServiceInfo(P3, capacity=200.0, sessions=1, updated_at=0.0),  # avail 100
    ]
    sflow, _ = bound_algorithm("sflow")
    seed_directory(sflow, 2, infos)
    assert sflow._select(2, exclude=set()) == P2  # max available

    fixed, _ = bound_algorithm("fixed")
    seed_directory(fixed, 2, infos)
    assert fixed._select(2, exclude=set()) == P1  # max raw capacity

    random_alg, _ = bound_algorithm("random")
    seed_directory(random_alg, 2, infos)
    chosen = {random_alg._select(2, exclude=set()) for _ in range(30)}
    assert chosen == {P1, P2, P3}


def test_selection_respects_exclusion_and_absence():
    algorithm, _ = bound_algorithm()
    seed_directory(algorithm, 2, [ServiceInfo(P1, 100.0, 0, 0.0)])
    assert algorithm._select(2, exclude={P1}) is None
    assert algorithm._select(99, exclude=set()) is None


def test_assign_hosts_service_arms_timers_and_advertises():
    algorithm, engine = bound_algorithm()
    algorithm.known_hosts.add(P1)
    algorithm.known_hosts.add(P2)
    msg = Message.with_fields(MsgType.S_ASSIGN, P1, 0, service_type=3, service_id=7)
    algorithm.process(msg)
    assert algorithm.hosted == {3: 7}
    aware = [m for m, _ in engine.sent if m.type == MsgType.S_AWARE]
    assert len(aware) == 2  # one per known host
    assert engine.timers  # refresh/sweep armed
    assert algorithm.overhead_bytes("aware") == sum(m.size for m in aware)


def test_aware_deduplication():
    algorithm, engine = bound_algorithm()
    algorithm.known_hosts.add(P2)
    aware = Message.with_fields(
        MsgType.S_AWARE, P1, 0, seq=42,
        origin=str(P1), service_type=2, capacity=100.0, sessions=0, ttl=3,
    )
    algorithm.process(aware)
    first_volume = algorithm.overhead_bytes("aware")
    algorithm.process(aware.clone())  # identical (origin, seq): no re-relay
    assert algorithm.overhead_bytes("aware") == first_volume
    assert P1 in algorithm.directory[2]


def test_federate_forwards_along_requirement():
    algorithm, engine = bound_algorithm()
    algorithm.hosted[1] = 1
    seed_directory(algorithm, 2, [ServiceInfo(P2, 100.0, 0, 0.0)])
    requirement = Requirement.path([1, 2])
    msg = Message.with_fields(
        MsgType.S_FEDERATE, P1, 5,
        session=5, requirement=requirement.to_wire(),
        position=0, source=str(SELF), path=[],
    )
    algorithm.process(msg)
    forwarded = [(m, d) for m, d in engine.sent if m.type == MsgType.S_FEDERATE]
    assert len(forwarded) == 1
    fmsg, dest = forwarded[0]
    assert dest == P2
    assert fmsg.fields()["position"] == 1
    assert 5 in algorithm.sessions
    # Optimistic load bookkeeping bumped the chosen candidate.
    assert algorithm.directory[2][P2].sessions == 1


def test_sink_acknowledges_to_source():
    algorithm, engine = bound_algorithm()
    algorithm.hosted[2] = 1
    requirement = Requirement.path([1, 2])
    msg = Message.with_fields(
        MsgType.S_FEDERATE, P1, 5,
        session=5, requirement=requirement.to_wire(),
        position=1, source=str(P1), path=[str(P1)],
    )
    algorithm.process(msg)
    acks = [(m, d) for m, d in engine.sent if m.type == MsgType.S_FEDERATE_ACK]
    assert len(acks) == 1
    ack, dest = acks[0]
    assert dest == P1
    assert ack.fields()["path"] == [str(P1), str(SELF)]


def test_missing_candidate_reports_failure():
    algorithm, engine = bound_algorithm()
    algorithm.hosted[1] = 1
    requirement = Requirement.path([1, 42])
    msg = Message.with_fields(
        MsgType.S_FEDERATE, P1, 5,
        session=5, requirement=requirement.to_wire(),
        position=0, source=str(P1), path=[],
    )
    algorithm.process(msg)
    acks = [m for m, _ in engine.sent if m.type == MsgType.S_FEDERATE_ACK]
    assert len(acks) == 1 and acks[0].fields()["failed"]


def test_session_expiry_sweep():
    algorithm, engine = bound_algorithm()
    algorithm.hosted[2] = 1
    requirement = Requirement.path([1, 2])
    msg = Message.with_fields(
        MsgType.S_FEDERATE, P1, 8,
        session=8, requirement=requirement.to_wire(),
        position=1, source=str(P1), path=[str(P1)],
    )
    algorithm.process(msg)
    assert algorithm.active_sessions == 1
    engine._now = algorithm.session_duration + 1
    algorithm._expire_sessions()
    assert algorithm.active_sessions == 0
    assert algorithm.completed_sessions == [8]
