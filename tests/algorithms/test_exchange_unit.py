"""Unit tests for the tit-for-tat exchange with a stub engine."""

import pytest

from repro.algorithms.exchange import (
    CHUNK,
    HAVE,
    ChunkExchangeAlgorithm,
    ExchangeConfig,
    FreeRiderAlgorithm,
)
from repro.core.ids import NodeId
from repro.core.message import Message

SELF = NodeId("10.0.0.1", 7000)
PEERS = [NodeId("10.0.0.2", 7000 + i) for i in range(4)]


class StubEngine:
    def __init__(self):
        self.sent = []
        self.timers = []
        self._now = 0.0

    @property
    def node_id(self):
        return SELF

    def now(self):
        return self._now

    def send(self, msg, dest):
        self.sent.append((msg, dest))

    def send_to_observer(self, msg):
        pass

    def upstreams(self):
        return []

    def downstreams(self):
        return []

    def link_stats(self, peer):
        return None

    def start_source(self, app, payload_size):
        pass

    def stop_source(self, app):
        pass

    def set_timer(self, delay, token=0):
        self.timers.append((delay, token))


def bound_exchange(cls=ChunkExchangeAlgorithm, neighbors=None):
    algorithm = cls(neighbors=neighbors or PEERS[:2],
                    config=ExchangeConfig(chunk_size=100), seed=0)
    engine = StubEngine()
    algorithm.bind(engine)
    algorithm.on_start()
    return algorithm, engine


def chunk_from(peer, index):
    return Message(CHUNK, peer, 1, bytes(100), seq=index)


def tick(algorithm):
    algorithm.on_timer(21)  # _TIMER_ROUND


def test_round_timer_rearms():
    algorithm, engine = bound_exchange()
    assert engine.timers  # armed in on_start
    tick(algorithm)
    assert len(engine.timers) >= 2


def test_receiving_chunk_records_contribution_and_holding():
    algorithm, engine = bound_exchange()
    algorithm.process(chunk_from(PEERS[0], 3))
    assert 3 in algorithm.have
    assert algorithm.contribution_of(PEERS[0]) > 0
    algorithm.process(chunk_from(PEERS[0], 3))
    assert algorithm.duplicate_chunks == 1


def test_upload_targets_contributors_first():
    algorithm, engine = bound_exchange(neighbors=PEERS[:3])
    for index in range(10):
        algorithm.seed_chunk(index)
    # Peer 0 contributed; peers 1 and 2 did not.
    algorithm.process(chunk_from(PEERS[0], 99))
    engine.sent.clear()
    tick(algorithm)
    uploads = [d for m, d in engine.sent if m.type == CHUNK]
    assert PEERS[0] in uploads
    # Quota respected.
    per_peer = algorithm.config.chunks_per_peer
    assert uploads.count(PEERS[0]) <= per_peer


def test_have_announcement_lists_holdings():
    algorithm, engine = bound_exchange()
    algorithm.seed_chunk(1)
    algorithm.seed_chunk(5)
    tick(algorithm)
    haves = [m for m, _ in engine.sent if m.type == HAVE]
    assert haves
    assert haves[0].fields()["chunks"] == [1, 5]


def test_have_from_peer_prevents_redundant_upload():
    algorithm, engine = bound_exchange(neighbors=[PEERS[0]])
    for index in range(4):
        algorithm.seed_chunk(index)
    algorithm.process(chunk_from(PEERS[0], 99))  # make peer a contributor
    peer_have = Message.with_fields(HAVE, PEERS[0], 1, chunks=[0, 1, 2, 3, 99])
    algorithm.process(peer_have)
    engine.sent.clear()
    tick(algorithm)
    uploads = [m for m, d in engine.sent if m.type == CHUNK and d == PEERS[0]]
    assert uploads == []  # peer already has everything


def test_free_rider_announces_empty_and_never_uploads():
    rider, engine = bound_exchange(cls=FreeRiderAlgorithm)
    rider.seed_chunk(1)
    tick(rider)
    haves = [m for m, _ in engine.sent if m.type == HAVE]
    assert haves and haves[0].fields()["chunks"] == []
    assert [m for m, _ in engine.sent if m.type == CHUNK] == []
    assert rider.uploaded_chunks == 0


def test_completion_metric():
    algorithm, _ = bound_exchange()
    algorithm.seed_chunk(0)
    algorithm.seed_chunk(1)
    assert algorithm.completion(4) == pytest.approx(0.5)
    assert algorithm.completion(0) == 0.0
