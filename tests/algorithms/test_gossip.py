"""Tests for the gossip dissemination algorithm."""

import pytest

from repro.algorithms.gossip import GossipAlgorithm
from repro.sim.network import SimNetwork


def build_gossip_net(n, probability, seed=0):
    net = SimNetwork()
    algorithms = [GossipAlgorithm(probability=probability, seed=seed + i) for i in range(n)]
    for i, algorithm in enumerate(algorithms):
        net.add_node(algorithm, name=f"g{i}")
    net.start()
    net.run(12)  # several bootstrap refreshes fill KnownHosts
    return net, algorithms


def test_full_probability_reaches_everyone():
    net, algorithms = build_gossip_net(15, probability=1.0)
    algorithms[0].rumour(b"spam")
    net.run(5)
    assert all(b"spam" in alg.heard for alg in algorithms)


def test_zero_probability_stops_at_first_hop():
    net, algorithms = build_gossip_net(10, probability=0.0)
    origin = algorithms[0]
    origin.rumour(b"whisper")  # origin pushes to known hosts with p=1
    net.run(5)
    infected = sum(1 for alg in algorithms if b"whisper" in alg.heard)
    # Direct recipients hear it but nobody relays (p=0).
    assert 1 < infected <= 1 + len(origin.known_hosts)
    relays = sum(alg.relayed for alg in algorithms if alg is not origin)
    assert relays == 0


def test_duplicates_suppressed():
    net, algorithms = build_gossip_net(10, probability=1.0)
    algorithms[0].rumour(b"echo")
    net.run(5)
    # With p=1 on a dense graph there are plenty of duplicate deliveries,
    # but each node records the rumour exactly once.
    assert all(list(alg.heard) == [b"echo"] for alg in algorithms if alg.heard)
    assert sum(alg.duplicates for alg in algorithms) > 0


def test_multiple_rumours_tracked_independently():
    net, algorithms = build_gossip_net(8, probability=1.0)
    algorithms[0].rumour(b"one")
    algorithms[3].rumour(b"two")
    net.run(5)
    assert all({b"one", b"two"} <= set(alg.heard) for alg in algorithms)


def test_invalid_probability_rejected():
    with pytest.raises(ValueError):
        GossipAlgorithm(probability=1.5)


def test_invalid_heard_bounds_rejected():
    with pytest.raises(ValueError):
        GossipAlgorithm(heard_ttl=0.0)
    with pytest.raises(ValueError):
        GossipAlgorithm(heard_capacity=0)


def test_long_rumour_stream_keeps_heard_bounded():
    net = SimNetwork()
    algorithms = [
        GossipAlgorithm(probability=1.0, seed=i, heard_capacity=50)
        for i in range(4)
    ]
    for i, algorithm in enumerate(algorithms):
        net.add_node(algorithm, name=f"g{i}")
    net.start()
    net.run(12)
    for batch in range(8):
        for i in range(40):
            algorithms[batch % 4].rumour(f"r-{batch}-{i}".encode())
        net.run(2)
    for alg in algorithms:
        assert len(alg.heard) <= 50
        assert alg.evicted > 0


def test_heard_entries_expire_by_engine_clock():
    net = SimNetwork()
    algorithms = [
        GossipAlgorithm(probability=1.0, seed=i, heard_ttl=5.0)
        for i in range(3)
    ]
    for i, algorithm in enumerate(algorithms):
        net.add_node(algorithm, name=f"g{i}")
    net.start()
    net.run(12)
    algorithms[0].rumour(b"ephemeral")
    net.run(2)
    assert all(b"ephemeral" in alg.heard for alg in algorithms)
    net.run(10)  # past the TTL; the next record prunes the front
    algorithms[0].rumour(b"fresh")
    net.run(2)
    assert b"ephemeral" not in algorithms[0].heard
    assert all(b"fresh" in alg.heard for alg in algorithms)


def test_determinism_same_seeds_same_eviction_order():
    def run():
        net = SimNetwork()
        algorithms = [
            GossipAlgorithm(probability=1.0, seed=i, heard_capacity=20)
            for i in range(3)
        ]
        for i, algorithm in enumerate(algorithms):
            net.add_node(algorithm, name=f"g{i}")
        net.start()
        net.run(12)
        for i in range(60):
            algorithms[i % 3].rumour(f"r{i}".encode())
            net.run(0.5)
        return [(list(alg.heard), alg.evicted) for alg in algorithms]

    assert run() == run()
