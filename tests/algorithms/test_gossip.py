"""Tests for the gossip dissemination algorithm."""

import pytest

from repro.algorithms.gossip import GossipAlgorithm
from repro.sim.network import SimNetwork


def build_gossip_net(n, probability, seed=0):
    net = SimNetwork()
    algorithms = [GossipAlgorithm(probability=probability, seed=seed + i) for i in range(n)]
    for i, algorithm in enumerate(algorithms):
        net.add_node(algorithm, name=f"g{i}")
    net.start()
    net.run(12)  # several bootstrap refreshes fill KnownHosts
    return net, algorithms


def test_full_probability_reaches_everyone():
    net, algorithms = build_gossip_net(15, probability=1.0)
    algorithms[0].rumour(b"spam")
    net.run(5)
    assert all(b"spam" in alg.heard for alg in algorithms)


def test_zero_probability_stops_at_first_hop():
    net, algorithms = build_gossip_net(10, probability=0.0)
    origin = algorithms[0]
    origin.rumour(b"whisper")  # origin pushes to known hosts with p=1
    net.run(5)
    infected = sum(1 for alg in algorithms if b"whisper" in alg.heard)
    # Direct recipients hear it but nobody relays (p=0).
    assert 1 < infected <= 1 + len(origin.known_hosts)
    relays = sum(alg.relayed for alg in algorithms if alg is not origin)
    assert relays == 0


def test_duplicates_suppressed():
    net, algorithms = build_gossip_net(10, probability=1.0)
    algorithms[0].rumour(b"echo")
    net.run(5)
    # With p=1 on a dense graph there are plenty of duplicate deliveries,
    # but each node records the rumour exactly once.
    assert all(list(alg.heard) == [b"echo"] for alg in algorithms if alg.heard)
    assert sum(alg.duplicates for alg in algorithms) > 0


def test_multiple_rumours_tracked_independently():
    net, algorithms = build_gossip_net(8, probability=1.0)
    algorithms[0].rumour(b"one")
    algorithms[3].rumour(b"two")
    net.run(5)
    assert all({b"one", b"two"} <= set(alg.heard) for alg in algorithms)


def test_invalid_probability_rejected():
    with pytest.raises(ValueError):
        GossipAlgorithm(probability=1.5)
