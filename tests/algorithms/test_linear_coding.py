"""Property tests for linear coding: decode(combine(...)) == originals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.coding import gf256
from repro.algorithms.coding.linear import CodedPayload, GenerationDecoder, combine
from repro.errors import DecodingError


def test_original_wraps_unit_vector():
    payload = CodedPayload.original(generation=3, index=1, k=3, data=b"abc")
    assert payload.coefficients == (0, 1, 0)
    assert payload.generation == 3


def test_pack_unpack_roundtrip():
    payload = CodedPayload(7, (1, 2, 3), b"hello")
    assert CodedPayload.unpack(payload.pack()) == payload


def test_unpack_rejects_garbage():
    with pytest.raises(DecodingError):
        CodedPayload.unpack(b"\x00")
    with pytest.raises(DecodingError):
        CodedPayload.unpack(b"\x00\x00\x00\x01\x00\x00")  # k == 0


def test_butterfly_a_plus_b_decodes():
    """The exact Fig. 8 operation: code a+b, decode b given a."""
    a = CodedPayload.original(0, 0, 2, b"stream-a")
    b = CodedPayload.original(0, 1, 2, b"stream-b")
    coded = combine([a, b], [1, 1])
    assert coded.coefficients == (1, 1)

    decoder = GenerationDecoder(k=2, payload_len=8)
    assert decoder.add(a) is True
    assert decoder.add(coded) is True
    assert decoder.complete
    assert decoder.originals() == [b"stream-a", b"stream-b"]


def test_redundant_payload_not_innovative():
    a = CodedPayload.original(0, 0, 2, b"xxxxxxxx")
    decoder = GenerationDecoder(k=2, payload_len=8)
    assert decoder.add(a) is True
    assert decoder.add(a) is False
    assert decoder.redundant == 1
    assert not decoder.complete


def test_incomplete_decode_raises():
    decoder = GenerationDecoder(k=2, payload_len=4)
    decoder.add(CodedPayload.original(0, 0, 2, b"data"))
    with pytest.raises(DecodingError, match="incomplete"):
        decoder.originals()


def test_mismatched_payloads_rejected():
    with pytest.raises(ValueError):
        combine(
            [CodedPayload.original(0, 0, 2, b"aa"), CodedPayload.original(1, 1, 2, b"bb")],
            [1, 1],
        )
    decoder = GenerationDecoder(k=2, payload_len=2)
    with pytest.raises(DecodingError):
        decoder.add(CodedPayload.original(0, 0, 3, b"xx"))
    with pytest.raises(DecodingError):
        decoder.add(CodedPayload.original(0, 0, 2, b"wrong-length"))


@settings(max_examples=50, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=5),
    payload_len=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    data=st.data(),
)
def test_property_random_coding_decodes_to_originals(k, payload_len, seed, data):
    """k innovative random combinations reconstruct the originals.

    Coefficients come from a seeded PRNG (not hypothesis draws) so the
    shrinker cannot adversarially feed dependent vectors forever.
    """
    import random

    rng = random.Random(seed)
    originals = [
        data.draw(st.binary(min_size=payload_len, max_size=payload_len))
        for _ in range(k)
    ]
    sources = [CodedPayload.original(0, i, k, blob) for i, blob in enumerate(originals)]
    decoder = GenerationDecoder(k=k, payload_len=payload_len)
    attempts = 0
    while not decoder.complete:
        attempts += 1
        assert attempts < 500, "decoder failed to converge"
        coefficients = [rng.randrange(256) for _ in range(k)]
        if all(c == 0 for c in coefficients):
            continue
        decoder.add(combine(sources, coefficients))
    assert decoder.originals() == originals


elements_strategy = st.integers(min_value=0, max_value=255)


@given(
    c1=elements_strategy, c2=elements_strategy,
    d1=st.binary(min_size=6, max_size=6), d2=st.binary(min_size=6, max_size=6),
)
def test_property_combination_is_linear(c1, c2, d1, d2):
    """combine is the matrix-vector product it claims to be."""
    a = CodedPayload.original(0, 0, 2, d1)
    b = CodedPayload.original(0, 1, 2, d2)
    coded = combine([a, b], [c1, c2])
    expected = gf256.add_bytes(gf256.scale_bytes(c1, d1), gf256.scale_bytes(c2, d2))
    assert coded.data == expected
    assert coded.coefficients == (c1, c2)
