"""Unit and property tests for identifier-circle arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.dht import ring
from repro.core.ids import NodeId

ids = st.integers(min_value=0, max_value=ring.CIRCLE - 1)


def test_hash_is_stable_and_in_range():
    assert ring.hash_to_id("key") == ring.hash_to_id("key")
    assert ring.hash_to_id("key") != ring.hash_to_id("другой")
    assert 0 <= ring.hash_to_id(b"anything") < ring.CIRCLE


def test_node_hash_uses_full_identity():
    a = NodeId("10.0.0.1", 7000)
    b = NodeId("10.0.0.1", 7001)
    assert ring.node_to_id(a) != ring.node_to_id(b)


def test_in_open_plain_and_wrapping():
    assert ring.in_open(5, 1, 10)
    assert not ring.in_open(1, 1, 10)
    assert not ring.in_open(10, 1, 10)
    # wrapping interval (10, 3)
    assert ring.in_open(0, 10, 3)
    assert ring.in_open(11, 10, 3)
    assert not ring.in_open(5, 10, 3)
    # degenerate interval is empty
    assert not ring.in_open(5, 7, 7)


def test_in_open_closed_plain_wrapping_degenerate():
    assert ring.in_open_closed(10, 1, 10)
    assert not ring.in_open_closed(1, 1, 10)
    assert ring.in_open_closed(2, 10, 3)
    assert ring.in_open_closed(3, 10, 3)
    assert not ring.in_open_closed(10, 10, 3)
    # a single-node ring owns the whole circle
    assert ring.in_open_closed(5, 7, 7)


@given(x=ids, a=ids, b=ids)
def test_property_open_closed_partition(x, a, b):
    """For a != b, every x is in exactly one of (a, b] and (b, a]."""
    if a == b:
        return
    assert ring.in_open_closed(x, a, b) != ring.in_open_closed(x, b, a)


@given(a=ids, b=ids)
def test_property_distance_antisymmetry(a, b):
    d1 = ring.distance(a, b)
    d2 = ring.distance(b, a)
    assert 0 <= d1 < ring.CIRCLE
    if a != b:
        assert d1 + d2 == ring.CIRCLE
    else:
        assert d1 == d2 == 0


def test_finger_start_values():
    assert ring.finger_start(0, 0) == 1
    assert ring.finger_start(0, ring.M - 1) == ring.CIRCLE // 2
    assert ring.finger_start(ring.CIRCLE - 1, 0) == 0  # wraps
    with pytest.raises(ValueError):
        ring.finger_start(0, ring.M)
