"""Integration tests: content-based networking over the simulated overlay."""

from repro.algorithms.contentbased import (
    ContentBasedBroker,
    ContentBasedClient,
    Predicate,
)
from repro.sim.network import SimNetwork


def build_broker_line(n_brokers=3, clients_per_broker=2):
    """A line of brokers, each with local clients."""
    net = SimNetwork()
    brokers = [ContentBasedBroker() for _ in range(n_brokers)]
    broker_ids = [net.add_node(b, name=f"broker{i}") for i, b in enumerate(brokers)]
    for i, broker in enumerate(brokers):
        neighbors = []
        if i > 0:
            neighbors.append(broker_ids[i - 1])
        if i + 1 < n_brokers:
            neighbors.append(broker_ids[i + 1])
        broker.set_neighbors(neighbors)
    clients = []
    client_ids = []
    for i in range(n_brokers):
        for j in range(clients_per_broker):
            client = ContentBasedClient(broker=broker_ids[i])
            clients.append(client)
            client_ids.append(net.add_node(client, name=f"client{i}_{j}"))
    net.start()
    net.run(1)
    return net, brokers, broker_ids, clients, client_ids


def test_local_subscription_and_delivery():
    net, brokers, broker_ids, clients, _ = build_broker_line(n_brokers=1, clients_per_broker=2)
    clients[0].subscribe(Predicate.of({"topic": ("=", "sports")}))
    clients[1].subscribe(Predicate.of({"topic": ("=", "news")}))
    net.run(2)
    brokers[0].publish({"topic": "sports", "score": 3})
    brokers[0].publish({"topic": "news", "headline": 1})
    brokers[0].publish({"topic": "weather"})
    net.run(2)
    assert clients[0].delivered.count() == 1
    assert clients[0].delivered.events[0]["topic"] == "sports"
    assert clients[1].delivered.count() == 1
    assert brokers[0].dropped_events == 1  # nobody wants weather


def test_subscription_propagates_across_brokers():
    net, brokers, broker_ids, clients, _ = build_broker_line(n_brokers=3)
    # Client at broker 2 subscribes; event published at broker 0 must
    # traverse the whole broker line.
    far_client = clients[4]  # attached to broker 2
    far_client.subscribe(Predicate.of({"price": ("<", 100)}))
    net.run(3)
    brokers[0].publish({"price": 42})
    net.run(3)
    assert far_client.delivered.count() == 1
    # Clients that never subscribed receive nothing.
    assert all(c.delivered.count() == 0 for c in clients if c is not far_client)


def test_events_only_flow_where_interest_exists():
    net, brokers, broker_ids, clients, _ = build_broker_line(n_brokers=3)
    near_client = clients[0]  # attached to broker 0
    near_client.subscribe(Predicate.of({"kind": ("=", "local")}))
    net.run(3)
    brokers[0].publish({"kind": "local"})
    net.run(2)
    assert near_client.delivered.count() == 1
    # Brokers 1 and 2 never saw the event: no interest beyond broker 0.
    assert brokers[1].forwarded_events == 0
    assert brokers[2].forwarded_events == 0


def test_covering_suppresses_redundant_propagation():
    net, brokers, broker_ids, clients, _ = build_broker_line(n_brokers=2)
    a, b = clients[0], clients[1]  # both at broker 0
    a.subscribe(Predicate.of({"x": ("<", 100)}))
    net.run(2)
    b.subscribe(Predicate.of({"x": ("<", 50)}))  # covered by a's interest
    net.run(2)
    assert brokers[0].suppressed_subscriptions >= 1
    # Both still receive matching events routed from the remote broker.
    brokers[1].publish({"x": 10})
    net.run(2)
    assert a.delivered.count() == 1
    assert b.delivered.count() == 1


def test_unsubscribe_stops_delivery():
    net, brokers, broker_ids, clients, _ = build_broker_line(n_brokers=1)
    predicate = Predicate.of({"t": ("=", 1)})
    clients[0].subscribe(predicate)
    net.run(2)
    brokers[0].publish({"t": 1})
    net.run(2)
    assert clients[0].delivered.count() == 1
    clients[0].unsubscribe(predicate)
    net.run(2)
    brokers[0].publish({"t": 1})
    net.run(2)
    assert clients[0].delivered.count() == 1  # no new delivery


def test_duplicate_targets_deduplicated():
    net, brokers, broker_ids, clients, _ = build_broker_line(n_brokers=1)
    client = clients[0]
    client.subscribe(Predicate.of({"x": ("<", 10)}))
    client.subscribe(Predicate.of({"x": (">", 0)}))  # overlapping interests
    net.run(2)
    brokers[0].publish({"x": 5})  # matches both subscriptions
    net.run(2)
    assert client.delivered.count() == 1  # delivered once, not twice
