"""End-to-end tests of the service-federation case study."""

import random

import pytest

from repro.algorithms.federation import (
    FederationAlgorithm,
    FederationDriver,
    Requirement,
    RequirementNode,
)
from repro.core.bandwidth import BandwidthSpec
from repro.sim.network import SimNetwork

KB = 1000.0


def build_overlay(n=10, policy="sflow", capacities=None, seed=0):
    net = SimNetwork()
    algorithms = {}
    nodes = []
    rng = random.Random(seed)
    for i in range(n):
        capacity = (capacities[i] if capacities else rng.uniform(50, 200)) * KB
        algorithm = FederationAlgorithm(capacity=capacity, policy=policy, seed=seed + i)
        node = net.add_node(algorithm, name=f"n{i}", bandwidth=BandwidthSpec(up=capacity))
        algorithms[node] = algorithm
        nodes.append(node)
    net.start()
    net.run(1.0)
    return net, FederationDriver(net, algorithms), nodes, algorithms


def test_assignment_and_awareness_propagate():
    net, driver, nodes, algorithms = build_overlay(n=8)
    driver.assign(nodes[1], service_type=1)
    driver.assign(nodes[2], service_type=2)
    driver.assign(nodes[3], service_type=2)
    net.run(10)
    assert 1 in algorithms[nodes[1]].hosted
    # Other nodes learned about the type-2 hosts through sAware dissemination.
    aware_of_2 = [
        alg for alg in algorithms.values()
        if {n for n in alg.directory.get(2, {})} & {nodes[2], nodes[3]}
    ]
    assert len(aware_of_2) >= 4


def test_path_requirement_federates_end_to_end():
    net, driver, nodes, algorithms = build_overlay(n=10)
    driver.assign(nodes[0], service_type=1)
    driver.assign(nodes[3], service_type=2)
    driver.assign(nodes[4], service_type=2)
    driver.assign(nodes[6], service_type=3)
    driver.assign(nodes[7], service_type=3)
    net.run(15)
    requirement = Requirement.path([1, 2, 3])
    session = driver.federate(nodes[0], requirement)
    net.run(10)
    outcome = driver.outcome(session, nodes[0], requirement)
    assert outcome.completed
    assert len(outcome.paths) == 1
    path = outcome.paths[0]
    assert path[0] == nodes[0]
    assert len(path) == 3
    assert path[1] in (nodes[3], nodes[4])
    assert path[2] in (nodes[6], nodes[7])
    assert outcome.end_to_end > 0


def test_forked_requirement_reaches_both_sinks():
    net, driver, nodes, algorithms = build_overlay(n=12)
    driver.assign(nodes[0], service_type=1)
    for i in (2, 3):
        driver.assign(nodes[i], service_type=2)
    for i in (5, 6):
        driver.assign(nodes[i], service_type=3)
    for i in (8, 9):
        driver.assign(nodes[i], service_type=4)
    net.run(15)
    requirement = Requirement(
        nodes={
            0: RequirementNode(0, 1, (1, 2)),
            1: RequirementNode(1, 3, ()),
            2: RequirementNode(2, 4, ()),
        },
        root=0,
    )
    requirement.validate()
    session = driver.federate(nodes[0], requirement)
    net.run(10)
    outcome = driver.outcome(session, nodes[0], requirement)
    assert outcome.completed
    assert len(outcome.paths) == 2


def test_missing_service_type_reports_failure():
    net, driver, nodes, algorithms = build_overlay(n=6)
    driver.assign(nodes[0], service_type=1)
    net.run(5)
    requirement = Requirement.path([1, 99])  # type 99 hosted nowhere
    session = driver.federate(nodes[0], requirement)
    net.run(10)
    outcome = driver.outcome(session, nodes[0], requirement)
    assert not outcome.completed
    assert outcome.failed_branches == 1


def test_sflow_balances_load_vs_fixed():
    """With many sessions, sflow spreads across type-2 instances while
    fixed always picks the highest-capacity instance."""
    capacities = [100, 100, 150, 100, 100, 100, 100, 100]

    def run(policy):
        net, driver, nodes, algorithms = build_overlay(
            n=8, policy=policy, capacities=capacities, seed=3
        )
        driver.assign(nodes[0], service_type=1)
        driver.assign(nodes[2], service_type=2)  # the high-capacity instance
        driver.assign(nodes[3], service_type=2)
        driver.assign(nodes[4], service_type=2)
        driver.assign(nodes[6], service_type=3)
        net.run(15)
        requirement = Requirement.path([1, 2, 3])
        chosen = []
        for _ in range(9):
            session = driver.federate(nodes[0], requirement)
            net.run(12)  # let refreshes update load info between sessions
            outcome = driver.outcome(session, nodes[0], requirement)
            if outcome.paths:
                chosen.append(outcome.paths[0][1])
        return chosen, nodes

    fixed_choice, nodes = run("fixed")
    assert set(fixed_choice) == {nodes[2]}  # always the 150 KB/s host
    sflow_choice, nodes = run("sflow")
    assert len(set(sflow_choice)) >= 2  # load spreads


def test_data_stream_flows_through_federated_path():
    net, driver, nodes, algorithms = build_overlay(n=8, capacities=[100] * 8)
    driver.assign(nodes[0], service_type=1)
    driver.assign(nodes[3], service_type=2)
    driver.assign(nodes[5], service_type=3)
    net.run(15)
    requirement = Requirement.path([1, 2, 3])
    session = driver.federate(nodes[0], requirement)
    net.run(5)
    outcome = driver.outcome(session, nodes[0], requirement)
    assert outcome.completed
    sink = outcome.paths[0][-1]
    net.observer.deploy_source(nodes[0], app=session, payload_size=2000)
    net.run(10)
    assert algorithms[sink].receive_rate() > 10 * KB


def test_overhead_accounting_nonzero_and_attributed():
    net, driver, nodes, algorithms = build_overlay(n=8)
    driver.assign(nodes[0], service_type=1)
    driver.assign(nodes[2], service_type=2)
    net.run(10)
    aware = driver.total_overhead("aware")
    assert aware > 0
    requirement = Requirement.path([1, 2])
    driver.federate(nodes[0], requirement)
    net.run(5)
    federate = driver.total_overhead("federate")
    assert federate > 0
    # sFederate traffic is small compared to dissemination traffic.
    assert federate < aware
