"""Integration tests for the Fig. 8 butterfly with and without coding."""

import pytest

from repro.experiments.common import KB
from repro.experiments.topologies import build_butterfly


def test_without_coding_receivers_get_partial_streams():
    deployment = build_butterfly(coding=False, seed=0)
    net = deployment.net
    net.observer.deploy_source(deployment.nodes["A"], app=1, payload_size=5000)
    net.run(25)
    rates = deployment.effective_rates()
    assert rates["D"] == pytest.approx(400 * KB, rel=0.1)
    assert rates["E"] == pytest.approx(200 * KB, rel=0.1)
    assert rates["F"] == pytest.approx(300 * KB, rel=0.1)
    assert rates["G"] == pytest.approx(300 * KB, rel=0.1)


def test_with_coding_receivers_reach_full_rate():
    deployment = build_butterfly(coding=True, seed=0)
    net = deployment.net
    net.observer.deploy_source(deployment.nodes["A"], app=1, payload_size=5000)
    net.run(25)
    rates = deployment.effective_rates()
    assert rates["D"] == pytest.approx(400 * KB, rel=0.1)
    assert rates["E"] == pytest.approx(200 * KB, rel=0.1)  # helper node
    assert rates["F"] == pytest.approx(400 * KB, rel=0.1)
    assert rates["G"] == pytest.approx(400 * KB, rel=0.1)


def test_coding_node_uses_hold_and_combines_pairwise():
    deployment = build_butterfly(coding=True, seed=0)
    net = deployment.net
    net.observer.deploy_source(deployment.nodes["A"], app=1, payload_size=5000)
    net.run(10)
    coder = deployment.node_d
    assert coder.combined > 100
    # The hold buffer stays small because the two input streams are rate
    # matched by the topology.
    assert coder.held_generations < 64
    assert coder.dropped_generations == 0


def test_decoders_fully_reconstruct_generations():
    deployment = build_butterfly(coding=True, seed=0)
    net = deployment.net
    net.observer.deploy_source(deployment.nodes["A"], app=1, payload_size=5000)
    net.run(15)
    assert deployment.node_f.decoded_generations > 100
    assert deployment.node_g.decoded_generations > 100
    # F sees the original stream a plus coded a+b: nothing it receives is
    # redundant until a generation completes.
    assert deployment.node_f.innovative_payloads > deployment.node_f.duplicate_payloads
