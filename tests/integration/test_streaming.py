"""Integration tests for the streaming application layer."""

import pytest

from repro.apps.streaming import (
    PlayoutBuffer,
    StreamingTree,
    pack_frame,
    streaming_engine_config,
    unpack_frame,
)
from repro.algorithms.trees import CMD_JOIN
from repro.core.bandwidth import BandwidthSpec
from repro.errors import CodecError
from repro.sim.network import NetworkConfig, SimNetwork

KB = 1000.0
FRAME_SIZE = 5000
FRAME_INTERVAL = 0.05  # 100 KB/s stream


def test_frame_codec_roundtrip():
    payload = pack_frame(42, 2.1, FRAME_SIZE)
    assert len(payload) == FRAME_SIZE
    assert unpack_frame(payload) == (42, 2.1)
    with pytest.raises(CodecError):
        pack_frame(1, 0.0, 4)
    with pytest.raises(CodecError):
        unpack_frame(b"short")


def test_playout_buffer_on_time_and_late():
    buffer = PlayoutBuffer(startup_delay=1.0)
    assert buffer.on_frame(0, 0.0, now=10.0)   # playback starts at 11.0
    assert buffer.on_frame(1, 0.5, now=11.2)   # due 11.5: on time
    assert not buffer.on_frame(2, 1.0, now=13.0)  # due 12.0: late -> rebuffer
    stats = buffer.stats
    assert stats.on_time == 2 and stats.late == 1
    assert stats.rebuffer_events == 1
    # After the rebuffer, deadlines shifted by the stall (1 s).
    assert buffer.on_frame(3, 1.5, now=13.4)


def test_playout_buffer_duplicates_and_gaps():
    buffer = PlayoutBuffer(startup_delay=1.0)
    buffer.on_frame(0, 0.0, now=0.0)
    buffer.on_frame(0, 0.0, now=0.1)
    buffer.on_frame(5, 0.25, now=0.2)
    assert buffer.stats.duplicates == 1
    assert buffer.stats.missing() == 4  # frames 1-4 never arrived


def build_streaming_session(bottleneck_kbps=None, startup_delay=2.0):
    """S streams to A..D over an ns-aware tree; optional bottleneck on A."""
    last_mile = {"S": 200.0, "A": 500.0, "B": 100.0, "C": 200.0, "D": 100.0}
    if bottleneck_kbps is not None:
        last_mile["A"] = bottleneck_kbps
    net = SimNetwork(NetworkConfig(engine=streaming_engine_config(FRAME_INTERVAL)))
    algorithms = {}
    nodes = {}
    for name, bw in last_mile.items():
        algorithm = StreamingTree(
            last_mile=bw * KB, frame_interval=FRAME_INTERVAL,
            startup_delay=startup_delay, seed=ord(name),
        )
        algorithms[name] = algorithm
        nodes[name] = net.add_node(algorithm, name=name,
                                   bandwidth=BandwidthSpec(up=bw * KB))
    net.start()
    net.run(1)
    net.observer.deploy_source(nodes["S"], app=1, payload_size=FRAME_SIZE)
    net.run(1)
    for name in ["D", "A", "C", "B"]:
        net.observer.send_control(nodes[name], CMD_JOIN, param1=1)
        net.run(2)
    return net, algorithms, nodes


def test_adequate_bandwidth_plays_smoothly():
    net, algorithms, _ = build_streaming_session()
    net.run(60)
    for name in "ABCD":
        stats = algorithms[name].stream_stats
        assert stats.received > 500
        assert stats.continuity() > 0.97, f"receiver {name} stuttered"
        assert stats.rebuffer_events <= 2


def test_source_produces_real_frames():
    net, algorithms, _ = build_streaming_session()
    net.run(10)
    assert algorithms["S"].frames_produced > 100
    # Receivers decode monotone frame indices.
    stats = algorithms["A"].stream_stats
    assert stats.highest_index >= stats.received - 1


def test_bottleneck_relay_causes_stutter_downstream():
    """If the interior relay's uplink is below the aggregate it must carry,
    its subtree rebuffers while direct children of S stay smooth."""
    net, algorithms, _ = build_streaming_session(bottleneck_kbps=120.0)
    net.run(90)
    # A (relay at ~120 KB/s serving two children needing 200 KB/s total)
    # cannot keep its subtree fed in real time.
    subtree = [n for n in "BCD" if algorithms[n].parent is not None
               and net.label(algorithms[n].parent) == "A"]
    assert subtree, "expected A to have tree children in this scenario"
    stuttering = [n for n in subtree if algorithms[n].stream_stats.rebuffer_events > 3]
    assert stuttering, "expected rebuffering below the bottleneck relay"


def test_larger_startup_delay_reduces_lateness():
    """The classic tradeoff: more startup buffering, fewer late frames."""
    def late_fraction(startup):
        net, algorithms, _ = build_streaming_session(
            bottleneck_kbps=140.0, startup_delay=startup)
        net.run(60)
        received = sum(a.stream_stats.received for a in algorithms.values() if not a.is_source)
        late = sum(a.stream_stats.late for a in algorithms.values() if not a.is_source)
        return late / received if received else 0.0

    impatient = late_fraction(0.2)
    patient = late_fraction(8.0)
    assert patient <= impatient
