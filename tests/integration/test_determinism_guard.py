"""Determinism guard: the same seed must yield byte-identical traces.

The kernel's fast paths (ready deque, cancellable timers, reused
rotation lists) are pure optimizations — they must not perturb event
order.  These tests run the fig5-style chain and the fig8 butterfly
twice with identical seeds and require the *serialized* observer traces
and metric snapshots to match byte for byte.  Any scheduling or
iteration-order change in the hot path fails here before it can
silently alter experiment results.
"""

import json

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.experiments.common import KB
from repro.experiments.topologies import build_butterfly
from repro.sim.engine import EngineConfig
from repro.sim.network import NetworkConfig, SimNetwork
from repro.telemetry import Telemetry
from repro.telemetry.exporters import chrome_trace_events


def _serialize(telemetry: Telemetry) -> str:
    """Canonical byte form of a run: full message trace + metric values."""
    trace = chrome_trace_events(telemetry.tracer.events())
    return json.dumps(
        {"trace": trace, "metrics": telemetry.snapshot()}, sort_keys=True
    )


def _run_fig5_chain(seed: int) -> str:
    """An instrumented fig5-style copy chain under back pressure."""
    telemetry = Telemetry()
    net = SimNetwork(NetworkConfig(
        engine=EngineConfig(buffer_capacity=10),
        seed=seed,
        telemetry=telemetry,
    ))
    algorithms = [CopyForwardAlgorithm() for _ in range(4)] + [SinkAlgorithm()]
    ids = [
        net.add_node(
            algorithm,
            name=f"n{i}",
            bandwidth=BandwidthSpec(total=100 * KB) if i == 0 else None,
        )
        for i, algorithm in enumerate(algorithms)
    ]
    for upstream, downstream in zip(algorithms, ids[1:]):
        upstream.set_downstreams([downstream])
    net.start()
    net.observer.deploy_source(ids[0], app=1, payload_size=5000)
    net.run(4.0)
    return _serialize(telemetry)


def _run_fig8_butterfly(seed: int) -> str:
    """The instrumented Fig. 8 butterfly with network coding at D."""
    telemetry = Telemetry()
    deployment = build_butterfly(coding=True, seed=seed, telemetry=telemetry)
    net = deployment.net
    net.observer.deploy_source(deployment.nodes["A"], app=1, payload_size=5000)
    net.run(8.0)
    document = json.loads(_serialize(telemetry))
    document["rates"] = deployment.effective_rates()
    document["decoded"] = {
        "F": deployment.node_f.decoded_generations,
        "G": deployment.node_g.decoded_generations,
    }
    return json.dumps(document, sort_keys=True)


def test_fig5_chain_trace_is_deterministic():
    first = _run_fig5_chain(seed=7)
    second = _run_fig5_chain(seed=7)
    assert first == second
    assert json.loads(first)["trace"]  # guard is vacuous on an empty trace


def test_fig8_butterfly_trace_is_deterministic():
    first = _run_fig8_butterfly(seed=3)
    second = _run_fig8_butterfly(seed=3)
    assert first == second
    assert json.loads(first)["decoded"]["F"] > 0


def test_different_seeds_may_diverge_but_never_crash():
    # Sanity: the harness itself is sensitive enough to register runs
    # (not comparing constants); different seeds still complete cleanly.
    a = _run_fig5_chain(seed=1)
    b = _run_fig5_chain(seed=2)
    assert json.loads(a)["trace"] and json.loads(b)["trace"]
