"""Integration tests: the Chord DHT running on the simulated middleware."""

import math

from repro.algorithms.dht import ChordAlgorithm, ring
from repro.sim.network import SimNetwork


def build_ring(n_nodes, seed=0, stabilize=0.5, settle=40.0):
    net = SimNetwork()
    algorithms = []
    for i in range(n_nodes):
        algorithm = ChordAlgorithm(stabilize_interval=stabilize, seed=seed + i)
        net.add_node(algorithm, name=f"chord{i}")
        algorithms.append(algorithm)
    net.start()
    net.run(settle)
    return net, algorithms


def ring_is_consistent(algorithms):
    """Successor pointers form one cycle covering every node."""
    by_id = {alg.node_id: alg for alg in algorithms}
    start = algorithms[0]
    seen = []
    current = start
    for _ in range(len(algorithms) + 1):
        seen.append(current.node_id)
        if current.successor is None:
            return False
        current = by_id.get(current.successor)
        if current is None:
            return False
        if current is start:
            break
    return len(set(seen)) == len(algorithms)


def test_ring_converges_after_joins():
    net, algorithms = build_ring(8)
    assert ring_is_consistent(algorithms)
    # Successors agree with the sorted hash order of the ring.
    ordered = sorted(algorithms, key=lambda a: a.ring_position())
    for i, algorithm in enumerate(ordered):
        expected = ordered[(i + 1) % len(ordered)].node_id
        assert algorithm.successor == expected


def test_predecessors_converge_too():
    net, algorithms = build_ring(6)
    ordered = sorted(algorithms, key=lambda a: a.ring_position())
    for i, algorithm in enumerate(ordered):
        expected = ordered[(i - 1) % len(ordered)].node_id
        assert algorithm.predecessor == expected


def test_put_get_roundtrip_from_any_node():
    net, algorithms = build_ring(8)
    algorithms[0].put("alpha", "1")
    algorithms[3].put("beta", "2")
    net.run(5)
    req_a = algorithms[5].get("alpha")
    req_b = algorithms[7].get("beta")
    req_missing = algorithms[2].get("never-stored")
    net.run(5)
    assert algorithms[5].results[req_a].value == "1"
    assert algorithms[5].results[req_a].found
    assert algorithms[7].results[req_b].value == "2"
    assert not algorithms[2].results[req_missing].found


def test_keys_live_at_their_successor():
    net, algorithms = build_ring(8)
    keys = [f"key-{i}" for i in range(20)]
    for i, key in enumerate(keys):
        algorithms[i % len(algorithms)].put(key, key.upper())
    net.run(10)
    ordered = sorted(algorithms, key=lambda a: a.ring_position())
    for key in keys:
        key_id = ring.hash_to_id(key)
        owner = next(
            (alg for alg in ordered if ring.in_open_closed(
                key_id,
                ordered[(ordered.index(alg) - 1) % len(ordered)].ring_position(),
                alg.ring_position(),
            )),
            None,
        )
        assert owner is not None
        assert owner.store.get(key_id) == key.upper()


def test_lookup_hops_scale_logarithmically():
    net, algorithms = build_ring(24, settle=80.0)  # fingers need fixing rounds
    for i in range(40):
        algorithms[i % len(algorithms)].lookup(f"probe-{i}")
    net.run(10)
    hops = [h for alg in algorithms for h in alg.lookup_hops]
    assert hops
    bound = 2 * math.log2(24) + 2
    assert sum(hops) / len(hops) <= bound
    assert max(hops) <= 2 * ring.M


def test_late_joiner_takes_over_its_keys():
    net, algorithms = build_ring(6, settle=40.0)
    for i in range(30):
        algorithms[0].put(f"item-{i}", str(i))
    net.run(10)
    # A new node joins the stabilized ring.
    newcomer = ChordAlgorithm(stabilize_interval=0.5, seed=999)
    net.add_node(newcomer, name="latecomer")
    net.run(40)
    everyone = algorithms + [newcomer]
    assert ring_is_consistent(everyone)
    # The newcomer owns exactly the keys in its arc — and it can serve them.
    if newcomer.store:
        req = algorithms[2].get(
            next(f"item-{i}" for i in range(30)
                 if ring.hash_to_id(f"item-{i}") in newcomer.store)
        )
        net.run(5)
        assert algorithms[2].results[req].found
