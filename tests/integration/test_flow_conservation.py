"""Flow conservation: the engine neither drops nor duplicates data.

The paper verifies "the baseline correctness of message forwarding
switches" via throughput convergence; these properties pin the stronger
invariant directly — per-message accounting across relays under random
bandwidth configurations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.sim.engine import EngineConfig
from repro.sim.network import NetworkConfig, SimNetwork

KB = 1000.0


@settings(max_examples=10, deadline=None)
@given(
    source_rate=st.floats(min_value=20.0, max_value=300.0),
    relay_rate=st.floats(min_value=20.0, max_value=300.0),
    buffer_capacity=st.integers(min_value=2, max_value=64),
    payload=st.integers(min_value=500, max_value=8000),
)
def test_property_chain_conserves_messages(source_rate, relay_rate,
                                           buffer_capacity, payload):
    """source -> relay -> sink: after the source stops and queues drain,
    every message the relay accepted reached the sink exactly once, in order."""
    net = SimNetwork(NetworkConfig(engine=EngineConfig(buffer_capacity=buffer_capacity)))
    src_alg, relay = CopyForwardAlgorithm(), CopyForwardAlgorithm()

    class OrderSink(SinkAlgorithm):
        def __init__(self):
            super().__init__()
            self.seqs = []

        def on_data(self, msg):
            self.seqs.append(msg.seq)
            return super().on_data(msg)

    sink = OrderSink()
    src = net.add_node(src_alg, name="src", bandwidth=BandwidthSpec(up=source_rate * KB))
    mid = net.add_node(relay, name="mid", bandwidth=BandwidthSpec(up=relay_rate * KB))
    dst = net.add_node(sink, name="dst")
    src_alg.set_downstreams([mid])
    relay.set_downstreams([dst])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=payload)
    net.run(8)
    net.observer.terminate_source(src, app=1)
    net.run(60)  # drain everything buffered at the slowest plausible rate

    assert sink.seqs == sorted(sink.seqs)
    assert len(sink.seqs) == len(set(sink.seqs))  # no duplicates
    # Everything the relay forwarded arrived (links never failed).
    assert len(sink.seqs) == relay.forwarded
    # The relay forwarded everything it received.
    assert relay.forwarded == relay.received


@settings(max_examples=8, deadline=None)
@given(
    fanout=st.integers(min_value=2, max_value=4),
    source_rate=st.floats(min_value=50.0, max_value=200.0),
)
def test_property_copies_are_exact(fanout, source_rate):
    """A copying relay delivers the identical message set to every child."""
    net = SimNetwork(NetworkConfig(engine=EngineConfig(buffer_capacity=16)))
    src_alg, relay = CopyForwardAlgorithm(), CopyForwardAlgorithm()

    class SetSink(SinkAlgorithm):
        def __init__(self):
            super().__init__()
            self.seen = set()

        def on_data(self, msg):
            self.seen.add(msg.seq)
            return super().on_data(msg)

    sinks = [SetSink() for _ in range(fanout)]
    src = net.add_node(src_alg, name="src", bandwidth=BandwidthSpec(up=source_rate * KB))
    mid = net.add_node(relay, name="mid")
    children = [net.add_node(s, name=f"c{i}") for i, s in enumerate(sinks)]
    src_alg.set_downstreams([mid])
    relay.set_downstreams(children)
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=2000)
    net.run(6)
    net.observer.terminate_source(src, app=1)
    net.run(30)

    reference = sinks[0].seen
    assert reference
    for sink in sinks[1:]:
        assert sink.seen == reference
