"""End-to-end tests of the simulated engine: data flow, throttling,
back pressure, failures — the behaviours behind Figs. 6 and 7."""

import pytest

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.core.ids import NodeId
from repro.core.msgtypes import MsgType
from repro.sim.engine import EngineConfig
from repro.sim.network import NetworkConfig, SimNetwork

KB = 1000.0


def build_two_node_net(buffer_capacity=16, source_rate=None):
    net = SimNetwork(NetworkConfig(engine=EngineConfig(buffer_capacity=buffer_capacity)))
    src_alg = CopyForwardAlgorithm()
    dst_alg = SinkAlgorithm()
    bandwidth = BandwidthSpec(total=source_rate) if source_rate else None
    src = net.add_node(src_alg, name="src", bandwidth=bandwidth)
    dst = net.add_node(dst_alg, name="dst")
    src_alg.set_downstreams([dst])
    return net, src, dst, src_alg, dst_alg


def test_data_flows_source_to_sink():
    net, src, dst, _, dst_alg = build_two_node_net(source_rate=100 * KB)
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(10)
    assert dst_alg.received > 0
    # 100 KB/s with ~5 KB messages for ~10 s ≈ 200 messages
    assert 150 <= dst_alg.received <= 220


def test_throughput_converges_to_emulated_rate():
    net, src, dst, _, _ = build_two_node_net(source_rate=100 * KB)
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(15)
    assert net.link_rate(src, dst) == pytest.approx(100 * KB, rel=0.1)


def test_unthrottled_flow_is_bounded_by_window_not_livelocked():
    net, src, dst, _, dst_alg = build_two_node_net()
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(2, max_events=500_000)  # must terminate: no zero-time livelock
    assert dst_alg.received > 0


def test_copies_to_two_downstreams_split_node_budget():
    """A 400 KB/s node copying to two downstreams drives ~200 KB/s each
    (source side of Fig. 6a)."""
    net = SimNetwork()
    src_alg = CopyForwardAlgorithm()
    a_alg, b_alg = SinkAlgorithm(), SinkAlgorithm()
    src = net.add_node(src_alg, name="S", bandwidth=BandwidthSpec(total=400 * KB))
    a = net.add_node(a_alg, name="A")
    b = net.add_node(b_alg, name="B")
    src_alg.set_downstreams([a, b])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(15)
    assert net.link_rate(src, a) == pytest.approx(200 * KB, rel=0.15)
    assert net.link_rate(src, b) == pytest.approx(200 * KB, rel=0.15)


def test_relay_chain_preserves_messages_and_order():
    net = SimNetwork()
    algs = [CopyForwardAlgorithm() for _ in range(3)]
    sink = SinkAlgorithm()

    class OrderCheckingSink(SinkAlgorithm):
        def __init__(self):
            super().__init__()
            self.seqs = []

        def on_data(self, msg):
            self.seqs.append(msg.seq)
            return super().on_data(msg)

    sink = OrderCheckingSink()
    nodes = [net.add_node(alg, name=f"n{i}", bandwidth=BandwidthSpec(up=50 * KB))
             for i, alg in enumerate(algs)]
    end = net.add_node(sink, name="end")
    for i in range(2):
        algs[i].set_downstreams([nodes[i + 1]])
    algs[2].set_downstreams([end])
    net.start()
    net.observer.deploy_source(nodes[0], app=1, payload_size=5000)
    net.run(10)
    assert len(sink.seqs) > 20
    assert sink.seqs == sorted(sink.seqs)
    assert sink.seqs == list(range(len(sink.seqs)))  # no loss, no dup


def test_back_pressure_throttles_upstream_with_small_buffers():
    """Bottleneck downstream drags the whole path down to its rate."""
    net = SimNetwork(NetworkConfig(engine=EngineConfig(buffer_capacity=5)))
    a_alg, b_alg, c_alg = CopyForwardAlgorithm(), CopyForwardAlgorithm(), SinkAlgorithm()
    a = net.add_node(a_alg, name="A", bandwidth=BandwidthSpec(total=400 * KB))
    b = net.add_node(b_alg, name="B", bandwidth=BandwidthSpec(up=30 * KB))
    c = net.add_node(c_alg, name="C")
    a_alg.set_downstreams([b])
    b_alg.set_downstreams([c])
    net.start()
    net.observer.deploy_source(a, app=1, payload_size=5000)
    net.run(40)
    assert net.link_rate(b, c) == pytest.approx(30 * KB, rel=0.15)
    assert net.link_rate(a, b) == pytest.approx(30 * KB, rel=0.25)  # back pressure


def test_runtime_bandwidth_update_takes_effect():
    net, src, dst, _, _ = build_two_node_net(source_rate=200 * KB)
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(10)
    assert net.link_rate(src, dst) == pytest.approx(200 * KB, rel=0.15)
    net.observer.set_node_bandwidth(src, "up", 50 * KB)
    net.run(20)
    assert net.link_rate(src, dst) == pytest.approx(50 * KB, rel=0.15)


def test_per_link_bandwidth_update_via_observer():
    net = SimNetwork()
    src_alg = CopyForwardAlgorithm()
    a_alg, b_alg = SinkAlgorithm(), SinkAlgorithm()
    src = net.add_node(src_alg, name="S", bandwidth=BandwidthSpec(total=200 * KB))
    a = net.add_node(a_alg, name="A")
    b = net.add_node(b_alg, name="B")
    src_alg.set_downstreams([a, b])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(10)
    net.observer.set_link_bandwidth(src, a, 20 * KB)
    net.run(30)
    # With default (large-ish) buffers the un-throttled link is unaffected
    # for a while, then back pressure equalizes; measure soon after.
    assert net.link_rate(src, a) == pytest.approx(20 * KB, rel=0.2)


def test_node_termination_tears_down_links_and_notifies():
    net, src, dst, src_alg, _ = build_two_node_net(source_rate=100 * KB)
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(5)
    assert dst in src_alg.downstream_targets
    net.observer.terminate_node(dst)
    net.run(5)
    assert not net.engine(dst).running
    # The source node detected the broken downstream and dropped it.
    assert dst not in src_alg.downstream_targets
    assert dst not in net.engine(src).downstreams()


def test_terminated_node_removed_from_observer_registry():
    net, src, dst, _, _ = build_two_node_net()
    net.start()
    net.run(1)
    assert dst in net.observer.alive
    net.observer.terminate_node(dst)
    net.run(1)
    assert dst not in net.observer.alive


def test_bootstrap_populates_known_hosts():
    net = SimNetwork()
    algs = [SinkAlgorithm() for _ in range(4)]
    nodes = [net.add_node(alg, name=f"n{i}") for i, alg in enumerate(algs)]
    net.start()
    net.run(1)
    # Later nodes learn earlier ones from the observer's boot reply.
    assert any(len(alg.known_hosts) > 0 for alg in algs)
    assert net.observer.boot_count == 4


def test_status_reports_reach_observer():
    net, src, dst, _, _ = build_two_node_net(source_rate=100 * KB)
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(5)
    assert src in net.observer.statuses
    status = net.observer.statuses[src]
    assert dst in status.downstreams
    assert status.apps == [1]


def test_trace_messages_collected_centrally():
    net, src, dst, src_alg, _ = build_two_node_net()
    net.start()
    net.run(1)
    src_alg.trace("hello from the source")
    net.run(1)
    assert len(net.observer.traces.matching("hello from the source")) == 1


def test_source_termination_stops_traffic_and_propagates():
    net = SimNetwork()
    a_alg, b_alg, c_alg = CopyForwardAlgorithm(), CopyForwardAlgorithm(), SinkAlgorithm()
    broken_sources = []

    class RecordingSink(SinkAlgorithm):
        def on_broken_source(self, msg):
            broken_sources.append(msg.fields()["app"])
            return super().on_broken_source(msg)

    c_alg = RecordingSink()
    a = net.add_node(a_alg, name="A", bandwidth=BandwidthSpec(total=100 * KB))
    b = net.add_node(b_alg, name="B")
    c = net.add_node(c_alg, name="C")
    a_alg.set_downstreams([b])
    b_alg.set_downstreams([c])
    net.start()
    net.observer.deploy_source(a, app=7, payload_size=5000)
    net.run(5)
    before = c_alg.received
    assert before > 0
    net.observer.terminate_source(a, app=7)
    net.run(10)  # in-flight and buffered messages drain for a few seconds
    settled = c_alg.received
    net.run(5)
    assert c_alg.received == settled  # no new traffic
    assert 7 in broken_sources  # domino notification reached the leaf


def test_up_down_throughput_reports_reach_algorithm():
    rates = []

    class MeasuringSink(SinkAlgorithm):
        def on_up_throughput(self, msg):
            rates.append(msg.fields()["rate"])
            return super().on_up_throughput(msg)

    net = SimNetwork()
    src_alg = CopyForwardAlgorithm()
    sink = MeasuringSink()
    src = net.add_node(src_alg, name="S", bandwidth=BandwidthSpec(total=100 * KB))
    dst = net.add_node(sink, name="D")
    src_alg.set_downstreams([dst])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(10)
    assert rates, "expected periodic UP_THROUGHPUT reports"
    assert rates[-1] == pytest.approx(100 * KB, rel=0.2)


def test_inactivity_watchdog_detects_stalled_link():
    net = SimNetwork(NetworkConfig(
        engine=EngineConfig(buffer_capacity=8, inactivity_timeout=3.0)))
    src_alg = CopyForwardAlgorithm()
    sink = SinkAlgorithm()
    src = net.add_node(src_alg, name="S", bandwidth=BandwidthSpec(total=100 * KB))
    dst = net.add_node(sink, name="D")
    src_alg.set_downstreams([dst])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(5)
    # Silently stall the (only) link: no error is raised anywhere.
    engine = net.engine(src)
    engine._senders[dst].link.stall()  # white-box failure injection
    net.run(20)
    # The watchdog on the sender side tore the link down.
    assert dst not in engine.downstreams()
    assert dst not in src_alg.downstream_targets
