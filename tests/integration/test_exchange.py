"""Integration tests: incentive-aware chunk exchange (tit-for-tat)."""

import statistics

from repro.algorithms.exchange import (
    ChunkExchangeAlgorithm,
    ExchangeConfig,
    FreeRiderAlgorithm,
)
from repro.sim.network import SimNetwork

TOTAL_CHUNKS = 60


def build_swarm(n_cooperators=8, n_freeriders=0, seed=0):
    net = SimNetwork()
    config = ExchangeConfig(chunk_size=2000, round_interval=0.5)
    source = ChunkExchangeAlgorithm(config=config, seed=seed)
    algorithms = [source]
    for i in range(n_cooperators - 1):
        algorithms.append(ChunkExchangeAlgorithm(config=config, seed=seed + 1 + i))
    freeriders = [
        FreeRiderAlgorithm(config=config, seed=seed + 100 + i)
        for i in range(n_freeriders)
    ]
    algorithms.extend(freeriders)
    node_ids = [net.add_node(alg, name=f"peer{i}") for i, alg in enumerate(algorithms)]
    # Fully connected mesh (small swarm).
    for i, alg in enumerate(algorithms):
        alg.set_neighbors([node for j, node in enumerate(node_ids) if j != i])
    for index in range(TOTAL_CHUNKS):
        source.seed_chunk(index)
    net.start()
    return net, algorithms, freeriders


def test_cooperative_swarm_disseminates_all_chunks():
    net, algorithms, _ = build_swarm(n_cooperators=6)
    net.run(60)
    completions = [alg.completion(TOTAL_CHUNKS) for alg in algorithms]
    assert all(done == 1.0 for done in completions)


def test_no_duplicate_floods():
    net, algorithms, _ = build_swarm(n_cooperators=6)
    net.run(60)
    uploads = sum(alg.uploaded_chunks for alg in algorithms)
    duplicates = sum(alg.duplicate_chunks for alg in algorithms)
    # Push-mode swarms pay some endgame redundancy (several uploaders race
    # to fill the last gaps between HAVE refreshes); it must stay bounded.
    assert duplicates < uploads * 0.5


def test_free_riders_starve_relative_to_cooperators():
    """Under a *streamed* source (new chunks keep appearing), free riders
    lag persistently: reciprocity gets fresh chunks to contributors first,
    riders only catch up through the slow optimistic rotation."""
    net, algorithms, freeriders = build_swarm(n_cooperators=8, n_freeriders=2)
    source = algorithms[0]
    total = TOTAL_CHUNKS
    for burst in range(12):  # stream 12 more bursts of 10 chunks
        for index in range(total, total + 10):
            source.seed_chunk(index)
        total += 10
        net.run(4)
    cooperators = [alg for alg in algorithms if alg not in freeriders][1:]  # skip source
    coop = statistics.fmean(len(a.have) for a in cooperators)
    rider = statistics.fmean(len(a.have) for a in freeriders)
    assert coop > rider * 1.3
    assert rider > 0  # optimistic unchoking still feeds them a little


def test_tit_for_tat_reciprocity_emerges():
    net, algorithms, _ = build_swarm(n_cooperators=6)
    net.run(30)
    # After warm-up, cooperators mostly unchoke nodes that supplied them:
    # check that regular (non-optimistic) unchokes favour contributors.
    algorithm = algorithms[2]
    recent = algorithm.unchoke_history[-10:]
    contributors = {
        view.node
        for view in algorithm._neighbors.values()
        if view.contribution.total_bytes > 0
    }
    hits = sum(1 for round_ in recent for node in round_ if node in contributors)
    total = sum(len(round_) for round_ in recent)
    assert total > 0
    assert hits / total > 0.5


def test_uploads_respect_round_quota():
    net, algorithms, _ = build_swarm(n_cooperators=4)
    net.run(10)
    config = algorithms[0].config
    per_round_cap = (config.unchoke_slots + config.optimistic_slots) * config.chunks_per_peer
    rounds = len(algorithms[0].unchoke_history)
    assert algorithms[0].uploaded_chunks <= rounds * per_round_cap
