"""Status reporting of losses and buffer levels under stress."""

import pytest

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.sim.engine import EngineConfig
from repro.sim.failure import kill_node
from repro.sim.network import NetworkConfig, SimNetwork

KB = 1000.0


def test_loss_counted_after_downstream_death():
    net = SimNetwork(NetworkConfig(engine=EngineConfig(buffer_capacity=32)))
    src_alg, sink = CopyForwardAlgorithm(), SinkAlgorithm()
    src = net.add_node(src_alg, name="src", bandwidth=BandwidthSpec(up=50 * KB))
    dst = net.add_node(sink, name="dst", bandwidth=BandwidthSpec(down=10 * KB))
    src_alg.set_downstreams([dst])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(10)  # slow receiver: src's buffers fill up
    kill_node(net, dst)
    net.run(5)
    report = net.engine(src)._status_report().fields()
    # The queued/in-flight messages at the moment of death were lost.
    assert report["lost_messages"] > 0


def test_buffer_levels_visible_in_status():
    net = SimNetwork(NetworkConfig(engine=EngineConfig(buffer_capacity=10)))
    src_alg, sink = CopyForwardAlgorithm(), SinkAlgorithm()
    src = net.add_node(src_alg, name="src")
    dst = net.add_node(sink, name="dst", bandwidth=BandwidthSpec(down=5 * KB))
    src_alg.set_downstreams([dst])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(10)
    # Slow receiver: the source's send buffer to dst sits full.
    levels = net.engine(src).buffer_levels()
    assert levels[f"send:{dst}"] == 10
    report = net.engine(src)._status_report().fields()
    assert report["send_buffers"][str(dst)] == 10


def test_observer_sees_loss_through_status():
    net = SimNetwork(NetworkConfig(engine=EngineConfig(buffer_capacity=32)))
    src_alg, sink = CopyForwardAlgorithm(), SinkAlgorithm()
    src = net.add_node(src_alg, name="src", bandwidth=BandwidthSpec(up=50 * KB))
    dst = net.add_node(sink, name="dst", bandwidth=BandwidthSpec(down=10 * KB))
    src_alg.set_downstreams([dst])
    net.start()
    net.observer.deploy_source(src, app=1, payload_size=5000)
    net.run(10)
    kill_node(net, dst)
    net.run(3)  # next poll cycle collects the post-failure status
    status = net.observer.statuses[src]
    assert status.downstreams == []  # link gone from the report
