"""End-to-end telemetry: instrumented simulations, exports, aggregation."""

import json

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.experiments.common import KB
from repro.experiments.topologies import build_seven_node_copy
from repro.observer.dashboard import render_dashboard, render_metrics
from repro.sim.network import NetworkConfig, SimNetwork
from repro.telemetry import Telemetry, to_prometheus
from repro.telemetry.exporters import chrome_trace_events
from repro.telemetry.tracing import EventType


def build_chain(telemetry=None, nodes=3, run_for=6.0):
    """S -> M -> D copy chain with a 100 KB/s source at S."""
    net = SimNetwork(NetworkConfig(telemetry=telemetry))
    algs = [CopyForwardAlgorithm() for _ in range(nodes - 1)] + [SinkAlgorithm()]
    ids = [
        net.add_node(
            alg,
            name=f"n{i}",
            bandwidth=BandwidthSpec(total=100 * KB) if i == 0 else None,
        )
        for i, alg in enumerate(algs)
    ]
    for upstream, downstream in zip(algs, ids[1:]):
        upstream.set_downstreams([downstream])
    net.start()
    net.observer.deploy_source(ids[0], app=1, payload_size=5000)
    net.run(run_for)
    return net, ids


def test_telemetry_default_off():
    net, ids = build_chain(telemetry=None)
    assert net.telemetry is None
    for engine in net.engines.values():
        assert engine._ins is None
    # Traffic flowed regardless.
    assert net.engines[ids[0]].send_rate(ids[1]) > 0


def test_chain_metrics_and_trace():
    telemetry = Telemetry()
    net, ids = build_chain(telemetry=telemetry)
    snap = telemetry.snapshot()

    # Core series exist with node (and peer) labels.
    assert "ioverlay_engine_switch_rounds_total" in snap
    switched = snap["ioverlay_engine_switched_messages_total"]
    assert switched["labelnames"] == ["node", "peer"]
    labels = switched["series"][0]["labels"]
    assert set(labels) == {"node", "peer"}
    # The middle node both enqueued and forwarded.
    mid = str(ids[1])
    forwards = {
        s["labels"]["node"]: s["value"]
        for s in snap["ioverlay_engine_forwarded_messages_total"]["series"]
    }
    assert forwards[mid] > 0
    emits = snap["ioverlay_engine_source_messages_total"]["series"]
    assert sum(s["value"] for s in emits) > 0
    delivered = snap["ioverlay_engine_delivered_messages_total"]["series"]
    assert {s["labels"]["node"]: s["value"] for s in delivered}[str(ids[2])] > 0
    # Queue-wait histogram observed under virtual time.
    wait = snap["ioverlay_engine_queue_wait_seconds"]["series"]
    assert sum(s["count"] for s in wait) > 0

    # One message's lifecycle reconstructs the full chain path.
    tid = telemetry.tracer.trace_ids()[0]
    events = telemetry.tracer.events_for(tid)
    kinds = [e.event for e in events]
    assert kinds[0] == EventType.SOURCE_EMIT
    assert EventType.ENQUEUE in kinds
    assert EventType.SWITCH_PICK in kinds
    assert EventType.DELIVER in kinds
    assert telemetry.tracer.path(tid) == [str(node) for node in ids]


def test_chain_prometheus_text_and_chrome_export():
    telemetry = Telemetry()
    net, ids = build_chain(telemetry=telemetry)
    text = telemetry.prometheus()
    assert "# TYPE ioverlay_engine_switch_rounds_total counter" in text
    assert f'node="{ids[0]}"' in text
    records = chrome_trace_events(telemetry.tracer.events())
    assert any(r["ph"] == "M" for r in records)
    spans = [r for r in records if r.get("cat") == "message"]
    assert spans
    json.dumps(records)  # loadable by chrome://tracing


def test_seven_node_run_produces_acceptance_series():
    """The fig6-style acceptance scenario: back pressure then a failure."""
    telemetry = Telemetry()
    deployment = build_seven_node_copy(buffer_capacity=5, telemetry=telemetry)
    net, nodes = deployment.net, deployment.nodes
    net.observer.deploy_source(nodes["A"], app=1, payload_size=5000)
    net.run(10)
    net.observer.set_node_bandwidth(nodes["D"], "up", 30 * KB)
    net.run(5)
    net.observer.terminate_node(nodes["B"])
    net.run(5)

    text = to_prometheus(telemetry.registry)
    # Switch-round, buffer-occupancy, retry and drop series, node/peer labels.
    assert "ioverlay_engine_switch_rounds_total{" in text
    assert "ioverlay_engine_recv_buffer_messages{" in text
    assert "ioverlay_engine_retries_total{" in text
    assert "ioverlay_engine_dropped_messages_total{" in text
    assert f'node="{nodes["D"]}"' in text
    assert f'peer="{nodes["D"]}"' in text
    # Back pressure showed up as defers; the termination as broken links.
    snap = telemetry.snapshot()
    assert sum(
        s["value"] for s in snap["ioverlay_engine_defers_total"]["series"]
    ) > 0
    assert sum(
        s["value"] for s in snap["ioverlay_engine_broken_links_total"]["series"]
    ) > 0


def test_observer_aggregates_and_renders_metrics():
    telemetry = Telemetry()
    net, ids = build_chain(telemetry=telemetry)
    # Status polls already ran during build_chain's net.run(6).
    aggregate = net.observer.cluster_metrics()
    assert "ioverlay_engine_switch_rounds_total" in aggregate
    reported_nodes = {
        s["labels"]["node"]
        for s in aggregate["ioverlay_engine_switch_rounds_total"]["series"]
    }
    assert reported_nodes == {str(node) for node in ids}
    prom = net.observer.prometheus()
    assert "ioverlay_engine_switch_rounds_total{" in prom

    panel = render_metrics(net.observer)
    assert "ioverlay_engine_switch_rounds_total" in panel
    dashboard = render_dashboard(net.observer)
    assert "== metrics ==" in dashboard


def test_observer_metrics_empty_without_telemetry():
    net, _ = build_chain(telemetry=None)
    assert net.observer.cluster_metrics() == {}
    assert render_metrics(net.observer) == "(no metrics reported)"
    assert "== metrics ==" not in render_dashboard(net.observer)
