"""The Domino Effect: source/path failures cascade down, and only down."""

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.sim.failure import kill_node
from repro.sim.network import SimNetwork

KB = 1000.0


class _RecordingMixin:
    def _init_recording(self):
        self.broken_sources = []
        self.broken_links = []

    def on_broken_source(self, msg):
        self.broken_sources.append(msg.fields().get("app"))
        return super().on_broken_source(msg)

    def on_broken_link(self, msg):
        self.broken_links.append(msg.fields()["peer"])
        return super().on_broken_link(msg)


class RecordingSink(_RecordingMixin, SinkAlgorithm):
    def __init__(self):
        super().__init__()
        self._init_recording()


class RecordingRelay(_RecordingMixin, CopyForwardAlgorithm):
    def __init__(self):
        super().__init__()
        self._init_recording()


def build_deep_chain(length=5):
    """source -> r1 -> r2 -> ... -> sink, all recording failure events."""
    net = SimNetwork()
    algorithms = [RecordingRelay() for _ in range(length - 1)] + [RecordingSink()]
    nodes = []
    for i, algorithm in enumerate(algorithms):
        bandwidth = BandwidthSpec(total=100 * KB) if i == 0 else None
        nodes.append(net.add_node(algorithm, name=f"n{i}", bandwidth=bandwidth))
    for i in range(length - 1):
        algorithms[i].set_downstreams([nodes[i + 1]])
    net.start()
    net.observer.deploy_source(nodes[0], app=9, payload_size=5000)
    net.run(5)
    return net, algorithms, nodes


def test_source_node_death_cascades_to_every_descendant():
    net, algorithms, nodes = build_deep_chain(5)
    kill_node(net, nodes[0])
    net.run(5)
    # Direct child sees the broken link; everyone further down sees the
    # domino BROKEN_SOURCE for app 9.
    assert str(nodes[0]) in algorithms[1].broken_links
    for depth in (2, 3, 4):
        assert 9 in algorithms[depth].broken_sources, f"depth {depth} missed the domino"


def test_midpath_death_notifies_only_downstream():
    net, algorithms, nodes = build_deep_chain(5)
    kill_node(net, nodes[2])
    net.run(5)
    # Upstream of the failure: a broken *downstream* link, no broken source.
    assert str(nodes[2]) in algorithms[1].broken_links
    assert algorithms[1].broken_sources == []
    assert algorithms[0].broken_sources == []
    # Downstream: the domino reaches the sink.
    assert 9 in algorithms[4].broken_sources


def test_multipath_node_survives_single_upstream_loss():
    """A node fed by two upstreams keeps flowing when one dies."""
    net = SimNetwork()
    src = CopyForwardAlgorithm()
    relay_a, relay_b = CopyForwardAlgorithm(), CopyForwardAlgorithm()
    sink = RecordingSink()
    n_src = net.add_node(src, name="src", bandwidth=BandwidthSpec(total=100 * KB))
    n_a = net.add_node(relay_a, name="a")
    n_b = net.add_node(relay_b, name="b")
    n_sink = net.add_node(sink, name="sink")
    src.set_downstreams([n_a, n_b])
    relay_a.set_downstreams([n_sink])
    relay_b.set_downstreams([n_sink])
    net.start()
    net.observer.deploy_source(n_src, app=3, payload_size=5000)
    net.run(5)
    kill_node(net, n_a)
    net.run(8)
    # One upstream remains: no BROKEN_SOURCE at the sink, data still flows.
    assert 3 not in sink.broken_sources
    before = sink.received
    net.run(5)
    assert sink.received > before
