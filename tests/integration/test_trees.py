"""Integration tests of the tree-construction case study."""

import pytest

from repro.experiments.fig9_table3_trees import LAST_MILE, run_tree_session


def test_unicast_builds_a_star():
    run = run_tree_session("unicast", seed=0, settle=20)
    assert run.is_spanning_tree()
    assert all(parent == "S" for parent, _ in run.edges)
    assert run.degree["S"] == 4


def test_ns_aware_matches_paper_tree():
    """The paper's Fig. 9(g): S -> {A, D}, A -> {B, C}."""
    run = run_tree_session("ns-aware", seed=1, settle=20)
    assert run.is_spanning_tree()
    assert sorted(run.edges) == [("A", "B"), ("A", "C"), ("S", "A"), ("S", "D")]


def test_ns_aware_throughput_doubles_unicast():
    unicast = run_tree_session("unicast", seed=1, settle=25)
    ns_aware = run_tree_session("ns-aware", seed=1, settle=25)
    for node in "ABCD":
        assert ns_aware.throughput[node] > 1.6 * unicast.throughput[node]
    # Paper's numbers: ~100 KB/s each for ns-aware, ~50 KB/s for unicast.
    assert ns_aware.throughput["A"] == pytest.approx(100_000, rel=0.15)
    assert unicast.throughput["A"] == pytest.approx(50_000, rel=0.15)


def test_randomized_builds_some_spanning_tree():
    run = run_tree_session("random", seed=1, settle=20)
    assert run.is_spanning_tree()


def test_stress_accounting_matches_definition():
    run = run_tree_session("ns-aware", seed=1, settle=20)
    for node in "SABCD":
        expected = run.degree[node] / (LAST_MILE[node] / 100.0)
        assert run.stress[node] == pytest.approx(expected)


def test_total_degree_is_twice_edges():
    for policy in ("unicast", "random", "ns-aware"):
        run = run_tree_session(policy, seed=1, settle=15)
        assert sum(run.degree.values()) == 2 * len(run.edges)
