"""Random-coefficient coding and larger-scale smoke tests."""

import pytest

from repro.algorithms.coding import (
    CodedSourceAlgorithm,
    CodingNodeAlgorithm,
    DecodingSinkAlgorithm,
)
from repro.core.bandwidth import BandwidthSpec
from repro.experiments.common import KB
from repro.sim.network import SimNetwork


def test_random_coefficients_decode_like_fixed_ones():
    """The butterfly with RLNC (random nonzero coefficients at D) reaches
    the same effective rates as the paper's deterministic a+b."""
    from repro.experiments.topologies import build_butterfly

    deployment = build_butterfly(coding=True, seed=3)
    # Swap D's combination rule for random coefficients.
    deployment.node_d._coefficients = "random"
    net = deployment.net
    net.observer.deploy_source(deployment.nodes["A"], app=1, payload_size=5000)
    net.run(25)
    rates = deployment.effective_rates()
    assert rates["F"] == pytest.approx(400 * KB, rel=0.1)
    assert rates["G"] == pytest.approx(400 * KB, rel=0.1)
    assert deployment.node_f.decoded_generations > 100


def test_three_way_coding_k3():
    """k=3: three sub-streams, a coding node combining all three, and a
    sink fed by two originals plus the combination decodes everything."""
    net = SimNetwork()
    source = CodedSourceAlgorithm()
    coder = CodingNodeAlgorithm(k=3, coefficients="random", seed=1)
    sink = DecodingSinkAlgorithm(k=3)

    n_src = net.add_node(source, name="src", bandwidth=BandwidthSpec(total=300 * KB))
    relays = []
    relay_ids = []
    from repro.algorithms.forwarding import CopyForwardAlgorithm

    for i in range(3):
        relay = CopyForwardAlgorithm()
        relays.append(relay)
        relay_ids.append(net.add_node(relay, name=f"r{i}"))
    n_coder = net.add_node(coder, name="coder")
    n_sink = net.add_node(sink, name="sink")

    source.set_downstreams(relay_ids)  # sub-stream i -> relay i
    # All three relays feed the coder; relays 0 and 1 also feed the sink.
    for i, relay in enumerate(relays):
        targets = [n_coder] + ([n_sink] if i < 2 else [])
        relay.set_downstreams(targets)
    coder.set_downstreams([n_sink])

    net.start()
    net.observer.deploy_source(n_src, app=1, payload_size=3000)
    net.run(30)
    # The sink sees originals 0 and 1 plus random combinations of all
    # three: every generation decodes.
    assert sink.decoded_generations > 50
    assert sink.effective_rate() == pytest.approx(300 * KB, rel=0.15)
    assert coder.combined > 50


def test_150_node_dissemination_smoke():
    """A 150-receiver ns-aware session joins completely and delivers."""
    from repro.experiments.fig11_planetlab_trees import run_planetlab_tree

    run = run_planetlab_tree("ns-aware", n_nodes=150, join_spacing=0.25, settle=15)
    assert run.joined == 149
    assert len(run.tree_edges) == 149
    assert min(run.throughputs) > 0
    assert max(run.stresses) < 12
