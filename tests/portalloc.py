"""Ephemeral-safe port allocation shared by every socket test.

The net tests used to hand out fixed ports from per-file
``itertools.count`` bases (25000/26000/27000) — collision-free only as
long as no two test files, pytest workers or stray daemons ever touch
the same range.  This helper asks the kernel instead: bind a throwaway
``SO_REUSEADDR`` socket to port 0, record the port the kernel picked,
and release it.  The subsequent real ``bind()`` is safe because the
kernel does not re-issue the port to other port-0 binds while it sits
in ``TIME_WAIT``, and ``SO_REUSEADDR`` (set by asyncio's
``create_server``) lets the test's own listener claim it regardless.

``reserve_port`` returns a bare port, ``next_addr`` the ``NodeId`` most
tests actually want.
"""

from __future__ import annotations

import socket

from repro.core.ids import NodeId


def reserve_port(ip: str = "127.0.0.1") -> int:
    """Return a port the kernel just handed out and nobody is listening on."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((ip, 0))
        return probe.getsockname()[1]


def next_addr(ip: str = "127.0.0.1") -> NodeId:
    """A fresh loopback ``NodeId`` on a kernel-allocated free port."""
    return NodeId(ip, reserve_port(ip))
