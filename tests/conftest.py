"""Repo-wide pytest fixtures."""

import pytest

from tests.portalloc import next_addr as _next_addr
from tests.portalloc import reserve_port as _reserve_port


@pytest.fixture
def port_alloc():
    """Callable fixture: each call reserves a fresh ephemeral-safe port."""
    return _reserve_port


@pytest.fixture
def addr_alloc():
    """Callable fixture: each call yields a loopback NodeId on a free port."""
    return _next_addr
