"""Unit tests for the Algorithm base class (iAlgorithm) with a stub engine."""

import pytest

from repro.core.algorithm import Algorithm, Disposition, KnownHosts
from repro.core.ids import CONTROL_APP, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType

SELF = NodeId("10.0.0.1", 7000)
PEER = NodeId("10.0.0.2", 7000)
OTHER = NodeId("10.0.0.3", 7000)


class StubEngine:
    """Minimal EngineServices double recording every interaction."""

    def __init__(self):
        self.sent = []
        self.observer_msgs = []
        self.sources = []
        self.stopped = []
        self.timers = []
        self._now = 0.0

    @property
    def node_id(self):
        return SELF

    def now(self):
        return self._now

    def send(self, msg, dest):
        self.sent.append((msg, dest))

    def send_to_observer(self, msg):
        self.observer_msgs.append(msg)

    def upstreams(self):
        return []

    def downstreams(self):
        return []

    def link_stats(self, peer):
        return None

    def start_source(self, app, payload_size):
        self.sources.append((app, payload_size))

    def stop_source(self, app):
        self.stopped.append(app)

    def set_timer(self, delay, token=0):
        self.timers.append((delay, token))


@pytest.fixture
def bound():
    algorithm = Algorithm(seed=1)
    engine = StubEngine()
    algorithm.bind(engine)
    return algorithm, engine


def test_engine_access_requires_bind():
    algorithm = Algorithm()
    with pytest.raises(RuntimeError):
        _ = algorithm.engine


def test_boot_reply_populates_known_hosts(bound):
    algorithm, _ = bound
    msg = Message.with_fields(MsgType.BOOT_REPLY, PEER, CONTROL_APP,
                              hosts=[str(PEER), str(OTHER)])
    assert algorithm.process(msg) is Disposition.DONE
    assert PEER in algorithm.known_hosts and OTHER in algorithm.known_hosts


def test_deploy_starts_source_with_payload_size(bound):
    algorithm, engine = bound
    msg = Message.with_fields(MsgType.S_DEPLOY, PEER, 5, app=5, payload_size=2048)
    algorithm.process(msg)
    assert engine.sources == [(5, 2048)]


def test_terminate_source_stops_it(bound):
    algorithm, engine = bound
    algorithm.process(Message.with_fields(MsgType.S_TERMINATE, PEER, 5, app=5))
    assert engine.stopped == [5]


def test_broken_link_drops_peer_from_known_hosts(bound):
    algorithm, _ = bound
    algorithm.known_hosts.add(PEER)
    msg = Message.with_fields(MsgType.BROKEN_LINK, SELF, CONTROL_APP,
                              peer=str(PEER), direction="up")
    algorithm.process(msg)
    assert PEER not in algorithm.known_hosts


def test_default_data_handler_consumes(bound):
    algorithm, engine = bound
    msg = Message(MsgType.DATA, PEER, 1, b"payload")
    assert algorithm.process(msg) is Disposition.DONE
    assert engine.sent == []


def test_unknown_type_falls_through_to_default(bound):
    algorithm, _ = bound
    msg = Message(4242, PEER, 1, b"")
    assert algorithm.process(msg) is Disposition.DONE


def test_register_overrides_handler(bound):
    algorithm, _ = bound
    seen = []
    algorithm.register(MsgType.DATA, lambda m: seen.append(m) or Disposition.HOLD)
    msg = Message(MsgType.DATA, PEER, 1, b"x")
    assert algorithm.process(msg) is Disposition.HOLD
    assert seen == [msg]


def test_timer_dispatch_carries_token(bound):
    algorithm, _ = bound
    tokens = []
    algorithm.on_timer = lambda token: tokens.append(token)
    algorithm.process(Message.with_fields(MsgType.TIMER, SELF, CONTROL_APP, token=7))
    assert tokens == [7]


def test_send_many_sends_same_reference(bound):
    algorithm, engine = bound
    msg = Message(MsgType.DATA, SELF, 1, b"zero-copy")
    algorithm.send_many(msg, [PEER, OTHER])
    assert [dest for _, dest in engine.sent] == [PEER, OTHER]
    assert all(sent is msg for sent, _ in engine.sent)  # zero copy


def test_disseminate_probability_bounds(bound):
    algorithm, engine = bound
    nodes = [NodeId("10.0.1.1", p) for p in range(7000, 7050)]
    sent = algorithm.disseminate(Message(MsgType.GOSSIP, SELF, 0, b"r"), nodes, p=1.0)
    assert sent == 50
    engine.sent.clear()
    sent = algorithm.disseminate(Message(MsgType.GOSSIP, SELF, 0, b"r"), nodes, p=0.0)
    assert sent == 0
    with pytest.raises(ValueError):
        algorithm.disseminate(Message(MsgType.GOSSIP, SELF, 0, b"r"), nodes, p=1.5)


def test_disseminate_skips_self(bound):
    algorithm, engine = bound
    sent = algorithm.disseminate(Message(MsgType.GOSSIP, SELF, 0, b"r"), [SELF, PEER], p=1.0)
    assert sent == 1
    assert engine.sent[0][1] == PEER


def test_disseminate_partial_probability_is_plausible(bound):
    algorithm, _ = bound
    nodes = [NodeId("10.0.1.1", p) for p in range(7000, 7400)]
    sent = algorithm.disseminate(Message(MsgType.GOSSIP, SELF, 0, b"r"), nodes, p=0.5)
    assert 120 < sent < 280  # ~Binomial(400, 0.5)


def test_trace_goes_to_observer(bound):
    algorithm, engine = bound
    algorithm.trace("debug info", app=3)
    assert len(engine.observer_msgs) == 1
    assert engine.observer_msgs[0].type == MsgType.TRACE
    assert engine.observer_msgs[0].payload == b"debug info"


def test_known_hosts_set_semantics():
    hosts = KnownHosts()
    hosts.add(PEER)
    hosts.add(PEER)
    assert len(hosts) == 1
    hosts.add(OTHER)
    assert hosts.as_list() == [PEER, OTHER]  # insertion ordered
    hosts.discard(PEER)
    assert PEER not in hosts
    hosts.discard(PEER)  # idempotent


def test_known_hosts_sample():
    import random

    hosts = KnownHosts()
    nodes = [NodeId("10.0.1.1", p) for p in range(7000, 7010)]
    for node in nodes:
        hosts.add(node)
    sample = hosts.sample(3, random.Random(0))
    assert len(sample) == 3 and len(set(sample)) == 3
    assert hosts.sample(100, random.Random(0)) == nodes
