"""Unit tests for the switching bookkeeping (ports, pendings, WRR)."""

import pytest

from repro.core.buffer import CircularBuffer
from repro.core.ids import NodeId
from repro.core.switch import PendingForward, ReceiverPort, SwitchScheduler

A = NodeId("10.0.0.1", 7000)
B = NodeId("10.0.0.2", 7000)
C = NodeId("10.0.0.3", 7000)


def make_port(peer, weight=1, capacity=4):
    return ReceiverPort(peer=peer, buffer=CircularBuffer(capacity), weight=weight)


def test_rotation_covers_every_port_and_rotates():
    scheduler = SwitchScheduler()
    for peer in (A, B, C):
        scheduler.add_port(make_port(peer))
    first = [port.peer for port in scheduler.rotation()]
    second = [port.peer for port in scheduler.rotation()]
    assert set(first) == {A, B, C}
    assert first != second  # the starting port advances
    assert set(second) == {A, B, C}


def test_no_port_starves_across_rotations():
    scheduler = SwitchScheduler()
    for peer in (A, B, C):
        scheduler.add_port(make_port(peer))
    leaders = [scheduler.rotation()[0].peer for _ in range(6)]
    assert set(leaders) == {A, B, C}
    assert leaders[:3] == leaders[3:]  # deterministic cycle


def test_remove_port_keeps_cursor_consistent():
    scheduler = SwitchScheduler()
    for peer in (A, B, C):
        scheduler.add_port(make_port(peer))
    scheduler.rotation()
    scheduler.rotation()
    removed = scheduler.remove_port(A)
    assert removed is not None and removed.peer == A
    rotation = [port.peer for port in scheduler.rotation()]
    assert set(rotation) == {B, C}
    assert scheduler.remove_port(A) is None


def test_duplicate_port_rejected():
    scheduler = SwitchScheduler()
    scheduler.add_port(make_port(A))
    with pytest.raises(ValueError):
        scheduler.add_port(make_port(A))


def test_set_weight_validates_and_applies():
    scheduler = SwitchScheduler()
    scheduler.add_port(make_port(A))
    scheduler.set_weight(A, 5)
    assert scheduler.get_port(A).weight == 5
    with pytest.raises(ValueError):
        scheduler.set_weight(A, 0)
    with pytest.raises(KeyError):
        scheduler.set_weight(B, 2)


def test_credits_initialized_and_replenished():
    scheduler = SwitchScheduler()
    port = make_port(A, weight=3)
    scheduler.add_port(port)
    assert port.credit == 3
    port.credit = 0
    scheduler.replenish_credits()
    assert port.credit == 3


def test_blocked_port_semantics():
    port = make_port(A)
    assert not port.blocked
    port.pending.append(PendingForward(msg=object(), remaining=[B]))
    assert port.blocked
    port.pending[0].remaining.clear()
    assert not port.blocked
    port.prune_pending()
    assert port.pending == []


def test_discard_dest_clears_obligations_to_dead_nodes():
    port = make_port(A)
    port.pending.append(PendingForward(msg=object(), remaining=[B, C]))
    port.discard_dest(B)
    assert port.pending[0].remaining == [C]
    port.discard_dest(C)
    assert port.pending == []  # fully pruned
    assert not port.blocked


def test_has_work_reflects_buffer_and_pending():
    scheduler = SwitchScheduler()
    port = make_port(A)
    scheduler.add_port(port)
    assert not scheduler.has_work()
    port.buffer.put(object())
    assert scheduler.has_work()
    assert scheduler.total_buffered() == 1


# --- incremental work counters (O(1) has_work / total_buffered) -----------------


def test_total_buffered_tracks_put_get_and_clear():
    scheduler = SwitchScheduler()
    pa, pb = make_port(A), make_port(B)
    scheduler.add_port(pa)
    scheduler.add_port(pb)
    for _ in range(3):
        pa.buffer.put(object())
    pb.buffer.put(object())
    assert scheduler.total_buffered() == 4
    pa.buffer.get()
    assert scheduler.total_buffered() == 3
    pa.buffer.clear()
    assert scheduler.total_buffered() == 1
    pb.buffer.get()
    assert scheduler.total_buffered() == 0
    assert not scheduler.has_work()


def test_counters_adopt_prefilled_buffer_on_add():
    scheduler = SwitchScheduler()
    port = make_port(A)
    port.buffer.put(object())
    port.buffer.put(object())
    scheduler.add_port(port)
    assert scheduler.total_buffered() == 2
    assert scheduler.has_work()


def test_remove_port_releases_its_buffered_count():
    scheduler = SwitchScheduler()
    pa, pb = make_port(A), make_port(B)
    scheduler.add_port(pa)
    scheduler.add_port(pb)
    pa.buffer.put(object())
    pb.buffer.put(object())
    scheduler.remove_port(A)
    assert scheduler.total_buffered() == 1
    # The detached buffer no longer feeds the scheduler's counter.
    pa.buffer.get()
    assert scheduler.total_buffered() == 1
    scheduler.remove_port(B)
    assert scheduler.total_buffered() == 0
    assert not scheduler.has_work()


def test_has_work_tracks_pending_transitions():
    scheduler = SwitchScheduler()
    port = make_port(A)
    scheduler.add_port(port)
    assert not scheduler.has_work()
    port.add_pending(PendingForward(msg=object(), remaining=[B]))
    assert scheduler.has_work()
    assert scheduler.total_buffered() == 0  # pending is not buffered
    port.pending[0].remaining.clear()
    port.prune_pending()
    assert not scheduler.has_work()


def test_prune_resyncs_counters_after_direct_pending_append():
    scheduler = SwitchScheduler()
    port = make_port(A)
    scheduler.add_port(port)
    # Bypass add_pending (as legacy callers might); prune repairs the tally.
    port.pending.append(PendingForward(msg=object(), remaining=[B]))
    port.prune_pending()
    assert scheduler.has_work()
    port.pending[0].remaining.clear()
    port.prune_pending()
    assert not scheduler.has_work()


class PlainBuffer:
    """A FIFO without the on_size_change hook (the unhooked fallback)."""

    def __init__(self):
        self._items = []

    def put(self, item):
        self._items.append(item)

    def get(self):
        return self._items.pop(0)

    @property
    def is_empty(self):
        return not self._items

    def __len__(self):
        return len(self._items)


def test_unhooked_buffer_mutations_leave_no_residue_after_removal():
    # Regression: an unhooked buffer's length was seeded into _buffered
    # on add and its *current* length subtracted on remove, so any size
    # change in between left permanent ghost work (or a negative count).
    scheduler = SwitchScheduler()
    port = ReceiverPort(peer=A, buffer=PlainBuffer())
    port.buffer.put(object())
    port.buffer.put(object())
    scheduler.add_port(port)
    assert scheduler.total_buffered() == 2  # scan fallback sees them
    port.buffer.get()
    port.buffer.get()  # drained while registered: no listener updates
    assert scheduler.total_buffered() == 0
    scheduler.remove_port(A)
    assert scheduler.total_buffered() == 0
    assert not scheduler.has_work()


def test_unhooked_buffer_growth_cannot_go_negative_on_removal():
    scheduler = SwitchScheduler()
    hooked = make_port(A)
    raw = ReceiverPort(peer=B, buffer=PlainBuffer())
    scheduler.add_port(hooked)
    scheduler.add_port(raw)
    raw.buffer.put(object())  # grew while registered
    scheduler.remove_port(B)
    hooked.buffer.put(object())
    # Back on the O(1) path: the hooked port's message must be visible.
    assert scheduler.total_buffered() == 1
    assert scheduler.has_work()


def test_completed_forward_owes_no_work():
    port = make_port(A)
    forward = PendingForward(msg=object(), remaining=[B])
    port.add_pending(forward)
    assert port.has_work()
    forward.remaining.clear()  # completed in place, not yet pruned
    assert not port.has_work()  # done forwards are pruning debt, not work


def test_add_port_ignores_done_forwards_in_pending_tally():
    scheduler = SwitchScheduler()
    port = make_port(A)
    port.pending.append(PendingForward(msg=object(), remaining=[]))
    scheduler.add_port(port)
    assert not scheduler.has_work()


def test_rotation_reuses_output_list_with_stable_contents():
    scheduler = SwitchScheduler()
    for peer in (A, B, C):
        scheduler.add_port(make_port(peer))
    first = scheduler.rotation()
    first_snapshot = [port.peer for port in first]
    second = scheduler.rotation()
    assert first is second  # one allocation per scheduler, not per pass
    assert [port.peer for port in second] != first_snapshot
    assert {port.peer for port in second} == {A, B, C}


def test_rotation_list_resizes_when_ports_change():
    scheduler = SwitchScheduler()
    scheduler.add_port(make_port(A))
    scheduler.add_port(make_port(B))
    assert len(scheduler.rotation()) == 2
    scheduler.add_port(make_port(C))
    assert {port.peer for port in scheduler.rotation()} == {A, B, C}
    scheduler.remove_port(B)
    assert {port.peer for port in scheduler.rotation()} == {A, C}


def test_remove_port_clears_stale_rotation_aliases():
    scheduler = SwitchScheduler()
    for peer in (A, B, C):
        scheduler.add_port(make_port(peer))
    held = scheduler.rotation()  # a caller wrongly holding the pass
    scheduler.remove_port(B)
    # The shared list was cleared: the removed port cannot leak through
    # a stale alias, and the next pass rebuilds from live ports only.
    assert all(port.peer != B for port in held)
    assert {port.peer for port in scheduler.rotation()} == {A, C}


def test_queue_snapshot_tracks_depth_and_bytes():
    scheduler = SwitchScheduler()
    port_a, port_b = make_port(A), make_port(B)
    scheduler.add_port(port_a)
    scheduler.add_port(port_b)
    port_a.buffer.put("x")
    port_a.note_bytes(100)
    port_a.buffer.put("y")
    port_a.note_bytes(50)
    port_b.buffer.put("z")
    port_b.note_bytes(7)
    assert scheduler.queue_snapshot() == {str(A): (2, 150), str(B): (1, 7)}
    assert scheduler.total_buffered() == 3
    assert scheduler.total_buffered_bytes() == 157
    port_a.buffer.get()
    port_a.note_bytes(-100)
    assert scheduler.queue_snapshot()[str(A)] == (1, 50)
    assert scheduler.total_buffered_bytes() == 57


def test_note_bytes_before_registration_folds_into_scheduler():
    port = make_port(A)
    port.buffer.put("x")
    port.note_bytes(64)  # no scheduler yet: charged on the port only
    assert port.buffered_bytes == 64
    scheduler = SwitchScheduler()
    scheduler.add_port(port)
    assert scheduler.total_buffered_bytes() == 64
    removed = scheduler.remove_port(A)
    assert removed is port
    assert scheduler.total_buffered_bytes() == 0
    # the removed port keeps its own gauge; the scheduler forgot it
    assert port.buffered_bytes == 64


def test_remove_port_refunds_buffered_bytes():
    scheduler = SwitchScheduler()
    port_a, port_b = make_port(A), make_port(B)
    scheduler.add_port(port_a)
    scheduler.add_port(port_b)
    port_a.note_bytes(30)
    port_b.note_bytes(12)
    scheduler.remove_port(A)
    assert scheduler.total_buffered_bytes() == 12
    assert scheduler.queue_snapshot() == {str(B): (0, 12)}
