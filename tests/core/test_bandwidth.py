"""Unit and property tests for rate limiters and node throttles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bandwidth import BandwidthSpec, NodeThrottle, RateLimiter


def test_unlimited_limiter_never_delays():
    limiter = RateLimiter(None)
    assert limiter.reserve(10**9, now=0.0) == 0.0


def test_serialization_delay_matches_rate():
    limiter = RateLimiter(1000.0)  # 1000 B/s
    assert limiter.reserve(500, now=0.0) == pytest.approx(0.5)
    # The pipe is busy until t=0.5; a second message queues behind it.
    assert limiter.reserve(500, now=0.0) == pytest.approx(1.0)


def test_idle_pipe_does_not_accumulate_credit():
    limiter = RateLimiter(1000.0)
    limiter.reserve(1000, now=0.0)  # busy until 1.0
    # After a long idle period the next transfer still takes size/rate.
    assert limiter.reserve(1000, now=100.0) == pytest.approx(1.0)


def test_set_rate_at_runtime():
    limiter = RateLimiter(1000.0)
    limiter.set_rate(500.0)
    assert limiter.reserve(500, now=0.0) == pytest.approx(1.0)
    limiter.set_rate(None)
    assert limiter.reserve(10**6, now=10.0) == 0.0


def test_invalid_rate_rejected():
    with pytest.raises(ValueError):
        RateLimiter(0)
    limiter = RateLimiter(10)
    with pytest.raises(ValueError):
        limiter.set_rate(-5)


def test_would_delay_does_not_book():
    limiter = RateLimiter(1000.0)
    assert limiter.would_delay(1000, now=0.0) == pytest.approx(1.0)
    assert limiter.would_delay(1000, now=0.0) == pytest.approx(1.0)  # unchanged
    limiter.reserve(1000, now=0.0)
    assert limiter.would_delay(1000, now=0.0) == pytest.approx(2.0)


@given(
    rate=st.floats(min_value=1.0, max_value=1e6),
    sizes=st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=50),
)
def test_property_long_run_rate_never_exceeded(rate, sizes):
    """Total bytes sent by time T never exceed rate * T (plus one message)."""
    limiter = RateLimiter(rate)
    now = 0.0
    total = 0
    for size in sizes:
        delay = limiter.reserve(size, now)
        now += delay  # sender waits for completion before next send
        total += size
    assert total <= rate * now + 1e-6 * rate + 1  # numeric slack


def test_node_throttle_send_uses_min_of_caps():
    throttle = NodeThrottle(BandwidthSpec(total=1000.0, up=500.0))
    # up is the binding cap: 500 B at 500 B/s = 1 s.
    assert throttle.reserve_send("peer", 500, now=0.0) == pytest.approx(1.0)


def test_node_throttle_per_link_cap():
    spec = BandwidthSpec(links={"d1": 100.0})
    throttle = NodeThrottle(spec)
    assert throttle.reserve_send("d1", 100, now=0.0) == pytest.approx(1.0)
    assert throttle.reserve_send("d2", 100, now=0.0) == 0.0  # uncapped link


def test_node_throttle_total_shared_between_directions():
    throttle = NodeThrottle(BandwidthSpec(total=1000.0))
    throttle.reserve_send("peer", 1000, now=0.0)  # books the pipe until 1.0
    assert throttle.reserve_recv(1000, now=0.0) == pytest.approx(2.0)


def test_node_throttle_runtime_updates():
    throttle = NodeThrottle()
    assert throttle.reserve_send("x", 10**6, now=0.0) == 0.0
    throttle.set_up(1000.0)
    assert throttle.reserve_send("x", 1000, now=1.0) == pytest.approx(1.0)
    throttle.set_link("x", 100.0)
    assert throttle.reserve_send("x", 100, now=100.0) == pytest.approx(1.0)
    throttle.drop_link("x")
    assert throttle.spec.links == {}


def test_spec_snapshot_reflects_rates():
    throttle = NodeThrottle(BandwidthSpec(total=1.0, up=2.0, down=3.0, links={"a": 4.0}))
    spec = throttle.spec
    assert (spec.total, spec.up, spec.down, spec.links) == (1.0, 2.0, 3.0, {"a": 4.0})


def test_spec_copy_is_independent():
    spec = BandwidthSpec(links={"a": 1.0})
    copied = spec.copy()
    copied.links["b"] = 2.0
    assert "b" not in spec.links
