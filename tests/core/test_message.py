"""Unit and property tests for the message codec (the 24-byte header)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ids import NodeId, int_to_ip, ip_to_int
from repro.core.message import HEADER_SIZE, Message
from repro.core.msgtypes import MsgType
from repro.errors import CodecError

SENDER = NodeId("128.100.241.68", 5000)


def test_header_is_exactly_24_bytes():
    msg = Message(MsgType.DATA, SENDER, 7, b"")
    assert HEADER_SIZE == 24
    assert len(msg.pack()) == 24


def test_size_counts_header_plus_payload():
    msg = Message(MsgType.DATA, SENDER, 7, b"x" * 100)
    assert msg.size == 124


def test_roundtrip_preserves_all_fields():
    msg = Message(MsgType.S_QUERY, SENDER, 3, b"hello world", seq=42)
    decoded = Message.unpack(msg.pack())
    assert decoded == msg
    assert decoded.type == MsgType.S_QUERY
    assert decoded.sender == SENDER
    assert decoded.app == 3
    assert decoded.seq == 42
    assert decoded.payload == b"hello world"


def test_truncated_header_rejected():
    with pytest.raises(CodecError, match="truncated"):
        Message.unpack(b"\x00" * 10)


def test_payload_length_mismatch_rejected():
    packed = Message(MsgType.DATA, SENDER, 1, b"abc").pack()
    with pytest.raises(CodecError, match="mismatch"):
        Message.unpack(packed + b"extra")
    with pytest.raises(CodecError, match="mismatch"):
        Message.unpack(packed[:-1])


def test_oversized_declared_payload_rejected():
    packed = Message(MsgType.DATA, SENDER, 1, b"abcd").pack()
    with pytest.raises(CodecError, match="exceeds"):
        Message.unpack(packed, max_payload=3)


def test_clone_is_deep_and_equal():
    msg = Message(MsgType.DATA, SENDER, 1, b"payload", seq=5)
    clone = msg.clone()
    assert clone == msg and clone is not msg
    clone.seq = 6  # the one mutable field must not alias
    assert msg.seq == 5


def test_with_seq_shares_payload_but_not_seq():
    msg = Message(MsgType.DATA, SENDER, 1, b"payload", seq=1)
    renumbered = msg.with_seq(9)
    assert renumbered.payload is msg.payload
    assert renumbered.seq == 9 and msg.seq == 1


def test_fields_roundtrip():
    msg = Message.with_fields(MsgType.S_JOIN, SENDER, 2, app=2, parent="1.2.3.4:80")
    assert msg.fields() == {"app": 2, "parent": "1.2.3.4:80"}


def test_fields_rejects_non_json_payload():
    msg = Message(MsgType.DATA, SENDER, 1, b"\xff\xfe binary")
    with pytest.raises(CodecError):
        msg.fields()


def test_fields_rejects_non_object_json():
    msg = Message(MsgType.DATA, SENDER, 1, b"[1, 2]")
    with pytest.raises(CodecError):
        msg.fields()


def test_bad_type_rejected():
    with pytest.raises(CodecError):
        Message(-1, SENDER, 1)
    with pytest.raises(CodecError):
        Message(2**32, SENDER, 1)


def test_non_bytes_payload_rejected():
    with pytest.raises(CodecError):
        Message(MsgType.DATA, SENDER, 1, "a string")  # type: ignore[arg-type]


ips = st.integers(min_value=0, max_value=0xFFFFFFFF).map(int_to_ip)
node_ids = st.builds(NodeId, ip=ips, port=st.integers(min_value=0, max_value=0xFFFFFFFF))


@settings(deadline=None)  # per-example wall-clock is load-sensitive in CI
@given(
    type_=st.integers(min_value=0, max_value=0xFFFFFFFF),
    sender=node_ids,
    app=st.integers(min_value=0, max_value=0xFFFFFFFF),
    seq=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    payload=st.binary(max_size=4096),
)
def test_property_pack_unpack_roundtrip(type_, sender, app, seq, payload):
    msg = Message(type_, sender, app, payload, seq=seq)
    assert Message.unpack(msg.pack()) == msg


@given(value=st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_property_ip_int_roundtrip(value):
    assert ip_to_int(int_to_ip(value)) == value


def test_ip_validation():
    with pytest.raises(CodecError):
        ip_to_int("256.0.0.1")
    with pytest.raises(CodecError):
        ip_to_int("not-an-ip")
    with pytest.raises(CodecError):
        int_to_ip(-1)


def test_node_id_parse_and_str():
    node = NodeId.parse("10.0.0.1:8080")
    assert node == NodeId("10.0.0.1", 8080)
    assert str(node) == "10.0.0.1:8080"
    with pytest.raises(CodecError):
        NodeId.parse("nonsense")
