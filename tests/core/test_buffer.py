"""Unit and property tests for the bounded circular buffer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.buffer import CircularBuffer
from repro.errors import BufferClosedError


def test_fifo_order():
    buf = CircularBuffer(3)
    buf.put("a")
    buf.put("b")
    buf.put("c")
    assert [buf.get(), buf.get(), buf.get()] == ["a", "b", "c"]


def test_capacity_enforced():
    buf = CircularBuffer(2)
    buf.put(1)
    buf.put(2)
    assert buf.is_full
    with pytest.raises(IndexError):
        buf.put(3)


def test_get_empty_raises():
    buf = CircularBuffer(2)
    with pytest.raises(IndexError):
        buf.get()


def test_wraparound():
    buf = CircularBuffer(2)
    for i in range(10):
        buf.put(i)
        assert buf.get() == i
    assert buf.is_empty


def test_peek_does_not_consume():
    buf = CircularBuffer(2)
    buf.put("x")
    assert buf.peek() == "x"
    assert len(buf) == 1
    assert buf.get() == "x"


def test_clear_returns_in_order():
    buf = CircularBuffer(4)
    for i in range(3):
        buf.put(i)
    assert buf.clear() == [0, 1, 2]
    assert buf.is_empty and buf.free == 4


def test_iteration_oldest_first_non_consuming():
    buf = CircularBuffer(3)
    buf.put(1)
    buf.put(2)
    buf.get()
    buf.put(3)
    buf.put(4)  # wraps
    assert list(buf) == [2, 3, 4]
    assert len(buf) == 3


def test_close_blocks_put_allows_get():
    buf = CircularBuffer(2)
    buf.put("a")
    buf.close()
    with pytest.raises(BufferClosedError):
        buf.put("b")
    assert buf.get() == "a"


def test_invalid_capacity():
    with pytest.raises(ValueError):
        CircularBuffer(0)


@given(ops=st.lists(st.one_of(st.tuples(st.just("put"), st.integers()), st.tuples(st.just("get"), st.none())), max_size=200),
       capacity=st.integers(min_value=1, max_value=8))
def test_property_matches_reference_deque(ops, capacity):
    """The buffer behaves exactly like a capacity-bounded deque."""
    from collections import deque

    buf = CircularBuffer(capacity)
    reference: deque = deque()
    for op, value in ops:
        if op == "put":
            if len(reference) < capacity:
                buf.put(value)
                reference.append(value)
            else:
                with pytest.raises(IndexError):
                    buf.put(value)
        else:
            if reference:
                assert buf.get() == reference.popleft()
            else:
                with pytest.raises(IndexError):
                    buf.get()
        assert len(buf) == len(reference)
        assert list(buf) == list(reference)
        assert buf.is_full == (len(reference) == capacity)
        assert buf.is_empty == (not reference)
