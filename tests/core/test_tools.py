"""Tests for the scenario runner and CLI."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.tools.cli import EXPERIMENTS, main
from repro.tools.scenario import build_network, load_scenario, run_scenario


def minimal_spec(**overrides):
    spec = {
        "duration": 10,
        "nodes": [
            {"name": "S", "algorithm": "copy_forward", "bandwidth": {"total": 100_000}},
            {"name": "D", "algorithm": "sink"},
        ],
        "edges": [["S", "D"]],
        "sources": [{"node": "S", "app": 1, "payload_size": 5000}],
    }
    spec.update(overrides)
    return spec


def test_scenario_runs_and_reports():
    report = run_scenario(minimal_spec())
    assert report.duration == 10
    assert report.received["D"] > 100
    assert report.link_rates["S->D"] == pytest.approx(100_000, rel=0.2)
    assert set(report.alive) == {"S", "D"}
    parsed = json.loads(report.to_json())
    assert parsed["received"]["D"] == report.received["D"]


def test_scenario_actions_apply_in_order():
    spec = minimal_spec(duration=30, actions=[
        {"at": 10, "do": "set_bandwidth", "node": "S", "category": "up", "rate": 20_000},
        {"at": 20, "do": "terminate", "node": "D"},
    ])
    report = run_scenario(spec)
    assert report.alive == ["S"]
    # the bandwidth cut plus termination keep totals well below unthrottled
    assert report.received["D"] < 30 * 20 + 10 * 20 + 50


def test_unknown_algorithm_rejected():
    with pytest.raises(ConfigurationError, match="unknown algorithm"):
        build_network({"nodes": [{"name": "X", "algorithm": "quantum"}]})


def test_unknown_action_rejected():
    spec = minimal_spec(actions=[{"at": 1, "do": "explode", "node": "S"}])
    with pytest.raises(ConfigurationError, match="unknown action"):
        run_scenario(spec)


def test_load_scenario_validates(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ConfigurationError):
        load_scenario(bad)
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    with pytest.raises(ConfigurationError):
        load_scenario(empty)
    good = tmp_path / "good.json"
    good.write_text(json.dumps(minimal_spec()))
    assert load_scenario(good)["duration"] == 10


def test_cli_scenario_json_output(tmp_path, capsys):
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(minimal_spec(duration=5)))
    assert main(["scenario", str(path), "--json"]) == 0
    out = capsys.readouterr().out
    assert json.loads(out)["duration"] == 5


def test_cli_experiment_list_and_unknown(capsys):
    assert main(["experiment", "--list"]) == 0
    listed = capsys.readouterr().out.split()
    assert "fig6" in listed and set(listed) == set(EXPERIMENTS)
    assert main(["experiment", "nope"]) == 2


def test_example_scenario_file_is_valid():
    spec = load_scenario("examples/scenarios/bottleneck.json")
    report = run_scenario(spec)
    assert "C" not in report.alive  # the timeline terminated C
    assert report.link_rates["S->A"] == pytest.approx(60_000, rel=0.25)
