"""Fuzzing the decoders: arbitrary bytes must never crash, only CodecError."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.coding.linear import CodedPayload
from repro.algorithms.contentbased.predicates import Predicate, event_from_wire
from repro.algorithms.federation.requirement import Requirement
from repro.apps.streaming import unpack_frame
from repro.core.message import Message
from repro.errors import CodecError, DecodingError, FederationError


@given(blob=st.binary(max_size=256))
def test_message_unpack_total(blob):
    """unpack() either parses (and then re-packs identically) or raises
    CodecError — never anything else."""
    try:
        msg = Message.unpack(blob)
    except CodecError:
        return
    assert msg.pack() == blob


@given(blob=st.binary(max_size=128))
def test_coded_payload_unpack_total(blob):
    try:
        payload = CodedPayload.unpack(blob)
    except DecodingError:
        return
    assert payload.pack() == blob


@given(text=st.text(max_size=100))
def test_requirement_from_wire_total(text):
    try:
        requirement = Requirement.from_wire(text)
    except FederationError:
        return
    requirement.validate()


@given(text=st.text(max_size=100))
def test_predicate_from_wire_total(text):
    try:
        predicate = Predicate.from_wire(text)
    except (CodecError, ValueError):
        return
    assert predicate.filters


@given(blob=st.binary(max_size=64))
def test_event_from_wire_total(blob):
    try:
        event = event_from_wire(blob)
    except CodecError:
        return
    assert isinstance(event, dict)


@given(blob=st.binary(max_size=64))
def test_frame_unpack_total(blob):
    try:
        index, media_time = unpack_frame(blob)
    except CodecError:
        return
    assert isinstance(index, int)


@given(
    fields=st.dictionaries(
        st.text(min_size=1, max_size=10).filter(lambda s: s != "seq"),
        st.one_of(st.integers(), st.text(max_size=20), st.booleans(), st.none()),
        max_size=5,
    )
)
def test_with_fields_roundtrip_any_json_values(fields):
    from repro.core.ids import NodeId

    msg = Message.with_fields(1, NodeId("1.2.3.4", 5), 0, **fields)
    assert msg.fields() == fields
