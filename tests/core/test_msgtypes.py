"""Unit tests for the message-type vocabulary."""

from repro.core.msgtypes import (
    ALGORITHM_TYPE_BASE,
    MsgType,
    is_engine_type,
    type_name,
)


def test_values_are_unique_and_below_user_range():
    values = [member.value for member in MsgType]
    assert len(values) == len(set(values))
    assert all(value < ALGORITHM_TYPE_BASE for value in values)


def test_engine_owned_set():
    assert is_engine_type(MsgType.TERMINATE)
    assert is_engine_type(MsgType.SET_BANDWIDTH)
    assert is_engine_type(MsgType.CONNECT)
    assert is_engine_type(MsgType.REQUEST)
    assert is_engine_type(MsgType.HEARTBEAT)
    # The algorithm must see these:
    assert not is_engine_type(MsgType.DATA)
    assert not is_engine_type(MsgType.BOOT_REPLY)  # KnownHosts handling
    assert not is_engine_type(MsgType.BROKEN_SOURCE)
    assert not is_engine_type(MsgType.S_DEPLOY)
    assert not is_engine_type(ALGORITHM_TYPE_BASE + 5)


def test_type_name_known_and_user():
    assert type_name(MsgType.DATA) == "DATA"
    assert type_name(MsgType.S_FEDERATE) == "S_FEDERATE"
    assert type_name(ALGORITHM_TYPE_BASE + 42) == f"user({ALGORITHM_TYPE_BASE + 42})"


def test_case_study_types_present():
    """The paper's message vocabulary is covered (Table 2 and Section 3)."""
    for name in ("S_DEPLOY", "S_TERMINATE", "S_QUERY", "S_QUERY_ACK",
                 "S_ANNOUNCE", "S_AWARE", "S_FEDERATE", "S_ASSIGN",
                 "TRACE", "BOOT", "REQUEST", "UP_THROUGHPUT"):
        assert hasattr(MsgType, name)
