"""Unit tests for throughput/latency/loss meters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.stats import LatencyMeter, LinkStats, LossCounter, ThroughputMeter


def test_steady_rate_converges():
    meter = ThroughputMeter(window=4.0, bucket_span=0.5)
    # 1000 bytes every 0.1 s = 10 KB/s
    t = 0.0
    for _ in range(100):
        meter.record(1000, t)
        t += 0.1
    assert meter.rate(t) == pytest.approx(10_000, rel=0.1)


def test_rate_decays_after_traffic_stops():
    meter = ThroughputMeter(window=4.0, bucket_span=0.5)
    for i in range(50):
        meter.record(1000, i * 0.1)
    busy = meter.rate(5.0)
    idle = meter.rate(60.0)
    assert idle < busy / 10


def test_totals_never_expire():
    meter = ThroughputMeter()
    meter.record(500, 0.0)
    meter.record(700, 100.0)
    assert meter.total_bytes == 1200
    assert meter.total_messages == 2


def test_rate_zero_before_any_traffic():
    meter = ThroughputMeter()
    assert meter.rate(10.0) == 0.0
    assert meter.last_activity() is None


def test_last_activity_is_exact_record_time():
    meter = ThroughputMeter(window=4.0, bucket_span=0.5)
    meter.record(100, 10.0)
    # Mid-bucket records must not be rounded down to the bucket start:
    # inactivity detection would otherwise see up to bucket_span of
    # phantom idle time.
    meter.record(100, 10.3)
    assert meter.last_activity() == 10.3
    meter.record(100, 17.25)
    assert meter.last_activity() == 17.25


def test_burst_is_smoothed_over_window():
    meter = ThroughputMeter(window=4.0, bucket_span=0.5)
    meter.record(40_000, 10.0)  # one 40 KB burst
    # Shortly after, the window average is bounded by window length.
    assert meter.rate(10.1) <= 40_000 / 0.5 + 1
    assert meter.rate(13.9) == pytest.approx(40_000 / 3.9, rel=0.3)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                          st.integers(min_value=1, max_value=10_000)),
                min_size=1, max_size=100))
def test_property_rate_is_nonnegative_and_bounded(events):
    meter = ThroughputMeter()
    events.sort()
    total = 0
    for t, size in events:
        meter.record(size, t)
        total += size
    last_t = events[-1][0]
    rate = meter.rate(last_t)
    assert rate >= 0
    # Can never exceed everything sent in one minimum-width window.
    assert rate <= total / meter._bucket_span + 1


def test_invalid_meter_config():
    with pytest.raises(ValueError):
        ThroughputMeter(window=0)
    with pytest.raises(ValueError):
        ThroughputMeter(window=1.0, bucket_span=2.0)


def test_latency_first_sample_sets_estimate():
    meter = LatencyMeter()
    meter.record(0.2)
    assert meter.smoothed == pytest.approx(0.2)
    assert meter.samples == 1


def test_latency_ewma_moves_toward_new_samples():
    meter = LatencyMeter(alpha=0.5)
    meter.record(0.1)
    meter.record(0.3)
    assert meter.smoothed == pytest.approx(0.2)


def test_latency_rejects_negative():
    meter = LatencyMeter()
    with pytest.raises(ValueError):
        meter.record(-1.0)
    with pytest.raises(ValueError):
        LatencyMeter(alpha=0.0)


def test_loss_counter_accumulates():
    counter = LossCounter()
    counter.record(5000)
    counter.record(2500, nmessages=2)
    assert counter.messages == 3
    assert counter.bytes == 7500


def test_link_stats_snapshot_is_immutable_view():
    stats = LinkStats()
    stats.throughput.record(1000, 0.0)
    stats.latency.record(0.05)
    stats.loss.record(100)
    snapshot = stats.snapshot(now=0.5)
    assert snapshot.total_bytes == 1000
    assert snapshot.srtt == pytest.approx(0.05)
    assert snapshot.lost_bytes == 100
    stats.throughput.record(1000, 1.0)
    assert snapshot.total_bytes == 1000  # frozen
