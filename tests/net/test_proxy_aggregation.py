"""Aggregation-mode tests for the observer proxy.

Relay mode is pinned down in :mod:`tests.net.test_proxy`; this module
covers the reducing-node behavior that turns proxies into an observer
tree: statuses absorbed instead of relayed, metric roll-ups flushed as
deltas, full-resync epochs after an upstream redial (with BOOT replay),
departed members purged without stale series, outbox overflow followed
by a clean resync, and two-level tree composition.
"""

import asyncio
import socket
import struct

from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.net.framing import (
    expect_hello,
    open_identified,
    proxy_frame_bytes,
    read_message,
    unwrap_proxy,
    write_message,
)
from repro.net.proxy import ObserverProxy
from repro.net.resilience import BackoffPolicy
from repro.telemetry import Telemetry
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots

from tests.portalloc import next_addr


def run(coro):
    return asyncio.run(coro)


async def wait_for(predicate, timeout=5.0):
    async with asyncio.timeout(timeout):
        while not predicate():
            await asyncio.sleep(0.01)


class FakeParent:
    """An upstream endpoint that records frames and survives reconnects.

    Unlike the single-shot FakeObserver in test_proxy.py this one keeps
    accepting (redial tests need a second connection) and can pause its
    listener to hold the proxy in its retry loop.
    """

    def __init__(self):
        self.addr = None
        self.frames = []  # every frame, in arrival order
        self.writer = None
        self.connections = 0
        self._server = None

    @property
    def aggs(self):
        return [f for f in self.frames if f.type == MsgType.W_AGG]

    @property
    def envelopes(self):
        return [f for f in self.frames if f.type == MsgType.PROXY]

    async def start(self):
        self._server = await asyncio.start_server(self._accept, "127.0.0.1", 0)
        self.addr = NodeId("127.0.0.1", self._server.sockets[0].getsockname()[1])

    async def _accept(self, reader, writer):
        await expect_hello(reader)
        self.writer = writer
        self.connections += 1
        try:
            while True:
                self.frames.append(await read_message(reader))
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            writer.close()

    def kill_connection(self):
        """RST the proxy's upstream link (hard loss, not a polite FIN)."""
        sock = self.writer.get_extra_info("socket")
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0))
        self.writer.close()

    async def pause(self):
        """Stop accepting so a redialing proxy stays in its backoff loop."""
        self._server.close()
        await self._server.wait_closed()

    async def resume(self):
        self._server = await asyncio.start_server(
            self._accept, "127.0.0.1", self.addr.port
        )

    async def stop(self):
        if self.writer is not None:
            self.writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


def make_snapshot(node: str, sent: int) -> dict:
    """A tiny single-counter registry snapshot labelled with ``node``."""
    reg = MetricsRegistry()
    counter = reg.counter("test_sent_total", "messages sent", ("node",))
    counter.labels(node=node).inc(sent)
    return reg.snapshot()


def status_message(node: NodeId, sent: int) -> Message:
    return Message.with_fields(
        MsgType.STATUS, node, 0, node=str(node),
        apps=[1], metrics=make_snapshot(str(node), sent),
    )


def counter_value(snapshot: dict, node: str) -> float:
    for entry in snapshot.get("test_sent_total", {}).get("series", []):
        if entry["labels"].get("node") == node:
            return entry["value"]
    return 0.0


async def drain_requests(reader):
    """Consume downward frames, ignoring the aggregator's status polls."""
    try:
        while True:
            await read_message(reader)
    except (asyncio.IncompleteReadError, ConnectionError, OSError,
            asyncio.CancelledError):
        pass


async def agg_setup(**kwargs):
    parent = FakeParent()
    await parent.start()
    proxy = ObserverProxy(
        NodeId("127.0.0.1", 0), parent.addr,
        flush_interval=kwargs.pop("flush_interval", 0.05),
        backoff=BackoffPolicy(base=0.01, maximum=0.05),
        **kwargs,
    )
    await proxy.start()
    await wait_for(lambda: parent.connections == 1)
    return parent, proxy


class TestRollup:
    def test_status_absorbed_and_rolled_up(self):
        async def scenario():
            parent, proxy = await agg_setup()
            node = next_addr()
            reader, writer = await open_identified(proxy.addr, node)
            pump = asyncio.ensure_future(drain_requests(reader))
            write_message(writer, status_message(node, sent=7))
            await wait_for(lambda: any(
                f.fields().get("statuses") for f in parent.aggs))

            # The raw STATUS never crossed the root socket.
            assert parent.envelopes == []
            # The first flush of an epoch is always a full replacement.
            assert parent.aggs[0].fields()["full"] is True
            frame = next(f for f in parent.aggs if f.fields().get("statuses"))
            fields = frame.fields()
            assert str(node) in fields["members"]
            rolled = fields["statuses"][str(node)]
            assert rolled["node"] == str(node)
            assert "metrics" not in rolled  # stripped onto the delta path
            assert counter_value(fields["metrics"], str(node)) == 7
            pump.cancel()
            writer.close()
            await proxy.stop()
            await parent.stop()

        run(scenario())

    def test_delta_stream_carries_only_changes(self):
        async def scenario():
            parent, proxy = await agg_setup()
            node = next_addr()
            reader, writer = await open_identified(proxy.addr, node)
            pump = asyncio.ensure_future(drain_requests(reader))
            write_message(writer, status_message(node, sent=10))
            await wait_for(lambda: any(
                counter_value(f.fields().get("metrics", {}), str(node)) == 10
                for f in parent.aggs))

            write_message(writer, status_message(node, sent=13))
            await wait_for(lambda: any(
                counter_value(f.fields().get("metrics", {}), str(node)) == 3
                for f in parent.aggs))
            delta_frame = next(
                f for f in parent.aggs
                if counter_value(f.fields().get("metrics", {}), str(node)) == 3)
            assert delta_frame.fields()["full"] is False

            # Replaying the flushes in order (replace on full, merge on
            # delta) reconstructs the child's current value exactly.
            acc = {}
            for frame in parent.aggs:
                fields = frame.fields()
                delta = fields.get("metrics") or {}
                if not delta:
                    continue
                acc = delta if fields["full"] else merge_snapshots([acc, delta])
            assert counter_value(acc, str(node)) == 13
            pump.cancel()
            writer.close()
            await proxy.stop()
            await parent.stop()

        run(scenario())

    def test_quiet_flushes_carry_no_metrics(self):
        async def scenario():
            parent, proxy = await agg_setup()
            node = next_addr()
            reader, writer = await open_identified(proxy.addr, node)
            pump = asyncio.ensure_future(drain_requests(reader))
            write_message(writer, status_message(node, sent=5))
            # Wait until the value has been flushed and acknowledged.
            await wait_for(lambda: any(
                counter_value(f.fields().get("metrics", {}), str(node)) == 5
                for f in parent.aggs))
            baseline = len(parent.aggs)
            await wait_for(lambda: len(parent.aggs) >= baseline + 3)
            quiet = parent.aggs[baseline:baseline + 3]
            # No new activity: deltas are empty, the frames are pure
            # membership/lease heartbeats.
            assert all(not f.fields().get("metrics") for f in quiet)
            pump.cancel()
            writer.close()
            await proxy.stop()
            await parent.stop()

        run(scenario())


class TestUpstreamRedial:
    def test_redial_replays_boots_and_resyncs_full(self):
        async def scenario():
            parent, proxy = await agg_setup()
            node = next_addr()
            reader, writer = await open_identified(proxy.addr, node)
            pump = asyncio.ensure_future(drain_requests(reader))
            boot = Message.with_fields(MsgType.BOOT, node, 0, node=str(node))
            write_message(writer, boot)
            write_message(writer, status_message(node, sent=4))
            await wait_for(lambda: any(
                counter_value(f.fields().get("metrics", {}), str(node)) == 4
                for f in parent.aggs))
            # BOOT was relayed immediately (bootstrap must not wait a flush).
            assert len(parent.envelopes) == 1

            frames_before_kill = len(parent.frames)
            parent.kill_connection()
            await wait_for(lambda: parent.connections == 2)
            await wait_for(lambda: proxy.boots_replayed == 1)
            await wait_for(lambda: any(
                f.fields().get("full") and f.fields().get("metrics")
                for f in parent.frames[frames_before_kill:]
                if f.type == MsgType.W_AGG))

            # The replayed BOOT is byte-identical to the original.
            replays = parent.envelopes[1:]
            assert any(proxy_frame_bytes(e) == boot.pack() for e in replays)
            # The resync flush re-carries the full accumulated snapshot
            # even though nothing changed since the last ack.
            resync = next(
                f for f in parent.frames[frames_before_kill:]
                if f.type == MsgType.W_AGG and f.fields().get("full")
                and f.fields().get("metrics"))
            assert counter_value(resync.fields()["metrics"], str(node)) == 4
            assert proxy.upstream_reconnects == 1
            pump.cancel()
            writer.close()
            await proxy.stop()
            await parent.stop()

        run(scenario())

    def test_outbox_overflow_drops_oldest_then_resyncs(self):
        async def scenario():
            parent, proxy = await agg_setup(outbox_capacity=2)
            node = next_addr()
            reader, writer = await open_identified(proxy.addr, node)
            pump = asyncio.ensure_future(drain_requests(reader))
            write_message(writer, status_message(node, sent=9))
            await wait_for(lambda: any(
                counter_value(f.fields().get("metrics", {}), str(node)) == 9
                for f in parent.aggs))

            # Take the upstream fully down: no listener, so the proxy
            # sits in its redial loop while children keep sending.
            await parent.pause()
            parent.kill_connection()
            await wait_for(lambda: proxy._upstream_writer is None
                           or proxy._upstream_writer.is_closing())
            for i in range(5):
                write_message(writer, Message.with_fields(
                    MsgType.TRACE, node, 1, text=f"t{i}"))
            await writer.drain()
            # Relay-path frames pile into the bounded outbox; capacity 2
            # means the three oldest are evicted.
            await wait_for(lambda: proxy.outbox_drops == 3)

            frames_before = len(parent.frames)
            await parent.resume()
            await wait_for(lambda: parent.connections == 2)
            await wait_for(lambda: any(
                f.type == MsgType.W_AGG and f.fields().get("full")
                and f.fields().get("metrics")
                for f in parent.frames[frames_before:]))
            # The two surviving (newest) traces were delivered after the
            # redial, in order ...
            texts = []
            for envelope in parent.envelopes:
                inner = unwrap_proxy(envelope)
                if inner.type == MsgType.TRACE:
                    texts.append(inner.fields()["text"])
            assert texts == ["t3", "t4"]
            # ... and the delta stream resynced with the full snapshot,
            # so the drops cannot have corrupted the metric view.
            resync = next(
                f for f in parent.frames[frames_before:]
                if f.type == MsgType.W_AGG and f.fields().get("full")
                and f.fields().get("metrics"))
            assert counter_value(resync.fields()["metrics"], str(node)) == 9
            pump.cancel()
            writer.close()
            await proxy.stop()
            await parent.stop()

        run(scenario())


class TestChildDeath:
    def test_departed_child_leaves_no_stale_series(self):
        async def scenario():
            parent, proxy = await agg_setup()
            a, b = next_addr(), next_addr()
            ra, wa = await open_identified(proxy.addr, a)
            rb, wb = await open_identified(proxy.addr, b)
            pumps = [asyncio.ensure_future(drain_requests(r)) for r in (ra, rb)]
            write_message(wa, status_message(a, sent=3))
            write_message(wb, status_message(b, sent=8))
            await wait_for(lambda: not proxy._resync
                           and counter_value(proxy._acked_merged, str(a)) == 3
                           and counter_value(proxy._acked_merged, str(b)) == 8)

            wa.close()
            await wait_for(lambda: any(
                str(a) in f.fields().get("departed", []) for f in parent.aggs))
            # The aggregator's own caches are clean...
            assert str(a) not in proxy._child_status
            assert str(a) not in proxy._child_metrics
            # ...and the vanished series forces a full-resync flush whose
            # replacement snapshot no longer carries the dead child but
            # still carries the survivor.
            await wait_for(lambda: any(
                f.fields().get("full") and f.fields().get("metrics")
                and counter_value(f.fields()["metrics"], str(a)) == 0
                and counter_value(f.fields()["metrics"], str(b)) == 8
                for f in parent.aggs))
            for pump in pumps:
                pump.cancel()
            wb.close()
            await proxy.stop()
            await parent.stop()

        run(scenario())


class TestTraceForwarding:
    def test_local_tracer_events_ride_the_flush_under_budget(self):
        async def scenario():
            telemetry = Telemetry(tracing=True)
            parent, proxy = await agg_setup(telemetry=telemetry, trace_budget=3)
            for i in range(10):
                telemetry.tracer.record(float(i), "n1", "forward", f"tid{i}")
            await wait_for(lambda: any(f.fields().get("traces") for f in parent.aggs))
            frame = next(f for f in parent.aggs if f.fields().get("traces"))
            traces = frame.fields()["traces"]
            assert len(traces) == 3  # per-flush budget enforced
            assert frame.fields()["trace_dropped"] == 7
            assert traces[0]["trace_id"] == "tid0"
            await proxy.stop()
            await parent.stop()

        run(scenario())


class TestTwoLevelTree:
    def test_nested_aggregators_roll_up_to_the_root(self):
        async def scenario():
            root = FakeParent()
            await root.start()
            mid = ObserverProxy(
                NodeId("127.0.0.1", 0), root.addr, flush_interval=0.05,
                backoff=BackoffPolicy(base=0.01, maximum=0.05),
            )
            await mid.start()
            leaf = ObserverProxy(
                NodeId("127.0.0.1", 0), mid.addr, flush_interval=0.05,
                backoff=BackoffPolicy(base=0.01, maximum=0.05),
            )
            await leaf.start()
            node = next_addr()
            reader, writer = await open_identified(leaf.addr, node)
            pump = asyncio.ensure_future(drain_requests(reader))
            write_message(writer, status_message(node, sent=21))

            # The node's status and metrics surface at the root, folded
            # through two aggregation levels; the leaf's W_AGG frames were
            # absorbed by the mid proxy, never forwarded verbatim.
            await wait_for(lambda: any(
                str(node) in f.fields().get("members", [])
                and f.fields().get("statuses", {}).get(str(node))
                for f in root.aggs))
            assert all(f.sender == mid.addr for f in root.aggs)
            await wait_for(lambda: any(
                counter_value(f.fields().get("metrics", {}), str(node)) == 21
                for f in root.aggs))
            pump.cancel()
            writer.close()
            await leaf.stop()
            await mid.stop()
            await root.stop()

        run(scenario())
