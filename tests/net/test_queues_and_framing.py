"""Unit tests for the asyncio bounded queue and the wire framing."""

import asyncio

import pytest

from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.errors import BufferClosedError, CodecError
from repro.net.framing import (
    expect_hello,
    hello_message,
    pack_headers,
    peek_frame_type,
    proxy_frame_bytes,
    proxy_meta,
    read_message,
    unwrap_proxy,
    wrap_proxy_down,
    wrap_proxy_up,
    write_batch,
    write_message,
)
from repro.net.queues import AsyncBoundedQueue

SENDER = NodeId("127.0.0.1", 9999)


def run(coro):
    return asyncio.run(coro)


def test_queue_fifo_and_capacity():
    async def scenario():
        queue = AsyncBoundedQueue(capacity=2)
        assert queue.put_nowait(1) and queue.put_nowait(2)
        assert not queue.put_nowait(3)
        assert queue.is_full
        queue.put_force(3)  # control traffic exceeds nominal capacity
        return [await queue.get() for _ in range(3)]

    assert run(scenario()) == [1, 2, 3]


def test_blocked_put_resumes_on_get():
    async def scenario():
        queue = AsyncBoundedQueue(capacity=1)
        await queue.put("a")
        order = []

        async def producer():
            await queue.put("b")
            order.append("put-b")

        task = asyncio.ensure_future(producer())
        await asyncio.sleep(0.01)
        assert not task.done()
        order.append(f"got-{await queue.get()}")
        await task
        assert await queue.get() == "b"
        return order

    assert run(scenario()) == ["got-a", "put-b"]


def test_blocked_get_resumes_on_put():
    async def scenario():
        queue = AsyncBoundedQueue(capacity=1)

        async def consumer():
            return await queue.get()

        task = asyncio.ensure_future(consumer())
        await asyncio.sleep(0.01)
        queue.put_nowait("x")
        return await task

    assert run(scenario()) == "x"


def test_close_wakes_blocked_waiters():
    async def scenario():
        queue = AsyncBoundedQueue(capacity=1)

        async def consumer():
            try:
                await queue.get()
            except BufferClosedError:
                return "closed"

        task = asyncio.ensure_future(consumer())
        await asyncio.sleep(0.01)
        queue.close()
        return await task

    assert run(scenario()) == "closed"


def test_drain_and_nowait_behaviour():
    async def scenario():
        queue = AsyncBoundedQueue(capacity=5)
        for i in range(3):
            queue.put_nowait(i)
        drained = queue.drain()
        with pytest.raises(IndexError):
            queue.get_nowait()
        return drained

    assert run(scenario()) == [0, 1, 2]


def test_cancelled_waiter_cleanly_removed():
    async def scenario():
        queue = AsyncBoundedQueue(capacity=1)

        async def consumer():
            await queue.get()

        task = asyncio.ensure_future(consumer())
        await asyncio.sleep(0.01)
        task.cancel()
        await asyncio.gather(task, return_exceptions=True)
        # A later put must not be swallowed by the dead waiter.
        queue.put_nowait("survivor")
        return await queue.get()

    assert run(scenario()) == "survivor"


def test_invalid_capacity():
    with pytest.raises(ValueError):
        AsyncBoundedQueue(capacity=0)


# --- framing -----------------------------------------------------------------


def test_stream_roundtrip_multiple_messages():
    async def scenario():
        server_received = []
        done = asyncio.Event()

        async def handler(reader, writer):
            for _ in range(3):
                server_received.append(await read_message(reader))
            writer.close()
            done.set()

        server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        messages = [
            Message(MsgType.DATA, SENDER, 1, b"first", seq=1),
            Message(MsgType.DATA, SENDER, 1, b"", seq=2),  # empty payload
            Message(MsgType.S_QUERY, SENDER, 2, b"x" * 5000, seq=3),
        ]
        for msg in messages:
            write_message(writer, msg)
        await writer.drain()
        await done.wait()
        writer.close()
        server.close()
        await server.wait_closed()
        return server_received, messages

    received, sent = run(scenario())
    assert received == sent


def test_oversized_frame_refused():
    async def scenario():
        fail = {}
        done = asyncio.Event()

        async def handler(reader, writer):
            try:
                await read_message(reader)
            except CodecError as exc:
                fail["error"] = str(exc)
            writer.close()
            done.set()

        server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
        port = server.sockets[0].getsockname()[1]
        _, writer = await asyncio.open_connection("127.0.0.1", port)
        # Forge a header declaring a gigantic payload.
        forged = Message(MsgType.DATA, SENDER, 1, b"abc").pack()
        forged = forged[:20] + (100 * 1024 * 1024).to_bytes(4, "big") + forged[24:]
        writer.write(forged)
        await writer.drain()
        await done.wait()
        writer.close()
        server.close()
        await server.wait_closed()
        return fail

    fail = run(scenario())
    assert "refusing" in fail["error"]


def test_hello_message_identifies_node():
    hello = hello_message(SENDER)
    assert hello.type == MsgType.HELLO
    assert hello.fields()["node"] == str(SENDER)


def test_hello_capability_fields_drop_none():
    hello = hello_message(SENDER, shm=None)
    assert "shm" not in hello.fields()
    offer = {"cookie": "boot", "c2s": "a", "s2c": "b", "size": 4096}
    hello = hello_message(SENDER, shm=offer)
    assert hello.fields()["shm"] == offer


async def _serve_one_frame(raw: bytes):
    """Write ``raw`` to a server-side reader, close, and read one message."""
    outcome = {}
    done = asyncio.Event()

    async def handler(reader, writer):
        try:
            outcome["msg"] = await read_message(reader)
        except Exception as exc:
            outcome["error"] = exc
        writer.close()
        done.set()

    server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]
    _, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    writer.close()  # EOF lands mid-frame for truncated inputs
    await done.wait()
    server.close()
    await server.wait_closed()
    return outcome


def test_truncated_header_raises_incomplete_read():
    raw = Message(MsgType.DATA, SENDER, 1, b"abcdef").pack()[:10]
    outcome = run(_serve_one_frame(raw))
    assert isinstance(outcome["error"], asyncio.IncompleteReadError)


def test_truncated_payload_raises_incomplete_read():
    raw = Message(MsgType.DATA, SENDER, 1, b"abcdef").pack()[:-3]
    outcome = run(_serve_one_frame(raw))
    assert isinstance(outcome["error"], asyncio.IncompleteReadError)


def test_expect_hello_rejects_wrong_first_frame():
    async def scenario():
        outcome = {}
        done = asyncio.Event()

        async def handler(reader, writer):
            try:
                await expect_hello(reader, timeout=2.0)
            except CodecError as exc:
                outcome["error"] = str(exc)
            writer.close()
            done.set()

        server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
        port = server.sockets[0].getsockname()[1]
        _, writer = await asyncio.open_connection("127.0.0.1", port)
        write_message(writer, Message(MsgType.DATA, SENDER, 1, b"not a hello"))
        await writer.drain()
        await done.wait()
        writer.close()
        server.close()
        await server.wait_closed()
        return outcome

    outcome = run(scenario())
    assert "expected HELLO" in outcome["error"]


def test_batched_writes_do_not_interleave_frames():
    """Many frames written before a single drain arrive intact and ordered.

    ``write_message`` queues header and payload as two separate buffers;
    this pins down that the writev-style batched flush (N frames, one
    ``drain()``) never interleaves or reorders those buffers on the wire.
    """
    async def scenario():
        received = []
        done = asyncio.Event()
        count = 50

        async def handler(reader, writer):
            for _ in range(count):
                received.append(await read_message(reader))
            writer.close()
            done.set()

        server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
        port = server.sockets[0].getsockname()[1]
        _, writer = await asyncio.open_connection("127.0.0.1", port)
        sent = [
            Message(MsgType.DATA, SENDER, 1, bytes([i % 256]) * (i * 13 % 700), seq=i)
            for i in range(count)
        ]
        for msg in sent:  # the whole batch rides one flush
            write_message(writer, msg)
        await writer.drain()
        await done.wait()
        writer.close()
        server.close()
        await server.wait_closed()
        return received, sent

    received, sent = run(scenario())
    assert received == sent


# --- vectorized batch codec ---------------------------------------------------


def test_pack_headers_matches_per_message_packing():
    msgs = [
        Message(MsgType.DATA, SENDER, 1, b"abc", seq=1),
        Message(MsgType.S_QUERY, SENDER, 2, b"", seq=-5),  # negative seq
        Message(MsgType.DATA, NodeId("10.0.0.1", 80), 3, b"x" * 999, seq=7),
    ]
    packed = pack_headers(msgs)
    expected = b"".join(m.header_bytes() for m in msgs)
    assert bytes(packed) == expected


def test_pack_headers_caches_the_batch_struct():
    from repro.net.framing import _BATCH_STRUCTS

    msgs = [Message(MsgType.DATA, SENDER, 1, b"", seq=i) for i in range(37)]
    pack_headers(msgs)
    assert 37 in _BATCH_STRUCTS
    # a second call reuses it and still packs correctly
    assert bytes(pack_headers(msgs)) == b"".join(m.header_bytes() for m in msgs)


def _batch_roundtrip(sent):
    async def scenario():
        received = []
        done = asyncio.Event()

        async def handler(reader, writer):
            for _ in range(len(sent)):
                received.append(await read_message(reader))
            writer.close()
            done.set()

        server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
        port = server.sockets[0].getsockname()[1]
        _, writer = await asyncio.open_connection("127.0.0.1", port)
        write_batch(writer, sent)
        await writer.drain()
        await done.wait()
        writer.close()
        server.close()
        await server.wait_closed()
        return received

    return run(scenario())


def test_write_batch_roundtrips_a_fresh_burst():
    sent = [
        Message(MsgType.DATA, SENDER, 1, bytes([i % 256]) * (i * 31 % 500), seq=i)
        for i in range(40)
    ]
    assert _batch_roundtrip(sent) == sent


def test_write_batch_preserves_order_with_cached_frames_mixed_in():
    """Relayed frames (cached wire bytes) interleave with fresh ones."""
    fresh = [Message(MsgType.DATA, SENDER, 1, b"f%d" % i, seq=i) for i in range(6)]
    cached = [
        Message.unpack(Message(MsgType.DATA, SENDER, 2, b"c%d" % i, seq=100 + i).pack())
        for i in range(6)
    ]
    assert all(m.cached_frame() is not None for m in cached)
    sent = [m for pair in zip(fresh, cached) for m in pair]
    assert _batch_roundtrip(sent) == sent


def test_write_batch_single_message_falls_back_to_write_message():
    sent = [Message(MsgType.DATA, SENDER, 1, b"solo", seq=1)]
    assert _batch_roundtrip(sent) == sent


def test_write_batch_empty_payloads():
    sent = [Message(MsgType.DATA, SENDER, 1, b"", seq=i) for i in range(5)]
    assert _batch_roundtrip(sent) == sent


def test_write_batch_loopback_endpoint_hands_objects_over():
    class FakeLoopbackWriter:
        def __init__(self):
            self.sent = []

        def send_message(self, msg):
            self.sent.append(msg)

    writer = FakeLoopbackWriter()
    msgs = [Message(MsgType.DATA, SENDER, 1, b"x", seq=i) for i in range(3)]
    write_batch(writer, msgs)
    assert writer.sent == msgs


# --- proxy envelopes ----------------------------------------------------------


def test_proxy_envelope_roundtrip_is_raw_bytes():
    origin = NodeId("10.0.0.1", 4242)
    inner = Message(MsgType.TRACE, origin, 3, b"\x00\xff binary \x01 payload", seq=9)
    envelope = wrap_proxy_up(SENDER, origin, inner)
    # No hex blow-up: the inner frame rides verbatim in the suffix.
    assert proxy_frame_bytes(envelope) == inner.pack()
    assert inner.pack() in envelope.payload
    assert proxy_meta(envelope) == {"origin": str(origin)}
    assert unwrap_proxy(envelope) == inner

    down = wrap_proxy_down(SENDER, origin, inner)
    assert proxy_meta(down) == {"dest": str(origin)}
    assert unwrap_proxy(down) == inner


def test_peek_frame_type_reads_only_the_type():
    origin = NodeId("10.0.0.1", 4242)
    big = Message(MsgType.BOOT, origin, 0, b"p" * 100_000)
    envelope = wrap_proxy_up(SENDER, origin, big)
    assert peek_frame_type(envelope) == MsgType.BOOT
    # O(1) contract: peeking a corrupt suffix must not decode the frame.
    corrupt = Message(MsgType.PROXY, SENDER, 0,
                      envelope.payload[:30])  # truncated mid-frame
    assert isinstance(peek_frame_type(corrupt), int)
