"""Integration tests of the asyncio engine over real localhost sockets."""

import asyncio

import pytest

from repro.algorithms.forwarding import ChainRelayAlgorithm, CopyForwardAlgorithm, SinkAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.core.ids import NodeId
from repro.net.engine import AsyncioEngine, NetEngineConfig
from repro.net.observer_server import ObserverServer
from repro.net.proxy import ObserverProxy

from tests.portalloc import next_addr


def run(coro):
    return asyncio.run(coro)


async def start_engines(*pairs, observer=None):
    engines = []
    for algorithm, config in pairs:
        engine = AsyncioEngine(
            next_addr(), algorithm,
            observer_addr=observer.addr if observer else None,
            config=config,
        )
        await engine.start()
        engines.append(engine)
    return engines


def test_two_node_data_flow():
    async def scenario():
        src_alg, dst_alg = CopyForwardAlgorithm(), SinkAlgorithm()
        src, dst = await start_engines((src_alg, None), (dst_alg, None))
        src_alg.set_downstreams([dst.node_id])
        src.start_source(app=1, payload_size=2000)
        await asyncio.sleep(0.5)
        await src.stop()
        await dst.stop()
        return dst_alg.received

    received = run(scenario())
    assert received > 10


def test_chain_preserves_order_and_counts():
    async def scenario():
        algs = [ChainRelayAlgorithm() for _ in range(3)]
        seqs = []

        class OrderSink(SinkAlgorithm):
            def on_data(self, msg):
                seqs.append(msg.seq)
                return super().on_data(msg)

        sink = OrderSink()
        engines = await start_engines(*((a, None) for a in algs), (sink, None))
        for i in range(2):
            algs[i].set_next_hop(engines[i + 1].node_id)
        algs[2].set_next_hop(engines[3].node_id)
        engines[0].start_source(app=1, payload_size=1000)
        await asyncio.sleep(0.7)
        for engine in engines:
            await engine.stop()
        return seqs

    seqs = run(scenario())
    assert len(seqs) > 10
    assert seqs == list(range(len(seqs)))


def test_bandwidth_throttle_limits_rate():
    async def scenario():
        src_alg, dst_alg = CopyForwardAlgorithm(), SinkAlgorithm()
        config = NetEngineConfig(bandwidth=BandwidthSpec(up=100_000.0))
        src, dst = await start_engines((src_alg, config), (dst_alg, None))
        src_alg.set_downstreams([dst.node_id])
        src.start_source(app=1, payload_size=5000)
        await asyncio.sleep(1.5)
        received_bytes = dst_alg.received_bytes
        await src.stop()
        await dst.stop()
        return received_bytes / 1.5

    rate = run(scenario())
    assert rate == pytest.approx(100_000.0, rel=0.35)


def test_peer_failure_detected_and_reported():
    async def scenario():
        src_alg, dst_alg = CopyForwardAlgorithm(), SinkAlgorithm()
        src, dst = await start_engines((src_alg, None), (dst_alg, None))
        src_alg.set_downstreams([dst.node_id])
        src.start_source(app=1, payload_size=1000)
        await asyncio.sleep(0.3)
        await dst.stop()  # abrupt departure from src's point of view
        await asyncio.sleep(0.5)
        gone = dst.node_id not in src.downstreams()
        dropped = dst.node_id not in src_alg.downstream_targets
        await src.stop()
        return gone, dropped

    gone, dropped = run(scenario())
    assert gone and dropped


def test_observer_bootstrap_status_and_trace():
    async def scenario():
        observer = ObserverServer(next_addr(), poll_interval=0.2)
        await observer.start()
        src_alg, dst_alg = CopyForwardAlgorithm(), SinkAlgorithm()
        src, dst = await start_engines((src_alg, None), (dst_alg, None), observer=observer)
        await asyncio.sleep(0.3)
        alive = set(observer.observer.alive)
        src_alg.set_downstreams([dst.node_id])
        src.start_source(app=1, payload_size=1000)
        src_alg.trace("live trace line")
        await asyncio.sleep(0.8)
        statuses = dict(observer.observer.statuses)
        traces = observer.observer.traces.matching("live trace line")
        await src.stop()
        await dst.stop()
        await observer.stop()
        return alive, statuses, traces, src.node_id, dst.node_id

    alive, statuses, traces, src_id, dst_id = run(scenario())
    assert {src_id, dst_id} <= alive
    assert src_id in statuses and dst_id in statuses[src_id].downstreams
    assert len(traces) == 1


def test_observer_control_deploys_source_remotely():
    async def scenario():
        observer = ObserverServer(next_addr(), poll_interval=0.2)
        await observer.start()
        src_alg, dst_alg = CopyForwardAlgorithm(), SinkAlgorithm()
        src, dst = await start_engines((src_alg, None), (dst_alg, None), observer=observer)
        src_alg.set_downstreams([dst.node_id])
        await asyncio.sleep(0.2)
        observer.observer.deploy_source(src.node_id, app=3, payload_size=1000)
        await asyncio.sleep(0.6)
        received = dst_alg.received
        observer.observer.terminate_node(src.node_id)
        await asyncio.sleep(0.4)
        src_running = src.running
        await dst.stop()
        await observer.stop()
        if src_running:
            await src.stop()
        return received, src_running

    received, src_running = run(scenario())
    assert received > 5
    assert not src_running


def test_proxy_relays_boot_status_and_control():
    async def scenario():
        observer = ObserverServer(next_addr(), poll_interval=0.2)
        await observer.start()
        proxy = ObserverProxy(next_addr(), observer.addr)
        await proxy.start()
        alg = SinkAlgorithm()
        (engine,) = await start_engines((alg, None), observer=proxy)
        await asyncio.sleep(0.6)
        alive = set(observer.observer.alive)
        statuses = dict(observer.observer.statuses)
        # Downstream control through the proxy: terminate the node.
        observer.observer.terminate_node(engine.node_id)
        await asyncio.sleep(0.4)
        running = engine.running
        relayed = (proxy.relayed_up, proxy.relayed_down)
        if running:
            await engine.stop()
        await proxy.stop()
        await observer.stop()
        return alive, statuses, running, relayed, engine.node_id

    alive, statuses, running, relayed, node_id = run(scenario())
    assert node_id in alive
    assert node_id in statuses
    assert not running
    assert relayed[0] > 0 and relayed[1] > 0
