"""VirtualHost: many full engines on one loop, zero-copy loopback links.

The 3-node chain and the fig8 butterfly mirror the determinism-guard
workloads (tests/integration/test_determinism_guard.py) running fully
in-process: same topology, same algorithms, message flow verified
end-to-end with every co-hosted pair brokered over loopback channels
rather than sockets.
"""

import asyncio

import pytest

from repro.algorithms.coding import (
    CodedSourceAlgorithm,
    CodingNodeAlgorithm,
    DecodingSinkAlgorithm,
)
from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.net.engine import NetEngineConfig
from repro.net.observer_server import ObserverServer
from repro.net.virtual import VirtualHost, loopback_pair


def run(coro):
    return asyncio.run(coro)


def test_loopback_pair_passes_messages_by_reference():
    async def scenario():
        a, b = loopback_pair()
        msg = Message(MsgType.DATA, NodeId("10.0.0.1", 9), 1, b"x" * 100, seq=3)
        a.send_message(msg)
        await a.drain()
        received = await b.recv_message()
        return msg is received  # zero-copy: the very same object

    assert run(scenario())


def test_loopback_close_raises_socket_like_errors():
    async def scenario():
        a, b = loopback_pair()
        a.close()
        with pytest.raises(asyncio.IncompleteReadError):
            await b.recv_message()
        with pytest.raises(ConnectionError):
            b.send_message(Message(MsgType.DATA, NodeId("10.0.0.1", 9), 1, b""))
        return True

    assert run(scenario())


def test_loopback_window_backpressure():
    async def scenario():
        a, b = loopback_pair(window=4)
        msg = Message(MsgType.DATA, NodeId("10.0.0.1", 9), 1, b"p")
        for _ in range(4):
            a.send_message(msg)
        drain = asyncio.ensure_future(a.drain())
        await asyncio.sleep(0.01)
        blocked_while_full = not drain.done()
        for _ in range(4):
            await b.recv_message()
        await asyncio.wait_for(drain, timeout=1.0)
        return blocked_while_full

    assert run(scenario())


def test_three_node_chain_in_process():
    """The determinism-guard chain shape, fully co-hosted: A -> B -> C."""

    async def scenario():
        host = VirtualHost()
        a_alg, b_alg, c_alg = CopyForwardAlgorithm(), CopyForwardAlgorithm(), SinkAlgorithm()
        a, b, c = (host.add_node(alg) for alg in (a_alg, b_alg, c_alg))
        await host.start()
        a_alg.set_downstreams([b.node_id])
        b_alg.set_downstreams([c.node_id])
        await host.connect_chain()
        a.start_source(app=1, payload_size=1000)
        await asyncio.sleep(0.4)
        received = c_alg.received
        dials = host.resolver.dials
        await host.stop()
        return received, dials

    received, dials = run(scenario())
    assert received > 0
    assert dials == 2  # both hops brokered in-process, no sockets


def test_butterfly_with_coding_in_process():
    """The fig8 butterfly (A,B,C,D,E,F,G) with GF(2^8) coding at D."""

    async def scenario():
        host = VirtualHost()
        source = CodedSourceAlgorithm()
        b_alg, c_alg = CopyForwardAlgorithm(), CopyForwardAlgorithm()
        d_alg = CodingNodeAlgorithm(k=2, coefficients=None)
        e_alg = DecodingSinkAlgorithm(k=2)
        f_alg = DecodingSinkAlgorithm(k=2)
        g_alg = DecodingSinkAlgorithm(k=2)
        nodes = {
            name: host.add_node(alg)
            for name, alg in (
                ("A", source), ("B", b_alg), ("C", c_alg), ("D", d_alg),
                ("E", e_alg), ("F", f_alg), ("G", g_alg),
            )
        }
        await host.start()
        ids = {name: engine.node_id for name, engine in nodes.items()}
        source.set_downstreams([ids["B"], ids["C"]])
        b_alg.set_downstreams([ids["D"], ids["F"]])
        c_alg.set_downstreams([ids["D"], ids["G"]])
        d_alg.set_downstreams([ids["E"]])
        e_alg.set_forward_to([ids["F"], ids["G"]])
        nodes["A"].start_source(app=1, payload_size=5000)
        await asyncio.sleep(1.5)
        decoded = {"F": f_alg.decoded_generations, "G": g_alg.decoded_generations}
        dials = host.resolver.dials
        await host.stop()
        return decoded, dials

    decoded, dials = run(scenario())
    # Both leaves decode from one direct sub-stream plus D's coded a+b.
    assert decoded["F"] > 0
    assert decoded["G"] > 0
    assert dials == 9  # all nine butterfly edges in-process


def test_graceful_disconnect_parity_on_net_backend():
    """disconnect() reached through DISCONNECT control drops the link
    without raising BROKEN_LINK locally — the sim engine's semantics,
    now shared through EngineCore (the historical sim/net API drift)."""

    broken = []

    class Recorder(CopyForwardAlgorithm):
        def on_broken_link(self, msg):
            broken.append(msg.fields())
            return super().on_broken_link(msg)

    async def scenario():
        host = VirtualHost()
        src_alg, sink_alg = Recorder(), SinkAlgorithm()
        src, sink = host.add_node(src_alg), host.add_node(sink_alg)
        await host.start()
        src_alg.set_downstreams([sink.node_id])
        src.start_source(app=1, payload_size=500)
        await asyncio.sleep(0.2)
        assert sink.node_id in src.downstreams()
        src.stop_source(app=1)  # quiesce so nothing redials after teardown
        await asyncio.sleep(0.05)
        src.disconnect(sink.node_id)
        after_disconnect = src.downstreams()
        report = src._status_report().fields()
        await asyncio.sleep(0.1)
        await host.stop()
        return after_disconnect, report

    after_disconnect, report = run(scenario())
    assert after_disconnect == []
    assert not broken  # graceful teardown is silent locally
    # loss accounting survives the teardown, as on the sim engine
    assert report["lost_messages"] >= 0 and "lost_bytes" in report


def test_dial_dead_cohosted_node_is_refused():
    async def scenario():
        host = VirtualHost()
        alg_a, alg_b = CopyForwardAlgorithm(), SinkAlgorithm()
        a, b = host.add_node(alg_a), host.add_node(alg_b)
        await host.start()
        await b.stop()
        with pytest.raises(ConnectionRefusedError):
            host.resolver.dial(a.node_id, b.node_id)
        ok = await a.connect(b.node_id)  # full dial path: retries, then gives up
        await host.stop()
        return ok

    assert run(scenario()) is False


def test_hundred_nodes_report_status_to_observer():
    """Acceptance: >= 100 nodes in one process run the fig5-chain
    workload with per-node status reports still reaching the observer."""

    N = 100

    async def scenario():
        obs = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=0.3)
        await obs.start()
        host = VirtualHost(observer_addr=obs.addr)
        algs = [CopyForwardAlgorithm() for _ in range(N - 1)] + [SinkAlgorithm()]
        engines = [
            host.add_node(alg, config=NetEngineConfig(report_interval=0.5))
            for alg in algs
        ]
        await host.start()
        for alg, nxt in zip(algs, engines[1:]):
            alg.set_downstreams([nxt.node_id])
        await host.connect_chain()
        engines[0].start_source(app=1, payload_size=1000)
        reported = 0
        for _ in range(40):  # up to ~8s for all poll round trips
            await asyncio.sleep(0.2)
            reported = len(obs.observer.statuses)
            if reported >= N and algs[-1].received > 0:
                break
        delivered = algs[-1].received
        dials = host.resolver.dials
        await host.stop()
        await obs.stop()
        return reported, delivered, dials

    reported, delivered, dials = run(scenario())
    assert reported >= N, f"only {reported} nodes reported status"
    assert delivered > 0  # data crossed the whole 100-hop chain
    assert dials == N - 1  # every chain hop brokered in-process
