"""FLOW_QUERY round trips: the ``ioverlay trace`` wire path and renderer."""

import asyncio

from repro.core.ids import NodeId
from repro.net.observer_server import ObserverServer
from repro.telemetry.tracing import EventType
from repro.tools.trace_cmd import fetch_flow_report, render_flow_report, run_trace


def run(coro):
    return asyncio.run(coro)


def seed_flow(observer, tid: str) -> None:
    """Plant one cross-node lifecycle the way W_AGG frames would."""
    observer.flow_tracer.ingest([
        {"time": 1.0, "node": "10.0.0.1:7000", "event": EventType.SOURCE_EMIT,
         "trace_id": tid, "app": 3},
        {"time": 1.2, "node": "10.0.0.1:7000", "event": EventType.FORWARD,
         "trace_id": tid, "app": 3},
        {"time": 1.5, "node": "10.0.0.2:7000", "event": EventType.ENQUEUE,
         "trace_id": tid, "app": 3},
        {"time": 1.9, "node": "10.0.0.2:7000", "event": EventType.DELIVER,
         "trace_id": tid, "app": 3},
    ])


class TestFlowQueryWire:
    def test_query_returns_stitched_report(self):
        async def scenario():
            server = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=5.0)
            await server.start()
            tid = "10.0.0.1:7000/3#0"
            seed_flow(server.observer, tid)
            report = await fetch_flow_report(server.addr, tid)
            await server.stop()
            return report

        report = run(scenario())
        assert report["trace_id"] == "10.0.0.1:7000/3#0"
        assert report["path"] == ["10.0.0.1:7000", "10.0.0.2:7000"]
        assert report["forwards"] == 1
        assert abs(report["end_to_end"] - 0.9) < 1e-9
        dwells = {h["node"]: h["dwell"] for h in report["hops"]}
        assert abs(dwells["10.0.0.1:7000"] - 0.2) < 1e-9
        assert abs(dwells["10.0.0.2:7000"] - 0.4) < 1e-9

    def test_unknown_trace_yields_empty_report(self):
        async def scenario():
            server = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=5.0)
            await server.start()
            report = await fetch_flow_report(server.addr, "nobody/0#0")
            await server.stop()
            return report

        report = run(scenario())
        assert report["hops"] == []
        assert report["path"] == []


class TestRenderAndCli:
    def test_render_lists_each_hop_with_dwell(self):
        report = {
            "trace_id": "t1", "path": ["a", "b"],
            "hops": [
                {"node": "a", "dwell": 0.2, "events": ["source-emit", "forward"]},
                {"node": "b", "dwell": 0.4, "events": ["enqueue", "deliver"]},
            ],
            "events": [{}] * 4, "end_to_end": 0.9,
        }
        text = render_flow_report(report)
        lines = text.splitlines()
        assert "trace t1: 2 hop(s), 4 event(s)" in lines[0]
        assert "900.000 ms" in lines[0]
        assert lines[1].startswith("    a")
        assert lines[2].startswith(" -> b")
        assert "200.000 ms" in lines[1] and "[source-emit,forward]" in lines[1]

    def test_render_empty_report(self):
        assert "no events recorded" in render_flow_report(
            {"trace_id": "t9", "hops": []}
        )

    def test_run_trace_exit_codes(self, capsys):
        async def server_up():
            server = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=5.0)
            await server.start()
            return server

        # The CLI opens its own event loop, so drive the server from a
        # thread and call run_trace from the main thread like a real user.
        import threading

        started = threading.Event()
        holder = {}

        def serve():
            async def body():
                server = await server_up()
                seed_flow(server.observer, "s/1#0")
                holder["addr"] = server.addr
                started.set()
                await asyncio.sleep(5.0)

            try:
                asyncio.run(body())
            except Exception:
                pass

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(10.0)
        addr = str(holder["addr"])
        assert run_trace("s/1#0", addr) == 0
        assert "2 hop(s)" in capsys.readouterr().out
        assert run_trace("missing/0#0", addr) == 1
        assert "no events recorded" in capsys.readouterr().out
        assert run_trace("s/1#0", addr, as_json=True) == 0
        assert '"trace_id": "s/1#0"' in capsys.readouterr().out
