"""Parity tests: behaviours the asyncio engine must share with the sim one."""

import asyncio

import pytest

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.algorithm import Algorithm, Disposition
from repro.core.bandwidth import BandwidthSpec
from repro.core.ids import NodeId
from repro.net.engine import AsyncioEngine, NetEngineConfig

from tests.portalloc import next_addr


def run(coro):
    return asyncio.run(coro)


async def start(algorithm, config=None):
    engine = AsyncioEngine(next_addr(), algorithm, config=config)
    await engine.start()
    return engine


def test_measure_probe_returns_rtt():
    replies = []

    class Prober(SinkAlgorithm):
        def on_measure_reply(self, peer, rtt, send_rate):
            replies.append((peer, rtt))
            return Disposition.DONE

    async def scenario():
        prober = Prober()
        a = await start(prober)
        b = await start(SinkAlgorithm())
        await a.connect(b.node_id)
        await asyncio.sleep(0.1)
        a.measure(b.node_id)
        await asyncio.sleep(0.3)
        await a.stop()
        await b.stop()
        return replies

    result = run(scenario())
    assert len(result) == 1
    peer, rtt = result[0]
    assert 0 <= rtt < 0.5  # loopback round trip


def test_wrr_weights_split_on_asyncio_engine():
    """The deficit-WRR behaviour (see sim ablation) holds on real sockets."""

    class PerAppSink(SinkAlgorithm):
        def __init__(self):
            super().__init__()
            self.per_app = {}

        def on_data(self, msg):
            self.per_app[msg.app] = self.per_app.get(msg.app, 0) + 1
            return super().on_data(msg)

    async def scenario():
        relay_alg = CopyForwardAlgorithm()
        sink = PerAppSink()
        config = NetEngineConfig(buffer_capacity=8,
                                 bandwidth=BandwidthSpec(up=200_000.0))
        relay = await start(relay_alg, config=config)
        out = await start(sink)
        relay_alg.set_downstreams([out.node_id])

        src1_alg, src2_alg = CopyForwardAlgorithm(), CopyForwardAlgorithm()
        src1 = await start(src1_alg)
        src2 = await start(src2_alg)
        src1_alg.set_downstreams([relay.node_id])
        src2_alg.set_downstreams([relay.node_id])
        src1.start_source(app=1, payload_size=5000)
        src2.start_source(app=2, payload_size=5000)
        await asyncio.sleep(0.4)
        relay.set_port_weight(src1.node_id, 3)
        relay.set_port_weight(src2.node_id, 1)
        baseline = dict(sink.per_app)
        await asyncio.sleep(1.5)
        delta = {app: sink.per_app.get(app, 0) - baseline.get(app, 0) for app in (1, 2)}
        for engine in (src1, src2, relay, out):
            await engine.stop()
        return delta

    delta = run(scenario())
    assert delta[1] > 2.0 * delta[2], delta


def test_hold_disposition_on_asyncio_engine():
    held = []

    class Holder(Algorithm):
        def on_data(self, msg):
            held.append(msg)
            return Disposition.HOLD

    async def scenario():
        src_alg = CopyForwardAlgorithm()
        src = await start(src_alg)
        holder = Holder()
        dst = await start(holder)
        src_alg.set_downstreams([dst.node_id])
        src.start_source(app=1, payload_size=1000)
        await asyncio.sleep(0.4)
        # Snapshot both counters in one scheduling slice (no await between).
        port_held = dst._scheduler.ports[0].held if dst._scheduler.ports else 0
        held_count = len(held)
        await src.stop()
        await dst.stop()
        return port_held, held_count

    port_held, held_count = run(scenario())
    assert port_held > 0
    assert port_held == held_count


def test_per_link_bandwidth_cap_on_asyncio_engine():
    async def scenario():
        src_alg = CopyForwardAlgorithm()
        sink_a, sink_b = SinkAlgorithm(), SinkAlgorithm()
        src = await start(src_alg)
        a = await start(sink_a)
        b = await start(sink_b)
        src_alg.set_downstreams([a.node_id, b.node_id])
        src.throttle.set_link(a.node_id, 50_000.0)
        src.start_source(app=1, payload_size=5000)
        await asyncio.sleep(1.5)
        slow = sink_a.received_bytes / 1.5
        fast = sink_b.received_bytes / 1.5
        for engine in (src, a, b):
            await engine.stop()
        return slow, fast

    slow, fast = run(scenario())
    assert slow == pytest.approx(50_000.0, rel=0.4)
    assert fast > 3 * slow


def test_status_report_includes_loss_free_run():
    async def scenario():
        src_alg, sink = CopyForwardAlgorithm(), SinkAlgorithm()
        src = await start(src_alg)
        dst = await start(sink)
        src_alg.set_downstreams([dst.node_id])
        src.start_source(app=1, payload_size=1000)
        await asyncio.sleep(0.3)
        report = src._status_report().fields()
        await src.stop()
        await dst.stop()
        return report

    report = run(scenario())
    NodeId.parse(report["node"])  # well-formed identity
    assert report["apps"] == [1]
    assert report["send_rates"]
