"""Chaos-injection suite: deterministic faults against real sockets.

Every scenario runs across three fixed seeds and ends with a convergence
check: all survivors reconnected or torn down, engines stopped cleanly,
no peer state leaked, and no asyncio task left pending.
"""

import asyncio

import pytest

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.ids import NodeId
from repro.errors import UnknownNodeError
from repro.net.chaos import ChaosCluster, ChaosController
from repro.net.engine import NetEngineConfig
from repro.net.resilience import ResilienceConfig
from repro.sim.failure import FailureSchedule
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType

SEEDS = [101, 202, 303]

#: fast ladder so the suite stays quick: suspicion after 150 ms of
#: silence, death 200 ms after an unanswered probe
FAST = dict(connect_retries=3, backoff_base=0.02, backoff_max=0.1,
            inactivity_timeout=0.15, probe_timeout=0.2)


def watch_config(seed: int, telemetry: Telemetry | None = None) -> NetEngineConfig:
    return NetEngineConfig(
        telemetry=telemetry, resilience=ResilienceConfig(seed=seed, **FAST))


class BrokenLinkRecorder(SinkAlgorithm):
    def __init__(self):
        super().__init__()
        self.broken = []

    def on_broken_link(self, msg):
        fields = msg.fields()
        self.broken.append((fields["peer"], fields["direction"]))
        return super().on_broken_link(msg)


def run_converging(coro):
    """Run a scenario, then assert the loop wound down with no leaks."""

    async def wrapper():
        result = await coro
        # Give cancelled tasks one cycle to unwind, then leak-check.
        await asyncio.sleep(0)
        current = asyncio.current_task()
        pending = [t for t in asyncio.all_tasks() if t is not current and not t.done()]
        assert pending == [], f"leaked tasks: {pending}"
        return result

    return asyncio.run(wrapper())


async def converged(cluster: ChaosCluster) -> None:
    """Stop the fleet and assert per-engine state drained."""
    await cluster.stop()
    for engine in cluster.engines():
        assert not engine.running
        assert engine._peers == {}
        assert engine._scheduler.ports == []
        assert engine._dialing == {}


async def wait_until(predicate, timeout: float, interval: float = 0.05) -> bool:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


# ------------------------------------------------------------------- scenarios


@pytest.mark.parametrize("seed", SEEDS)
def test_stall_detected_via_inactivity_probe_ladder(seed):
    """A silent stall (no socket error) is confirmed dead by the watchdog
    within the configured window, and tears down exactly like a loud cut."""

    async def scenario():
        telemetry = Telemetry()
        cluster = ChaosCluster(ChaosController(seed=seed))
        src_alg, sink_alg = CopyForwardAlgorithm(), BrokenLinkRecorder()
        src = await cluster.add_node(src_alg, "src", watch_config(seed))
        sink = await cluster.add_node(sink_alg, "sink", watch_config(seed, telemetry))
        src_alg.set_downstreams([sink.node_id])
        src.start_source(app=1, payload_size=1000)
        await wait_until(lambda: sink_alg.received > 5, timeout=2.0)
        assert sink_alg.received > 5

        cluster.chaos.stall_link(src.node_id, sink.node_id)
        # Detection budget: inactivity_timeout + probe_timeout + slack.
        ins = sink._ins
        detected = await wait_until(
            # Death is counted by the watchdog, the BROKEN_LINK reaches
            # the algorithm via the engine loop a beat later: wait for both.
            lambda: ins.n_inactivity_deaths >= 1 and bool(sink_alg.broken),
            timeout=FAST["inactivity_timeout"] + FAST["probe_timeout"] + 1.5,
        )
        assert detected
        # The sink walked the full ladder and logged it.
        assert ins.n_suspects >= 1
        assert ins.n_probes >= 1
        kinds = {e.event for e in telemetry.tracer}
        assert {EventType.LINK_SUSPECT, EventType.LINK_PROBE,
                EventType.LINK_DEAD} <= kinds
        # The algorithm saw the same coherent teardown as a loud failure.
        assert (str(src.node_id), "both") in sink_alg.broken
        # Convergence: the supervisor redials a clean link and the
        # stream recovers (faults are one-shot, as in the sim).
        after_teardown = sink_alg.received
        recovered = await wait_until(
            lambda: sink_alg.received > after_teardown + 5, timeout=2.0)
        assert recovered
        await converged(cluster)

    run_converging(scenario())


@pytest.mark.parametrize("seed", SEEDS)
def test_stall_and_loud_cut_produce_identical_teardown(seed):
    """Trace comparison: the notifications an algorithm receives from a
    confirmed stall equal those from a mid-stream reset."""

    async def outcome(fault):
        cluster = ChaosCluster(ChaosController(seed=seed))
        src_alg, sink_alg = CopyForwardAlgorithm(), BrokenLinkRecorder()
        src = await cluster.add_node(src_alg, "src", watch_config(seed))
        sink = await cluster.add_node(sink_alg, "sink", watch_config(seed))
        src_alg.set_downstreams([sink.node_id])
        src.start_source(app=1, payload_size=1000)
        await wait_until(lambda: sink_alg.received > 5, timeout=2.0)
        fault(cluster.chaos, src.node_id, sink.node_id)
        await wait_until(lambda: bool(sink_alg.broken), timeout=2.0)
        await asyncio.sleep(0.3)  # settle: a churn loop would add events
        # Normalize the peer to a role so the two runs compare.
        events = [("src", d) for p, d in sink_alg.broken if p == str(src.node_id)]
        await converged(cluster)
        return events

    async def scenario():
        stalled = await outcome(lambda c, a, b: c.stall_link(a, b))
        cut = await outcome(lambda c, a, b: c.cut_link(a, b))
        assert stalled == cut
        assert stalled == [("src", "both")]  # exactly one coherent teardown

    run_converging(scenario())


@pytest.mark.parametrize("seed", SEEDS)
def test_connection_refusal_exhausts_retry_budget(seed):
    async def scenario():
        chaos = ChaosController(seed=seed)
        cluster = ChaosCluster(chaos)
        a = await cluster.add_node(SinkAlgorithm(), "a", watch_config(seed))
        b = await cluster.add_node(SinkAlgorithm(), "b", watch_config(seed))
        chaos.refuse_connect(b.node_id)
        ok = await a.connect(b.node_id)
        assert not ok
        assert chaos.n_refusals == FAST["connect_retries"]
        # Lifting the fault lets the supervised dial through again.
        chaos.allow_connect(b.node_id)
        assert await a.connect(b.node_id)
        await converged(cluster)

    run_converging(scenario())


@pytest.mark.parametrize("seed", SEEDS)
def test_midstream_reset_fails_loudly_then_recovers(seed):
    async def scenario():
        cluster = ChaosCluster(ChaosController(seed=seed))
        src_alg, sink_alg = BrokenLinkRecorder(), BrokenLinkRecorder()
        src = await cluster.add_node(src_alg, "src", watch_config(seed))
        sink = await cluster.add_node(sink_alg, "sink", watch_config(seed))
        src_alg.add_downstream(sink.node_id)
        src.start_source(app=1, payload_size=1000)
        await wait_until(lambda: sink_alg.received > 5, timeout=2.0)
        cluster.chaos.cut_link(src.node_id, sink.node_id)
        # Loud on both sides: each engine fires one BROKEN_LINK.
        torn = await wait_until(
            lambda: bool(src_alg.broken) and bool(sink_alg.broken), timeout=1.5)
        assert torn
        assert (str(sink.node_id), "both") in src_alg.broken
        assert (str(src.node_id), "both") in sink_alg.broken
        # ... then the supervisor redials and the stream recovers.
        after = sink_alg.received
        recovered = await wait_until(lambda: sink_alg.received > after + 5,
                                     timeout=2.0)
        assert recovered
        await converged(cluster)

    run_converging(scenario())


@pytest.mark.parametrize("seed", SEEDS)
def test_truncated_frame_tears_the_link_down(seed):
    """Half a frame then reset: the receiver's mid-frame EOF path cleans up."""

    async def scenario():
        cluster = ChaosCluster(ChaosController(seed=seed))
        src_alg, sink_alg = CopyForwardAlgorithm(), BrokenLinkRecorder()
        src = await cluster.add_node(src_alg, "src", watch_config(seed))
        sink = await cluster.add_node(sink_alg, "sink", watch_config(seed))
        src_alg.set_downstreams([sink.node_id])
        assert await src.connect(sink.node_id)
        await asyncio.sleep(0.05)
        cluster.chaos.truncate_next(src.node_id, sink.node_id)
        src.start_source(app=1, payload_size=2000)
        torn = await wait_until(lambda: bool(sink_alg.broken), timeout=2.0)
        assert torn  # mid-frame EOF tore the link down on the receiver
        assert cluster.chaos.n_truncations == 1
        after = sink_alg.received
        recovered = await wait_until(lambda: sink_alg.received > after + 5,
                                     timeout=2.0)
        assert recovered  # clean redial; frames decode again
        await converged(cluster)

    run_converging(scenario())


@pytest.mark.parametrize("seed", SEEDS)
def test_delayed_accept_is_survived_by_the_dialer(seed):
    async def scenario():
        chaos = ChaosController(seed=seed)
        cluster = ChaosCluster(chaos)
        a = await cluster.add_node(SinkAlgorithm(), "a", watch_config(seed))
        b = await cluster.add_node(SinkAlgorithm(), "b", watch_config(seed))
        chaos.set_accept_delay(b.node_id, 0.3)
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        ok = await a.connect(b.node_id)
        assert ok  # the dialer is not blocked by the remote hold
        # ... but b only registers the link once the held HELLO is read.
        registered = await wait_until(lambda: a.node_id in b._peers, timeout=1.5)
        elapsed = loop.time() - t0
        assert registered
        assert elapsed >= 0.28  # the accept really was held back
        await converged(cluster)

    run_converging(scenario())


@pytest.mark.parametrize("seed", SEEDS)
def test_failure_schedule_runs_against_the_cluster(seed):
    """The sim's declarative FailureSchedule drives real sockets too."""

    async def scenario():
        cluster = ChaosCluster(ChaosController(seed=seed))
        src_alg = CopyForwardAlgorithm()
        sink_a, sink_b = BrokenLinkRecorder(), BrokenLinkRecorder()
        src = await cluster.add_node(src_alg, "src", watch_config(seed))
        a = await cluster.add_node(sink_a, "a", watch_config(seed))
        b = await cluster.add_node(sink_b, "b", watch_config(seed))
        src_alg.set_downstreams([a.node_id, b.node_id])
        src.start_source(app=1, payload_size=1000)
        await wait_until(lambda: sink_a.received > 3 and sink_b.received > 3,
                         timeout=2.0)

        schedule = FailureSchedule()
        schedule.stall_link(0.05, "src", "a").kill_node(0.2, "b")
        cluster.arm(schedule)

        done = await wait_until(
            lambda: bool(sink_a.broken) and not b.running, timeout=2.5)
        assert done
        assert cluster.chaos.n_stalls == 1  # the stall verb really fired
        assert (str(src.node_id), "both") in sink_a.broken  # ladder teardown
        assert b.node_id not in src._peers  # killed node torn down loudly
        await converged(cluster)

    run_converging(scenario())


def test_schedule_tolerates_unknown_targets():
    async def scenario():
        cluster = ChaosCluster(ChaosController(seed=1))
        await cluster.add_node(SinkAlgorithm(), "solo", watch_config(1))
        # cut_link against a never-connected pair mirrors the sim's
        # UnknownNodeError contract ...
        with pytest.raises(UnknownNodeError):
            cluster.chaos.cut_link(cluster["solo"], NodeId("127.0.0.1", 1))
        # ... and a schedule racing a real failure swallows it.
        schedule = FailureSchedule().cut_link(0.01, "solo", "ghost")
        cluster.arm(schedule)
        await asyncio.sleep(0.1)  # must not raise
        await converged(cluster)

    run_converging(scenario())
