"""Tests of the connection supervisor: backoff, tie-break, observer outbox."""

import asyncio
import random

import pytest

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.net.engine import AsyncioEngine, NetEngineConfig
from repro.net.observer_server import ObserverServer
from repro.net.resilience import BackoffPolicy, ObserverOutbox, ResilienceConfig
from repro.telemetry import Telemetry

from tests.portalloc import next_addr


def run(coro):
    return asyncio.run(coro)


def fast_resilience(**overrides) -> ResilienceConfig:
    base = dict(connect_retries=3, backoff_base=0.02, backoff_max=0.1,
                backoff_jitter=0.1, seed=7, observer_backoff_max=0.1)
    base.update(overrides)
    return ResilienceConfig(**base)


async def start(algorithm, config=None, observer=None, addr=None):
    engine = AsyncioEngine(
        addr or next_addr(), algorithm,
        observer_addr=observer.addr if observer else None,
        config=config,
    )
    await engine.start()
    return engine


class BrokenLinkRecorder(SinkAlgorithm):
    def __init__(self):
        super().__init__()
        self.broken = []

    def on_broken_link(self, msg):
        self.broken.append(msg.fields()["peer"])
        return super().on_broken_link(msg)


# ------------------------------------------------------------------ pure policy


def test_backoff_is_deterministic_and_bounded():
    a = BackoffPolicy(0.05, 2.0, jitter=0.2, rng=random.Random(42))
    b = BackoffPolicy(0.05, 2.0, jitter=0.2, rng=random.Random(42))
    delays_a = [a.delay(i) for i in range(10)]
    delays_b = [b.delay(i) for i in range(10)]
    assert delays_a == delays_b  # same seed, same schedule
    for i, delay in enumerate(delays_a):
        assert 0.05 * 2**i * 0.999 <= delay or delay >= 2.0 * 0.999
        assert delay <= 2.0 * 1.2  # capped even with jitter
    assert delays_a[0] < delays_a[3]  # grows before the cap


def test_backoff_without_jitter_is_pure_exponential():
    policy = BackoffPolicy(0.1, 1.0)
    assert [policy.delay(i) for i in range(5)] == [0.1, 0.2, 0.4, 0.8, 1.0]


def test_outbox_drop_oldest_and_at_least_once_head():
    box = ObserverOutbox(capacity=3)
    msgs = [Message.with_fields(MsgType.TRACE, NodeId("1.1.1.1", 1), 0, i=i)
            for i in range(5)]
    assert box.push(msgs[0]) is None
    assert box.push(msgs[1]) is None
    assert box.push(msgs[2]) is None
    assert box.push(msgs[3]) is msgs[0]  # overflow evicts the oldest
    assert box.push(msgs[4]) is msgs[1]
    assert len(box) == 3
    head = box.head()
    assert head is msgs[2]
    box.pop_head(msgs[3])  # not the head any more -> no-op
    assert box.head() is msgs[2]
    box.pop_head(head)
    assert box.head() is msgs[3]


def test_outbox_rejects_zero_capacity():
    with pytest.raises(ValueError):
        ObserverOutbox(capacity=0)


# -------------------------------------------------------------- supervised dial


def test_dial_retries_until_late_server_arrives():
    """A destination that comes up late is reached within the retry budget."""

    async def scenario():
        dest_addr = next_addr()
        src_alg = CopyForwardAlgorithm()
        src = await start(src_alg, NetEngineConfig(
            resilience=fast_resilience(connect_retries=8)))
        src_alg.set_downstreams([dest_addr])

        sink = SinkAlgorithm()
        connect_task = asyncio.ensure_future(src.connect(dest_addr))
        await asyncio.sleep(0.08)  # at least one attempt fails first
        dst = await start(sink, addr=dest_addr)
        ok = await connect_task
        src.start_source(app=1, payload_size=1000)
        await asyncio.sleep(0.3)
        await src.stop()
        await dst.stop()
        return ok, sink.received

    ok, received = run(scenario())
    assert ok
    assert received > 0


def test_dial_gives_up_after_retry_budget():
    async def scenario():
        telemetry = Telemetry()
        src = await start(BrokenLinkRecorder(), NetEngineConfig(
            telemetry=telemetry,
            resilience=fast_resilience(connect_retries=2)))
        dead = next_addr()  # nobody listens here
        ok = await src.connect(dead)
        failures = src._ins.n_connect_failures
        await src.stop()
        return ok, failures

    ok, failures = run(scenario())
    assert not ok
    assert failures == 2  # one per budgeted attempt


def test_concurrent_sends_coalesce_to_one_dial():
    async def scenario():
        sink = SinkAlgorithm()
        dst = await start(sink)
        src_alg = CopyForwardAlgorithm()
        src = await start(src_alg, NetEngineConfig(resilience=fast_resilience()))
        results = await asyncio.gather(*[src.connect(dst.node_id) for _ in range(8)])
        n_peers = len(src._peers)
        await src.stop()
        await dst.stop()
        return results, n_peers

    results, n_peers = run(scenario())
    assert all(results)
    assert n_peers == 1


# ------------------------------------------------------- simultaneous connect


def test_simultaneous_connect_converges_on_one_link():
    """Both nodes dial each other at once; the lower NodeId's connection
    wins on both ends, no BROKEN_LINK fires, and data flows both ways."""

    async def scenario():
        alg_a, alg_b = BrokenLinkRecorder(), BrokenLinkRecorder()
        a = await start(alg_a, NetEngineConfig(resilience=fast_resilience()))
        b = await start(alg_b, NetEngineConfig(resilience=fast_resilience()))
        ok_a, ok_b = await asyncio.gather(a.connect(b.node_id), b.connect(a.node_id))
        await asyncio.sleep(0.2)  # let any losing socket close resolve

        assert ok_a and ok_b
        assert list(a._peers) == [b.node_id]
        assert list(b._peers) == [a.node_id]

        # Exercise the surviving link in both directions.
        ping = Message(MsgType.DATA, a.node_id, 1, b"x" * 100)
        pong = Message(MsgType.DATA, b.node_id, 1, b"y" * 100)
        a.send(ping, b.node_id)
        b.send(pong, a.node_id)
        await asyncio.sleep(0.3)
        received = (alg_a.received, alg_b.received)
        broken = (list(alg_a.broken), list(alg_b.broken))
        await a.stop()
        await b.stop()
        return received, broken

    received, broken = run(scenario())
    assert received == (1, 1)
    assert broken == ([], [])  # the tie-break is silent


# ------------------------------------------------------------- observer outbox


def test_status_reports_survive_observer_restart():
    async def scenario():
        observer_addr = next_addr()
        observer = ObserverServer(observer_addr, poll_interval=None)
        await observer.start()
        node = await start(
            SinkAlgorithm(),
            NetEngineConfig(resilience=fast_resilience(
                backoff_base=0.02, observer_backoff_max=0.05)),
            observer=observer,
        )
        await asyncio.sleep(0.1)
        assert node.node_id in observer.observer.alive

        await observer.stop()
        await asyncio.sleep(0.1)
        # Queued while the observer is down: parked in the outbox.
        node.send_to_observer(node._status_report())
        queued = len(node._observer_outbox)

        restarted = ObserverServer(observer_addr, poll_interval=None)
        await restarted.start()
        await asyncio.sleep(0.6)  # backoff redial + flush
        alive = set(restarted.observer.alive)
        statuses = dict(restarted.observer.statuses)
        remaining = len(node._observer_outbox)
        await node.stop()
        await restarted.stop()
        return queued, alive, statuses, remaining, node.node_id

    queued, alive, statuses, remaining, node_id = run(scenario())
    assert queued >= 1
    assert node_id in alive       # fresh BOOT re-introduced the node
    assert node_id in statuses    # the parked report was flushed
    assert remaining == 0


def test_outbox_overflow_drops_oldest_and_counts():
    async def scenario():
        observer = ObserverServer(next_addr(), poll_interval=None)
        await observer.start()
        telemetry = Telemetry()
        node = await start(
            SinkAlgorithm(),
            NetEngineConfig(telemetry=telemetry, resilience=fast_resilience(
                observer_outbox=4, observer_reconnect=False)),
            observer=observer,
        )
        await asyncio.sleep(0.1)
        await observer.stop()
        await asyncio.sleep(0.1)
        for i in range(10):
            node.send_to_observer(Message.with_fields(
                MsgType.TRACE, node.node_id, 0, line=f"t{i}"))
        depth = len(node._observer_outbox)
        drops = node._ins.n_observer_drops
        await node.stop()
        return depth, drops

    depth, drops = run(scenario())
    assert depth == 4
    assert drops == 6


# -------------------------------------------------------------- observer leases


def test_observer_lease_expires_a_silently_dead_node():
    """A node whose connection stays open but falls silent is swept out."""

    async def scenario():
        from repro.net.framing import hello_message, write_message

        observer = ObserverServer(next_addr(), poll_interval=0.05,
                                  lease_timeout=0.25)
        await observer.start()
        # A "ghost": boots like a node, then never speaks again — the
        # TCP connection stays open, so no loud error ever reaches the
        # observer (a partition looks exactly like this).
        ghost = next_addr()
        reader, writer = await asyncio.open_connection(
            observer.addr.ip, observer.addr.port)
        write_message(writer, hello_message(ghost))
        write_message(writer, Message.with_fields(
            MsgType.BOOT, ghost, 0, node=str(ghost)))
        await writer.drain()
        await asyncio.sleep(0.1)
        booted = ghost in observer.observer.alive

        await asyncio.sleep(0.5)  # well past the lease
        expired = ghost not in observer.observer.alive
        expiries = observer.observer.lease_expiries
        traces = [r for r in observer.observer.traces
                  if "lease-expired" in r.text]
        # The sweep closed our connection: draining past any pending
        # poll REQUESTs must reach EOF.
        await asyncio.wait_for(reader.read(), timeout=1.0)
        closed = reader.at_eof()
        writer.close()
        await observer.stop()
        return booted, expired, expiries, traces, closed

    booted, expired, expiries, traces, closed = run(scenario())
    assert booted
    assert expired
    assert expiries == 1
    assert len(traces) == 1
    assert closed


def test_observer_lease_is_renewed_by_status_traffic():
    """A live node's periodic reports keep its lease fresh indefinitely."""

    async def scenario():
        observer = ObserverServer(next_addr(), poll_interval=0.05,
                                  lease_timeout=0.25)
        await observer.start()
        node = await start(
            SinkAlgorithm(),
            NetEngineConfig(report_interval=0.1,
                            resilience=fast_resilience()),
            observer=observer,
        )
        await asyncio.sleep(0.8)  # several lease windows
        alive = node.node_id in observer.observer.alive
        expiries = observer.observer.lease_expiries
        await node.stop()
        await observer.stop()
        return alive, expiries

    alive, expiries = run(scenario())
    assert alive
    assert expiries == 0


# ----------------------------------------------------------- liveness watchdog


def test_probes_keep_an_idle_link_alive():
    """An idle but healthy link is probed, answered, and never torn down."""

    async def scenario():
        telemetry = Telemetry()
        res = fast_resilience(inactivity_timeout=0.1, probe_timeout=0.2)
        alg_a, alg_b = BrokenLinkRecorder(), BrokenLinkRecorder()
        a = await start(alg_a, NetEngineConfig(telemetry=telemetry, resilience=res))
        b = await start(alg_b, NetEngineConfig(
            resilience=fast_resilience(inactivity_timeout=0.1, probe_timeout=0.2)))
        await a.connect(b.node_id)
        await asyncio.sleep(0.8)  # several inactivity windows
        alive = b.node_id in a._peers and a.node_id in b._peers
        suspects = a._ins.n_suspects
        deaths = a._ins.n_inactivity_deaths
        broken = alg_a.broken + alg_b.broken
        await a.stop()
        await b.stop()
        return alive, suspects, deaths, broken

    alive, suspects, deaths, broken = run(scenario())
    assert alive
    assert suspects >= 1   # the watchdog did fire
    assert deaths == 0     # but every probe was answered
    assert broken == []
