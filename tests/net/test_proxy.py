"""Dedicated tests for the observer proxy (Section 2.2's firewall relay).

The proxy was previously only exercised incidentally from the engine
integration tests; these pin down its contract directly: upstream
envelopes preserve per-origin ordering and carry the right origin
label, downstream envelopes unwrap to exactly the frame the observer
sent, an upstream drop mid-relay degrades silently instead of killing
node connections, and ``stop()`` with live downstreams closes
everything cleanly.
"""

import asyncio
import socket
import struct

import pytest

from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.net.framing import (
    expect_hello,
    open_identified,
    proxy_meta,
    read_message,
    unwrap_proxy,
    wrap_proxy_down,
    write_message,
)
from repro.net.proxy import ObserverProxy

from tests.portalloc import next_addr


def run(coro):
    return asyncio.run(coro)


class FakeObserver:
    """A minimal upstream endpoint: accepts the proxy's single connection."""

    def __init__(self):
        self.addr = None
        self.hello = None
        self.envelopes = []
        self.writer = None
        self._server = None
        self._connected = asyncio.Event()

    async def start(self):
        self._server = await asyncio.start_server(self._accept, "127.0.0.1", 0)
        self.addr = NodeId("127.0.0.1", self._server.sockets[0].getsockname()[1])

    async def _accept(self, reader, writer):
        self.hello = await expect_hello(reader)
        self.writer = writer
        self._connected.set()
        try:
            while True:
                self.envelopes.append(await read_message(reader))
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()

    async def wait_connected(self):
        await asyncio.wait_for(self._connected.wait(), 5.0)

    def send_down(self, dest: NodeId, frame: Message):
        write_message(self.writer, wrap_proxy_down(self.addr, dest, frame))

    async def stop(self):
        if self.writer is not None:
            self.writer.close()
        self._server.close()
        await self._server.wait_closed()


async def wait_for(predicate, timeout=5.0):
    async with asyncio.timeout(timeout):
        while not predicate():
            await asyncio.sleep(0.01)


def trace(sender: NodeId, text: str) -> Message:
    return Message.with_fields(MsgType.TRACE, sender, 1, text=text)


async def proxy_setup():
    observer = FakeObserver()
    await observer.start()
    proxy = ObserverProxy(NodeId("127.0.0.1", 0), observer.addr)
    await proxy.start()
    await observer.wait_connected()
    return observer, proxy


class TestRelayUp:
    def test_envelopes_keep_order_and_label_origin(self):
        async def scenario():
            observer, proxy = await proxy_setup()
            a, b = next_addr(), next_addr()
            _, wa = await open_identified(proxy.addr, a)
            _, wb = await open_identified(proxy.addr, b)
            for i in range(5):
                write_message(wa, trace(a, f"a{i}"))
                write_message(wb, trace(b, f"b{i}"))
            await wa.drain()
            await wb.drain()
            await wait_for(lambda: len(observer.envelopes) == 10)

            assert observer.hello == proxy.addr
            assert proxy.relayed_up == 10
            by_origin = {}
            for envelope in observer.envelopes:
                assert envelope.type == MsgType.PROXY
                assert envelope.sender == proxy.addr
                inner = unwrap_proxy(envelope)
                by_origin.setdefault(proxy_meta(envelope)["origin"], []).append(
                    inner.fields()["text"]
                )
            # per-origin FIFO order survives the relay, labels match
            assert by_origin == {
                str(a): [f"a{i}" for i in range(5)],
                str(b): [f"b{i}" for i in range(5)],
            }
            wa.close()
            wb.close()
            await proxy.stop()
            await observer.stop()

        run(scenario())


class TestRelayDown:
    def test_downstream_unwraps_to_the_right_node(self):
        async def scenario():
            observer, proxy = await proxy_setup()
            a, b = next_addr(), next_addr()
            ra, wa = await open_identified(proxy.addr, a)
            rb, wb = await open_identified(proxy.addr, b)
            write_message(wa, trace(a, "hello"))  # ensure both registered
            write_message(wb, trace(b, "hello"))
            await wait_for(lambda: len(observer.envelopes) == 2)

            observer.send_down(a, trace(observer.addr, "for-a"))
            observer.send_down(b, trace(observer.addr, "for-b"))
            got_a = await asyncio.wait_for(read_message(ra), 5.0)
            got_b = await asyncio.wait_for(read_message(rb), 5.0)
            assert got_a.fields()["text"] == "for-a"
            assert got_b.fields()["text"] == "for-b"
            assert proxy.relayed_down == 2
            wa.close()
            wb.close()
            await proxy.stop()
            await observer.stop()

        run(scenario())

    def test_unknown_destination_is_dropped(self):
        async def scenario():
            observer, proxy = await proxy_setup()
            a = next_addr()
            ra, wa = await open_identified(proxy.addr, a)
            write_message(wa, trace(a, "hello"))
            await wait_for(lambda: len(observer.envelopes) == 1)

            observer.send_down(next_addr(), trace(observer.addr, "nobody-home"))
            observer.send_down(a, trace(observer.addr, "for-a"))
            got = await asyncio.wait_for(read_message(ra), 5.0)
            assert got.fields()["text"] == "for-a"  # dropped frame never arrives
            assert proxy.relayed_down == 1
            wa.close()
            await proxy.stop()
            await observer.stop()

        run(scenario())


class TestUpstreamDrop:
    def test_upstream_drop_mid_relay_degrades_silently(self):
        async def scenario():
            observer, proxy = await proxy_setup()
            a = next_addr()
            ra, wa = await open_identified(proxy.addr, a)
            write_message(wa, trace(a, "before"))
            await wait_for(lambda: proxy.relayed_up == 1)

            # Kill the observer link hard (RST, not a polite FIN): the
            # proxy must notice the loss, not just a half-closed stream.
            sock = observer.writer.get_extra_info("socket")
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            observer.writer.close()
            await wait_for(lambda: proxy._upstream_writer.is_closing())
            await wait_for(lambda: proxy._upstream_task.done())

            # Node keeps sending: frames are discarded, connection survives.
            for i in range(3):
                write_message(wa, trace(a, f"after{i}"))
            await wa.drain()
            await asyncio.sleep(0.1)
            assert proxy.relayed_up == 1
            assert not wa.is_closing()
            wa.close()
            await proxy.stop()
            await observer.stop()

        run(scenario())


class TestStop:
    def test_stop_with_live_downstreams_closes_cleanly(self):
        async def scenario():
            observer, proxy = await proxy_setup()
            addrs = [next_addr() for _ in range(3)]
            conns = [await open_identified(proxy.addr, addr) for addr in addrs]
            for (_, writer), addr in zip(conns, addrs):
                write_message(writer, trace(addr, "hello"))
            await wait_for(lambda: proxy.relayed_up == 3)

            await proxy.stop()
            # every downstream sees EOF, not a stuck connection
            for reader, _ in conns:
                with pytest.raises((asyncio.IncompleteReadError, ConnectionError)):
                    await asyncio.wait_for(read_message(reader), 5.0)
            # the listener is gone too
            with pytest.raises(OSError):
                await asyncio.wait_for(
                    asyncio.open_connection(proxy.addr.ip, proxy.addr.port), 2.0
                )
            await observer.stop()

        run(scenario())

    def test_start_failure_leaves_no_listener(self):
        async def scenario():
            # no observer at this address: start() must raise AND release
            # the server socket it bound first (port-0 identity ordering).
            proxy = ObserverProxy(NodeId("127.0.0.1", 0), next_addr())
            with pytest.raises(OSError):
                await proxy.start()
            assert proxy._server is None
            assert not proxy._running

        run(scenario())


class TestLiveObserverIntegration:
    def test_proxied_nodes_reach_a_real_observer(self):
        async def scenario():
            from repro.net.observer_server import ObserverServer

            server = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=0.2)
            await server.start()
            proxy = ObserverProxy(NodeId("127.0.0.1", 0), server.addr)
            await proxy.start()
            node = next_addr()
            _, writer = await open_identified(proxy.addr, node)
            write_message(
                writer,
                Message.with_fields(MsgType.BOOT, node, 0, node=str(node)),
            )
            await wait_for(lambda: node in server.observer.alive)
            assert server.observer.alive  # booted through the proxy
            writer.close()
            await proxy.stop()
            await server.stop()

        run(scenario())
