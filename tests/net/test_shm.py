"""Tests for the shared-memory ring transport (:mod:`repro.net.shm`).

Three layers are pinned down separately:

- :class:`RingBuffer` byte mechanics — wrap-around copies, full-ring
  back pressure, attach-by-name sharing;
- :class:`ShmEndpoint` framing — batched flushes preserve order and
  bytes, messages larger than the free ring cross it in pieces, socket
  EOF surfaces exactly like a dead TCP peer, teardown unlinks segments;
- negotiation — two live engines on one machine converge on shm links
  (and report them in ``transport_mix``), while a disabled acceptor or
  a foreign boot cookie degrades the very same dial to plain TCP.
"""

import asyncio
import os

import pytest

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.net.engine import AsyncioEngine, NetEngineConfig
from repro.net.framing import MAX_FRAME_PAYLOAD, read_message, write_message
from repro.net.shm import (
    RingBuffer,
    ShmEndpoint,
    accept_shm,
    machine_cookie,
    shm_offer,
)

from tests.portalloc import next_addr


def run(coro):
    return asyncio.run(coro)


def data_msg(seq: int, payload: bytes) -> Message:
    return Message(MsgType.DATA, NodeId("127.0.0.1", 7001), 1, payload, seq=seq)


class TestRingBuffer:
    def test_wraparound_roundtrip(self):
        ring = RingBuffer.create(capacity=64)
        try:
            for i in range(10):  # 48 bytes per pass forces wrapping
                blob = bytes([i]) * 48
                assert ring.write_some(memoryview(blob)) == 48
                assert ring.read_available() == blob
        finally:
            ring.release(unlink=True)

    def test_full_ring_applies_back_pressure(self):
        ring = RingBuffer.create(capacity=32)
        try:
            data = memoryview(b"x" * 40)
            assert ring.write_some(data) == 32  # partial write up to capacity
            assert ring.write_some(data, offset=32) == 0  # full: nothing fits
            assert ring.read_available() == b"x" * 32
            assert ring.write_some(data, offset=32) == 8  # space reclaimed
        finally:
            ring.release(unlink=True)

    def test_attach_shares_the_same_bytes(self):
        creator = RingBuffer.create(capacity=128)
        try:
            attacher = RingBuffer.attach(creator.name)
            try:
                creator.write_some(memoryview(b"hello rings"))
                assert attacher.read_available() == b"hello rings"
                assert attacher.capacity == 128
            finally:
                attacher.release(unlink=False)
        finally:
            creator.release(unlink=True)

    def test_unlink_removes_the_segment(self):
        ring = RingBuffer.create(capacity=64)
        name = ring.name
        ring.release(unlink=True)
        with pytest.raises(FileNotFoundError):
            RingBuffer.attach(name)


async def endpoint_pair(ring_bytes=1 << 16):
    """Two connected ShmEndpoints over real rings + a real socket pair."""
    accepted = asyncio.get_running_loop().create_future()

    async def on_accept(reader, writer):
        accepted.set_result((reader, writer))

    server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    cr, cw = await asyncio.open_connection("127.0.0.1", port)
    sr, sw = await accepted
    c2s, s2c = RingBuffer.create(ring_bytes), RingBuffer.create(ring_bytes)
    a = ShmEndpoint(ring_out=c2s, ring_in=s2c, sock_reader=cr, sock_writer=cw,
                    owns_rings=True, max_payload=MAX_FRAME_PAYLOAD)
    b = ShmEndpoint(ring_out=RingBuffer.attach(s2c.name),
                    ring_in=RingBuffer.attach(c2s.name),
                    sock_reader=sr, sock_writer=sw,
                    owns_rings=False, max_payload=MAX_FRAME_PAYLOAD)
    server.close()
    return a, b


class TestShmEndpoint:
    def test_batched_frames_preserve_order_and_bytes(self):
        async def scenario():
            a, b = await endpoint_pair()
            sent = [data_msg(i, bytes([i % 251]) * (i * 7 % 400)) for i in range(100)]
            for msg in sent:  # one flush for the whole batch
                a.send_message(msg)
            await a.drain()
            got = [await b.recv_message() for _ in range(100)]
            a.close()
            b.close()
            return sent, got

        sent, got = run(scenario())
        assert [m.seq for m in got] == [m.seq for m in sent]
        assert all(g.payload == s.payload for g, s in zip(got, sent))
        assert all(g.sender == s.sender for g, s in zip(got, sent))

    def test_traffic_larger_than_the_ring_crosses_it(self):
        async def scenario():
            # 4 KiB rings, ~200 KiB of frames: the producer must park on
            # a full ring and resume as the consumer reclaims space.
            a, b = await endpoint_pair(ring_bytes=4096)
            n, received = 100, []

            async def producer():
                for i in range(n):
                    a.send_message(data_msg(i, b"z" * 2000))
                    await a.drain()

            async def consumer():
                for _ in range(n):
                    received.append(await b.recv_message())

            await asyncio.gather(producer(), consumer())
            a.close()
            b.close()
            return received

        received = run(scenario())
        assert [m.seq for m in received] == list(range(100))
        assert all(m.payload == b"z" * 2000 for m in received)

    def test_peer_close_surfaces_eof_after_draining(self):
        async def scenario():
            a, b = await endpoint_pair()
            a.send_message(data_msg(0, b"last words"))
            await a.drain()
            a.close()  # socket FIN + producer_closed flag
            final = await b.recv_message()  # published data still readable
            with pytest.raises(asyncio.IncompleteReadError):
                await b.recv_message()
            b.close()
            return final

        final = run(scenario())
        assert final.payload == b"last words"

    def test_send_after_close_raises_connection_reset(self):
        async def scenario():
            a, b = await endpoint_pair()
            a.close()
            with pytest.raises(ConnectionResetError):
                a.send_message(data_msg(0, b""))
            b.close()

        run(scenario())

    def test_owner_close_unlinks_both_segments(self):
        async def scenario():
            a, b = await endpoint_pair()
            names = (a._out.name, a._in.name)
            b.close()  # attacher first: must NOT unlink
            for name in names:
                RingBuffer.attach(name).release(unlink=False)
            a.close()  # owner: unlinks both
            return names

        names = run(scenario())
        for name in names:
            with pytest.raises(FileNotFoundError):
                RingBuffer.attach(name)


async def start_engine(algorithm, shm_ring_bytes):
    engine = AsyncioEngine(
        next_addr(), algorithm,
        config=NetEngineConfig(shm_ring_bytes=shm_ring_bytes),
    )
    await engine.start()
    return engine


class TestNegotiation:
    def test_co_machine_engines_converge_on_shm(self):
        async def scenario():
            src_alg, dst_alg = CopyForwardAlgorithm(), SinkAlgorithm()
            src = await start_engine(src_alg, 1 << 16)
            dst = await start_engine(dst_alg, 1 << 16)
            src_alg.set_downstreams([dst.node_id])
            src.start_source(app=1, payload_size=2000)
            await asyncio.sleep(0.5)
            mixes = (src.transport_mix(), dst.transport_mix())
            received = dst_alg.received
            await src.stop()
            await dst.stop()
            return mixes, received

        (src_mix, dst_mix), received = run(scenario())
        assert received > 10
        assert src_mix == {"shm": 1}
        assert dst_mix == {"shm": 1}

    def test_disabled_acceptor_falls_back_to_tcp(self):
        async def scenario():
            src_alg, dst_alg = CopyForwardAlgorithm(), SinkAlgorithm()
            src = await start_engine(src_alg, 1 << 16)
            dst = await start_engine(dst_alg, 0)  # shm off on this side
            src_alg.set_downstreams([dst.node_id])
            src.start_source(app=1, payload_size=2000)
            await asyncio.sleep(0.5)
            mixes = (src.transport_mix(), dst.transport_mix())
            received = dst_alg.received
            await src.stop()
            await dst.stop()
            return mixes, received

        (src_mix, dst_mix), received = run(scenario())
        assert received > 10
        assert src_mix == {"tcp": 1}
        assert dst_mix == {"tcp": 1}

    def test_fallback_leaves_no_segments_behind(self):
        async def scenario():
            before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
            src_alg, dst_alg = CopyForwardAlgorithm(), SinkAlgorithm()
            src = await start_engine(src_alg, 1 << 16)
            dst = await start_engine(dst_alg, 0)
            src_alg.set_downstreams([dst.node_id])
            await asyncio.sleep(0.3)
            await src.stop()
            await dst.stop()
            after = set(os.listdir("/dev/shm")) if before is not None else None
            return before, after

        before, after = run(scenario())
        if before is not None:  # denied offers must unlink their rings
            assert after - before == set()

    def test_foreign_cookie_is_denied(self):
        async def scenario():
            accepted = asyncio.get_running_loop().create_future()

            async def on_accept(reader, writer):
                accepted.set_result((reader, writer))

            server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            cr, cw = await asyncio.open_connection("127.0.0.1", port)
            sr, sw = await accepted
            rings, offer = shm_offer(1 << 14)
            assert offer["cookie"] == machine_cookie()
            offer["cookie"] = "not-this-machine"
            endpoint = await accept_shm(
                offer, NodeId("127.0.0.1", 7999), sr, sw,
                enabled=True, max_payload=MAX_FRAME_PAYLOAD,
            )
            ack = await read_message(cr)
            rings[0].release(unlink=True)
            rings[1].release(unlink=True)
            cw.close()
            sw.close()
            server.close()
            return endpoint, ack

        endpoint, ack = run(scenario())
        assert endpoint is None
        assert ack.type == MsgType.SHM_ACK
        assert ack.fields()["ok"] is False

    def test_bogus_segment_names_are_denied_not_fatal(self):
        async def scenario():
            accepted = asyncio.get_running_loop().create_future()

            async def on_accept(reader, writer):
                accepted.set_result((reader, writer))

            server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            cr, cw = await asyncio.open_connection("127.0.0.1", port)
            sr, sw = await accepted
            offer = {"cookie": machine_cookie(), "c2s": "no_such_seg_a",
                     "s2c": "no_such_seg_b", "size": 1 << 14}
            endpoint = await accept_shm(
                offer, NodeId("127.0.0.1", 7999), sr, sw,
                enabled=True, max_payload=MAX_FRAME_PAYLOAD,
            )
            ack = await read_message(cr)
            cw.close()
            sw.close()
            server.close()
            return endpoint, ack

        endpoint, ack = run(scenario())
        assert endpoint is None
        assert ack.fields()["ok"] is False
