"""Drift guard: backends must not reimplement EngineCore-owned methods.

The two engines spent three PRs drifting apart before the shared core
existed (``disconnect`` only on sim, loss counters only on sim, probe
handling diverging).  This static check walks the AST of both backend
modules and fails if either defines a method that :class:`EngineCore`
owns concretely — the only legitimate overrides are the abstract
Transport/Clock/ObserverSink port methods and the documented hooks.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

CORE_FILE = SRC / "core" / "engine_core.py"
BACKENDS = {
    "SimEngine": SRC / "sim" / "engine.py",
    "AsyncioEngine": SRC / "net" / "engine.py",
}

#: overridable extension points, documented as such in EngineCore
HOOKS = {"_yield_control", "_on_engine_start", "_source_pacing", "_source_burst",
         "_rounds_per_wakeup", "_credit_scale", "_flush_round"}

#: backends define their own constructor (it calls super().__init__)
ALWAYS_ALLOWED = {"__init__"}


def _class_def(tree: ast.Module, name: str) -> ast.ClassDef:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    raise AssertionError(f"class {name} not found")


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _is_abstract(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in fn.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def core_owned_methods() -> set[str]:
    """Concrete (non-abstract, non-hook) methods EngineCore owns."""
    tree = ast.parse(CORE_FILE.read_text())
    core = _class_def(tree, "EngineCore")
    owned = {
        name
        for name, fn in _methods(core).items()
        if not _is_abstract(fn)
    }
    return owned - HOOKS - ALWAYS_ALLOWED


def test_core_owns_the_switching_semantics():
    """Sanity: the extraction actually moved the semantics into the core."""
    owned = core_owned_methods()
    for essential in (
        "send", "_stage", "_engine_loop", "_drain_control", "_engine_process",
        "_switch_round", "_retry_pending", "_try_forward", "_defer_data",
        "_handle_probe", "_apply_bandwidth", "_status_report", "_source_loop",
        "_report_loop", "_broadcast_broken_source", "_propagate_broken_source",
        "start_source", "stop_source", "set_timer", "set_port_weight", "measure",
    ):
        assert essential in owned, f"EngineCore no longer owns {essential}"


def test_backends_do_not_reimplement_core_methods():
    owned = core_owned_methods()
    offenders = {}
    for cls_name, path in BACKENDS.items():
        tree = ast.parse(path.read_text())
        backend = _class_def(tree, cls_name)
        overlap = sorted(set(_methods(backend)) & owned)
        if overlap:
            offenders[cls_name] = overlap
    assert not offenders, (
        "backends redefine EngineCore-owned methods (the drift the shared "
        f"core exists to prevent): {offenders}"
    )


def test_backends_implement_every_abstract_port_method():
    """The inverse direction: each backend supplies the full port protocol."""
    tree = ast.parse(CORE_FILE.read_text())
    core = _class_def(tree, "EngineCore")
    abstract = {name for name, fn in _methods(core).items() if _is_abstract(fn)}
    assert abstract, "EngineCore lost its abstract port protocol"
    for cls_name, path in BACKENDS.items():
        backend = _class_def(ast.parse(path.read_text()), cls_name)
        missing = sorted(abstract - set(_methods(backend)))
        assert not missing, f"{cls_name} does not implement {missing}"
