"""Hierarchical observability plane, live: tree roll-ups + causal tracing.

The acceptance scenario for the observer tree: a butterfly workload
sharded across two real worker processes, with the workers' observer
proxies wired into an aggregation tree (fanout 1: w1 flushes through
w0's proxy).  A data message that crosses the worker boundary must
yield ONE stitched causal path at the root observer — the deterministic
``sender/app#seq`` trace id survives wire re-decode, so both workers'
tracers label the same message identically — and the fleet-wide metric
roll-up must carry non-empty ``ioverlay_hop_latency_seconds``
observations recorded at forward time.
"""

import asyncio

from repro.cluster.scenarios import (
    BURST_CONTROL,
    butterfly_specs,
    wait_until,
)

from tests.cluster.helpers import poll_info, start_fleet, stop_fleet, wait_all_alive


def run(coro):
    return asyncio.run(coro)


class TestCrossWorkerTracing:
    def test_butterfly_message_stitches_one_path_at_the_root(self):
        app, count, size = 5, 6, 128
        generations = count // 2

        async def scenario():
            observer, controller = await start_fleet(
                workers=2,
                observer_fanout=1,
                observer_flush_interval=0.2,
                worker_telemetry=True,
                worker_trace_sample=1,
            )
            placed = await controller.deploy(butterfly_specs())
            node_worker = {
                str(p.node_id): p.worker for p in placed.values()
            }
            # round-robin genuinely spreads the butterfly over both workers
            assert len(set(node_worker.values())) == 2
            await wait_all_alive(observer, placed)

            controller.send_control(
                "A", BURST_CONTROL, param1=count, param2=size, app=app
            )
            for name in ("F", "G"):
                await poll_info(
                    controller, name,
                    lambda i: i.get("decoded", 0) >= generations,
                )

            # The trace id is a pure function of the immutable header, so
            # we can name the source's first data message without ever
            # having seen it on the wire.
            tid = f"{placed['A'].node_id}/{app}#0"

            def stitched_across_workers() -> bool:
                path = observer.observer.flow_path(tid)
                workers = {node_worker[n] for n in path if n in node_worker}
                return len(workers) >= 2

            ok = await wait_until(stitched_across_workers, timeout=30.0)
            assert ok, (
                f"flow_path({tid!r}) never spanned both workers; "
                f"last path: {observer.observer.flow_path(tid)}"
            )

            report = observer.observer.flow_report(tid)
            assert report["path"] == observer.observer.flow_path(tid)
            assert report["hops"], "stitched path has no per-hop entries"
            for hop in report["hops"]:
                assert hop["events"], f"hop {hop['node']} has no events"
                assert hop["last_seen"] >= hop["first_seen"]
                assert hop["dwell"] >= 0.0
            # The message entered at the source, on its worker.
            assert report["path"][0] == str(placed["A"].node_id)

            # Hop latencies recorded at forward time rolled up to the root
            # through the aggregation tree.
            def hop_observations() -> int:
                family = observer.observer.cluster_metrics().get(
                    "ioverlay_hop_latency_seconds"
                )
                if not family:
                    return 0
                return int(sum(s.get("count", 0) for s in family["series"]))

            ok = await wait_until(lambda: hop_observations() > 0, timeout=30.0)
            assert ok, "no ioverlay_hop_latency_seconds observations at root"

            # The fleet view was built from roll-up frames, not raw relays.
            assert observer.observer.agg_frames > 0
            await stop_fleet(observer, controller)

        run(scenario())
