"""Mid-tree proxy respawn: the replacement re-binds its predecessor's port.

Regression for the tree-mode respawn gap: a respawned aggregator worker
used to bind a fresh ephemeral proxy port, so every child proxy dialing
the old endpoint spun on a dead address until the children themselves
were restarted.  The controller now remembers the first proxy port per
worker name and hands it to the respawn (``--proxy-port``); children —
whose proxies already redial a lost upstream under backoff and replay
their BOOT frames — reattach on their own.
"""

import asyncio
import os
import signal

from repro.cluster.scenarios import SINK, wait_until
from repro.cluster.spec import NodeSpec
from repro.core.ids import NodeId

from tests.cluster.helpers import start_fleet, stop_fleet, wait_all_alive


def run(coro):
    return asyncio.run(coro)


class TestMidTreeProxyRespawn:
    def test_sigkill_mid_tree_worker_keeps_children_attached(self):
        async def scenario():
            # fanout 1 chains the proxies: w0 -> observer, w1 -> w0's
            # proxy, w2 -> w1's proxy.  w1 is a mid-tree aggregator.
            observer, controller = await start_fleet(
                workers=3,
                heartbeat_interval=0.2,
                heartbeat_timeout=1.5,
                respawn=True,
                observer_fanout=1,
                observer_flush_interval=0.2,
                worker_telemetry=True,
            )
            placed = await controller.deploy([
                NodeSpec(name="leaf", algorithm=SINK, pin="w2"),
                NodeSpec(name="mid", algorithm=SINK, pin="w1"),
            ])
            await wait_all_alive(observer, placed)
            leaf_id = placed["leaf"].node_id
            old_port = NodeId.parse(controller.workers["w1"].proxy_addr).port
            child_pid = controller.workers["w2"].pid
            assert old_port > 0

            os.kill(controller.workers["w1"].pid, signal.SIGKILL)
            ok = await wait_until(
                lambda: controller.workers["w1"].alive
                and controller.workers["w1"].proxy_addr,
                timeout=30.0,
            )
            assert ok, "w1 never respawned"

            # The replacement bound the exact port the children dial.
            new_port = NodeId.parse(controller.workers["w1"].proxy_addr).port
            assert new_port == old_port, (
                f"respawned proxy moved {old_port} -> {new_port}; "
                "children would need a restart to follow"
            )

            # The child worker was never touched...
            assert controller.workers["w2"].alive
            assert controller.workers["w2"].pid == child_pid

            # ...and its hosted node's observer traffic flows to the root
            # again through the respawned aggregator: a fresh status for
            # the leaf arrives after the kill.
            def fresh_leaf_status() -> bool:
                status = observer.observer.statuses.get(leaf_id)
                reconnects = observer.observer.agg_frames
                return status is not None and reconnects > 0 and (
                    leaf_id in observer.observer.alive
                )

            marker = observer.observer.statuses.get(leaf_id)
            before = marker.received_at if marker is not None else -1.0

            def leaf_reports_again() -> bool:
                status = observer.observer.statuses.get(leaf_id)
                return status is not None and status.received_at > before

            ok = await wait_until(leaf_reports_again, timeout=30.0)
            assert ok, "leaf's statuses never resumed through the new proxy"
            assert fresh_leaf_status()

            # The mid node itself was redeployed (its process died).
            assert controller.placed["mid"].node_id != placed["mid"].node_id
            await stop_fleet(observer, controller)

        run(scenario())
