"""Cross-worker transport selection: shm rings by default, TCP on demand.

The fleet's data plane is attributable: every engine reports its live
links per transport kind (``transport_mix``, surfaced through
``W_NODE_INFO``), so these tests can assert not just that bytes arrive
but *which* transport carried them — shared-memory rings under the
default config, plain TCP when ``shm_ring_bytes=0`` forces the
fallback, with identical application-level outcomes either way.
"""

import asyncio

from repro.cluster.scenarios import BURST_CONTROL, chain_specs

from tests.cluster.helpers import poll_info, start_fleet, stop_fleet, wait_all_alive


def run(coro):
    return asyncio.run(coro)


async def _chain_burst(length: int, **config) -> list[dict]:
    """Run a short chain burst; return every node's W_NODE_INFO reply."""
    app, count, size = 5, 20, 256
    observer, controller = await start_fleet(workers=2, **config)
    placed = await controller.deploy(chain_specs(length))
    await wait_all_alive(observer, placed)
    controller.send_control("n0", BURST_CONTROL, param1=count, param2=size, app=app)
    await poll_info(
        controller, f"n{length - 1}",
        lambda i: i.get("received", 0) >= count, timeout=60.0,
    )
    infos = [await controller.node_info(f"n{i}") for i in range(length)]
    await stop_fleet(observer, controller)
    return infos


class TestTransportSelection:
    def test_default_fleet_runs_on_shm_rings(self):
        infos = run(_chain_burst(4))
        mixes = [info["transports"] for info in infos]
        # Round-robin over 2 workers alternates every hop cross-worker.
        assert all(set(mix) == {"shm"} for mix in mixes), mixes
        # Chain interior nodes hold both an inbound and an outbound link.
        assert sum(sum(mix.values()) for mix in mixes) == 6

    def test_shm_disabled_falls_back_to_tcp(self):
        infos = run(_chain_burst(4, shm_ring_bytes=0))
        mixes = [info["transports"] for info in infos]
        assert all(set(mix) == {"tcp"} for mix in mixes), mixes

    def test_worker_registration_reports_loop_impl(self):
        async def scenario():
            observer, controller = await start_fleet(workers=2)
            impls = [state.loop_impl for state in controller.workers.values()]
            await stop_fleet(observer, controller)
            return impls

        impls = run(scenario())
        # uvloop was not requested; workers must report stock asyncio.
        assert impls == ["asyncio", "asyncio"]
