"""Worker death: detection ladder, domino scope, respawn, graceful signals."""

import asyncio
import os
import signal
import time

from repro.cluster.scenarios import chain_specs, wait_until
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType

from tests.cluster.helpers import poll_info, start_fleet, stop_fleet, wait_all_alive


def run(coro):
    return asyncio.run(coro)


def broken_link_peers(observer) -> set[str]:
    """The ``peer=`` identities from every cluster-broken-link trace."""
    peers = set()
    for record in observer.observer.traces.matching("cluster-broken-link"):
        for token in record.text.split():
            if token.startswith("peer="):
                peers.add(token[len("peer="):])
    return peers


class TestSigkillDomino:
    def test_domino_hits_exactly_the_dead_workers_nodes(self):
        async def scenario():
            telemetry = Telemetry()
            observer, controller = await start_fleet(
                workers=3, heartbeat_interval=0.2, heartbeat_timeout=1.5,
                telemetry=telemetry,
            )
            placed = await controller.deploy(chain_specs(9))
            # round-robin, sinks-first: w1 hosts n7, n4, n1
            dead_names = set(controller.workers["w1"].placed)
            assert dead_names == {"n7", "n4", "n1"}
            dead_ids = {str(placed[name].node_id) for name in dead_names}
            survivor_ids = {
                placed[name].node_id for name in placed if name not in dead_names
            }
            await wait_all_alive(observer, placed)

            # live application traffic so the source domino has something
            # to break
            controller.deploy_source("n0", app=7, payload_size=256)
            await poll_info(controller, "n8", lambda i: i.get("received", 0) > 0)

            killed_at = time.monotonic()
            os.kill(controller.workers["w1"].pid, signal.SIGKILL)
            ok = await wait_until(
                lambda: not controller.workers["w1"].alive, timeout=10.0
            )
            assert ok, "worker death never detected"
            detection = time.monotonic() - killed_at
            # the reap path fires on process exit: well inside the
            # heartbeat ladder's worst case
            assert detection < 5.0, f"detection took {detection:.1f}s"

            # observer view reconciled: exactly the hosted nodes are gone
            assert all(
                placed[name].node_id not in observer.observer.alive
                for name in dead_names
            )
            assert survivor_ids <= set(observer.observer.alive)
            assert all(name not in controller.placed for name in dead_names)
            assert controller.worker_deaths == 1

            # surviving peers ran the node-level domino: BROKEN_LINK
            # traces name exactly the dead worker's nodes, nobody else
            ok = await wait_until(
                lambda: broken_link_peers(observer) == dead_ids, timeout=15.0
            )
            assert ok, (
                f"broken-link peers {broken_link_peers(observer)} "
                f"!= dead nodes {dead_ids}"
            )
            # and the source break cascaded: the survivors downstream of a
            # cut segment (n2 lost n1, broadcasts to n3; n5 lost n4,
            # broadcasts to n6) received BROKEN_SOURCE for the live app.
            # n8's own upstream died, so it sees BROKEN_LINK, not the
            # cascade — the notice travels downstream of the break only.
            cascade_targets = {placed["n3"].node_id, placed["n6"].node_id}

            def cascade_tracers():
                return {
                    record.node
                    for record in observer.observer.traces.matching(
                        "cluster-broken-source app=7"
                    )
                }

            ok = await wait_until(
                lambda: cascade_targets <= cascade_tracers(), timeout=15.0
            )
            assert ok, (
                f"BROKEN_SOURCE cascade reached {cascade_tracers()}, "
                f"expected at least {cascade_targets}"
            )

            # telemetry audit: metric + trace event for the death
            dead_counts = {
                labels["worker"]: child.value
                for labels, child in telemetry.registry.get(
                    "ioverlay_cluster_worker_dead_total").series()
            }
            assert dead_counts == {"w1": 1.0}
            dead_events = [
                e for e in telemetry.tracer.events()
                if e.event == EventType.WORKER_DEAD
            ]
            assert len(dead_events) == 1
            assert set(dead_events[0].detail["nodes"]) == dead_ids

            # the surviving shard still works
            assert (await controller.node_info("n8"))["running"] is True
            await stop_fleet(observer, controller)

        run(scenario())


class TestRespawn:
    def test_dead_worker_respawns_and_redeploys_its_specs(self):
        async def scenario():
            telemetry = Telemetry()
            observer, controller = await start_fleet(
                workers=2, heartbeat_interval=0.2, heartbeat_timeout=1.5,
                respawn=True, telemetry=telemetry,
            )
            placed = await controller.deploy(chain_specs(6))
            victim_names = set(controller.workers["w1"].placed)
            old_ids = {name: placed[name].node_id for name in victim_names}
            await wait_all_alive(observer, placed)

            os.kill(controller.workers["w1"].pid, signal.SIGKILL)
            ok = await wait_until(
                lambda: controller.nodes_redeployed == len(victim_names)
                and controller.workers["w1"].alive,
                timeout=30.0,
            )
            assert ok, (
                f"redeployed {controller.nodes_redeployed}/{len(victim_names)}, "
                f"w1 alive={controller.workers['w1'].alive}"
            )

            # redeploys run back through the placement policy, so the
            # orphans spread over the (now whole again) fleet — what
            # matters is that each one is live somewhere with a fresh id
            for name in victim_names:
                fresh = controller.placed[name]
                assert controller.workers[fresh.worker].alive
                assert fresh.node_id != old_ids[name]  # new identity
                info = await controller.node_info(name)
                assert info["running"] is True

            redeployed = sum(
                child.value
                for _, child in telemetry.registry.get(
                    "ioverlay_cluster_node_redeployed_total").series()
            )
            assert redeployed == float(len(victim_names))
            events = [
                e for e in telemetry.tracer.events()
                if e.event == EventType.NODE_REDEPLOYED
            ]
            assert {e.detail["name"] for e in events} == victim_names
            await stop_fleet(observer, controller)

        run(scenario())


class TestHeartbeatSweep:
    def test_silent_stall_is_confirmed_by_missed_heartbeats(self):
        async def scenario():
            observer, controller = await start_fleet(
                workers=1, heartbeat_interval=0.2, heartbeat_timeout=1.0,
            )
            placed = await controller.deploy(chain_specs(2))
            await wait_all_alive(observer, placed)
            state = controller.workers["w0"]

            # SIGSTOP freezes the process: no exit to reap, no channel
            # EOF — only the heartbeat-timeout sweep can see this death.
            os.kill(state.pid, signal.SIGSTOP)
            try:
                ok = await wait_until(lambda: not state.alive, timeout=10.0)
                assert ok, "sweep never confirmed the stalled worker dead"
                assert state.process.returncode is None  # it never exited
                assert all(
                    p.node_id not in observer.observer.alive
                    for p in placed.values()
                )
            finally:
                os.kill(state.pid, signal.SIGCONT)
            await stop_fleet(observer, controller)

        run(scenario())


class TestGracefulSignals:
    def test_sigterm_drains_the_worker_and_exits_zero(self):
        async def scenario():
            observer, controller = await start_fleet(workers=1)
            placed = await controller.deploy(chain_specs(3))
            await wait_all_alive(observer, placed)
            state = controller.workers["w0"]

            os.kill(state.pid, signal.SIGTERM)
            ok = await wait_until(lambda: not state.alive, timeout=10.0)
            assert ok
            await state.process.wait()
            # graceful path, not a crash: clean exit after disconnect()s
            assert state.process.returncode == 0
            await stop_fleet(observer, controller)

        run(scenario())
