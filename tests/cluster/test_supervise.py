"""The supervision core: respawn budget, backoff, idempotent teardown."""

import asyncio

import pytest

from repro.cluster.supervise import RespawnPolicy
from repro.errors import ClusterError
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType

from tests.cluster.helpers import start_fleet, stop_fleet
from repro.cluster.scenarios import wait_until


def run(coro):
    return asyncio.run(coro)


def crash_on_boot(controller, name: str) -> None:
    """Make ``name``'s worker die right after a successful W_REGISTER."""
    original = controller._worker_argv

    def argv(worker_name: str) -> list[str]:
        built = original(worker_name)
        if worker_name == name:
            built.append("--exit-after-register")
        return built

    controller._worker_argv = argv


class TestRespawnPolicy:
    def test_backoff_doubles_from_the_second_attempt(self):
        policy = RespawnPolicy(backoff_base=0.25, backoff_max=5.0)
        assert policy.delay(1) == 0.0
        assert policy.delay(2) == 0.25
        assert policy.delay(3) == 0.5
        assert policy.delay(4) == 1.0

    def test_backoff_is_capped(self):
        policy = RespawnPolicy(backoff_base=0.25, backoff_max=1.0)
        assert policy.delay(10) == 1.0


class TestRespawnBudget:
    def test_crash_looping_worker_is_abandoned_not_spun_forever(self):
        """A worker that dies on boot burns its budget, then stops respawning.

        Without the budget the controller would relaunch a doomed
        process at full speed forever; with it, each consecutive early
        death backs off exponentially and the streak is capped.
        """

        async def scenario():
            telemetry = Telemetry()
            observer, controller = await start_fleet(
                workers=1, respawn=True, telemetry=telemetry,
                respawn_max=2, respawn_backoff=0.05, respawn_backoff_max=0.2,
                respawn_min_uptime=60.0,
            )
            try:
                # Flip w0 to crash-on-boot, then kill the healthy
                # incarnation: every respawn from here dies immediately.
                crash_on_boot(controller, "w0")
                controller.workers["w0"].process.kill()

                ok = await wait_until(
                    lambda: controller.supervisor.respawns_abandoned == 1,
                    timeout=30.0,
                )
                assert ok, "budget never exhausted"
                # initial kill + 2 budgeted respawns, then abandonment
                assert controller.worker_deaths == 3
                assert not controller.workers["w0"].alive

                # give any stray respawn a moment to (wrongly) fire
                await asyncio.sleep(0.5)
                assert controller.supervisor.respawns_abandoned == 1
                assert controller.worker_deaths == 3

                events = [e.event for e in telemetry.tracer.events()]
                assert EventType.RESPAWN_BACKOFF in events
                assert EventType.RESPAWN_EXHAUSTED in events
                backoffs = [
                    e.detail for e in telemetry.tracer.events()
                    if e.event == EventType.RESPAWN_BACKOFF
                ]
                # the second attempt is the first delayed one
                assert backoffs[0]["attempt"] == 2
            finally:
                await stop_fleet(observer, controller)

        run(scenario())

    def test_healthy_uptime_resets_the_streak(self):
        async def scenario():
            observer, controller = await start_fleet(
                workers=1, respawn=True,
                respawn_max=1, respawn_backoff=0.01,
                respawn_min_uptime=0.0,  # any uptime counts as healthy
            )
            try:
                for _ in range(3):  # would exhaust a max=1 budget if streaks
                    state = controller.workers["w0"]  # accumulated
                    state.process.kill()
                    ok = await wait_until(
                        lambda: controller.workers["w0"].alive
                        and controller.workers["w0"].process.returncode is None,
                        timeout=30.0,
                    )
                    assert ok, "respawn never completed"
                assert controller.supervisor.respawns_abandoned == 0
            finally:
                await stop_fleet(observer, controller)

        run(scenario())


class TestStopIdempotence:
    def test_nested_and_concurrent_stops_resolve_to_one_teardown(self):
        async def scenario():
            observer, controller = await start_fleet(workers=2)
            await asyncio.gather(controller.stop(), controller.stop())
            await controller.stop()  # and once more, after completion
            for state in controller.workers.values():
                assert state.process.returncode is not None
            await observer.stop()

        run(scenario())

    def test_stop_during_pending_respawn_reaps_everything(self):
        """stop() racing the respawn path must not orphan any process."""

        async def scenario():
            observer, controller = await start_fleet(
                workers=1, respawn=True,
                # long backoff: the stop lands while the respawn waits
                respawn_backoff=30.0, respawn_min_uptime=60.0,
            )
            # The first respawn fires immediately (streak 1 has no
            # backoff) and dies on boot; the second is the one that
            # sits in its 30s backoff when stop() arrives.
            crash_on_boot(controller, "w0")
            controller.workers["w0"].process.kill()
            ok = await wait_until(
                lambda: controller.worker_deaths >= 2, timeout=30.0
            )
            assert ok
            await controller.stop()
            await controller.stop()  # idempotent after the race too
            for state in controller.workers.values():
                if state.process is not None:
                    assert state.process.returncode is not None
            await observer.stop()

        run(scenario())

    def test_stop_racing_an_inflight_spawn_never_orphans_it(self):
        async def scenario():
            observer, controller = await start_fleet(workers=1)
            spawn = asyncio.ensure_future(controller.spawn_worker("w9"))
            await asyncio.sleep(0)  # let the exec get underway
            await controller.stop()
            # Either the spawn lost the race (refused / killed) or it
            # registered just before the teardown swept it — both end
            # with no live process.
            try:
                await spawn
            except ClusterError:
                pass
            state = controller.workers.get("w9")
            if state is not None and state.process is not None:
                await asyncio.wait_for(state.process.wait(), 10.0)
                assert state.process.returncode is not None
            await observer.stop()

        run(scenario())

    def test_spawn_after_stop_is_refused(self):
        async def scenario():
            observer, controller = await start_fleet(workers=1)
            await stop_fleet(observer, controller)
            with pytest.raises(ClusterError):
                await controller.spawn_worker("w1")

        run(scenario())
