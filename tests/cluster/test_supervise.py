"""The supervision core: respawn budget, backoff, idempotent teardown."""

import asyncio
import sys

import pytest

from repro.cluster.protocol import ControlChannel
from repro.cluster.supervise import WORKER_FAMILY, RespawnPolicy, SupervisorCore
from repro.core.msgtypes import MsgType
from repro.errors import ClusterError
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType

from tests.cluster.helpers import start_fleet, stop_fleet
from repro.cluster.scenarios import wait_until


def run(coro):
    return asyncio.run(coro)


def crash_on_boot(controller, name: str) -> None:
    """Make ``name``'s worker die right after a successful W_REGISTER."""
    original = controller._worker_argv

    def argv(worker_name: str) -> list[str]:
        built = original(worker_name)
        if worker_name == name:
            built.append("--exit-after-register")
        return built

    controller._worker_argv = argv


class TestRespawnPolicy:
    def test_backoff_doubles_from_the_second_attempt(self):
        policy = RespawnPolicy(backoff_base=0.25, backoff_max=5.0)
        assert policy.delay(1) == 0.0
        assert policy.delay(2) == 0.25
        assert policy.delay(3) == 0.5
        assert policy.delay(4) == 1.0

    def test_backoff_is_capped(self):
        policy = RespawnPolicy(backoff_base=0.25, backoff_max=1.0)
        assert policy.delay(10) == 1.0


class TestRespawnBudget:
    def test_crash_looping_worker_is_abandoned_not_spun_forever(self):
        """A worker that dies on boot burns its budget, then stops respawning.

        Without the budget the controller would relaunch a doomed
        process at full speed forever; with it, each consecutive early
        death backs off exponentially and the streak is capped.
        """

        async def scenario():
            telemetry = Telemetry()
            observer, controller = await start_fleet(
                workers=1, respawn=True, telemetry=telemetry,
                respawn_max=2, respawn_backoff=0.05, respawn_backoff_max=0.2,
                respawn_min_uptime=60.0,
            )
            try:
                # Flip w0 to crash-on-boot, then kill the healthy
                # incarnation: every respawn from here dies immediately.
                crash_on_boot(controller, "w0")
                controller.workers["w0"].process.kill()

                ok = await wait_until(
                    lambda: controller.supervisor.respawns_abandoned == 1,
                    timeout=30.0,
                )
                assert ok, "budget never exhausted"
                # initial kill + 2 budgeted respawns, then abandonment
                assert controller.worker_deaths == 3
                assert not controller.workers["w0"].alive

                # give any stray respawn a moment to (wrongly) fire
                await asyncio.sleep(0.5)
                assert controller.supervisor.respawns_abandoned == 1
                assert controller.worker_deaths == 3

                events = [e.event for e in telemetry.tracer.events()]
                assert EventType.RESPAWN_BACKOFF in events
                assert EventType.RESPAWN_EXHAUSTED in events
                backoffs = [
                    e.detail for e in telemetry.tracer.events()
                    if e.event == EventType.RESPAWN_BACKOFF
                ]
                # the second attempt is the first delayed one
                assert backoffs[0]["attempt"] == 2
            finally:
                await stop_fleet(observer, controller)

        run(scenario())

    def test_healthy_uptime_resets_the_streak(self):
        async def scenario():
            observer, controller = await start_fleet(
                workers=1, respawn=True,
                respawn_max=1, respawn_backoff=0.01,
                respawn_min_uptime=0.0,  # any uptime counts as healthy
            )
            try:
                for _ in range(3):  # would exhaust a max=1 budget if streaks
                    state = controller.workers["w0"]  # accumulated
                    state.process.kill()
                    ok = await wait_until(
                        lambda: controller.workers["w0"].alive
                        and controller.workers["w0"].process.returncode is None,
                        timeout=30.0,
                    )
                    assert ok, "respawn never completed"
                assert controller.supervisor.respawns_abandoned == 0
            finally:
                await stop_fleet(observer, controller)

        run(scenario())


class TestStopIdempotence:
    def test_nested_and_concurrent_stops_resolve_to_one_teardown(self):
        async def scenario():
            observer, controller = await start_fleet(workers=2)
            await asyncio.gather(controller.stop(), controller.stop())
            await controller.stop()  # and once more, after completion
            for state in controller.workers.values():
                assert state.process.returncode is not None
            await observer.stop()

        run(scenario())

    def test_stop_during_pending_respawn_reaps_everything(self):
        """stop() racing the respawn path must not orphan any process."""

        async def scenario():
            observer, controller = await start_fleet(
                workers=1, respawn=True,
                # long backoff: the stop lands while the respawn waits
                respawn_backoff=30.0, respawn_min_uptime=60.0,
            )
            # The first respawn fires immediately (streak 1 has no
            # backoff) and dies on boot; the second is the one that
            # sits in its 30s backoff when stop() arrives.
            crash_on_boot(controller, "w0")
            controller.workers["w0"].process.kill()
            ok = await wait_until(
                lambda: controller.worker_deaths >= 2, timeout=30.0
            )
            assert ok
            await controller.stop()
            await controller.stop()  # idempotent after the race too
            for state in controller.workers.values():
                if state.process is not None:
                    assert state.process.returncode is not None
            await observer.stop()

        run(scenario())

    def test_stop_racing_an_inflight_spawn_never_orphans_it(self):
        async def scenario():
            observer, controller = await start_fleet(workers=1)
            spawn = asyncio.ensure_future(controller.spawn_worker("w9"))
            await asyncio.sleep(0)  # let the exec get underway
            await controller.stop()
            # Either the spawn lost the race (refused / killed) or it
            # registered just before the teardown swept it — both end
            # with no live process.
            try:
                await spawn
            except ClusterError:
                pass
            state = controller.workers.get("w9")
            if state is not None and state.process is not None:
                await asyncio.wait_for(state.process.wait(), 10.0)
                assert state.process.returncode is not None
            await observer.stop()

        run(scenario())

    def test_spawn_after_stop_is_refused(self):
        async def scenario():
            observer, controller = await start_fleet(workers=1)
            await stop_fleet(observer, controller)
            with pytest.raises(ClusterError):
                await controller.spawn_worker("w1")

        run(scenario())


class SleeperCore(SupervisorCore):
    """A bare frontend whose children boot but never register."""

    def __init__(self, **kwargs):
        super().__init__(WORKER_FAMILY, **kwargs)

    def child_argv(self, state):
        return [sys.executable, "-c", "import time; time.sleep(60)"]


class _FakeProc:
    """A stand-in subprocess handle (already exited, nothing to reap)."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.returncode = 0

    async def wait(self) -> int:
        return self.returncode


class _NullChan:
    """A channel that accepts sends and never answers."""

    def is_closing(self) -> bool:
        return False

    async def send(self, type_, seq=0, **fields) -> None:
        pass

    def close(self) -> None:
        pass


class _MutatingChan(_NullChan):
    """A channel whose send adopts a new child (a C_JOIN mid-stop)."""

    def __init__(self, core: SupervisorCore) -> None:
        self._core = core

    async def send(self, type_, seq=0, **fields) -> None:
        name = f"late{len(self._core.children)}"
        adopted = self._core.state_class(name=name)
        adopted.adopted = True
        self._core.children[name] = adopted


class TestRegisterTimeout:
    def test_timed_out_child_is_killed_and_reaped(self):
        """A child that never registers must not keep running after the
        ClusterError — left alive it could register later and satisfy a
        newer incarnation's waiter."""

        async def scenario():
            core = SleeperCore(register_timeout=0.3)
            await core.start_server()
            try:
                with pytest.raises(ClusterError):
                    await core.spawn_child("x")
                proc = core.children["x"].process
                assert proc is not None
                assert proc.returncode is not None
            finally:
                await core.stop()

        run(scenario())

    def test_stale_incarnation_cannot_register_for_a_newer_one(self):
        """A registration whose pid is not the supervised process's pid
        is refused instead of attaching its channel to the fresh state."""

        async def scenario():
            core = SleeperCore(register_timeout=5.0)
            await core.start_server()
            try:
                state = core.state_class(name="x")
                state.process = _FakeProc(pid=4242)
                core.children["x"] = state
                waiter = asyncio.get_running_loop().create_future()
                core._register_waiters["x"] = waiter

                reader, writer = await asyncio.open_connection("127.0.0.1", core.port)
                stale = ControlChannel(reader, writer)
                await stale.send(MsgType.W_REGISTER, name="x", pid=999)
                with pytest.raises((asyncio.IncompleteReadError, ConnectionError)):
                    await asyncio.wait_for(stale.recv(), 10.0)
                assert not waiter.done()
                stale.close()

                reader, writer = await asyncio.open_connection("127.0.0.1", core.port)
                fresh = ControlChannel(reader, writer)
                await fresh.send(MsgType.W_REGISTER, name="x", pid=4242)
                await asyncio.wait_for(waiter, 10.0)
                assert core.children["x"].pid == 4242
                fresh.close()
            finally:
                await core.stop()

        run(scenario())


class TestStopUnderAdoption:
    def test_children_adopted_mid_stop_do_not_abort_teardown(self):
        """A child dict growing between stop()'s await points (a joiner
        adopted mid-teardown) must not abort the drain — and the second
        stop() must still return instead of waiting forever."""

        async def scenario():
            core = SleeperCore(adopt_unknown=True)
            await core.start_server()
            for i in range(2):
                state = core.state_class(name=f"a{i}")
                state.adopted = True
                state.alive = True
                state.chan = _MutatingChan(core)
                core.children[state.name] = state
            await asyncio.wait_for(core.stop(), 10.0)
            await asyncio.wait_for(core.stop(), 10.0)

        run(scenario())


class TestRequestCancellation:
    def test_cancelling_the_caller_is_not_swallowed(self):
        """Cancellation of the requesting task itself must propagate —
        mapping it to ClusterError would let a shutdown-cancelled
        redeploy loop keep running."""

        async def scenario():
            core = SleeperCore(request_timeout=30.0)
            state = core.state_class(name="x")
            state.alive = True
            state.chan = _NullChan()
            task = asyncio.ensure_future(core.request(state, MsgType.W_NODE_INFO))
            await asyncio.sleep(0.05)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert not core._pending

        run(scenario())

    def test_teardown_dropping_the_pending_future_maps_to_cluster_error(self):
        async def scenario():
            core = SleeperCore(request_timeout=30.0)
            state = core.state_class(name="x")
            state.alive = True
            state.chan = _NullChan()
            task = asyncio.ensure_future(core.request(state, MsgType.W_NODE_INFO))
            await asyncio.sleep(0.05)
            for fut in list(core._pending.values()):
                fut.cancel()
            with pytest.raises(ClusterError):
                await task

        run(scenario())
