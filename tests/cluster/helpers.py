"""Shared plumbing for the cluster test suite: fleets, polling, teardown."""

from __future__ import annotations

import asyncio
import time

from repro.cluster.controller import ClusterConfig, ClusterController
from repro.cluster.scenarios import wait_until
from repro.core.ids import NodeId
from repro.net.observer_server import ObserverServer


async def start_fleet(
    workers: int = 2, poll_interval: float = 0.2, **config
) -> tuple[ObserverServer, ClusterController]:
    observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=poll_interval)
    await observer.start()
    controller = ClusterController(
        observer, ClusterConfig(workers=workers, **config)
    )
    await controller.start()
    return observer, controller


async def stop_fleet(observer: ObserverServer, controller: ClusterController) -> None:
    await controller.stop()
    await observer.stop()


async def wait_all_alive(observer, placed, timeout: float = 30.0) -> None:
    """Block until every placed node's BOOT reached the observer.

    Observer control verbs are best-effort (unroutable destinations are
    silently dropped), so tests MUST wait for routes before sending any.
    """
    ok = await wait_until(
        lambda: all(p.node_id in observer.observer.alive for p in placed.values()),
        timeout=timeout,
    )
    assert ok, (
        f"only {len(observer.observer.alive)}/{len(placed)} placed nodes "
        f"booted at the observer within {timeout}s"
    )


async def poll_info(controller, name, predicate, timeout: float = 30.0) -> dict:
    """Poll a node's ``cluster_info`` until ``predicate(info)`` holds."""
    deadline = time.monotonic() + timeout
    info: dict = {}
    while time.monotonic() < deadline:
        info = (await controller.node_info(name)).get("info", {})
        if predicate(info):
            return info
        await asyncio.sleep(0.1)
    raise AssertionError(f"node {name!r}: condition never met; last info {info}")
