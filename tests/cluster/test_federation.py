"""The federated control plane: two-stage placement, identity, recovery.

The acceptance bar matches the flat cluster's: a topology sharded
across a root and multiple child controllers (each with its own worker
fleet) must deliver byte-identical digests to a single-process run —
and losing a whole child controller must re-place exactly its shard
through the root policy while the survivors keep their identities.
"""

import asyncio
import signal

import pytest

from repro.cluster.child import ChildControllerHost
from repro.cluster.controller import ClusterConfig
from repro.cluster.federation import ControllerState, RootConfig, RootController
from repro.cluster.protocol import ControlChannel
from repro.cluster.spec import PlacedNode
from repro.core.msgtypes import MsgType
from repro.cluster.scenarios import (
    BURST_CONTROL,
    build_local,
    burst_control_message,
    chain_specs,
    wait_until,
)
from repro.cluster.spec import NodeSpec
from repro.core.ids import NodeId
from repro.errors import ClusterError
from repro.net.observer_server import ObserverServer
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType

RELAY = "repro.cluster.scenarios:ClusterRelayAlgorithm"
SINK = "repro.cluster.scenarios:DigestSinkAlgorithm"
SOURCE = "repro.cluster.scenarios:BurstSourceAlgorithm"


def run(coro):
    return asyncio.run(coro)


async def start_tree(children=2, workers_per_child=2, **config):
    """One root observer + root controller + N spawned child controllers."""
    observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=0.2)
    await observer.start()
    root = RootController(
        observer, RootConfig(workers_per_child=workers_per_child, **config)
    )
    await root.start()
    await asyncio.gather(
        *(root.spawn_child(f"c{i}") for i in range(children))
    )
    return observer, root


async def stop_tree(observer, root):
    await root.stop()
    await observer.stop()


async def wait_all_alive(observer, placed, timeout=60.0):
    ok = await wait_until(
        lambda: all(p.node_id in observer.observer.alive for p in placed.values()),
        timeout=timeout,
    )
    assert ok, (
        f"only {len(observer.observer.alive)}/{len(placed)} placed nodes "
        "booted at the root observer"
    )


async def poll_info(root, name, predicate, timeout=60.0):
    import time
    deadline = time.monotonic() + timeout
    info = {}
    while time.monotonic() < deadline:
        info = (await root.node_info(name)).get("info", {})
        if predicate(info):
            return info
        await asyncio.sleep(0.1)
    raise AssertionError(f"node {name!r}: condition never met; last info {info}")


class TestTwoStagePlacement:
    def test_chain_spreads_across_controllers_and_their_workers(self):
        async def scenario():
            observer, root = await start_tree(children=2, workers_per_child=2)
            try:
                placed = await root.deploy(chain_specs(12))
                by_controller = {}
                for p in placed.values():
                    by_controller.setdefault(p.controller, set()).add(p.worker)
                # both controllers host a share, on both of their workers
                assert set(by_controller) == {"c0", "c1"}
                for workers in by_controller.values():
                    assert workers == {"w0", "w1"}
            finally:
                await stop_tree(observer, root)

        run(scenario())

    def test_controller_pin_and_worker_pin_compose(self):
        """A spec can pin its controller, its worker within it, or both —
        and its '@name' refs resolve across controller boundaries."""

        async def scenario():
            observer, root = await start_tree(children=2)
            try:
                placed = await root.deploy([
                    NodeSpec("sink", SINK, controller="c1", pin="w1"),
                    NodeSpec(
                        "src", SOURCE,
                        {"downstreams": ["@sink"]}, controller="c0", pin="w0",
                    ),
                ])
                assert placed["sink"].controller == "c1"
                assert placed["sink"].worker == "w1"
                assert placed["src"].controller == "c0"
                assert placed["src"].worker == "w0"
                await wait_all_alive(observer, placed)
                # the source's '@sink' ref crossed the controller boundary:
                # a burst sent on c0 lands on c1's sink, byte for byte
                root.send_control(
                    "src", BURST_CONTROL, param1=5, param2=64, app=3
                )
                info = await poll_info(
                    root, "sink", lambda i: i.get("received", 0) >= 5
                )
                assert info["received"] == 5
                relay_info = await root.node_info("src")
                assert str(placed["sink"].node_id) in relay_info["downstreams"]
            finally:
                await stop_tree(observer, root)

        run(scenario())

    def test_pin_to_unknown_controller_fails_loudly(self):
        async def scenario():
            observer, root = await start_tree(children=1)
            try:
                with pytest.raises(ClusterError):
                    await root.place(NodeSpec("x", SINK, controller="nope"))
            finally:
                await stop_tree(observer, root)

        run(scenario())

    def test_capacity_policy_respects_declared_headroom(self):
        """Heterogeneous capacities: the bigger shard takes more weight."""

        async def scenario():
            observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=0.2)
            await observer.start()
            root = RootController(observer, RootConfig(placement="capacity"))
            await root.start()
            try:
                # capacity comes from the child's own declaration, so
                # spawn via explicit argv-level knobs: one small, one big
                root._spawn_workers["small"] = 1
                root._spawn_workers["big"] = 1
                argv = root._child_argv

                def patched(name):
                    built = argv(name)
                    built += ["--capacity", "2" if name == "small" else "8"]
                    return built

                root._child_argv = patched
                await asyncio.gather(
                    root.spawn_child("small"), root.spawn_child("big")
                )
                assert root.controllers["small"].capacity == 2.0
                assert root.controllers["big"].capacity == 8.0

                specs = [
                    NodeSpec(f"s{i}", SINK, weight=1.0) for i in range(9)
                ]
                placed = await root.deploy(specs)
                counts = {}
                for p in placed.values():
                    counts[p.controller] = counts.get(p.controller, 0) + 1
                # most-free-capacity placement: big absorbs the surplus,
                # small fills to its declared ceiling and no further
                assert counts == {"big": 7, "small": 2}
                assert root.controllers["small"].load <= 2.0
            finally:
                await stop_tree(observer, root)

        run(scenario())


class TestFederatedIdentity:
    def test_chain_across_two_controllers_matches_one_process(self):
        app, count, size, length = 7, 30, 256, 12

        async def federated_digest() -> str:
            observer, root = await start_tree(children=2, workers_per_child=2)
            try:
                placed = await root.deploy(chain_specs(length))
                assert len({p.controller for p in placed.values()}) == 2
                await wait_all_alive(observer, placed)
                root.send_control(
                    "n0", BURST_CONTROL, param1=count, param2=size, app=app
                )
                info = await poll_info(
                    root, f"n{length - 1}",
                    lambda i: i.get("received", 0) >= count,
                )
                return info["digests"][str(app)]
            finally:
                await stop_tree(observer, root)

        async def local_digest() -> str:
            host, engines = await build_local(chain_specs(length))
            engines["n0"].algorithm.on_control(
                burst_control_message(app, count, size)
            )
            sink = engines[f"n{length - 1}"].algorithm
            ok = await wait_until(lambda: sink.received >= count, timeout=30.0)
            assert ok
            digest = sink.digest(app)
            await host.stop()
            return digest

        assert run(federated_digest()) == run(local_digest())


class TestControllerDeath:
    def test_sigkill_redeploys_exactly_the_dead_shard(self):
        async def scenario():
            telemetry = Telemetry()
            observer, root = await start_tree(
                children=2, telemetry=telemetry, heartbeat_timeout=2.0,
            )
            try:
                placed = await root.deploy(chain_specs(8))
                dead_shard = {
                    n for n, p in placed.items() if p.controller == "c1"
                }
                survivors = {
                    n: p.node_id for n, p in placed.items()
                    if p.controller == "c0"
                }
                assert dead_shard and survivors
                await wait_all_alive(observer, placed)

                root.controllers["c1"].process.send_signal(signal.SIGKILL)

                ok = await wait_until(
                    lambda: root.shards_redeployed >= 1, timeout=30.0
                )
                assert ok, "shard redeploy never completed"
                assert root.controller_deaths == 1

                # exactly the dead shard moved, onto the survivor
                for name in dead_shard:
                    fresh = root.placed[name]
                    assert fresh.controller == "c0"
                    assert fresh.node_id != placed[name].node_id
                    info = await root.node_info(name)
                    assert info["running"] is True
                # survivors kept their identities
                for name, node_id in survivors.items():
                    assert root.placed[name].node_id == node_id
                assert root.nodes_redeployed == len(dead_shard)

                # telemetry audit: gauge, counters, trace events
                controllers_gauge = telemetry.registry.get(
                    "ioverlay_cluster_controllers").labels().value
                assert controllers_gauge == 1.0
                dead_counts = {
                    labels["controller"]: child.value
                    for labels, child in telemetry.registry.get(
                        "ioverlay_cluster_controller_dead_total").series()
                }
                assert dead_counts == {"c1": 1.0}
                shard_counts = {
                    labels["controller"]: child.value
                    for labels, child in telemetry.registry.get(
                        "ioverlay_cluster_shard_redeployed_total").series()
                }
                assert shard_counts == {"c1": 1.0}
                events = [e for e in telemetry.tracer.events()]
                dead_events = [
                    e for e in events if e.event == EventType.CONTROLLER_DEAD
                ]
                assert len(dead_events) == 1
                assert set(dead_events[0].detail["shard"]) == dead_shard
                shard_events = [
                    e for e in events if e.event == EventType.SHARD_REDEPLOYED
                ]
                assert len(shard_events) == 1
                assert set(shard_events[0].detail["nodes"]) == dead_shard
            finally:
                await stop_tree(observer, root)

        run(scenario())


class TestNodeDownReporting:
    """Losing a node inside a shard must reconcile the root's global map."""

    def test_worker_death_without_respawn_reports_the_spec_name(self):
        """End-to-end child side: a worker dying (respawn off) surfaces
        as a C_EVENT node-down carrying the spec *name* the root keys
        its placed map by, alongside the node identity."""

        async def scenario():
            from repro.net.observer_server import ObserverServer

            observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=0.2)
            await observer.start()
            loop = asyncio.get_running_loop()
            events, replies, chans = [], {}, []

            async def accept(reader, writer):
                # A minimal federation root: welcome the joiner, record
                # its events, correlate its replies.
                chan = ControlChannel(reader, writer)
                chans.append(chan)
                while True:
                    try:
                        msg = await chan.recv()
                    except (asyncio.IncompleteReadError, ConnectionError, OSError):
                        return
                    fields = msg.fields()
                    if msg.type == MsgType.C_JOIN:
                        await chan.send(
                            MsgType.C_WELCOME,
                            observer=str(observer.addr), proxy_port=0,
                        )
                    elif msg.type == MsgType.C_EVENT:
                        events.append(fields)
                    else:
                        fut = replies.pop(msg.seq, None)
                        if fut is not None and not fut.done():
                            fut.set_result(fields)

            server = await asyncio.start_server(accept, host="127.0.0.1", port=0)
            root_addr = NodeId("127.0.0.1", server.sockets[0].getsockname()[1])
            host = ChildControllerHost("c0", root_addr, ClusterConfig(workers=1))
            try:
                await host.start()

                async def rpc(seq, type_, **fields):
                    fut = loop.create_future()
                    replies[seq] = fut
                    await chans[0].send(type_, seq=seq, **fields)
                    return await asyncio.wait_for(fut, 30.0)

                placed = await rpc(1, MsgType.C_PLACE, name="sink", algorithm=SINK)
                assert "error" not in placed

                # in-flight handler bookkeeping drains once served
                ok = await wait_until(lambda: not host._handlers, timeout=10.0)
                assert ok, "completed root-frame handlers were not pruned"

                host.controller.workers["w0"].process.kill()
                ok = await wait_until(
                    lambda: any(e.get("event") == "node-down" for e in events),
                    timeout=30.0,
                )
                assert ok, f"no node-down event; saw {events}"
                down = next(e for e in events if e.get("event") == "node-down")
                assert down["name"] == "sink"
                assert down["node"] == placed["node"]
            finally:
                await host.stop()
                server.close()
                await server.wait_closed()
                await observer.stop()

        run(scenario())

    def test_root_reconciles_by_name_or_identity(self):
        """Root side: a node-down report removes the placement from the
        global and shard maps and marks the identity down — whether it
        carries the spec name or only the ip:port identity."""

        class _Recorder:
            addr = NodeId("127.0.0.1", 1)

            def __init__(self):
                self.down = []

            def mark_down(self, node):
                self.down.append(node)

        obs = _Recorder()
        root = RootController(obs)
        state = ControllerState(name="c0")
        root.supervisor.children["c0"] = state
        node = NodeId("127.0.0.1", 5001)
        placed = PlacedNode(
            spec=NodeSpec("sink", SINK), worker="w0",
            node_id=node, controller="c0",
        )
        for report in (
            {"event": "node-down", "name": "sink", "node": str(node)},
            {"event": "node-down", "node": str(node)},
        ):
            root.placed["sink"] = placed
            state.placed["sink"] = placed
            root._on_event(state, report)
            assert "sink" not in root.placed
            assert "sink" not in state.placed
        assert obs.down == [node, node]


class TestHeartbeatsCarryControllerIdentity:
    def test_worker_gauges_attribute_to_their_controller_shard(self):
        async def scenario():
            observer, root = await start_tree(children=1, workers_per_child=1)
            try:
                await root.deploy(chain_specs(2))
                ok = await wait_until(
                    lambda: root.controllers["c0"].node_count == 2
                    and root.controllers["c0"].workers_alive == 1,
                    timeout=15.0,
                )
                assert ok, (
                    root.controllers["c0"].node_count,
                    root.controllers["c0"].workers_alive,
                )
            finally:
                await stop_tree(observer, root)

        run(scenario())
