"""Process-free unit tests: placement policies, specs, reference wiring."""

import pytest

from repro.cluster.placement import (
    BinPackPlacement,
    CapacityPlacement,
    ControllerLoad,
    RoundRobinPlacement,
    WeightedControllerPlacement,
    make_controller_placement,
    make_placement,
)
from repro.cluster.scenarios import butterfly_specs, chain_specs
from repro.cluster.spec import (
    NodeSpec,
    build_algorithm,
    coerce_node_refs,
    load_algorithm_class,
    ref,
    resolve_refs,
)
from repro.core.ids import NodeId
from repro.errors import ClusterError


def spec(name, weight=1.0, pin=None):
    return NodeSpec(name=name, algorithm="x:Y", weight=weight, pin=pin)


class TestPlacementPolicies:
    def test_round_robin_cycles_the_live_workers(self):
        policy = RoundRobinPlacement()
        load = {"w0": 0.0, "w1": 0.0, "w2": 0.0}
        picks = [policy.choose(spec(f"n{i}"), load) for i in range(7)]
        assert picks == ["w0", "w1", "w2", "w0", "w1", "w2", "w0"]

    def test_round_robin_adapts_when_the_fleet_shrinks(self):
        policy = RoundRobinPlacement()
        assert policy.choose(spec("a"), {"w0": 0.0, "w1": 0.0}) == "w0"
        # w0 died: the rotation continues over whoever is live
        picks = {policy.choose(spec(f"n{i}"), {"w1": 0.0}) for i in range(3)}
        assert picks == {"w1"}

    def test_bin_pack_picks_the_least_loaded(self):
        policy = BinPackPlacement()
        assert policy.choose(spec("a"), {"w0": 3.0, "w1": 1.0, "w2": 2.0}) == "w1"

    def test_bin_pack_breaks_ties_by_worker_order(self):
        policy = BinPackPlacement()
        assert policy.choose(spec("a"), {"w0": 1.0, "w1": 1.0}) == "w0"

    def test_bin_pack_respects_weights_over_counts(self):
        # one heavy node on w0 outweighs two light ones on w1
        policy = BinPackPlacement()
        assert policy.choose(spec("a"), {"w0": 4.0, "w1": 2.0}) == "w1"

    def test_make_placement(self):
        assert isinstance(make_placement("round-robin"), RoundRobinPlacement)
        assert isinstance(make_placement("bin-pack"), BinPackPlacement)
        with pytest.raises(ClusterError):
            make_placement("gravity")

    def test_empty_fleet_raises(self):
        with pytest.raises(ClusterError):
            RoundRobinPlacement().choose(spec("a"), {})
        with pytest.raises(ClusterError):
            BinPackPlacement().choose(spec("a"), {})


class TestSpecRefs:
    def test_resolve_and_coerce_round_trip(self):
        sink = NodeId("127.0.0.1", 9001)
        wire = resolve_refs(
            {"downstreams": [ref("sink")], "k": 2, "label": "plain"},
            {"sink": sink}.__getitem__,
        )
        assert wire == {
            "downstreams": ["noderef:127.0.0.1:9001"], "k": 2, "label": "plain"
        }
        coerced = {key: coerce_node_refs(value) for key, value in wire.items()}
        assert coerced == {"downstreams": [sink], "k": 2, "label": "plain"}

    def test_unplaced_reference_names_the_sinks_first_rule(self):
        with pytest.raises(ClusterError, match="sinks-first"):
            resolve_refs({"downstreams": [ref("ghost")]}, {}.__getitem__)

    def test_load_algorithm_class_errors(self):
        with pytest.raises(ClusterError, match="module:Class"):
            load_algorithm_class("no.colon.here")
        with pytest.raises(ClusterError, match="cannot import"):
            load_algorithm_class("no.such.module:Thing")
        with pytest.raises(ClusterError, match="no class"):
            load_algorithm_class("repro.cluster.spec:Nonexistent")

    def test_build_algorithm_reports_bad_kwargs(self):
        with pytest.raises(ClusterError, match="cannot construct"):
            build_algorithm(
                "repro.cluster.scenarios:DigestSinkAlgorithm", {"bogus": 1}
            )


class TestTopologies:
    def assert_sinks_first(self, specs):
        """Every @ref must point at a spec earlier in the list."""
        placed = set()
        for node_spec in specs:
            for value in node_spec.kwargs.values():
                items = value if isinstance(value, list) else [value]
                for item in items:
                    if isinstance(item, str) and item.startswith("@"):
                        assert item[1:] in placed, (
                            f"{node_spec.name} references {item} before placement"
                        )
            placed.add(node_spec.name)

    def test_chain_specs_are_sinks_first(self):
        specs = chain_specs(10)
        assert [s.name for s in specs] == [f"n{i}" for i in range(9, -1, -1)]
        self.assert_sinks_first(specs)
        assert specs[-1].name == "n0" and specs[-1].weight == 2.0

    def test_chain_needs_two_nodes(self):
        with pytest.raises(ValueError):
            chain_specs(1)

    def test_butterfly_specs_are_sinks_first(self):
        specs = butterfly_specs()
        self.assert_sinks_first(specs)
        assert {s.name for s in specs} == set("ABCDEFG")


def ctl(load=0.0, capacity=0.0, weight=1.0):
    return ControllerLoad(load=load, capacity=capacity, weight=weight)


class TestControllerPlacement:
    """Stage one of two-stage placement: root -> child controller."""

    def test_capacity_picks_most_free_headroom(self):
        policy = CapacityPlacement()
        fleet = {"a": ctl(load=1.0, capacity=4.0), "b": ctl(load=1.0, capacity=8.0)}
        assert policy.choose(spec("x"), fleet) == "b"

    def test_capacity_skips_full_controllers(self):
        policy = CapacityPlacement()
        fleet = {"a": ctl(load=4.0, capacity=4.0), "b": ctl(load=3.5, capacity=4.0)}
        # only b has room for a unit-weight spec
        assert policy.choose(spec("x", weight=0.5), fleet) == "b"

    def test_capacity_overflows_least_loaded_when_everyone_is_full(self):
        policy = CapacityPlacement()
        fleet = {"a": ctl(load=5.0, capacity=4.0), "b": ctl(load=4.0, capacity=4.0)}
        assert policy.choose(spec("x"), fleet) == "b"

    def test_undeclared_capacity_is_unbounded_and_balances_by_load(self):
        policy = CapacityPlacement()
        fleet = {"a": ctl(load=3.0), "b": ctl(load=1.0)}
        assert policy.choose(spec("x"), fleet) == "b"

    def test_capacity_ties_break_by_join_order(self):
        policy = CapacityPlacement()
        fleet = {"a": ctl(), "b": ctl()}
        assert policy.choose(spec("x"), fleet) == "a"

    def test_weighted_evens_out_load_per_declared_weight(self):
        policy = WeightedControllerPlacement()
        # a carries 4 at weight 2 (ratio 2); b carries 3 at weight 1
        # (ratio 3): a is effectively less loaded despite more specs
        fleet = {"a": ctl(load=4.0, weight=2.0), "b": ctl(load=3.0, weight=1.0)}
        assert policy.choose(spec("x"), fleet) == "a"

    def test_weighted_heterogeneous_spec_weights_accumulate(self):
        policy = WeightedControllerPlacement()
        fleet = {"a": ctl(load=0.0, weight=1.0), "b": ctl(load=0.0, weight=3.0)}
        # simulate a sinks-first deploy of heterogeneous specs: the
        # heavy controller should absorb ~3x the total weight
        loads = {"a": 0.0, "b": 0.0}
        for weight in (2.0, 1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 1.0, 1.0):
            fleet = {
                name: ctl(load=loads[name], weight=3.0 if name == "b" else 1.0)
                for name in ("a", "b")
            }
            chosen = policy.choose(spec("x", weight=weight), fleet)
            loads[chosen] += weight
        # ideal split is 3:9; greedy ratio-balancing lands within one
        # spec of it — the heavy controller carries at least 2x
        assert loads["b"] >= 2 * loads["a"]

    def test_empty_fleet_raises(self):
        with pytest.raises(ClusterError):
            CapacityPlacement().choose(spec("x"), {})
        with pytest.raises(ClusterError):
            WeightedControllerPlacement().choose(spec("x"), {})

    def test_make_controller_placement(self):
        assert isinstance(make_controller_placement("capacity"), CapacityPlacement)
        assert isinstance(
            make_controller_placement("weighted"), WeightedControllerPlacement
        )
        with pytest.raises(ClusterError):
            make_controller_placement("gravity")
