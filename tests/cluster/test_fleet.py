"""Fleet integration: spawn real worker processes, place, observe, drain."""

import asyncio

import pytest

from repro.cluster.scenarios import (
    BURST_CONTROL,
    chain_specs,
    wait_until,
)
from repro.core.ids import NodeId
from repro.errors import ClusterError
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType

from tests.cluster.helpers import poll_info, start_fleet, stop_fleet, wait_all_alive


def run(coro):
    return asyncio.run(coro)


class TestTwoWorkerSmoke:
    def test_chain_delivers_across_processes(self):
        async def scenario():
            observer, controller = await start_fleet(workers=2)
            placed = await controller.deploy(chain_specs(6))
            assert len(placed) == 6
            # round-robin over 2 workers: alternating placement
            workers = [placed[f"n{i}"].worker for i in range(5, -1, -1)]
            assert workers == ["w0", "w1", "w0", "w1", "w0", "w1"]
            await wait_all_alive(observer, placed)

            controller.send_control(
                "n0", BURST_CONTROL, param1=25, param2=128, app=3
            )
            info = await poll_info(
                controller, "n5", lambda i: i.get("received") == 25
            )
            assert info["received"] == 25
            # the observer saw every node through the two worker proxies
            assert len(observer.observer.alive) == 6
            await stop_fleet(observer, controller)

        run(scenario())

    def test_workers_heartbeat_with_process_gauges(self):
        async def scenario():
            observer, controller = await start_fleet(
                workers=2, heartbeat_interval=0.1
            )
            await controller.deploy(chain_specs(4))
            ok = await wait_until(lambda: all(
                state.rss_kb > 0 and state.node_count == 2
                for state in controller.workers.values()
            ), timeout=10.0)
            assert ok, {
                name: (state.rss_kb, state.node_count)
                for name, state in controller.workers.items()
            }
            await stop_fleet(observer, controller)

        run(scenario())

    def test_stop_node_removes_it_everywhere(self):
        async def scenario():
            observer, controller = await start_fleet(workers=2)
            placed = await controller.deploy(chain_specs(4))
            await wait_all_alive(observer, placed)
            victim = placed["n3"]

            await controller.stop_node("n3")
            assert "n3" not in controller.placed
            assert "n3" not in controller.workers[victim.worker].placed
            assert victim.node_id not in observer.observer.alive
            with pytest.raises(ClusterError, match="no placed node"):
                await controller.node_info("n3")
            # the rest of the fleet is still serviceable
            assert (await controller.node_info("n0"))["running"] is True
            await stop_fleet(observer, controller)

        run(scenario())

    def test_duplicate_and_bad_spec_placement_errors(self):
        async def scenario():
            observer, controller = await start_fleet(workers=1)
            specs = chain_specs(2)
            await controller.deploy(specs)
            with pytest.raises(ClusterError, match="already placed"):
                await controller.place(specs[0])
            from repro.cluster.spec import NodeSpec
            with pytest.raises(ClusterError, match="pins worker"):
                await controller.place(
                    NodeSpec(name="pinned", algorithm="x:Y", pin="w9")
                )
            # a bad algorithm path is reported by the worker, not fatal
            with pytest.raises(ClusterError, match="cannot import"):
                await controller.place(NodeSpec(name="bad", algorithm="no.mod:X"))
            assert controller.workers["w0"].alive
            await stop_fleet(observer, controller)

        run(scenario())


class TestBinPackPlacementLive:
    def test_weights_balance_across_the_fleet(self):
        async def scenario():
            from repro.cluster.scenarios import SINK
            from repro.cluster.spec import NodeSpec

            observer, controller = await start_fleet(
                workers=2, placement="bin-pack"
            )
            # one heavy node and four light ones: weight-aware packing
            # puts ALL the light nodes opposite the heavy one
            specs = [NodeSpec(name="heavy", algorithm=SINK, weight=4.0)] + [
                NodeSpec(name=f"light{i}", algorithm=SINK) for i in range(4)
            ]
            placed = await controller.deploy(specs)
            loads = {
                name: state.load for name, state in controller.workers.items()
            }
            assert loads == {"w0": 4.0, "w1": 4.0}
            assert placed["heavy"].worker == "w0"
            assert {placed[f"light{i}"].worker for i in range(4)} == {"w1"}
            await stop_fleet(observer, controller)

        run(scenario())


class TestTelemetryAudit:
    def test_every_cluster_event_has_metric_and_trace(self):
        async def scenario():
            telemetry = Telemetry()
            observer, controller = await start_fleet(
                workers=2, telemetry=telemetry, heartbeat_interval=0.1
            )
            placed = await controller.deploy(chain_specs(4))
            await wait_all_alive(observer, placed)
            ok = await wait_until(lambda: all(
                state.node_count == 2 for state in controller.workers.values()
            ), timeout=10.0)
            assert ok

            reg = telemetry.registry
            spawns = {
                labels["worker"]: child.value
                for labels, child in reg.get("ioverlay_cluster_worker_spawn_total").series()
            }
            assert spawns == {"w0": 1.0, "w1": 1.0}
            placed_counts = {
                labels["worker"]: child.value
                for labels, child in reg.get("ioverlay_cluster_node_placed_total").series()
            }
            assert placed_counts == {"w0": 2.0, "w1": 2.0}
            gauge_nodes = {
                labels["worker"]: child.value
                for labels, child in reg.get("ioverlay_cluster_worker_nodes").series()
            }
            assert gauge_nodes == {"w0": 2.0, "w1": 2.0}

            events = telemetry.tracer.events()
            spawn_events = [e for e in events if e.event == EventType.WORKER_SPAWN]
            placed_events = [e for e in events if e.event == EventType.NODE_PLACED]
            assert {e.detail["worker"] for e in spawn_events} == {"w0", "w1"}
            assert len(placed_events) == 4
            assert {e.detail["name"] for e in placed_events} == {
                "n0", "n1", "n2", "n3"
            }
            await stop_fleet(observer, controller)

        run(scenario())
