"""Byte-identity: a sharded topology delivers exactly what one process does.

This is the cluster layer's acceptance bar.  Both runs use burst
sources (deterministic payloads, pure functions of ``(app, seq,
size)``) and order-independent SHA-256 digests at the sinks, so the
assertion ``cluster digest == single-process digest`` holds iff every
application byte survived the trip across process boundaries.
"""

import asyncio

from repro.cluster.scenarios import (
    BURST_CONTROL,
    build_local,
    burst_control_message,
    butterfly_specs,
    chain_specs,
    wait_until,
)

from tests.cluster.helpers import poll_info, start_fleet, stop_fleet, wait_all_alive


def run(coro):
    return asyncio.run(coro)


async def local_chain_digest(length: int, app: int, count: int, size: int) -> str:
    """The single-process VirtualHost baseline digest for a chain burst."""
    host, engines = await build_local(chain_specs(length))
    source = engines["n0"].algorithm
    sink = engines[f"n{length - 1}"].algorithm
    source.on_control(burst_control_message(app, count, size))
    ok = await wait_until(lambda: sink.received >= count, timeout=30.0)
    assert ok, f"baseline sink got {sink.received}/{count}"
    digest = sink.digest(app)
    await host.stop()
    return digest


async def local_butterfly_digests(app: int, count: int, size: int) -> dict[str, str]:
    """Baseline digests at both butterfly receivers (decoded originals)."""
    host, engines = await build_local(butterfly_specs())
    source = engines["A"].algorithm
    sinks = {name: engines[name].algorithm for name in ("F", "G")}
    generations = count // 2  # the coded source packs k=2 originals per generation
    source.on_control(burst_control_message(app, count, size))
    ok = await wait_until(
        lambda: all(s.decoded_generations >= generations for s in sinks.values()),
        timeout=30.0,
    )
    assert ok, {name: s.decoded_generations for name, s in sinks.items()}
    digests = {name: s.digest() for name, s in sinks.items()}
    await host.stop()
    return digests


class TestChainIdentity:
    def test_64_nodes_on_4_workers_match_one_process(self):
        app, count, size, length = 7, 40, 512, 64

        async def cluster_digest() -> str:
            observer, controller = await start_fleet(workers=4)
            placed = await controller.deploy(chain_specs(length))
            # 64 nodes sharded 16-per-worker by round-robin
            per_worker = {
                name: len(state.placed)
                for name, state in controller.workers.items()
            }
            assert per_worker == {"w0": 16, "w1": 16, "w2": 16, "w3": 16}
            await wait_all_alive(observer, placed, timeout=60.0)

            controller.send_control(
                "n0", BURST_CONTROL, param1=count, param2=size, app=app
            )
            info = await poll_info(
                controller, f"n{length - 1}",
                lambda i: i.get("received", 0) >= count, timeout=60.0,
            )
            digest = info["digests"][str(app)]
            # Round-robin placement makes every chain hop cross-worker, so
            # this digest really did travel the shared-memory rings (the
            # fleet default), not TCP.
            mid = await controller.node_info("n1")
            assert set(mid["transports"]) == {"shm"}, mid["transports"]
            await stop_fleet(observer, controller)
            return digest

        assert run(cluster_digest()) == run(
            local_chain_digest(length, app, count, size)
        )


class TestButterflyIdentity:
    def test_coding_butterfly_on_4_workers_matches_one_process(self):
        app, count, size = 9, 20, 256
        generations = count // 2

        async def cluster_digests() -> dict[str, str]:
            observer, controller = await start_fleet(workers=4)
            placed = await controller.deploy(butterfly_specs())
            # the butterfly genuinely crosses processes
            assert len({p.worker for p in placed.values()}) > 1
            await wait_all_alive(observer, placed)

            controller.send_control(
                "A", BURST_CONTROL, param1=count, param2=size, app=app
            )
            digests = {}
            for name in ("F", "G"):
                info = await poll_info(
                    controller, name,
                    lambda i: i.get("decoded", 0) >= generations, timeout=60.0,
                )
                digests[name] = info["digest"]
            await stop_fleet(observer, controller)
            return digests

        cluster = run(cluster_digests())
        baseline = run(local_butterfly_digests(app, count, size))
        assert cluster == baseline
        assert cluster["F"]  # non-trivial digests, not two empty folds
