#!/usr/bin/env python3
"""Failure handling: kill nodes mid-stream, watch detection and recovery.

Builds a five-node ns-aware dissemination tree, then terminates an
interior relay node through the observer.  The engine detects the broken
links passively (no heartbeats), notifies the algorithms, the orphaned
subtree re-joins, and data flow resumes — the paper's transparent
failure handling plus an algorithm-level recovery on top.
"""

from repro.algorithms.trees import CMD_JOIN, NodeStressAwareTree
from repro.core.bandwidth import BandwidthSpec
from repro.experiments.common import KB
from repro.sim.network import SimNetwork

LAST_MILE = {"S": 200.0, "A": 500.0, "B": 100.0, "C": 200.0, "D": 100.0}


def tree_edges(algorithms, labels):
    return sorted(
        f"{labels[alg.parent]}->{name}"
        for name, alg in algorithms.items()
        if alg.parent is not None
    )


def main() -> None:
    net = SimNetwork()
    algorithms = {}
    nodes = {}
    for name, last_mile in LAST_MILE.items():
        algorithm = NodeStressAwareTree(last_mile=last_mile * KB, seed=ord(name))
        algorithms[name] = algorithm
        nodes[name] = net.add_node(algorithm, name=name,
                                   bandwidth=BandwidthSpec(up=last_mile * KB))
    labels = {node: name for name, node in nodes.items()}
    net.start()
    net.run(1)
    net.observer.deploy_source(nodes["S"], app=1, payload_size=5000)
    net.run(1)
    for name in ["D", "A", "C", "B"]:
        net.observer.send_control(nodes[name], CMD_JOIN, param1=1)
        net.run(3)
    net.run(15)
    print("tree before failure:", ", ".join(tree_edges(algorithms, labels)))
    print("receiver rates:",
          {n: f"{algorithms[n].receive_rate() / KB:.0f} KB/s" for n in "ABCD"})

    print("\n>>> observer terminates relay node A (children orphaned)\n")
    net.observer.terminate_node(nodes["A"])
    net.run(30)

    survivors = {n: alg for n, alg in algorithms.items() if n != "A"}
    print("tree after recovery:", ", ".join(tree_edges(survivors, labels)))
    print("receiver rates:",
          {n: f"{algorithms[n].receive_rate() / KB:.0f} KB/s" for n in "BCD"})
    print("\nA's children detected the broken upstream without any probing,")
    print("re-queried the session, and re-attached to surviving nodes.")


if __name__ == "__main__":
    main()
