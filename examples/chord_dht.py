#!/usr/bin/env python3
"""A Chord DHT running on the middleware (structured search, à la the
protocols the paper's introduction targets).

Sixteen nodes bootstrap from the observer, stabilize into a ring, store
a few hundred keys, and resolve lookups from arbitrary nodes — all the
networking (connections, timers, failure notifications) supplied by the
engine; the algorithm is ~400 lines of pure protocol.
"""

import statistics

from repro.algorithms.dht import ChordAlgorithm, ring
from repro.sim.network import SimNetwork

N = 16


def main() -> None:
    net = SimNetwork()
    nodes = [ChordAlgorithm(stabilize_interval=0.5, seed=i) for i in range(N)]
    for i, algorithm in enumerate(nodes):
        net.add_node(algorithm, name=f"chord{i}")
    net.start()
    print(f"stabilizing a {N}-node ring ...")
    net.run(40)

    ordered = sorted(nodes, key=lambda a: a.ring_position())
    ring_ok = all(
        ordered[i].successor == ordered[(i + 1) % N].node_id for i in range(N)
    )
    print(f"ring consistent: {ring_ok}")

    print("storing 200 keys ...")
    for i in range(200):
        nodes[i % N].put(f"key-{i}", f"value-{i}")
    net.run(10)
    sizes = sorted(len(algorithm.store) for algorithm in nodes)
    print(f"keys per node: min {sizes[0]}, median {sizes[N // 2]}, max {sizes[-1]}")

    print("resolving 50 lookups from random nodes ...")
    requests = [(nodes[(7 * i) % N], nodes[(7 * i) % N].get(f"key-{i}")) for i in range(50)]
    net.run(10)
    found = sum(1 for node, req in requests if node.results[req].found)
    hops = [h for node in nodes for h in node.lookup_hops]
    print(f"found {found}/50; mean hops {statistics.fmean(hops):.1f} "
          f"(log2({N}) = {ring.M and 4}); identifier space 2^{ring.M}")


if __name__ == "__main__":
    main()
