#!/usr/bin/env python3
"""The live asyncio engine: real TCP sockets, observer, proxy — no simulator.

Starts an observer, a firewall proxy, and a three-node relay chain on
localhost.  Node processes bootstrap from the observer (through the
proxy), the observer remotely deploys a data source, and we read the
topology and throughput off the observer's status reports — the same
deployment workflow the paper runs on PlanetLab, shrunk to one machine.
"""

import asyncio

from repro.algorithms.forwarding import ChainRelayAlgorithm, SinkAlgorithm
from repro.core.ids import NodeId
from repro.net.engine import AsyncioEngine
from repro.net.observer_server import ObserverServer
from repro.net.proxy import ObserverProxy

BASE_PORT = 47100


async def run() -> None:
    observer = ObserverServer(NodeId("127.0.0.1", BASE_PORT), poll_interval=0.5)
    await observer.start()
    proxy = ObserverProxy(NodeId("127.0.0.1", BASE_PORT + 1), observer.addr)
    await proxy.start()
    print(f"observer on {observer.addr}, proxy on {proxy.addr}")

    relay_a, relay_b, sink = ChainRelayAlgorithm(), ChainRelayAlgorithm(), SinkAlgorithm()
    engines = []
    for i, algorithm in enumerate([relay_a, relay_b, sink]):
        engine = AsyncioEngine(
            NodeId("127.0.0.1", BASE_PORT + 2 + i), algorithm, observer_addr=proxy.addr
        )
        await engine.start()
        engines.append(engine)
    relay_a.set_next_hop(engines[1].node_id)
    relay_b.set_next_hop(engines[2].node_id)
    await asyncio.sleep(0.5)
    print(f"bootstrapped nodes: {sorted(map(str, observer.observer.alive))}")

    print("\nobserver deploys a source on the first node ...")
    observer.observer.deploy_source(engines[0].node_id, app=1, payload_size=5000)
    await asyncio.sleep(2.0)

    topology = observer.observer.topology()
    print("observer's topology view:")
    for edge in topology.edges:
        print(f"  {edge.src} -> {edge.dst}  at {edge.rate / 1e6:.1f} MB/s")
    print(f"sink consumed {sink.received} messages")
    print(f"proxy relayed {proxy.relayed_up} frames up, {proxy.relayed_down} down")

    for engine in engines:
        await engine.stop()
    await proxy.stop()
    await observer.stop()


if __name__ == "__main__":
    asyncio.run(run())
