#!/usr/bin/env python3
"""Network coding on the butterfly topology (the paper's Fig. 8).

Runs the seven-node butterfly twice — once forwarding verbatim, once
with node D computing the GF(2^8) combination a+b — and prints the
effective receive throughput at D, E, F and G in both scenarios.
With coding, the two leaves F and G jump from 300 KB/s to the full
400 KB/s while E becomes a helper node.
"""

from repro.experiments.common import KB
from repro.experiments.topologies import build_butterfly


def run(coding: bool) -> dict[str, float]:
    deployment = build_butterfly(coding=coding)
    net = deployment.net
    net.observer.deploy_source(deployment.nodes["A"], app=1, payload_size=5000)
    net.run(25)
    return deployment.effective_rates()


def main() -> None:
    print("butterfly: A splits stream into a (via B) and b (via C); D merges\n")
    plain = run(coding=False)
    coded = run(coding=True)
    print(f"{'node':>4}  {'no coding':>10}  {'with a+b coding':>16}")
    for node in "DEFG":
        print(f"{node:>4}  {plain[node] / KB:9.1f}  {coded[node] / KB:15.1f}   KB/s effective")
    print("\ncoding lifts F and G to the full source rate; the price is that")
    print("E only ever sees a+b and becomes a helper, like B and C.")


if __name__ == "__main__":
    main()
