#!/usr/bin/env python3
"""Quickstart: a four-node overlay in the simulator, in ~40 lines.

Builds a diamond (S fans out to A and B, both feed C), deploys a data
source with an emulated 200 KB/s per-node budget, and watches the link
throughputs converge — the iOverlay workflow end to end: write an
algorithm as a message handler, let the engine do everything else.
"""

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.sim.network import SimNetwork

KB = 1000.0


def main() -> None:
    net = SimNetwork()

    # Algorithms are plain message handlers; the engine owns the plumbing.
    source_alg = CopyForwardAlgorithm()
    relay_a, relay_b = CopyForwardAlgorithm(), CopyForwardAlgorithm()
    sink = SinkAlgorithm()

    source = net.add_node(source_alg, name="S", bandwidth=BandwidthSpec(total=200 * KB))
    node_a = net.add_node(relay_a, name="A")
    node_b = net.add_node(relay_b, name="B")
    node_c = net.add_node(sink, name="C")

    source_alg.set_downstreams([node_a, node_b])
    relay_a.set_downstreams([node_c])
    relay_b.set_downstreams([node_c])

    net.start()
    net.observer.deploy_source(source, app=1, payload_size=5000)

    for _ in range(5):
        net.run(5)
        rates = net.rates_snapshot()
        pretty = ", ".join(f"{src}->{dst}: {rate / KB:6.1f} KB/s"
                           for (src, dst), rate in sorted(rates.items()))
        print(f"t={net.now:5.1f}s   {pretty}")

    print(f"\nsink received {sink.received} messages "
          f"({sink.received_bytes / 1e6:.1f} MB) — two copies of the stream")


if __name__ == "__main__":
    main()
