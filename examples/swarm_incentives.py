#!/usr/bin/env python3
"""Rationality and self-interest: tit-for-tat exchange vs free-riding.

A ten-peer swarm streams chunks from one seed.  Two peers are rational
defectors that never upload; reciprocity relegates them to the slow
optimistic-unchoke lane while cooperators exchange at full speed — the
Section 3.1 "incentives" research direction, runnable.
"""

import statistics

from repro.algorithms.exchange import (
    ChunkExchangeAlgorithm,
    ExchangeConfig,
    FreeRiderAlgorithm,
)
from repro.sim.network import SimNetwork


def main() -> None:
    net = SimNetwork()
    config = ExchangeConfig(chunk_size=2000, round_interval=0.5)
    source = ChunkExchangeAlgorithm(config=config, seed=0)
    cooperators = [ChunkExchangeAlgorithm(config=config, seed=i + 1) for i in range(7)]
    freeriders = [FreeRiderAlgorithm(config=config, seed=100 + i) for i in range(2)]
    swarm = [source, *cooperators, *freeriders]
    node_ids = [net.add_node(alg, name=f"peer{i}") for i, alg in enumerate(swarm)]
    for i, alg in enumerate(swarm):
        alg.set_neighbors([n for j, n in enumerate(node_ids) if j != i])
    net.start()

    total = 0
    print("streaming 120 chunks into the swarm ...")
    for _ in range(12):
        for index in range(total, total + 10):
            source.seed_chunk(index)
        total += 10
        net.run(4)

    coop = [len(a.have) for a in cooperators]
    riders = [len(a.have) for a in freeriders]
    print(f"cooperators hold {statistics.fmean(coop):.0f}/{total} chunks on average"
          f" (uploaded {statistics.fmean([a.uploaded_chunks for a in cooperators]):.0f} each)")
    print(f"free-riders hold {statistics.fmean(riders):.0f}/{total} chunks"
          f" (uploaded 0)")
    print("\ndefection is visible in the ledger every peer keeps from the")
    print("middleware's throughput measurements — no extra accounting needed.")


if __name__ == "__main__":
    main()
