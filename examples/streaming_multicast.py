#!/usr/bin/env python3
"""Media streaming over a dissemination tree (the paper's Section 4 app).

A 100 KB/s constant-bit-rate stream runs over the node-stress aware
tree.  First with adequate capacity (smooth playback everywhere), then
with the interior relay squeezed below the aggregate it must carry —
its subtree rebuffers while the rest stays clean.
"""

from repro.algorithms.trees import CMD_JOIN
from repro.apps.streaming import StreamingTree, streaming_engine_config
from repro.core.bandwidth import BandwidthSpec
from repro.sim.network import NetworkConfig, SimNetwork

KB = 1000.0
FRAME_INTERVAL = 0.05  # 20 frames/s x 5 KB = 100 KB/s


def run_session(relay_bandwidth: float) -> dict[str, object]:
    last_mile = {"S": 200.0, "A": relay_bandwidth, "B": 100.0, "C": 200.0, "D": 100.0}
    net = SimNetwork(NetworkConfig(engine=streaming_engine_config(FRAME_INTERVAL)))
    algorithms = {}
    nodes = {}
    for name, bw in last_mile.items():
        algorithm = StreamingTree(last_mile=bw * KB, frame_interval=FRAME_INTERVAL,
                                  startup_delay=2.0, seed=ord(name))
        algorithms[name] = algorithm
        nodes[name] = net.add_node(algorithm, name=name,
                                   bandwidth=BandwidthSpec(up=bw * KB))
    net.start()
    net.run(1)
    net.observer.deploy_source(nodes["S"], app=1, payload_size=5000)
    net.run(1)
    for name in ["D", "A", "C", "B"]:
        net.observer.send_control(nodes[name], CMD_JOIN, param1=1)
        net.run(2)
    net.run(60)
    return {
        name: algorithms[name].stream_stats for name in "ABCD"
    }


def report(title: str, stats) -> None:
    print(title)
    for name, s in stats.items():
        print(f"  {name}: {s.received:4d} frames, continuity {s.continuity() * 100:5.1f}%,"
              f" rebuffers {s.rebuffer_events}")
    print()


def main() -> None:
    report("relay A at 500 KB/s (plenty):", run_session(500.0))
    report("relay A squeezed to 120 KB/s:", run_session(120.0))
    print("the squeezed relay cannot feed its subtree in real time — exactly")
    print("the delay-sensitive scenario the paper's small-buffer mode targets.")


if __name__ == "__main__":
    main()
