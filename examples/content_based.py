#!/usr/bin/env python3
"""Content-based networking: subscribe by predicate, publish by content.

Three brokers in a line, six clients with stock-style interests.  Events
are not addressed to anyone — each is delivered to exactly the clients
whose predicates match, and subscription *covering* keeps the broker
mesh traffic small.
"""

from repro.algorithms.contentbased import (
    ContentBasedBroker,
    ContentBasedClient,
    Predicate,
)
from repro.sim.network import SimNetwork


def main() -> None:
    net = SimNetwork()
    brokers = [ContentBasedBroker() for _ in range(3)]
    broker_ids = [net.add_node(b, name=f"broker{i}") for i, b in enumerate(brokers)]
    for i, broker in enumerate(brokers):
        broker.set_neighbors(
            [broker_ids[j] for j in (i - 1, i + 1) if 0 <= j < 3]
        )
    interests = {
        "cheap-acme": Predicate.of({"symbol": ("=", "ACME"), "price": ("<", 50)}),
        "any-acme": Predicate.of({"symbol": ("=", "ACME")}),
        "big-trades": Predicate.of({"volume": (">", 1000)}),
        "tech-prefix": Predicate.of({"symbol": ("prefix", "TECH")}),
    }
    clients = {}
    for i, (name, predicate) in enumerate(interests.items()):
        client = ContentBasedClient(broker=broker_ids[i % 3])
        clients[name] = (client, predicate)
        net.add_node(client, name=name)
    net.start()
    net.run(1)
    for client, predicate in clients.values():
        client.subscribe(predicate)
    net.run(3)

    events = [
        {"symbol": "ACME", "price": 42, "volume": 100},
        {"symbol": "ACME", "price": 80, "volume": 5000},
        {"symbol": "TECHX", "price": 12, "volume": 50},
        {"symbol": "OTHER", "price": 1, "volume": 10},
    ]
    for event in events:
        brokers[0].publish(event)
    net.run(3)

    for name, (client, _) in clients.items():
        got = [f"{e['symbol']}@{e['price']}" for e in client.delivered.events]
        print(f"{name:>12}: {', '.join(got) if got else '(nothing)'}")
    total_suppressed = sum(b.suppressed_subscriptions for b in brokers)
    print(f"\ncovering suppressed {total_suppressed} redundant subscription"
          f" propagations across the broker mesh")


if __name__ == "__main__":
    main()
