#!/usr/bin/env python3
"""Build data dissemination trees on a synthetic PlanetLab (Section 3.3).

Deploys a 30-node wide-area overlay, lets every node join a multicast
session under each of the three construction policies — all-unicast,
randomized and node-stress aware — and compares the end-to-end
throughput each receiver ends up with, plus the node-stress spread.
"""

import statistics

from repro.experiments.common import KB
from repro.experiments.fig11_planetlab_trees import run_planetlab_tree


def main() -> None:
    print("constructing 30-node dissemination trees (source pinned at 100 KB/s,")
    print("last-mile bandwidth uniform in [50, 200] KB/s)\n")
    for policy in ("unicast", "random", "ns-aware"):
        run = run_planetlab_tree(policy, n_nodes=30, settle=20)
        mean_rate = statistics.fmean(run.throughputs) if run.throughputs else 0.0
        max_stress = max(run.stresses)
        print(f"{policy:>9}: {run.joined:2d} receivers joined, "
              f"mean throughput {mean_rate / KB:5.1f} KB/s, "
              f"max node stress {max_stress:5.1f}")
    print("\nthe node-stress aware trees route joins toward under-loaded,")
    print("well-provisioned nodes: higher throughput, bounded stress.")


if __name__ == "__main__":
    main()
