#!/usr/bin/env python3
"""Service federation with sFlow (Section 3.4).

Builds a 16-node service overlay, assigns instances of four primitive
service types, federates a four-stage requirement with the sFlow
algorithm, then pushes a live data stream through the selected services
and reports the constructed path, its measured throughput and the
control overhead that the federation cost.
"""

from repro.experiments.common import KB
from repro.experiments.federation_common import build_service_overlay


def main() -> None:
    overlay = build_service_overlay(16, policy="sflow", n_types=4,
                                    instances_per_type=3, seed=2)
    net = overlay.net
    requirement = overlay.random_requirement(min_len=4, max_len=4)
    source = overlay.rng.choice(overlay.source_candidates())
    print(f"requirement: service types {[requirement.node(i).service_type for i in sorted(requirement.nodes)]}")

    session = overlay.driver.federate(source, requirement)
    net.run(5)
    outcome = overlay.driver.outcome(session, source, requirement)
    if not outcome.completed:
        raise SystemExit("federation failed — try another seed")
    path = outcome.paths[0]
    print("federated path:")
    for hop, node in enumerate(path):
        algorithm = overlay.algorithms[node]
        print(f"  hop {hop}: {node}  (capacity {algorithm.capacity / KB:.0f} KB/s,"
              f" {algorithm.active_sessions} active sessions)")

    net.observer.deploy_source(source, app=session, payload_size=5000)
    net.run(15)
    sink = overlay.algorithms[path[-1]]
    print(f"\nlive stream at the sink: {sink.receive_rate() / KB:.1f} KB/s")
    print(f"control overhead: sAware {overlay.driver.total_overhead('aware')} B,"
          f" sFederate {overlay.driver.total_overhead('federate')} B")


if __name__ == "__main__":
    main()
