#!/usr/bin/env python3
"""Gossip with iAlgorithm's disseminate utility.

A 40-node overlay where one node injects a rumour and every node relays
it to its known hosts with probability p — the epidemic dissemination
primitive the base algorithm class ships with.  Prints coverage over
time for several gossip probabilities.
"""

from repro.algorithms.gossip import GossipAlgorithm
from repro.sim.network import SimNetwork


def coverage(probability: float, n_nodes: int = 40, seed: int = 4) -> list[tuple[float, int]]:
    net = SimNetwork()
    algorithms = [
        GossipAlgorithm(probability=probability, seed=seed + i) for i in range(n_nodes)
    ]
    nodes = [net.add_node(alg, name=f"g{i}") for i, alg in enumerate(algorithms)]
    net.start()
    net.run(12)  # several bootstrap refreshes: KnownHosts fill up
    algorithms[0].rumour(b"the cache invalidation rumour", app=9)
    samples = []
    for _ in range(10):
        net.run(1)
        infected = sum(1 for alg in algorithms if alg.heard)
        samples.append((net.now, infected))
    return samples


def main() -> None:
    for p in (0.2, 0.5, 1.0):
        samples = coverage(p)
        timeline = "  ".join(f"{infected:2d}" for _, infected in samples)
        print(f"p={p:0.1f}  infected/40 per second: {timeline}")
    print("\nhigher gossip probability trades message volume for speed;")
    print("even p=0.5 reaches the whole overlay within a few rounds.")


if __name__ == "__main__":
    main()
