"""Bench: Fig. 6 — engine correctness on the seven-node topology."""

import pytest

from repro.experiments.common import KB
from repro.experiments.fig6_correctness import run_fig6


def test_fig6_correctness(once):
    result = once(run_fig6)
    result.table().print()
    a, b, c, d = (result.phases[p] for p in "abcd")

    # (a) source budget split: first-hop branches ~200, merged paths ~400.
    for edge in [("A", "B"), ("A", "C"), ("B", "D"), ("B", "F"), ("C", "D"), ("C", "G")]:
        assert a[edge] == pytest.approx(200 * KB, rel=0.1)
    for edge in [("D", "E"), ("E", "F"), ("E", "G")]:
        assert a[edge] == pytest.approx(400 * KB, rel=0.1)

    # (b) D's 30 KB/s uplink back-pressures the whole upstream to ~15,
    # while E's fan-out carries 30.
    for edge in [("A", "B"), ("A", "C"), ("B", "D"), ("B", "F"), ("C", "D"), ("C", "G")]:
        assert b[edge] == pytest.approx(15 * KB, rel=0.25)
    for edge in [("D", "E"), ("E", "F"), ("E", "G")]:
        assert b[edge] == pytest.approx(30 * KB, rel=0.15)

    # (c) terminating B closes exactly its links; the rest settle at 30.
    assert c[("A", "B")] is None and c[("B", "D")] is None and c[("B", "F")] is None
    for edge in [("A", "C"), ("C", "D"), ("C", "G"), ("D", "E"), ("E", "F"), ("E", "G")]:
        assert c[edge] == pytest.approx(30 * KB, rel=0.15)

    # (d) terminating G closes C->G and E->G; F is still served via C,D,E.
    assert d[("C", "G")] is None and d[("E", "G")] is None
    assert d[("E", "F")] == pytest.approx(30 * KB, rel=0.15)
