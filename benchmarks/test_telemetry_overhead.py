"""Telemetry overhead guards on the fig5-style loopback chain.

The telemetry layer is designed for an O(1), allocation-free hot path
(docs/observability.md): per-event recording is a shadow-counter
increment plus, when tracing, slot stores into a preallocated ring.
Two kinds of guards keep that property from regressing:

1. **A wall-clock guard** on the Fig. 5 asyncio relay chain comparing
   uninstrumented throughput against the always-on production profile
   (metrics + 1/8 head-sampled tracing).  Loopback throughput on a
   shared host wobbles by tens of percent between runs, so the guard
   interleaves baseline/instrumented pairs and accepts the *most
   favourable* of two robust estimators — the median of pairwise ratios
   and the ratio of per-configuration bests — retrying once before
   failing.  A real regression (2x hook cost) fails both estimators in
   both attempts; scheduler noise does not.

2. **Deterministic structural guards** that do not depend on timing at
   all: the per-message trace-event budget on a deterministic simulated
   chain, the collect-on-scrape invariant (the hot path never touches
   the registry), zero GC churn from the trace ring, and a generous
   tight-loop bound on the per-event append cost.  These catch the
   regressions the wall-clock guard is too noisy to see.
"""

import asyncio
import gc
import time

import pytest

from repro.algorithms.forwarding import (
    ChainRelayAlgorithm,
    CopyForwardAlgorithm,
    SinkAlgorithm,
)
from repro.core.ids import AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.experiments.common import Table
from repro.net.engine import AsyncioEngine, NetEngineConfig
from repro.sim.network import NetworkConfig, SimNetwork
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType

CHAIN_NODES = 4
PAYLOAD = 5000
DURATION = 1.2
PAIRS = 4
MAX_OVERHEAD = 0.10
#: the always-on production profile the wall-clock guard measures:
#: full metrics plus head-sampled lifecycle tracing (sampled messages
#: carry their complete source->sink path; see docs/observability.md)
PRODUCTION_SAMPLE = 8


async def _chain_throughput(telemetry: Telemetry | None) -> float:
    """End-to-end B/s at the sink of a loopback relay chain."""
    relays = [ChainRelayAlgorithm() for _ in range(CHAIN_NODES - 1)]
    sink = SinkAlgorithm()
    config = NetEngineConfig(buffer_capacity=10, telemetry=telemetry)
    engines: list[AsyncioEngine] = []
    for algorithm in [*relays, sink]:
        engine = AsyncioEngine(NodeId("127.0.0.1", 0), algorithm, config=config)
        await engine.start()
        engines.append(engine)
    for i, relay in enumerate(relays):
        relay.set_next_hop(engines[i + 1].node_id)
    engines[0].start_source(app=1, payload_size=PAYLOAD)
    await asyncio.sleep(DURATION * 0.25)  # warm up connections
    start = sink.received_bytes
    await asyncio.sleep(DURATION)
    rate = (sink.received_bytes - start) / DURATION
    for engine in engines:
        await engine.stop()
    return rate


def _measure_overhead() -> tuple[float, list[float], list[float]]:
    """Interleaved paired runs; returns (overhead, baselines, instrumented).

    The overhead estimate is the most favourable of two noise-robust
    statistics: the median of pairwise ratios (pairs run back-to-back,
    alternating order, so slow phases of the host hit both
    configurations) and the ratio of the best run of each configuration
    (capability vs capability).
    """
    baselines: list[float] = []
    instrumented: list[float] = []
    for pair in range(PAIRS):
        first_baseline = pair % 2 == 0
        for is_baseline in (first_baseline, not first_baseline):
            telemetry = (
                None if is_baseline
                else Telemetry(trace_sample=PRODUCTION_SAMPLE)
            )
            rate = asyncio.run(_chain_throughput(telemetry))
            (baselines if is_baseline else instrumented).append(rate)
    ratios = sorted(i / b for b, i in zip(baselines, instrumented))
    median_ratio = ratios[len(ratios) // 2]
    best_ratio = max(instrumented) / max(baselines)
    overhead = 1 - max(median_ratio, best_ratio)
    return overhead, baselines, instrumented


def test_telemetry_overhead_under_ten_percent():
    overhead, baselines, instrumented = _measure_overhead()
    if overhead >= MAX_OVERHEAD:  # one retry: loopback noise, not cost
        overhead, baselines, instrumented = _measure_overhead()

    table = Table(
        "Telemetry overhead — fig5-style loopback chain "
        f"({CHAIN_NODES} nodes, {PAYLOAD} B payloads)",
        ["configuration", "best (MB/s)", "runs (MB/s)"],
    )
    table.add_row("telemetry off", f"{max(baselines) / 1e6:.2f}",
                  " ".join(f"{r / 1e6:.1f}" for r in baselines))
    table.add_row(f"metrics + 1/{PRODUCTION_SAMPLE} traces",
                  f"{max(instrumented) / 1e6:.2f}",
                  " ".join(f"{r / 1e6:.1f}" for r in instrumented))
    table.note(f"guard: production-profile overhead < {MAX_OVERHEAD:.0%}"
               f" ({PAIRS} interleaved pairs, robust estimate"
               f" {overhead:+.1%})")
    table.print()

    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        "(median-of-pairs and best-of-runs estimators both agree)"
    )


# --------------------------------------------------------- structural guards


def _sim_chain(telemetry: Telemetry | None, duration: float = 2.0):
    """Deterministic fig5-style chain on the virtual-time simulator."""
    net = SimNetwork(NetworkConfig(telemetry=telemetry))
    algorithms = [CopyForwardAlgorithm() for _ in range(CHAIN_NODES - 1)]
    algorithms.append(SinkAlgorithm())
    ids = [net.add_node(alg, name=f"n{i}") for i, alg in enumerate(algorithms)]
    for upstream, downstream in zip(algorithms, ids[1:]):
        upstream.set_downstreams([downstream])
    net.start()
    net.observer.deploy_source(ids[0], app=1, payload_size=PAYLOAD)
    net.run(duration)
    return net, algorithms[-1]


def test_trace_event_budget_per_message():
    """Full tracing stays within a fixed event budget per delivered message.

    The budget is the chain's lifecycle arithmetic: source-emit + one
    forward at the head, enqueue + switch-pick + forward at each relay,
    enqueue + switch-pick + deliver at the sink, plus a small allowance
    for port-level credit events (one per port per credit epoch).  A
    hook accidentally recording per switch round or per port visit blows
    the budget immediately.
    """
    telemetry = Telemetry()
    _net, sink = _sim_chain(telemetry)
    delivered = sink.received_bytes / (PAYLOAD + 24)
    assert delivered > 100
    per_message = telemetry.tracer.recorded / delivered
    assert per_message <= 16, (
        f"{per_message:.1f} trace events per delivered message "
        "(budget 16: lifecycle steps + credit-epoch allowance)"
    )


def test_hot_path_never_touches_registry():
    """Collect-on-scrape: registry children stay zero until a snapshot."""
    telemetry = Telemetry()
    _net, sink = _sim_chain(telemetry, duration=1.0)
    assert sink.received_bytes > 0
    switched = telemetry.registry.counter(
        "ioverlay_engine_switched_messages_total",
        labelnames=("node", "peer"),
    )
    # Traffic flowed, but no collect ran yet: every bound child is 0.
    assert all(child.value == 0 for _, child in switched.series())
    snap = telemetry.snapshot()  # collect folds the shadows in
    values = [s["value"]
              for s in snap["ioverlay_engine_switched_messages_total"]["series"]]
    assert sum(values) > 0


def test_trace_ring_causes_no_gc_churn():
    """Steady-state tracing must not drive garbage collections.

    The ring stores into preallocated parallel lists, so recording
    allocates no GC-tracked containers: the gen0 allocation counter
    stays balanced and an instrumented run triggers no more collections
    than a baseline run (a tuple-per-event ring regresses this to
    dozens of collections per second).
    """
    gc.collect()
    before = [s["collections"] for s in gc.get_stats()]
    telemetry = Telemetry()
    _net, sink = _sim_chain(telemetry)
    after = [s["collections"] for s in gc.get_stats()]
    assert sink.received_bytes > 0
    assert telemetry.tracer.recorded > 1000
    collections = sum(a - b for a, b in zip(after, before))
    assert collections <= 2, (
        f"{collections} garbage collections during an instrumented run: "
        "the trace hot path is allocating GC-tracked objects"
    )


def test_trace_append_tight_loop_cost():
    """A generous absolute bound on the per-event append cost.

    The tight-loop cost of ``trace_msg`` is ~0.4 us on unloaded
    hardware; the bound of 4 us catches order-of-magnitude regressions
    (unmemoized trace ids, per-event dict allocation, registry writes)
    while staying insensitive to host load.
    """
    telemetry = Telemetry()
    ins = telemetry.instruments_for("10.0.0.1:9000")
    msg = Message(MsgType.DATA, NodeId("10.0.0.1", 9000), AppId(1),
                  b"x" * 64, seq=3)
    iterations = 50_000
    best = float("inf")
    for _attempt in range(3):
        start = time.perf_counter()
        for _ in range(iterations):
            ins.trace_msg(1.0, EventType.FORWARD, msg, "10.0.0.2:9000")
        best = min(best, time.perf_counter() - start)
    per_event = best / iterations
    assert per_event < 4e-6, (
        f"trace_msg costs {per_event * 1e9:.0f} ns per event in a tight loop"
    )


if __name__ == "__main__":  # manual run: python benchmarks/test_telemetry_overhead.py
    raise SystemExit(pytest.main([__file__, "-v", "-s"]))
