"""Bench: extension — PLUTO-assisted tree construction (Section 5)."""

from repro.experiments.ext_underlay_tree import run_ext_underlay


def test_ext_underlay_tree(once):
    result = once(run_ext_underlay)
    result.table().print()
    plain = result.runs["ns-aware"]
    assisted = result.runs["underlay"]
    # The proximity tie-break must not hurt: path latency no worse, and
    # typically better; stress stays in the same band; throughput intact.
    assert assisted.mean_latency() <= plain.mean_latency() * 1.02
    assert assisted.max_stress <= plain.max_stress * 1.5
    import statistics
    assert statistics.fmean(assisted.throughputs) > 0.85 * statistics.fmean(plain.throughputs)
