"""Bench: Fig. 11 — tree algorithms on 81 synthetic PlanetLab nodes."""

import statistics

from repro.experiments.fig11_planetlab_trees import run_fig11


def test_fig11_planetlab_trees(once):
    result = once(run_fig11, n_nodes=81, settle=20.0)
    result.throughput_table().print()
    result.stress_table().print()

    means = {
        policy: statistics.fmean(run.throughputs)
        for policy, run in result.runs.items()
    }
    # (a) end-to-end throughput ordering: ns-aware >> random >> unicast.
    assert means["ns-aware"] > 2 * means["random"]
    assert means["random"] > 2 * means["unicast"]
    # Everyone managed to join under every policy.
    for run in result.runs.values():
        assert run.joined == 80

    # (b) stress CDF: ns-aware approaches the ideal step fastest — at a
    # stress bound of 5 it has (almost) everyone, unicast has the extreme
    # source outlier.
    cdf_at_5 = {p: run.stress_cdf([5.0])[0] for p, run in result.runs.items()}
    assert cdf_at_5["ns-aware"] == 1.0
    assert max(result.runs["unicast"].stresses) > 20
    assert max(result.runs["ns-aware"].stresses) < 10
