"""Ablation benches for the engine design choices DESIGN.md calls out.

1. **Buffer capacity vs back pressure** — sweep the per-buffer message
   capacity on the seven-node topology with D's uplink capped: small
   buffers propagate the bottleneck all the way to the source (Fig. 6b
   behaviour), large buffers confine it downstream (Fig. 7a behaviour).
   The crossover is the design lever the paper highlights for
   delay-sensitive vs bandwidth-aggressive applications.

2. **Weighted round robin under competing sessions** — two sources feed
   one relay whose uplink is capped; retuning the receiver-port weights
   shifts the uplink share between the sessions proportionally.
"""

import pytest

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.experiments.common import KB, Table
from repro.experiments.fig6_correctness import run_fig6
from repro.sim.engine import EngineConfig
from repro.sim.network import NetworkConfig, SimNetwork


def _time_to_throttle(buffer_capacity: int, horizon: float = 120.0) -> float | None:
    """Seconds after D's uplink drops to 30 KB/s until the *source* link
    A->B falls below 50 KB/s; None if it never does within the horizon."""
    from repro.experiments.topologies import build_seven_node_copy

    deployment = build_seven_node_copy(buffer_capacity=buffer_capacity,
                                       source_total=400 * KB)
    net = deployment.net
    net.observer.deploy_source(deployment.nodes["A"], app=1, payload_size=5000)
    net.run(20)
    t0 = net.now
    net.observer.set_node_bandwidth(deployment.nodes["D"], "up", 30 * KB)
    while net.now - t0 < horizon:
        net.run(2)
        if net.link_rate("A", "B") < 50 * KB:
            return net.now - t0
    return None


def test_ablation_buffer_capacity_back_pressure(once):
    def sweep():
        return {cap: _time_to_throttle(cap) for cap in (5, 100, 1000, 10000)}

    onset = once(sweep)
    table = Table(
        "Ablation — buffer capacity vs back-pressure onset (D uplink -> 30 KB/s)",
        ["buffer (msgs)", "time until source throttles (s)"],
    )
    for capacity, seconds in onset.items():
        table.add_row(capacity, f"{seconds:.0f}" if seconds is not None else "> 120")
    table.note("the per-buffer capacity is the paper's lever between"
               " delay-sensitive (fast back pressure) and"
               " bandwidth-aggressive (absorbing) behaviour")
    table.print()

    # Small buffers: near-immediate back pressure.  Bigger buffers delay
    # the onset monotonically; 10000 messages absorb the bottleneck for
    # far longer than the observation horizon.
    assert onset[5] is not None and onset[5] < 15
    assert onset[100] is not None and onset[1000] is not None
    assert onset[5] <= onset[100] <= onset[1000]
    assert onset[10000] is None


def _competing_sessions(weight_one: int, weight_two: int) -> tuple[float, float]:
    """Two sources -> one relay (uplink capped) -> one sink; returns the
    per-session delivery rates at the sink."""
    net = SimNetwork(NetworkConfig(engine=EngineConfig(buffer_capacity=8)))
    src1, src2 = CopyForwardAlgorithm(), CopyForwardAlgorithm()

    class PerAppSink(SinkAlgorithm):
        def __init__(self):
            super().__init__()
            self.per_app: dict[int, int] = {}

        def on_data(self, msg):
            self.per_app[msg.app] = self.per_app.get(msg.app, 0) + msg.size
            return super().on_data(msg)

    relay = CopyForwardAlgorithm()
    sink = PerAppSink()
    n1 = net.add_node(src1, name="s1", bandwidth=BandwidthSpec(up=300 * KB))
    n2 = net.add_node(src2, name="s2", bandwidth=BandwidthSpec(up=300 * KB))
    nr = net.add_node(relay, name="relay", bandwidth=BandwidthSpec(up=100 * KB))
    ns = net.add_node(sink, name="sink")
    src1.set_downstreams([nr])
    src2.set_downstreams([nr])
    relay.set_downstreams([ns])
    net.start()
    net.observer.deploy_source(n1, app=1, payload_size=5000)
    net.observer.deploy_source(n2, app=2, payload_size=5000)
    net.run(5)
    net.engine(nr).set_port_weight(n1, weight_one)
    net.engine(nr).set_port_weight(n2, weight_two)
    net.run(5)  # let queued pre-change traffic flush
    baseline = dict(sink.per_app)
    window = 30.0
    net.run(window)
    return (
        (sink.per_app.get(1, 0) - baseline.get(1, 0)) / window,
        (sink.per_app.get(2, 0) - baseline.get(2, 0)) / window,
    )


def test_ablation_wrr_weights_split_competing_sessions(once):
    def sweep():
        return {
            (1, 1): _competing_sessions(1, 1),
            (3, 1): _competing_sessions(3, 1),
            (1, 4): _competing_sessions(1, 4),
        }

    results = once(sweep)
    table = Table(
        "Ablation — WRR weights vs per-session share of a 100 KB/s relay",
        ["weights (s1:s2)", "session 1 (KB/s)", "session 2 (KB/s)"],
    )
    for (w1, w2), (r1, r2) in results.items():
        table.add_row(f"{w1}:{w2}", f"{r1 / KB:.1f}", f"{r2 / KB:.1f}")
    table.print()

    equal = results[(1, 1)]
    assert equal[0] == pytest.approx(equal[1], rel=0.25)
    favor_one = results[(3, 1)]
    assert favor_one[0] > 1.8 * favor_one[1]
    favor_two = results[(1, 4)]
    assert favor_two[1] > 2.2 * favor_two[0]
