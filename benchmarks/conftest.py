"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper: it runs
the corresponding experiment harness once under pytest-benchmark timing,
asserts the *shape* the paper reports (who wins, monotonicity,
crossovers), and prints the same rows/series so the output can be laid
next to the paper.  Absolute magnitudes are expected to differ — the
substrate here is a deterministic simulator plus an asyncio engine, not
the authors' 2004 C++ deployment.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def record_tables(capsys, request):
    """Persist each benchmark's printed tables under benchmarks/results/.

    pytest captures stdout of passing tests; the rendered paper-style
    tables are the whole point of these benchmarks, so they are written
    to one file per benchmark for EXPERIMENTS.md and later inspection.
    """
    yield
    out = capsys.readouterr().out
    if out.strip():
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{request.node.name}.txt").write_text(out)
        # Re-emit so `pytest -s` / failure output still shows the tables.
        print(out, end="")


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under the benchmark timer.

    Experiment harnesses simulate minutes of virtual time; repeating
    them for statistical timing would add nothing (they are
    deterministic), so every figure benchmark uses a single round.
    """

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
