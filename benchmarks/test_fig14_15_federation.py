"""Bench: Figs. 14 and 15 — one federated service on 16 nodes."""

from repro.experiments.fig14_15_federation_small import run_fig14_15


def test_fig14_15_federation(once):
    result = once(run_fig14_15)
    result.topology_table().print()
    result.overhead_table().print()
    result.bandwidth_table().print()

    # Fig. 14: a four-stage complex service was constructed and carries
    # a live stream at the sink.
    assert len(result.path) == 4
    assert result.end_to_end_rate > 20_000
    assert result.hop_latency_s < 1.0

    # Fig. 15(a): sFederate overhead is small next to sAware, and only the
    # nodes involved in the session carry any sFederate bytes at all.
    total_aware = sum(o["aware"] for o in result.per_node_overhead.values())
    total_federate = sum(o["federate"] for o in result.per_node_overhead.values())
    assert 0 < total_federate < total_aware / 3
    untouched = [o for o in result.per_node_overhead.values() if o["federate"] == 0]
    assert len(untouched) >= 7  # the paper: seven nodes left untouched

    # Fig. 15(b): data-plane bandwidth concentrates on the path nodes.
    on_path = {str(node) for node in result.path}
    top = sorted(result.per_node_bandwidth.items(), key=lambda kv: -kv[1]["total"])
    assert {str(node) for node, _ in top[:4]} == on_path
