"""Bench: Fig. 16 — sAware overhead over time (30 nodes, 22 minutes)."""

from repro.experiments.fig16_aware_over_time import run_fig16


def test_fig16_aware_over_time(once):
    result = once(run_fig16)
    result.table().print()

    bins = result.per_minute_aware_bytes
    assert len(bins) == 22
    # Overhead is substantial while services arrive (first 10 minutes) ...
    arrival_volume = sum(bins[:10])
    assert arrival_volume > 0
    # ... and decreases significantly afterwards (the paper's headline).
    tail_volume = sum(bins[12:])
    assert tail_volume < arrival_volume * 0.1
    assert result.services_assigned > 15
