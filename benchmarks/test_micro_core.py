"""Microbenchmarks of the hot-path primitives (the paper's Section 2.4
"maximized performance" concerns, measured for the Python engine).

Unlike the figure benchmarks these use real repeated timing: they are
the numbers an iOverlay-on-Python user sizes deployments with — message
codec rate, switch bookkeeping cost, GF(2^8) coding rate, and the
discrete-event kernel's event throughput.
"""

from repro.algorithms.coding import gf256
from repro.algorithms.coding.linear import CodedPayload, GenerationDecoder, combine
from repro.core.buffer import CircularBuffer
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.sim.kernel import Kernel

SENDER = NodeId("10.0.0.1", 7000)
PAYLOAD = bytes(5000)


def test_message_pack(benchmark):
    msg = Message(MsgType.DATA, SENDER, 1, PAYLOAD, seq=7)
    packed = benchmark(msg.pack)
    assert len(packed) == 5024


def test_message_unpack(benchmark):
    packed = Message(MsgType.DATA, SENDER, 1, PAYLOAD, seq=7).pack()
    msg = benchmark(Message.unpack, packed)
    assert msg.seq == 7


def test_circular_buffer_cycle(benchmark):
    buffer = CircularBuffer(64)
    item = object()

    def cycle():
        for _ in range(64):
            buffer.put(item)
        for _ in range(64):
            buffer.get()

    benchmark(cycle)
    assert buffer.is_empty


def test_gf256_payload_combine(benchmark):
    a = CodedPayload.original(0, 0, 2, PAYLOAD)
    b = CodedPayload.original(0, 1, 2, bytes(range(256)) * 19 + bytes(136))

    coded = benchmark(combine, [a, b], [1, 1])
    assert coded.coefficients == (1, 1)


def test_gf256_generation_decode(benchmark):
    a = CodedPayload.original(0, 0, 2, PAYLOAD)
    b = CodedPayload.original(0, 1, 2, bytes([7]) * 5000)
    coded = combine([a, b], [1, 1])

    def decode():
        decoder = GenerationDecoder(2, 5000)
        decoder.add(a)
        decoder.add(coded)
        return decoder.originals()

    originals = benchmark(decode)
    assert originals[1] == bytes([7]) * 5000


def test_gf256_scale_bytes(benchmark):
    scaled = benchmark(gf256.scale_bytes, 42, PAYLOAD)
    assert len(scaled) == len(PAYLOAD)


def test_kernel_event_throughput(benchmark):
    """Events per second through the virtual-time heap (batch of 10k)."""

    def run_batch():
        kernel = Kernel()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(10_000):
            kernel.call_at(i * 0.001, tick)
        kernel.run()
        return count

    assert benchmark(run_batch) == 10_000


def test_kernel_task_switching(benchmark):
    """Round-trip cost of parking/waking coroutine tasks on queues."""
    from repro.sim.sync import SimQueue

    def run_pingpong():
        kernel = Kernel()
        ping: SimQueue = SimQueue(kernel, capacity=1)
        pong: SimQueue = SimQueue(kernel, capacity=1)

        async def left():
            for _ in range(500):
                await ping.put(1)
                await pong.get()

        async def right():
            for _ in range(500):
                await ping.get()
                await pong.put(1)

        kernel.spawn(left())
        kernel.spawn(right())
        kernel.run()
        return True

    assert benchmark(run_pingpong)


def test_simulated_engine_message_rate(benchmark):
    """Simulated messages switched per wall-clock second: a two-node
    unthrottled stream for one virtual second."""
    from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
    from repro.sim.network import SimNetwork

    def run_sim():
        net = SimNetwork()
        src_alg, sink = CopyForwardAlgorithm(), SinkAlgorithm()
        src = net.add_node(src_alg, name="s")
        dst = net.add_node(sink, name="d")
        src_alg.set_downstreams([dst])
        net.start()
        net.observer.deploy_source(src, app=1, payload_size=5000)
        net.run(1.0)
        return sink.received

    received = benchmark(run_sim)
    assert received > 100
