"""Bench: Fig. 19 — end-to-end bandwidth of federated services."""

import statistics

from repro.experiments.fig19_bandwidth_vs_size import run_fig19


def test_fig19_bandwidth_vs_size(once):
    result = once(run_fig19)
    result.table().print()

    sflow = result.bandwidth["sflow"]
    fixed = result.bandwidth["fixed"]
    random_ = result.bandwidth["random"]
    # The headline: sFlow consistently produces the highest-bandwidth
    # federated services, regardless of network size (a ~10% tolerance
    # absorbs single-seed placement noise at individual sizes).
    for i in range(len(result.sizes)):
        assert sflow[i] >= fixed[i] * 0.9
        assert sflow[i] >= random_[i] * 0.9
    # And clearly so on average.
    assert statistics.fmean(sflow) > 1.1 * statistics.fmean(random_)
    assert statistics.fmean(sflow) > 1.05 * statistics.fmean(fixed)
    # Every policy completed (almost) all sessions.
    for counts in result.completed.values():
        assert all(done >= 30 for done in counts)
