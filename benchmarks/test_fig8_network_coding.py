"""Bench: Fig. 8 — network coding on the butterfly topology."""

import pytest

from repro.experiments.common import KB
from repro.experiments.fig8_network_coding import PAPER_EFFECTIVE, run_fig8


def test_fig8_network_coding(once):
    result = once(run_fig8)
    result.table().print()

    for scenario in ("without", "with"):
        for node, paper_kbps in PAPER_EFFECTIVE[scenario].items():
            measured = result.effective[scenario][node]
            assert measured == pytest.approx(paper_kbps * KB, rel=0.12), (
                f"{scenario} coding, node {node}"
            )
    # The coding gain at the leaves: 300 -> 400 KB/s.
    for node in ("F", "G"):
        gain = result.effective["with"][node] / result.effective["without"][node]
        assert gain == pytest.approx(4 / 3, rel=0.1)
