"""Persistent core-performance suite: the numbers behind ``BENCH_core.json``.

Unlike the figure benchmarks (which reproduce the paper's tables) and
``test_micro_core.py`` (pytest-benchmark statistics), this suite tracks
the repo's own hot paths over time with plain ``time.perf_counter``
loops and **writes its measurements to ``BENCH_core.json`` at the repo
root**, appending one history entry per run label.  Later PRs read that
file to see the performance trajectory; CI reruns the suite and fails
when a metric regresses by more than :data:`GUARD_TOLERANCE` against
the committed baseline (set ``PERF_GUARD=1``).

The metrics, chosen to cover the layers of the fast path:

- ``kernel_events_per_sec`` — raw event dispatch through the
  virtual-time kernel (a ``call_soon`` chain: the ready-queue path);
- ``kernel_task_wakeups_per_sec`` — coroutine park/wake round-trips
  (``SimQueue`` ping-pong: Future/Task overhead);
- ``gf256_coded_bytes_per_sec`` — network-coding encode+decode rate
  (``combine`` + ``GenerationDecoder`` over full generations);
- ``switch_passes_per_sec`` — switch bookkeeping per engine iteration
  (rotation + has_work + total_buffered over 16 ports);
- ``codec_headers_per_sec`` — wire headers emitted per second through
  the vectorized batch codec (``pack_headers`` over sender-drain-sized
  bursts: one precompiled ``struct`` call per burst);
- ``fig5_sim_chain_msgs_per_sec`` — end-to-end: simulated messages
  switched per wall-clock second on a fig5-style 8-node chain;
- ``virtual_pack_msgs_per_sec`` — bench_virtual_pack: end-to-end
  delivery rate on a 40-node virtual-hosted chain (many full engines
  multiplexed on one event loop over zero-copy loopback links);
- ``cluster_pack_msgs_per_sec`` — bench_cluster_pack: the same chain
  shape sharded over a 2-process worker fleet (controller placement,
  per-worker observer proxies, cross-process hops) on the fleet's
  default data plane — shared-memory rings with batched flushes;
- ``cluster_pack_tcp_msgs_per_sec`` — the identical fleet forced onto
  plain TCP sockets (``shm_ring_bytes=0``), so the two cluster numbers
  bracket what the shm ring transport buys per cross-worker hop;
- ``observer_rollup_events_per_sec`` — bench_observer_rollup: status
  reports absorbed and folded through a 2-level observer aggregation
  tree (leaf proxies -> mid proxy -> root observer) per second;
- ``observer_rollup_byte_reduction`` — same bench: bytes of child
  status traffic divided by root-observer ingress bytes, i.e. how many
  bytes the aggregation tree absorbs per byte it forwards;
- ``churn_convergence_speed`` — bench_churn_convergence: 1000 divided
  by the round at which a 300-node slotted run converges to the legal
  ring after an adversarial start plus a churn window (deterministic;
  guards repair latency in protocol rounds);
- ``churn_slotted_node_rounds_per_sec`` — same bench: node-ticks the
  slotted membership simulator executes per wall-clock second;
- ``routing_rounds_per_sec`` — bench_routing_rounds: full backpressure
  decision rounds (enqueue + max-weight ``decide`` + ``take``) per
  second through ``RoutingCore`` — the per-tick cost every
  backpressure-routed node pays, measured without engine overhead.

Every metric is "higher is better".  Measurements use the best of
several repetitions so a GC pause or scheduler blip cannot fail CI.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_FILE = REPO_ROOT / "BENCH_core.json"

#: CI fails when a guarded metric drops below (1 - 0.25) x baseline.
GUARD_TOLERANCE = 0.25

#: label for the history entry this run appends/replaces
RUN_LABEL = os.environ.get("PERF_LABEL", "local")

RESULTS: dict[str, float] = {}


def _best_of(func, repeats: int = 3) -> float:
    """Run ``func`` ``repeats`` times; return the best (max) rate."""
    return max(func() for _ in range(repeats))


# --------------------------------------------------------------------- kernel


def test_kernel_event_dispatch_rate():
    """Events/sec through the kernel's scheduling core (call_soon chain)."""
    from repro.sim.kernel import Kernel

    n = 50_000

    def run() -> float:
        kernel = Kernel()
        remaining = [n]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0]:
                kernel.call_soon(tick)

        kernel.call_soon(tick)
        start = time.perf_counter()
        kernel.run()
        elapsed = time.perf_counter() - start
        assert remaining[0] == 0
        return n / elapsed

    RESULTS["kernel_events_per_sec"] = _best_of(run)
    assert RESULTS["kernel_events_per_sec"] > 0


def test_kernel_task_wakeup_rate():
    """Task park/wake round-trips per second (queue ping-pong)."""
    from repro.sim.kernel import Kernel
    from repro.sim.sync import SimQueue

    rounds = 5_000

    def run() -> float:
        kernel = Kernel()
        ping: SimQueue = SimQueue(kernel, capacity=1)
        pong: SimQueue = SimQueue(kernel, capacity=1)

        async def left() -> None:
            for _ in range(rounds):
                await ping.put(1)
                await pong.get()

        async def right() -> None:
            for _ in range(rounds):
                await ping.get()
                await pong.put(1)

        kernel.spawn(left())
        kernel.spawn(right())
        start = time.perf_counter()
        kernel.run()
        elapsed = time.perf_counter() - start
        # one round = 2 puts + 2 gets = 4 park/wake pairs at capacity 1
        return rounds / elapsed

    RESULTS["kernel_task_wakeups_per_sec"] = _best_of(run)
    assert RESULTS["kernel_task_wakeups_per_sec"] > 0


# --------------------------------------------------------------------- coding


def test_gf256_bulk_coding_rate():
    """Coded payload bytes processed per second (encode + full decode)."""
    from repro.algorithms.coding.linear import CodedPayload, GenerationDecoder, combine

    k = 4
    payload_len = 8192
    originals = [
        CodedPayload.original(0, i, k, bytes([(i * 31 + j) % 256 for j in range(payload_len)]))
        for i in range(k)
    ]
    # a full-rank set of coefficient vectors (Vandermonde-ish, all nonzero)
    coeff_sets = [[(i + 2) ** j % 255 + 1 for j in range(k)] for i in range(k)]

    def run() -> float:
        generations = 6
        start = time.perf_counter()
        for _ in range(generations):
            coded = [combine(originals, coeffs) for coeffs in coeff_sets]
            decoder = GenerationDecoder(k, payload_len)
            for payload in coded:
                decoder.add(payload)
            assert decoder.complete
            decoded = decoder.originals()
        elapsed = time.perf_counter() - start
        assert decoded[0] == originals[0].data
        # bytes coded (k payloads combined per coded payload) + decoded
        processed = generations * (k * k + k) * payload_len
        return processed / elapsed

    RESULTS["gf256_coded_bytes_per_sec"] = _best_of(run)
    assert RESULTS["gf256_coded_bytes_per_sec"] > 0


# --------------------------------------------------------------------- switch


def test_switch_pass_rate():
    """Scheduler bookkeeping passes per second over 16 occupied ports."""
    from repro.core.buffer import CircularBuffer
    from repro.core.ids import NodeId
    from repro.core.message import Message
    from repro.core.msgtypes import MsgType
    from repro.core.switch import ReceiverPort, SwitchScheduler

    scheduler = SwitchScheduler()
    for i in range(16):
        buffer: CircularBuffer = CircularBuffer(8)
        port = ReceiverPort(peer=NodeId(f"10.0.0.{i + 1}", 7000), buffer=buffer)
        scheduler.add_port(port)
        msg = Message(MsgType.DATA, port.peer, 1, b"x" * 64)
        for _ in range(4):
            buffer.put(msg)

    passes = 20_000

    def run() -> float:
        start = time.perf_counter()
        total = 0
        for _ in range(passes):
            for port in scheduler.rotation():
                if not port.has_work():
                    continue
            if scheduler.has_work():
                total += scheduler.total_buffered()
        elapsed = time.perf_counter() - start
        assert total == passes * 64
        return passes / elapsed

    RESULTS["switch_passes_per_sec"] = _best_of(run)
    assert RESULTS["switch_passes_per_sec"] > 0


def test_codec_batch_header_rate():
    """Wire headers/sec through the vectorized batch codec.

    Bursts are sized like a sender-drain (32 frames): the whole burst's
    headers go through ONE precompiled ``struct.Struct`` call instead of
    one pack per frame, which is where the Python-level call overhead of
    the per-message codec goes.
    """
    from repro.core.ids import NodeId
    from repro.core.message import Message
    from repro.core.msgtypes import MsgType
    from repro.net.framing import pack_headers

    burst_size = 32
    sender = NodeId("10.1.2.3", 7001)
    burst = [
        Message(MsgType.DATA, sender, 1, b"x" * 64, seq=i)
        for i in range(burst_size)
    ]
    bursts = 5_000

    def run() -> float:
        start = time.perf_counter()
        for _ in range(bursts):
            view = pack_headers(burst)
        elapsed = time.perf_counter() - start
        assert len(view) == burst_size * 24
        return bursts * burst_size / elapsed

    RESULTS["codec_headers_per_sec"] = _best_of(run)
    assert RESULTS["codec_headers_per_sec"] > 0


# ----------------------------------------------------------------- end-to-end


def test_fig5_sim_chain_rate():
    """Simulated messages delivered per wall-clock second on an 8-node
    fig5-style chain (5 KB payloads, paper's small-buffer configuration)."""
    from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
    from repro.sim.network import NetworkConfig, SimNetwork
    from repro.sim.engine import EngineConfig

    n_nodes = 8

    def run() -> float:
        net = SimNetwork(NetworkConfig(engine=EngineConfig(buffer_capacity=10), seed=0))
        relays = [CopyForwardAlgorithm() for _ in range(n_nodes - 1)]
        sink = SinkAlgorithm()
        ids = [net.add_node(algorithm, name=f"n{i}")
               for i, algorithm in enumerate([*relays, sink])]
        for i, relay in enumerate(relays):
            relay.set_downstreams([ids[i + 1]])
        net.start()
        net.observer.deploy_source(ids[0], app=1, payload_size=5000)
        start = time.perf_counter()
        net.run(2.0)
        elapsed = time.perf_counter() - start
        assert sink.received > 50
        return sink.received / elapsed

    RESULTS["fig5_sim_chain_msgs_per_sec"] = _best_of(run, repeats=2)
    assert RESULTS["fig5_sim_chain_msgs_per_sec"] > 0


def test_virtual_pack_rate():
    """bench_virtual_pack: end-to-end messages per wall-clock second on a
    40-node virtual-hosted chain — the cost of packing many full engines
    (own switch, buffers, control loop each) onto one event loop with
    zero-copy loopback links between them."""
    import asyncio

    from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
    from repro.net.engine import NetEngineConfig
    from repro.net.virtual import VirtualHost

    n_nodes = 40
    window = 1.0

    async def packed_chain() -> float:
        host = VirtualHost()
        algorithms = [CopyForwardAlgorithm() for _ in range(n_nodes - 1)] + [SinkAlgorithm()]
        config = NetEngineConfig(buffer_capacity=10)
        engines = [host.add_node(alg, config=config) for alg in algorithms]
        await host.start()
        for alg, nxt in zip(algorithms, engines[1:]):
            alg.set_downstreams([nxt.node_id])
        await host.connect_chain()
        sink = algorithms[-1]
        engines[0].start_source(app=1, payload_size=5000)
        await asyncio.sleep(window * 0.25)  # fill the pipeline first
        start_count = sink.received
        start = time.perf_counter()
        await asyncio.sleep(window)
        elapsed = time.perf_counter() - start
        delivered = sink.received - start_count
        assert host.resolver.dials == n_nodes - 1  # no socket fallback
        await host.stop()
        assert delivered > 0
        return delivered / elapsed

    def run() -> float:
        return asyncio.run(packed_chain())

    RESULTS["virtual_pack_msgs_per_sec"] = _best_of(run, repeats=2)
    assert RESULTS["virtual_pack_msgs_per_sec"] > 0


def test_cluster_pack_rate():
    """bench_cluster_pack: end-to-end messages per wall-clock second on a
    16-node chain sharded across a 2-process worker fleet — what the
    cluster fabric (subprocess workers, control channel, observer
    proxies, cross-worker hops) costs relative to bench_virtual_pack's
    single-process packing.  Measured once per transport: the default
    shared-memory ring data plane (the headline number) and the plain
    TCP fallback, with the expected transport asserted in use via the
    engines' own ``transport_mix`` attribution.

    The measurement window starts only after a fill period: the batched
    data plane keeps thousands of messages in flight across the chain's
    bounded buffers and rings, and the delivery rate climbs for about a
    second while that pipeline populates.  A window that starts cold
    reports the ramp, not the sustained rate this metric is defined as.
    """
    import asyncio

    from repro.cluster.controller import ClusterConfig, ClusterController
    from repro.cluster.scenarios import chain_specs, wait_until
    from repro.core.ids import NodeId
    from repro.net.observer_server import ObserverServer

    n_nodes = 16
    window = 3.0
    fill = 1.0

    async def fleet_chain(expect_transport: str, **config) -> float:
        observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=0.5)
        await observer.start()
        controller = ClusterController(observer, ClusterConfig(workers=2, **config))
        await controller.start()
        placed = await controller.deploy(chain_specs(n_nodes))
        await wait_until(lambda: all(
            p.node_id in observer.observer.alive for p in placed.values()
        ))
        sink = f"n{n_nodes - 1}"

        async def received() -> int:
            reply = await controller.node_info(sink)
            return int(reply["info"].get("received", 0))

        controller.deploy_source("n0", app=1, payload_size=5000)
        await asyncio.sleep(fill)  # populate the pipeline to steady state
        start_count = await received()
        start = time.perf_counter()
        await asyncio.sleep(window)
        delivered = await received() - start_count
        elapsed = time.perf_counter() - start
        # Round-robin placement makes every hop cross-worker: the number
        # must be attributed to the transport being benchmarked.
        mid = await controller.node_info("n1")
        assert set(mid["transports"]) == {expect_transport}, mid["transports"]
        await controller.stop()
        await observer.stop()
        assert delivered > 0
        return delivered / elapsed

    def run_shm() -> float:
        return asyncio.run(fleet_chain("shm"))

    def run_tcp() -> float:
        return asyncio.run(fleet_chain("tcp", shm_ring_bytes=0))

    RESULTS["cluster_pack_msgs_per_sec"] = _best_of(run_shm, repeats=2)
    RESULTS["cluster_pack_tcp_msgs_per_sec"] = _best_of(run_tcp, repeats=2)
    assert RESULTS["cluster_pack_msgs_per_sec"] > 0
    assert RESULTS["cluster_pack_tcp_msgs_per_sec"] > 0


def test_observer_rollup_rate():
    """bench_observer_rollup: status events through a 2-level aggregation
    tree per second, plus the root-ingress byte reduction the tree buys.

    Two leaf proxies each hold 8 node connections; their roll-ups fold
    into a mid proxy whose flushes are the ONLY thing the root observer
    reads.  Flushes are driven manually (the periodic loop is parked) so
    the frame count — and with it the byte-reduction ratio — is
    deterministic rather than a function of machine speed.
    """
    import asyncio

    from repro.core.ids import NodeId
    from repro.core.message import Message
    from repro.core.msgtypes import MsgType
    from repro.net.framing import open_identified, write_message
    from repro.net.observer_server import ObserverServer
    from repro.net.proxy import ObserverProxy
    from repro.telemetry.metrics import MetricsRegistry

    children_per_leaf = 8
    statuses_per_round = 5
    rounds = 10

    async def wait_for(predicate, timeout=10.0):
        async with asyncio.timeout(timeout):
            while not predicate():
                await asyncio.sleep(0.001)

    async def tree() -> tuple[float, float]:
        root = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=1000.0)
        await root.start()
        # flush_interval parks the loop; every flush below is explicit.
        mid = ObserverProxy(NodeId("127.0.0.1", 0), root.addr,
                            flush_interval=1000.0)
        await mid.start()
        leaves = []
        for _ in range(2):
            leaf = ObserverProxy(NodeId("127.0.0.1", 0), mid.addr,
                                 flush_interval=1000.0)
            await leaf.start()
            leaves.append(leaf)

        writers = []
        counters = []
        for li, leaf in enumerate(leaves):
            for ci in range(children_per_leaf):
                node = NodeId("127.0.0.1", 40000 + li * 100 + ci)
                _, writer = await open_identified(leaf.addr, node)
                reg = MetricsRegistry()
                counter = reg.counter(
                    "bench_sent_total", "sent", ("node",)
                ).labels(node=str(node))
                writers.append((node, writer, reg, counter))
                counters.append(counter)

        child_bytes = 0
        absorbed_target = 0
        bytes0 = root.bytes_in
        start = time.perf_counter()
        for round_no in range(rounds):
            for node, writer, reg, counter in writers:
                for _ in range(statuses_per_round):
                    counter.inc()
                    status = Message.with_fields(
                        MsgType.STATUS, node, 0,
                        node=str(node), apps=[1], metrics=reg.snapshot(),
                    )
                    child_bytes += len(status.pack())
                    write_message(writer, status)
            absorbed_target += len(writers) * statuses_per_round
            await wait_for(lambda: sum(l.agg_absorbed for l in leaves)
                           >= absorbed_target)
            mid_before = mid.agg_absorbed
            for leaf in leaves:
                assert await leaf.flush()
            await wait_for(lambda: mid.agg_absorbed >= mid_before + 2)
            root_before = root.observer.agg_frames
            assert await mid.flush()
            await wait_for(lambda: root.observer.agg_frames > root_before)
        elapsed = time.perf_counter() - start
        events = rounds * len(writers) * statuses_per_round
        root_bytes = root.bytes_in - bytes0

        for _, writer, _, _ in writers:
            writer.close()
        for leaf in leaves:
            await leaf.stop()
        await mid.stop()
        await root.stop()
        assert root_bytes > 0
        return events / elapsed, child_bytes / root_bytes

    def run() -> tuple[float, float]:
        return asyncio.run(tree())

    best_rate, reduction = 0.0, 0.0
    for _ in range(2):
        rate, red = run()
        if rate > best_rate:
            best_rate, reduction = rate, red
    RESULTS["observer_rollup_events_per_sec"] = best_rate
    RESULTS["observer_rollup_byte_reduction"] = reduction
    assert best_rate > 0
    # The tree must absorb far more status bytes than it forwards.
    assert reduction > 1.0


def test_routing_round_rate():
    """bench_routing_rounds: backpressure decision rounds per second.

    One round is what a routed node does per dispatch tick: enqueue a
    burst across 4 commodities, score every (neighbor, commodity) pair
    under the max-weight rule over 4 neighbors with distance bias and
    tunnel occupancy, then drain the granted counts with ``take``.
    Pure-core — no engine, no timers — so the number isolates the
    bookkeeping the routing subsystem adds to the fast path.
    """
    from repro.algorithms.routing.core import BackpressurePolicy, RoutingCore

    neighbors = [f"10.0.0.{i}:7000" for i in range(1, 5)]
    commodities = [1, 2, 3, 4]
    payload = b"x" * 64
    rounds = 5_000

    def run() -> float:
        core = RoutingCore(BackpressurePolicy(), quantum=8)
        for i, label in enumerate(neighbors):
            core.note_neighbor(
                label,
                {c: (i + c) % 3 for c in commodities},
                dists={c: 1 for c in commodities},
            )
        moved = 0
        start = time.perf_counter()
        for round_no in range(rounds):
            for commodity in commodities:
                for _ in range(2):
                    core.enqueue(commodity, payload)
            tunnels = {label: round_no % 4 for label in neighbors}
            for decision in core.decide(
                tunnels, dists={c: 2 for c in commodities}
            ):
                moved += len(core.take(decision.commodity, decision.count))
        elapsed = time.perf_counter() - start
        assert moved > 0
        return rounds / elapsed

    RESULTS["routing_rounds_per_sec"] = _best_of(run)
    assert RESULTS["routing_rounds_per_sec"] > 0


def test_churn_convergence_rate():
    """bench_churn_convergence: the self-stabilization repair path.

    One seeded slotted run — 300 nodes starting from an adversarial
    line topology, a 20-second Poisson churn window with a flash crowd —
    yields two numbers:

    - ``churn_convergence_speed``: 1000 / convergence-round, i.e. how
      fast the SWIM view + ring corrector reach the sustained legal
      ring after the churn window closes.  The DES is deterministic, so
      this is an exact protocol property: a drop means a protocol
      change made repair *slower in rounds*, not that the machine was
      busy.
    - ``churn_slotted_node_rounds_per_sec``: node-ticks the slotted
      simulator executes per wall-clock second — the throughput that
      bounds how large a population the 10^4–10^5-node experiments can
      sweep.
    """
    from repro.experiments.fig_churn_convergence import run_slotted_point

    point = run_slotted_point(
        n_nodes=300, topology="line", seed=0,
        churn=True, churn_duration=20.0, max_rounds=400,
    )
    assert point.convergence_round is not None, (
        "slotted churn run never converged — repair is broken, not slow"
    )
    RESULTS["churn_convergence_speed"] = 1000.0 / point.convergence_round
    RESULTS["churn_slotted_node_rounds_per_sec"] = (
        point.stats.node_rounds / point.wall_seconds
    )
    assert RESULTS["churn_slotted_node_rounds_per_sec"] > 0


# ------------------------------------------------------------------- persist


def test_zz_write_bench_json_and_guard():
    """Persist this run into BENCH_core.json and guard against regression.

    Runs last (name-ordered within the module's natural order).  With
    ``PERF_GUARD=1`` the fresh numbers are compared against the *last
    committed* history entry and the test fails on a >25% drop in any
    metric; without it the file is just rewritten with the new entry.
    """
    assert len(RESULTS) == 14, f"expected all metrics collected, got {sorted(RESULTS)}"

    history: list[dict] = []
    if BENCH_FILE.exists():
        document = json.loads(BENCH_FILE.read_text())
        history = document.get("history", [])

    # Prefer a baseline measured under the same label (same machine
    # class — CI compares against committed CI numbers); otherwise
    # guard against the newest committed entry.
    same_label = [item for item in history if item["label"] == RUN_LABEL]
    baseline = same_label[-1] if same_label else (history[-1] if history else None)
    if baseline is not None and os.environ.get("PERF_GUARD"):
        failures = []
        for name, value in RESULTS.items():
            reference = baseline["results"].get(name)
            if reference and value < reference * (1.0 - GUARD_TOLERANCE):
                failures.append(
                    f"{name}: {value:,.0f} < {(1 - GUARD_TOLERANCE):.0%} of "
                    f"baseline {reference:,.0f} ({baseline['label']!r})"
                )
        assert not failures, "performance regression(s):\n" + "\n".join(failures)

    entry = {
        "label": RUN_LABEL,
        "python": platform.python_version(),
        "results": {name: round(value, 1) for name, value in sorted(RESULTS.items())},
    }
    # One entry per label: re-running a label updates it in place, so CI
    # reruns don't grow the history unboundedly.
    history = [item for item in history if item["label"] != RUN_LABEL] + [entry]
    BENCH_FILE.write_text(json.dumps({
        "schema": 1,
        "note": "all metrics are higher-is-better rates; see docs/performance.md",
        "guard_tolerance": GUARD_TOLERANCE,
        "history": history,
    }, indent=2) + "\n")
