"""Bench: Figs. 10, 12, 13 — topologies the ns-aware algorithm builds."""

from repro.experiments.fig12_13_topologies import run_topology


def test_fig12_10_node_tree(once):
    result = once(run_topology, 10)
    result.summary_table("Fig. 12 — 10-node ns-aware tree").print()
    print(result.dot)
    assert result.run.joined == 9
    assert len(result.run.tree_edges) == 9
    assert max(result.run.stresses) < 10


def test_fig10_30_node_north_america(once):
    result = once(run_topology, 30, north_america_only=True)
    result.summary_table("Fig. 10 — 30-node ns-aware tree").print()
    assert result.run.joined == 29
    assert len(result.run.tree_edges) == 29


def test_fig13_81_node_tree(once):
    result = once(run_topology, 81)
    result.summary_table("Fig. 13 — 81-node ns-aware tree").print()
    assert result.run.joined == 80
    assert len(result.run.tree_edges) == 80
    # The tree is not a star: load spreads over interior relays.
    degrees = {}
    for parent, child in result.run.tree_edges:
        degrees[parent] = degrees.get(parent, 0) + 1
    assert max(degrees.values()) < 20
    assert len(degrees) > 10  # many interior nodes
