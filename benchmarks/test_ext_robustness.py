"""Bench: extension — availability under controlled failures (Section 3.1)."""

from repro.experiments.ext_robustness import run_ext_robustness


def test_ext_robustness(once):
    result = once(run_ext_robustness)
    result.table().print()
    with_recovery = result.runs["with recovery"]
    without = result.runs["no recovery"]
    # Transparent detection + algorithm-level re-join restores service.
    assert with_recovery.final_availability >= 0.8
    # Without the algorithm's reaction the orphaned subtrees stay dark.
    assert without.final_availability <= 0.5
    assert with_recovery.final_availability > without.final_availability + 0.3
    # Even the transient dip is materially better with recovery.
    assert with_recovery.worst_dip() >= without.worst_dip()
