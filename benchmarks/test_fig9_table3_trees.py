"""Bench: Fig. 9 and Table 3 — the five-node tree construction session."""

import pytest

from repro.experiments.fig9_table3_trees import run_fig9


def test_fig9_table3(once):
    result = once(run_fig9)
    result.tree_table().print()
    result.throughput_table().print()
    result.table3().print()

    unicast, ns_aware = result.runs["unicast"], result.runs["ns-aware"]
    random_run = result.runs["random"]
    for run in result.runs.values():
        assert run.is_spanning_tree()

    # The paper's exact trees: all-unicast is the star, ns-aware is
    # S -> {A, D}, A -> {B, C}.
    assert all(parent == "S" for parent, _ in unicast.edges)
    assert sorted(ns_aware.edges) == [("A", "B"), ("A", "C"), ("S", "A"), ("S", "D")]

    # Table 3, ns-aware column: degrees (2,3,1,1,1) and stress
    # (1.0, 0.6, 1.0, 0.5, 1.0) for S,A,B,C,D.
    assert [ns_aware.degree[n] for n in "SABCD"] == [2, 3, 1, 1, 1]
    assert ns_aware.stress["S"] == pytest.approx(1.0)
    assert ns_aware.stress["A"] == pytest.approx(0.6)

    # Fig. 9 throughputs: ns-aware ~100 KB/s everywhere, unicast ~50.
    for node in "ABCD":
        assert ns_aware.throughput[node] == pytest.approx(100_000, rel=0.15)
        assert unicast.throughput[node] == pytest.approx(50_000, rel=0.15)
        assert ns_aware.throughput[node] > random_run.throughput[node] * 0.99
