"""Bench: Fig. 17 — control overhead vs network size (5-40 nodes)."""

from repro.experiments.fig17_overhead_vs_size import run_fig17


def test_fig17_overhead_vs_size(once):
    result = once(run_fig17)
    result.table().print()

    # Both overheads grow with network size ...
    assert result.aware_bytes[-1] > result.aware_bytes[0]
    assert result.federate_bytes[-1] > result.federate_bytes[0]
    # ... and sFederate grows at a slower rate than sAware.
    aware_growth = result.aware_bytes[-1] / max(result.aware_bytes[0], 1)
    federate_growth = result.federate_bytes[-1] / max(result.federate_bytes[0], 1)
    assert federate_growth < aware_growth
    # The 500 requirements per size were essentially all satisfied.
    assert all(done >= 450 for done in result.completed_sessions)
