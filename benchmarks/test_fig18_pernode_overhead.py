"""Bench: Fig. 18 — per-node control overhead (30 nodes, 22 minutes)."""

from repro.experiments.fig18_pernode_overhead import run_fig18


def test_fig18_pernode_overhead(once):
    result = once(run_fig18)
    result.table().print()
    concentration = result.federate_concentration()
    print(f"top-5 nodes carry {concentration * 100:.0f}% of sFederate bytes")

    federate = sorted((f for _, _, f in result.per_node), reverse=True)
    # A few hot nodes dominate the sFederate traffic ...
    assert concentration > 0.4
    # ... while a large group of nodes has very low overhead.
    quiet = sum(1 for volume in federate if volume < federate[0] * 0.05)
    assert quiet >= 10
