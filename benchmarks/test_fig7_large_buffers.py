"""Bench: Fig. 7 — bottleneck effects with large buffers."""

import pytest

from repro.experiments.common import KB
from repro.experiments.fig7_large_buffers import run_fig7


def test_fig7_large_buffers(once):
    result = once(run_fig7)
    result.table().print()
    a, b = result.phases["a"], result.phases["b"]

    # (a) with 10000-message buffers, D's 30 KB/s uplink affects only its
    # downstream links; everything upstream keeps running at ~200 KB/s.
    for edge in [("A", "B"), ("A", "C"), ("B", "D"), ("B", "F"), ("C", "D"), ("C", "G")]:
        assert a[edge] == pytest.approx(200 * KB, rel=0.1)
    for edge in [("D", "E"), ("E", "F"), ("E", "G")]:
        assert a[edge] == pytest.approx(30 * KB, rel=0.15)

    # (b) capping E->F at 15 KB/s leaves E->G untouched.
    assert b[("E", "F")] == pytest.approx(15 * KB, rel=0.15)
    assert b[("E", "G")] == pytest.approx(30 * KB, rel=0.15)
    for edge in [("A", "B"), ("A", "C"), ("B", "D"), ("B", "F"), ("C", "D"), ("C", "G")]:
        assert b[edge] == pytest.approx(200 * KB, rel=0.1)
