"""Bench: Fig. 5 — raw engine performance on a loopback chain."""

from repro.experiments.fig5_chain import PAPER_CHAIN_SIZES, run_fig5


def test_fig5_chain(once):
    result = once(run_fig5, sizes=PAPER_CHAIN_SIZES, duration=1.5)
    result.table().print()

    rates = {p.nodes: p.end_to_end for p in result.points}
    # Shape: end-to-end throughput declines monotonically with chain length
    # (modulo small measurement noise), as in the paper's curve.
    assert result.monotonically_declining()
    # The two-node configuration moves tens of MB/s through one engine hop.
    assert rates[2] > 10e6
    # A 32-node chain still sustains far more than typical 2004 wide-area
    # connection bandwidth (the paper's practical takeaway: 424 KB/s).
    assert rates[32] > 424e3
    # Total bandwidth (throughput x links) stays the same order of
    # magnitude across the sweep: the switch, not the source, saturates.
    totals = [p.total_bandwidth for p in result.points]
    assert max(totals) < 10 * min(totals)
