"""Churn-hardened membership: SWIM-style gossip dissemination.

The paper's observer hands every node a one-shot bootstrap sample; under
sustained churn that snapshot rots immediately.  This package keeps
``known_hosts`` alive instead: a SWIM-style epidemic membership protocol
(:mod:`repro.membership.protocol`) runs as an ordinary
:class:`~repro.core.algorithm.Algorithm`
(:mod:`repro.membership.swim`), a deterministic churn driver generates
Poisson arrival/departure schedules and adversarial initial topologies
(:mod:`repro.membership.churn`), and a slotted round-based simulator
(:mod:`repro.membership.slotted`) runs the identical protocol core at
10^4-10^5 nodes where full engines would not fit.
"""

from repro.membership.churn import (
    ChurnConfig,
    ChurnEvent,
    ChurnSchedule,
    FlashCrowd,
    adversarial_edges,
)
from repro.membership.protocol import (
    ALIVE,
    DEAD,
    LEFT,
    SUSPECT,
    Member,
    SwimConfig,
    SwimCore,
)
from repro.membership.swim import MEMBER_MSG, SwimMembershipAlgorithm

__all__ = [
    "ALIVE",
    "SUSPECT",
    "DEAD",
    "LEFT",
    "Member",
    "SwimConfig",
    "SwimCore",
    "MEMBER_MSG",
    "SwimMembershipAlgorithm",
    "ChurnConfig",
    "ChurnEvent",
    "ChurnSchedule",
    "FlashCrowd",
    "adversarial_edges",
]
