"""A slotted (round-based) membership simulator for 10^4-10^5 nodes.

The full discrete-event engines carry switches, buffers, QoS meters and
observer plumbing per node — perfect fidelity, but far too heavy to
instantiate a hundred thousand times.  ROADMAP item 3 therefore calls
for a *slotted DES kernel path* for node-count scale: this module is
that path for the membership/repair workload.  Time advances in protocol
periods ("rounds"); every packet sent in round ``r`` is delivered at
round ``r+1`` (one-period link latency, the natural SWIM operating
point).  Crucially it runs the **identical** protocol objects as the
live backends — :class:`~repro.membership.protocol.SwimCore` and the
ring arithmetic of :mod:`repro.algorithms.stabilize.ring` — so the
convergence curves measured here are about the protocol, not about a
re-implementation of it.

Per-round cost is O(alive + packets): successor pointers are maintained
event-incrementally (O(1) on joins, a rescan only at the nodes whose
successor died), and the ground-truth oracle keeps a sorted id list
under bisect.  Membership-view accuracy is audited on a node sample to
stay out of the O(n^2) trap.
"""

from __future__ import annotations

import random
from bisect import insort, bisect_left
from dataclasses import dataclass, field
from hashlib import sha1

from repro.core.ids import NodeId
from repro.errors import ConfigurationError
from repro.membership.churn import ChurnSchedule
from repro.membership import protocol as _proto
from repro.membership.protocol import SwimConfig, SwimCore

__all__ = ["SlottedStats", "RoundSample", "SlottedChurnSim", "slot_node_id"]

_SLOT_IDS: dict[int, NodeId] = {}


def slot_node_id(index: int) -> NodeId:
    """The canonical NodeId for slot ``index`` (supports up to 2^24 nodes).

    Interned through the protocol's wire caches so that every core's
    dict keys are the *same object*: identity-equal keys skip
    ``NodeId.__eq__`` entirely in dict lookups, which is worth ~20% of
    the whole simulator at 10^4 nodes.
    """
    node = _SLOT_IDS.get(index)
    if node is None:
        node = NodeId(
            f"10.{(index >> 16) & 255}.{(index >> 8) & 255}.{index & 255}", 7000
        )
        _SLOT_IDS[index] = node
        text = str(node)
        _proto._PARSE_CACHE[text] = node
        _proto._STR_CACHE[node] = text
    return node


# The slotted ring space is 48-bit — deliberately NOT the repo's 16-bit
# Chord space, which cannot even hold 10^5 distinct ids (and collides
# birthday-style from ~300 nodes, leaving the oracle with permanent
# ties that read as disruption).  Ids are SHA-1 hashes, cached: the
# successor bookkeeping would otherwise hash the same ids millions of
# times per run.
CIRCLE48 = 1 << 48
_RID_CACHE: dict[NodeId, int] = {}


def _rid(node: NodeId) -> int:
    rid = _RID_CACHE.get(node)
    if rid is None:
        digest = sha1(str(node).encode("ascii")).digest()
        rid = _RID_CACHE[node] = int.from_bytes(digest[:6], "big")
    return rid


def _dist(a: int, b: int) -> int:
    """Clockwise distance from position ``a`` to position ``b``."""
    return (b - a) % CIRCLE48


@dataclass
class RoundSample:
    """Metrics measured at the end of one round."""

    round: int
    alive: int
    disrupted: int          # alive nodes whose successor pointer is wrong
    view_error: float       # sampled mean fraction of view entries that
                            # are believed alive but actually dead
    packets: int            # packets delivered this round


@dataclass
class SlottedStats:
    """The outcome of one slotted run."""

    rounds: int = 0
    packets: int = 0
    node_rounds: int = 0                      # sum of alive nodes per round
    convergence_round: int | None = None      # first round of the stable suffix
    residual_disruption: float = 0.0          # mean disruption during churn
    reseeds: int = 0                          # isolation rescues performed
    samples: list[RoundSample] = field(default_factory=list)


class _Node:
    """One simulated node: a SwimCore plus its incremental ring pointer."""

    __slots__ = ("node_id", "ring_id", "core", "succ", "inbox")

    def __init__(self, node_id: NodeId, core: SwimCore) -> None:
        self.node_id = node_id
        self.ring_id = _rid(node_id)
        self.core = core
        self.succ: NodeId | None = None
        self.inbox: list[tuple[NodeId, dict]] = []

    def consider(self, candidate: NodeId) -> None:
        """O(1) successor update when ``candidate`` is believed alive."""
        if candidate == self.node_id:
            return
        if self.succ is None:
            self.succ = candidate
            return
        me = self.ring_id
        if _dist(me, _rid(candidate)) < _dist(me, _rid(self.succ)):
            self.succ = candidate

    def rescan(self) -> None:
        """O(view) successor recomputation after the old one was lost."""
        me = self.ring_id
        best, best_d = None, None
        for member in self.core._alive_list:
            d = _dist(me, _rid(member))
            if best_d is None or d < best_d:
                best, best_d = member, d
        self.succ = best


class SlottedChurnSim:
    """Run SWIM + ring repair over an adversarial start and a churn schedule."""

    def __init__(
        self,
        n_nodes: int,
        topology_edges: list[tuple[int, int]],
        config: SwimConfig | None = None,
        seed: int = 0,
        churn: ChurnSchedule | None = None,
        view_sample_nodes: int = 64,
        measure_every: int = 1,
        settle_rounds: int = 3,
        view_error_tol: float = 0.002,
        bootstrap_refresh: int = 25,
    ) -> None:
        if n_nodes < 2:
            raise ConfigurationError("slotted sim needs at least two nodes")
        # Bounded views are the default at slotted scale: full views
        # would cost O(n^2) member records across the population; the
        # per-core ring-proximity rank keeps each view converged on the
        # node's own arc, so the successor is always in view.  Timeouts
        # respect the slotted operating point of one *period* of link
        # latency: a direct ack returns two rounds after the ping, an
        # indirect verdict up to seven — tighter windows make every
        # probe a spurious suspicion and the rumour storm never ends.
        # sample_size 12: anti-entropy intake is the convergence-rate
        # limiter from sparse topologies (measured: 12 converges ~2.3x
        # faster than 4 at n=1000, with *fewer* total packets because
        # the run ends sooner).
        self.config = config if config is not None else SwimConfig(
            max_view=256,
            ping_timeout=2.5,
            probe_window=8.0,
            suspicion_mult=4.0,
            sample_size=12,
        )
        self.seed = seed
        self.rng = random.Random(seed)
        self.churn = churn
        self.view_sample_nodes = view_sample_nodes
        self.measure_every = measure_every
        self.settle_rounds = settle_rounds
        # Convergence = legal ring configuration (disrupted == 0)
        # sustained for ``settle_rounds``, with the sampled view error
        # below this tolerance.  Exact zero is the wrong bar under
        # churn: a handful of stale non-successor entries linger in
        # bounded views and drain only at uniform-probe speed
        # (~view_size rounds each), while the ring itself — the thing
        # repair decisions read — is already correct and stable.
        self.view_error_tol = view_error_tol
        # Periodic bootstrap refresh — the observer's role in the live
        # system: every node re-contacts a registry-known host every
        # ``bootstrap_refresh`` rounds (staggered by ring id).  Without
        # it, a crash that severs the weakly-connected adversarial
        # knowledge graph *early* — before anti-entropy has mixed —
        # splits the overlay into components that are each internally
        # converged and mutually unaware forever: no gossip protocol
        # heals a true partition without an out-of-band contact point.
        # ``0`` disables (pure-protocol runs).
        self.bootstrap_refresh = bootstrap_refresh

        self.nodes: dict[NodeId, _Node] = {}
        self.names: dict[str, NodeId] = {}
        self._truth_sorted: list[tuple[int, NodeId]] = []  # alive ground truth
        self._joined = 0
        for i in range(n_nodes):
            self._spawn(f"n{i}")
        # Seed the adversarial initial knowledge: "i knows j" plus the
        # reverse direction — a *weakly* connected knowledge graph is the
        # self-stabilization precondition, and SWIM learns senders
        # anyway, so symmetric seeding just skips the first exchange.
        index = [self.names[f"n{i}"] for i in range(n_nodes)]
        for i, j in topology_edges:
            a, b = self.nodes[index[i]], self.nodes[index[j]]
            a.core.note_member(b.node_id)
            b.core.note_member(a.node_id)
            a.consider(b.node_id)
            b.consider(a.node_id)
        # Churn events indexed by the round they fire in.
        self._churn_by_round: dict[int, list] = {}
        if churn is not None:
            for event in churn.events:
                r = int(event.at / self.config.period)
                self._churn_by_round.setdefault(r, []).append(event)

    # ------------------------------------------------------------ population

    def _spawn(self, name: str, contact: NodeId | None = None) -> _Node:
        node_id = slot_node_id(self._joined)
        self._joined += 1
        core = SwimCore(
            node_id,
            self.config,
            rng=random.Random(self.rng.getrandbits(64)),
            now=0.0,
            embed=_rid,
            circle=CIRCLE48,
        )
        node = _Node(node_id, core)
        self.nodes[node_id] = node
        self.names[name] = node_id
        insort(self._truth_sorted, (node.ring_id, node_id))
        if contact is not None:
            core.note_member(contact)
            node.consider(contact)
            core.announce_join()
        return node

    def _remove(self, name: str) -> _Node | None:
        node_id = self.names.get(name)
        node = self.nodes.pop(node_id, None) if node_id is not None else None
        if node is None:
            return None
        pos = bisect_left(self._truth_sorted, (node.ring_id, node_id))
        if pos < len(self._truth_sorted) and self._truth_sorted[pos][1] == node_id:
            del self._truth_sorted[pos]
        return node

    def _apply_churn(self, r: int, inboxes_next: dict) -> None:
        for event in self._churn_by_round.get(r, ()):
            if event.kind == "join":
                alive = list(self.nodes)
                contact = self.rng.choice(alive) if alive else None
                self._spawn(event.name, contact)
            elif event.kind == "crash":
                self._remove(event.name)
            else:  # graceful leave: final gossip blast, then gone
                node = self._remove(event.name)
                if node is not None:
                    now = r * self.config.period
                    for dest, packet in node.core.announce_leave(now):
                        inboxes_next.setdefault(dest, []).append(
                            (node.node_id, packet)
                        )

    # ------------------------------------------------------------------ run

    def run(self, max_rounds: int, stop_on_convergence: bool = True) -> SlottedStats:
        stats = SlottedStats()
        inboxes: dict[NodeId, list[tuple[NodeId, dict]]] = {}
        period = self.config.period
        last_churn_round = max(self._churn_by_round) if self._churn_by_round else -1
        stable_streak = 0
        disruption_during_churn: list[float] = []

        for r in range(max_rounds):
            now = r * period
            inboxes_next: dict[NodeId, list[tuple[NodeId, dict]]] = {}
            self._apply_churn(r, inboxes_next)

            delivered = 0
            nodes = self.nodes
            # Deliver round r-1's packets, collect outputs for round r+1.
            for dest, mail in inboxes.items():
                node = nodes.get(dest)
                if node is None:
                    continue  # crashed while the packets were in flight
                core = node.core
                for sender, packet in mail:
                    delivered += 1
                    for out_dest, out_packet in core.handle(sender, packet, now):
                        inboxes_next.setdefault(out_dest, []).append(
                            (dest, out_packet)
                        )
            # Protocol period tick for every alive node.
            refresh = self.bootstrap_refresh
            truth = self._truth_sorted
            for node_id, node in nodes.items():
                core = node.core
                for out_dest, out_packet in core.tick(now):
                    inboxes_next.setdefault(out_dest, []).append(
                        (node_id, out_packet)
                    )
                if refresh and (r + node.ring_id) % refresh == 0:
                    # Observer bootstrap refresh: learn one registered
                    # host.  Grave verdicts outrank the hint (the live
                    # adapter filters identically), so this cannot
                    # resurrect buried members — it only reconnects
                    # knowledge components churn may have severed.
                    contact = truth[self.rng.randrange(len(truth))][1]
                    if contact != node_id:
                        core.note_member(contact)
                        if core.is_alive(contact):
                            node.consider(contact)
                if not core.n_alive() and len(nodes) > 1:
                    # Isolated (every known member died or we were
                    # falsely buried cluster-wide): re-contact a seed,
                    # as a live node re-dials its bootstrap observer.
                    contact = self._truth_sorted[
                        self.rng.randrange(len(self._truth_sorted))
                    ][1]
                    if contact != node_id:
                        core.note_member(contact, force=True)
                        core.rejoin()
                        node.consider(contact)
                        stats.reseeds += 1
                self._fold_events(node)

            inboxes = inboxes_next
            stats.rounds = r + 1
            stats.packets += delivered
            stats.node_rounds += len(nodes)

            if (r + 1) % self.measure_every == 0:
                sample = self._measure(r, delivered)
                stats.samples.append(sample)
                if r <= last_churn_round:
                    disruption_during_churn.append(
                        sample.disrupted / max(1, sample.alive)
                    )
                converged = (
                    r > last_churn_round
                    and sample.disrupted == 0
                    and sample.view_error <= self.view_error_tol
                )
                stable_streak = stable_streak + 1 if converged else 0
                if stable_streak == self.settle_rounds:
                    stats.convergence_round = r + 1 - self.settle_rounds
                    if stop_on_convergence:
                        break

        if disruption_during_churn:
            stats.residual_disruption = sum(disruption_during_churn) / len(
                disruption_during_churn
            )
        return stats

    def _fold_events(self, node: _Node) -> None:
        """Feed membership conclusions into the incremental ring pointer."""
        core = node.core
        if not core.events:
            return
        for what, member, _inc in core.drain_events():
            if what in ("join", "alive"):
                node.consider(member)
            elif what in ("dead", "left", "suspect") and node.succ == member:
                node.rescan()

    # -------------------------------------------------------------- measuring

    def _measure(self, r: int, delivered: int) -> RoundSample:
        truth = self._truth_sorted
        n = len(truth)
        # Oracle successor: position i's successor is position i+1 (mod n).
        disrupted = 0
        for i, (_rid, node_id) in enumerate(truth):
            ideal = truth[(i + 1) % n][1]
            node = self.nodes[node_id]
            if node.succ != ideal and ideal != node_id:
                disrupted += 1
        # Sampled view accuracy: with bounded views a node never holds
        # the full truth, so the convergence-relevant error is believing
        # a *dead* node alive (stale entries poison repair decisions).
        view_error = 0.0
        sample_size = min(self.view_sample_nodes, n)
        if sample_size:
            total = 0.0
            sampled = self.rng.sample([t[1] for t in truth], sample_size)
            nodes = self.nodes
            for node_id in sampled:
                believed = nodes[node_id].core._alive_list
                if believed:
                    false_alive = sum(1 for m in believed if m not in nodes)
                    total += false_alive / len(believed)
            view_error = total / sample_size
        return RoundSample(
            round=r, alive=n, disrupted=disrupted,
            view_error=view_error, packets=delivered,
        )
