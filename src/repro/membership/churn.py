"""Deterministic sustained-churn schedules and adversarial topologies.

Production overlays live under *continuous* arrival and departure, not
one-shot faults.  This module generates that workload reproducibly: two
independent Poisson processes (exponential inter-event times from one
seeded ``random.Random``) for joins and departures, optional flash
crowds (a burst of joins at an instant), and a tracked ground-truth
population so departures always name a node that actually exists and
the experiment can judge protocol views against reality.

A :class:`ChurnSchedule` is backend-agnostic: :meth:`to_failure_schedule`
lowers it onto the existing declarative
:class:`~repro.sim.failure.FailureSchedule`, which arms against the DES
kernel (virtual time) or — via :class:`~repro.net.chaos.ChaosCluster` —
against real sockets (wall time), both now join/leave-capable.

:func:`adversarial_edges` builds the worst-case *initial knowledge*
topologies self-stabilization must escape from (Berns: convergence must
hold from **any** weakly-connected configuration): a line, a star, a
chain of near-isolated clusters, or a sparse random graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.failure import FailureSchedule

__all__ = [
    "FlashCrowd",
    "ChurnConfig",
    "ChurnEvent",
    "ChurnSchedule",
    "adversarial_edges",
]


@dataclass(frozen=True)
class FlashCrowd:
    """``size`` nodes arriving (near-)simultaneously at ``at``."""

    at: float
    size: int


@dataclass
class ChurnConfig:
    """Knobs of the churn generator (rates per second of run time)."""

    seed: int = 0
    duration: float = 30.0
    #: expected joins per second (Poisson arrival process)
    arrival_rate: float = 0.5
    #: expected departures per second (Poisson departure process)
    departure_rate: float = 0.5
    #: fraction of departures that are graceful leaves (rest crash)
    leave_fraction: float = 0.0
    flash_crowds: tuple[FlashCrowd, ...] = ()
    #: departures are suppressed when the population would drop below this
    min_population: int = 3
    #: only nodes present at t=0 plus churn joins may depart
    quiesce: float = 0.0  # no events scheduled after duration - quiesce


@dataclass(frozen=True)
class ChurnEvent:
    """One ground-truth churn action at one instant."""

    at: float
    kind: str  # "join" | "crash" | "leave"
    name: str  # symbolic node name (resolved by the backend at fire time)


@dataclass
class ChurnSchedule:
    """A reproducible churn workload plus its ground-truth bookkeeping."""

    events: list[ChurnEvent] = field(default_factory=list)
    initial: tuple[str, ...] = ()

    @classmethod
    def generate(cls, config: ChurnConfig, initial: list[str]) -> "ChurnSchedule":
        """Draw a schedule from ``config`` over the starting population."""
        if config.arrival_rate < 0 or config.departure_rate < 0:
            raise ConfigurationError("churn rates must be >= 0")
        rng = random.Random(config.seed)
        horizon = config.duration - config.quiesce
        events: list[ChurnEvent] = []

        # Candidate instants for each process, then a single merged,
        # population-aware replay so departures always have a victim.
        proposals: list[tuple[float, str]] = []
        for rate, kind in ((config.arrival_rate, "join"),
                           (config.departure_rate, "depart")):
            if rate <= 0:
                continue
            t = 0.0
            while True:
                t += rng.expovariate(rate)
                if t >= horizon:
                    break
                proposals.append((t, kind))
        for crowd in config.flash_crowds:
            for i in range(crowd.size):
                # stagger within a millisecond to keep fire times unique
                proposals.append((crowd.at + i * 1e-6, "join"))
        proposals.sort()

        population = list(initial)
        joined = 0
        for at, kind in proposals:
            if kind == "join":
                joined += 1
                name = f"churn-j{joined}"
                population.append(name)
                events.append(ChurnEvent(at, "join", name))
            else:
                if len(population) <= config.min_population:
                    continue  # suppressed: the overlay must not die out
                victim = population.pop(rng.randrange(len(population)))
                graceful = rng.random() < config.leave_fraction
                events.append(
                    ChurnEvent(at, "leave" if graceful else "crash", victim)
                )
        return cls(events=events, initial=tuple(initial))

    # ------------------------------------------------------------ bookkeeping

    def joins(self) -> list[ChurnEvent]:
        return [e for e in self.events if e.kind == "join"]

    def departures(self) -> list[ChurnEvent]:
        return [e for e in self.events if e.kind != "join"]

    def alive_after(self, t: float) -> set[str]:
        """Ground truth: names alive once every event at or before ``t`` fired."""
        alive = set(self.initial)
        for event in self.events:
            if event.at > t:
                break
            if event.kind == "join":
                alive.add(event.name)
            else:
                alive.discard(event.name)
        return alive

    def final_alive(self) -> set[str]:
        return self.alive_after(float("inf"))

    # ------------------------------------------------------------- lowering

    def to_failure_schedule(self) -> FailureSchedule:
        """Lower onto the backend-agnostic declarative fault schedule."""
        schedule = FailureSchedule()
        for event in self.events:
            if event.kind == "join":
                schedule.join_node(event.at, event.name)
            elif event.kind == "crash":
                schedule.kill_node(event.at, event.name)
            else:
                schedule.leave_node(event.at, event.name)
        return schedule


def adversarial_edges(
    kind: str, n: int, rng: random.Random | None = None
) -> list[tuple[int, int]]:
    """Directed knowledge/link edges of a worst-case initial topology.

    Returned as index pairs ``(i, j)`` meaning "node i knows/links node
    j"; every variant is weakly connected (the precondition of every
    self-stabilization guarantee) and as far from the sorted ring as the
    constraint allows:

    - ``line``: i -> i+1 only — diameter n-1, the slowest rumour mixer;
    - ``star``: hub -> all — the hub is a single point of knowledge;
    - ``clusters``: ~sqrt(n) internally-lined islands whose heads form a
      chain — locally dense, globally starved;
    - ``random``: a sparse random spanning tree plus a few chords.
    """
    if n < 1:
        raise ConfigurationError("topology needs at least one node")
    if kind == "line":
        return [(i, i + 1) for i in range(n - 1)]
    if kind == "star":
        return [(0, i) for i in range(1, n)]
    if kind == "clusters":
        size = max(2, int(round(n ** 0.5)))
        edges: list[tuple[int, int]] = []
        heads = list(range(0, n, size))
        for head in heads:
            for i in range(head, min(head + size, n) - 1):
                edges.append((i, i + 1))
        for a, b in zip(heads, heads[1:]):
            edges.append((a, b))
        return edges
    if kind == "random":
        if rng is None:
            rng = random.Random(0)
        edges = [(rng.randrange(i), i) for i in range(1, n)]
        for _ in range(n // 4):
            i, j = rng.randrange(n), rng.randrange(n)
            if i != j:
                edges.append((i, j))
        return edges
    raise ConfigurationError(f"unknown adversarial topology {kind!r}")
