"""The SWIM protocol core, independent of any transport.

SWIM [Das/Gupta/Motivala, DSN 2002] separates *failure detection*
(randomized ping / ping-req probing with a constant per-node message
load) from *dissemination* (membership updates piggybacked as rumours on
the probe traffic, each retransmitted O(log n) times), and uses
*incarnation numbers* so a falsely suspected node can refute the rumour
about itself.  This module implements that state machine as a pure,
deterministic object: :class:`SwimCore` consumes ``(sender, packet,
now)`` tuples and clock ticks, and returns the packets it wants sent as
``(dest, dict)`` pairs.  Nothing here touches an engine, a socket or a
kernel — which is exactly what lets the *same* protocol code run

- inside a full :class:`~repro.core.algorithm.Algorithm` on either
  engine backend (:mod:`repro.membership.swim`), and
- inside the slotted round simulator at 10^4-10^5 nodes
  (:mod:`repro.membership.slotted`).

Beyond classic SWIM, pings and acks also carry a small uniform *sample*
of the sender's alive view (the Tribler BuddyCast idiom): pure
event-rumours cannot spread knowledge from an adversarial initial
topology (a line knows only its neighbours and nothing ever changes
state), whereas view-sample anti-entropy doubles every node's horizon
each protocol period.

Wire packets are plain JSON-able dicts with one-letter keys::

    {"k": "p", "s": 7, "r": [...], "m": [...]}   ping
    {"k": "a", "s": 7, "r": [...], "m": [...]}   ack  (+"t" when relayed)
    {"k": "q", "s": 7, "t": "ip:port", "r": []}  ping-req (probe t for me)
    {"k": "g", "r": [...]}                       rumour blast (leave/refute)

Rumours are ``[node, state, incarnation]`` triples; samples are lists of
``ip:port`` strings.
"""

from __future__ import annotations

import heapq
import math
import random
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Callable

from repro.core.ids import NodeId

__all__ = ["ALIVE", "SUSPECT", "DEAD", "LEFT", "Member", "SwimConfig", "SwimCore"]

#: member states, in escalation order
ALIVE, SUSPECT, DEAD, LEFT = 0, 1, 2, 3

STATE_NAMES = ("alive", "suspect", "dead", "left")

# Interning caches: rumour/sample entries cross the wire as "ip:port"
# strings and are parsed/rendered once per piggybacked entry, which at
# slotted-simulator scale (10^4-10^5 nodes) dominates the round cost.
# Bounded like the codec caches in repro.core.ids.
_PARSE_CACHE: dict[str, NodeId] = {}
_STR_CACHE: dict[NodeId, str] = {}
_INTERN_LIMIT = 1 << 18


def _parse(text: str) -> NodeId:
    node = _PARSE_CACHE.get(text)
    if node is None:
        node = NodeId.parse(text)
        if len(_PARSE_CACHE) < _INTERN_LIMIT:
            _PARSE_CACHE[text] = node
    return node


def _text(node: NodeId) -> str:
    text = _STR_CACHE.get(node)
    if text is None:
        text = str(node)
        if len(_STR_CACHE) < _INTERN_LIMIT:
            _STR_CACHE[node] = text
    return text


@dataclass
class SwimConfig:
    """Tunables of the membership protocol (times in seconds)."""

    #: protocol period T: one randomized probe per period
    period: float = 1.0
    #: how long a direct ping may stay unacked before indirect probing
    ping_timeout: float = 0.35
    #: number of relays asked to ping-req an unresponsive target
    indirect_probes: int = 2
    #: suspicion window, as a multiple of ``period`` — an unrefuted
    #: suspect is declared dead after ``suspicion_mult * period``
    suspicion_mult: float = 3.0
    #: rumours piggybacked per outgoing ping/ack
    piggyback: int = 12
    #: each rumour is retransmitted ``ceil(retransmit_mult * log2(n))`` times
    retransmit_mult: float = 3.0
    #: alive-view sample entries carried by each ping/ack (anti-entropy)
    sample_size: int = 4
    #: total probe window in seconds (direct + indirect) before a target
    #: is suspected; ``None`` means ``max(period, 2 * ping_timeout)``.
    #: Raise it when link latency is a whole protocol period (the
    #: slotted simulator) so the indirect verdict can make it home.
    probe_window: float | None = None
    #: hard bound on the membership view (alive + suspect members)
    max_view: int = 4096
    #: how long dead/left graves are retained to block stale rumours.
    #: Graves live in a separate bounded store so immunization memory
    #: never competes with live members for view slots — pruning graves
    #: while stale-alive gossip still circulates makes the staleness
    #: endemic (a rotating susceptible population), so keep this well
    #: above the rumour die-out time.
    dead_retention: float = 600.0
    #: hard bound on retained graves (oldest evicted first)
    grave_capacity: int = 4096


@dataclass
class Member:
    """What one node believes about one other node."""

    __slots__ = ("state", "incarnation", "since", "deadline")

    state: int
    incarnation: int
    since: float        # time of the last state change
    deadline: float     # suspicion expiry (only meaningful while SUSPECT)


@dataclass
class _Probe:
    """An in-flight failure-detection probe awaiting its ack."""

    __slots__ = ("target", "direct_deadline", "final_deadline", "indirect_sent")

    target: NodeId
    direct_deadline: float
    final_deadline: float
    indirect_sent: bool


class _RumorQueue:
    """Bounded-retransmit rumour buffer, freshest-first.

    SWIM prefers the least-transmitted rumour when filling piggyback
    space.  A lazy max-heap keyed on remaining budget gives O(log m)
    take/decrement without rescanning the queue per packet.
    """

    __slots__ = ("_rumors", "_heap", "_tick")

    def __init__(self) -> None:
        self._rumors: dict[NodeId, list] = {}  # node -> [state, inc, remaining]
        self._heap: list[tuple[int, int, NodeId]] = []
        self._tick = 0

    def __len__(self) -> int:
        return len(self._rumors)

    def put(self, node: NodeId, state: int, inc: int, budget: int) -> None:
        self._rumors[node] = [state, inc, budget]
        self._tick += 1
        heapq.heappush(self._heap, (-budget, self._tick, node))

    def discard(self, node: NodeId) -> None:
        self._rumors.pop(node, None)

    def take(self, k: int) -> list[list]:
        """Up to ``k`` distinct rumours as wire triples, decrementing budgets."""
        if not self._rumors or k <= 0:
            return []
        out: list[list] = []
        taken: set[NodeId] = set()
        repush: list[tuple[int, int, NodeId]] = []
        heap = self._heap
        while heap and len(out) < k:
            neg, tick, node = heapq.heappop(heap)
            rumor = self._rumors.get(node)
            if rumor is None or rumor[2] != -neg or node in taken:
                continue  # stale heap entry (rumor replaced or already taken)
            out.append([_text(node), rumor[0], rumor[1]])
            taken.add(node)
            rumor[2] -= 1
            if rumor[2] > 0:
                self._tick += 1
                repush.append((-rumor[2], self._tick, node))
            else:
                del self._rumors[node]
        for entry in repush:
            heapq.heappush(heap, entry)
        return out


class SwimCore:
    """The deterministic SWIM state machine for one node.

    The caller owns time and the wire: call :meth:`tick` whenever the
    clock advances (any frequency; the period fires internally) and
    :meth:`handle` for every received packet.  Both return a list of
    ``(dest, packet)`` pairs to transmit.  State changes are appended to
    :attr:`events` as ``(what, node, incarnation)`` tuples for the host
    to drain (``known_hosts`` updates, telemetry, assertions).
    """

    def __init__(
        self,
        node_id: NodeId,
        config: SwimConfig | None = None,
        rng: random.Random | None = None,
        now: float = 0.0,
        rank: "Callable[[NodeId], float] | None" = None,
        embed: "Callable[[NodeId], int] | None" = None,
        circle: int = 0,
    ) -> None:
        self.node_id = node_id
        self.config = config if config is not None else SwimConfig()
        self.rng = rng if rng is not None else random.Random(0)
        #: optional position of each node on a circle of size ``circle``
        #: (a consistent-hashing ring).  When set, the anti-entropy
        #: samples sent to a peer are half *directed* — the view entries
        #: nearest the peer's position, found by bisect over a sorted
        #: alive list — and half uniform for global mixing.  This is the
        #: T-Man exchange rule: uniform samples alone deliver a constant
        #: number of new names per round (linear view growth), directed
        #: samples let every node home in on its own neighbourhood in
        #: O(log n) rounds.
        self.embed = embed
        self.circle = circle
        self._pos_sorted: list[tuple[int, NodeId]] = []  # alive, by position
        #: optional view-retention bias: when the bounded view is full, a
        #: newcomer with a *smaller* rank evicts the worst-ranked alive
        #: member (T-Man-style proximity selection).  With an embedding,
        #: the rank defaults to symmetric ring proximity, so the members
        #: worth links are exactly the members the bounded view retains;
        #: without a rank the view is first-come and full views refuse
        #: newcomers.
        if rank is None and embed is not None:
            half = circle // 2

            def rank(member: NodeId, _me: int = embed(node_id) % circle) -> float:
                d = (embed(member) - _me) % circle
                return float(d if d <= half else circle - d)

        self.rank = rank
        self._rank_heap: list[tuple[float, NodeId]] = []
        self.incarnation = 0
        self.view: dict[NodeId, Member] = {}
        self.events: list[tuple[str, NodeId, int]] = []
        self.counters: dict[str, int] = {
            "pings": 0, "acks": 0, "ping_reqs": 0, "rumors_rx": 0,
            "suspects": 0, "refutes": 0, "deaths": 0, "joins": 0,
            "leaves": 0, "view_overflow": 0,
        }
        self._rumors = _RumorQueue()
        #: dead/left members: node -> [state, incarnation, since].
        #: Insertion-ordered by death time (refreshed entries re-append),
        #: so pruning and capacity eviction pop from the front.
        self._graves: dict[NodeId, list] = {}
        self._alive_list: list[NodeId] = []
        self._alive_pos: dict[NodeId, int] = {}
        self._pending: dict[int, _Probe] = {}
        self._suspects: dict[NodeId, None] = {}  # insertion-ordered set
        self._relay: dict[int, tuple[NodeId, int, NodeId, float]] = {}
        self._seq = 0
        self._probe_flip = False
        self._next_period = now  # first tick probes immediately
        self._next_prune = now + self.config.dead_retention

    # ------------------------------------------------------------ inspection

    def alive_members(self) -> list[NodeId]:
        """Members currently believed alive (excluding this node)."""
        return list(self._alive_list)

    def n_alive(self) -> int:
        return len(self._alive_list)

    def is_alive(self, node: NodeId) -> bool:
        return node in self._alive_pos

    def state_of(self, node: NodeId) -> int | None:
        member = self.view.get(node)
        if member is not None:
            return member.state
        grave = self._graves.get(node)
        return None if grave is None else grave[0]

    def drain_events(self) -> list[tuple[str, NodeId, int]]:
        events, self.events = self.events, []
        return events

    # ------------------------------------------------------------- seeding

    def note_member(self, node: NodeId, force: bool = False) -> None:
        """Seed knowledge of ``node`` (bootstrap/contact), without a rumour.

        ``force`` pops an existing grave first — the desperation path of
        an isolated node re-contacting its bootstrap seeds, where "I
        believe every seed is dead" must not beat "I have nobody else".
        """
        if node == self.node_id or node in self.view:
            return
        if node in self._graves:
            if not force:
                return
            del self._graves[node]
        self._apply(node, ALIVE, 0, self._next_period, rumor=False)

    def announce_join(self) -> None:
        """Start gossiping this node's own arrival (piggybacked alive rumour)."""
        self._queue_rumor(self.node_id, ALIVE, self.incarnation)

    def rejoin(self) -> None:
        """Re-announce after isolation or a false death.

        Bumps the incarnation first (the Serf rejoin idiom): the cluster
        may hold a grave for us at our old incarnation, and only a
        strictly newer alive rumour can reopen it.
        """
        self.incarnation += 1
        self._queue_rumor(self.node_id, ALIVE, self.incarnation)

    # ---------------------------------------------------------------- clock

    def tick(self, now: float) -> list[tuple[NodeId, dict]]:
        """Advance timers; returns the packets to transmit."""
        out: list[tuple[NodeId, dict]] = []
        self._expire_probes(now, out)
        self._expire_suspects(now)
        if now >= self._next_period:
            # Drift-free cadence, but never schedule into the past: a
            # host that stalled longer than one period resumes cleanly.
            self._next_period = max(self._next_period + self.config.period,
                                    now + 1e-9)
            if now >= self._next_prune:
                # Amortized: one grave sweep per retention window.
                self._next_prune = now + self.config.dead_retention
                self._prune_graves(now)
            if self._relay:
                self._relay = {
                    seq: entry for seq, entry in self._relay.items()
                    if entry[3] > now
                }
            self._probe_next(now, out)
        return out

    def _probe_next(self, now: float, out: list) -> None:
        if not self._alive_list:
            return
        target = self._probe_target()
        seq = self._next_seq()
        window = self.config.probe_window
        if window is None:
            window = max(self.config.period, self.config.ping_timeout * 2)
        self._pending[seq] = _Probe(
            target,
            now + self.config.ping_timeout,
            now + window,
            False,
        )
        self.counters["pings"] += 1
        out.append((target, self._packet("p", seq, target)))

    def _probe_target(self) -> NodeId:
        """Next failure-detection target.

        Uniform choice alone means a crashed *successor* evades
        re-probing for O(view) periods — the one member whose death the
        ring corrector must learn about promptly.  With an embedding,
        every other probe therefore goes to the clockwise-adjacent
        member (the Chord stabilization heartbeat); the rest stay
        uniform so global detection keeps SWIM's expected bounds.
        """
        if self.embed is not None and self._pos_sorted:
            self._probe_flip = not self._probe_flip
            if self._probe_flip:
                pos = self._pos_sorted
                i = bisect_left(pos, (self.embed(self.node_id) % self.circle,
                                      self.node_id))
                return pos[i % len(pos)][1]
        return self.rng.choice(self._alive_list)

    def _expire_probes(self, now: float, out: list) -> None:
        if not self._pending:
            return
        done: list[int] = []
        for seq, probe in self._pending.items():
            if not probe.indirect_sent and now >= probe.direct_deadline:
                probe.indirect_sent = True
                relays = [
                    n for n in self.rng.sample(
                        self._alive_list,
                        min(len(self._alive_list), self.config.indirect_probes + 1),
                    )
                    if n != probe.target
                ][: self.config.indirect_probes]
                for relay in relays:
                    self.counters["ping_reqs"] += 1
                    out.append((relay, {
                        "k": "q", "s": seq, "t": _text(probe.target),
                        "r": self._rumors.take(self.config.piggyback),
                    }))
            if now >= probe.final_deadline:
                done.append(seq)
        for seq in done:
            probe = self._pending.pop(seq)
            self._suspect(probe.target, now)

    def _expire_suspects(self, now: float) -> None:
        if not self._suspects:
            return
        expired = [
            node for node in self._suspects
            if (member := self.view.get(node)) is not None
            and member.state == SUSPECT and now >= member.deadline
        ]
        for node in expired:
            member = self.view[node]
            self._apply(node, DEAD, member.incarnation, now)

    def _prune_graves(self, now: float) -> None:
        retention = self.config.dead_retention
        stale = []
        for node, grave in self._graves.items():
            if now - grave[2] <= retention:
                break  # insertion-ordered by death time: rest are fresh
            stale.append(node)
        for node in stale:
            del self._graves[node]

    def _grave_add(self, node: NodeId, state: int, inc: int, now: float) -> None:
        self._graves.pop(node, None)  # re-append keeps death-time order
        self._graves[node] = [state, inc, now]
        if len(self._graves) > self.config.grave_capacity:
            self._graves.pop(next(iter(self._graves)))

    # ---------------------------------------------------------------- wire in

    def handle(self, sender: NodeId, packet: dict, now: float) -> list[tuple[NodeId, dict]]:
        """Process one received packet; returns the packets to transmit."""
        out: list[tuple[NodeId, dict]] = []
        if sender != self.node_id and sender not in self.view:
            grave = self._graves.get(sender)
            if grave is None:
                self._apply(sender, ALIVE, 0, now, rumor=False)
            else:
                # A packet from the grave is usually in-flight traffic
                # from a freshly-dead node — but it may be a falsely
                # declared node that never heard its own obituary.  Send
                # the obituary back: a live sender will refute it with a
                # bumped incarnation, closing SWIM's refutation loop
                # even for nodes the suspicion rumour never reached.
                out.append((sender, {
                    "k": "g", "r": [[_text(sender), grave[0], grave[1]]],
                }))
        rumors = packet.get("r")
        if rumors:
            self._apply_rumors(rumors, now)
        sample = packet.get("m")
        if sample:
            self._apply_sample(sample, now)
        kind = packet.get("k")
        if kind == "p":
            self.counters["acks"] += 1
            out.append((sender, self._packet("a", packet["s"], sender)))
        elif kind == "a":
            self._on_ack(sender, packet, now, out)
        elif kind == "q":
            target = _parse(packet["t"])
            rseq = self._next_seq()
            self._relay[rseq] = (
                sender, packet["s"], target, now + 2 * self.config.period
            )
            out.append((target, self._packet("p", rseq, target)))
        # "g" carries rumours only; already applied above.
        return out

    def _on_ack(self, sender: NodeId, packet: dict, now: float, out: list) -> None:
        seq = packet["s"]
        relay = self._relay.pop(seq, None)
        if relay is not None:
            # We pinged on someone's behalf; forward the verdict home.
            origin, origin_seq, target, _expiry = relay
            ack = self._packet("a", origin_seq, origin)
            ack["t"] = _text(target)
            out.append((origin, ack))
            return
        self._pending.pop(seq, None)

    def _apply_rumors(self, rumors: list, now: float) -> None:
        self.counters["rumors_rx"] += len(rumors)
        for text, state, inc in rumors:
            self._apply(_parse(text), state, inc, now)

    def _apply_sample(self, sample: list, now: float) -> None:
        for text in sample:
            node = _parse(text)
            if (node != self.node_id and node not in self.view
                    and node not in self._graves):
                # The grave check is the immunization that keeps
                # stale-alive gossip from becoming endemic: a sample
                # naming a member we know is dead is simply stale.
                self._apply(node, ALIVE, 0, now, rumor=False)

    # --------------------------------------------------------------- the FSM

    def _apply(
        self, node: NodeId, state: int, inc: int, now: float, rumor: bool = True
    ) -> bool:
        """Apply one membership assertion under SWIM's override rules."""
        if node == self.node_id:
            self._about_self(state, inc)
            return False
        grave = self._graves.get(node)
        if grave is not None:
            if state == ALIVE and inc > grave[1]:
                # Rejoin: the node came back under a newer incarnation.
                del self._graves[node]
            elif state >= DEAD and inc > grave[1]:
                grave[1] = inc  # refresh immunity; no event, no re-rumour
                return False
            else:
                return False
        member = self.view.get(node)
        if member is None:
            # A suspicion about a node we never knew is not actionable —
            # and treating it as knowledge creates an endemic rumour
            # cycle: suspect -> dead -> grave pruned -> reinfected by
            # the same stale rumour, forever.
            if state == SUSPECT:
                return False
            if state >= DEAD:
                # Unknown-and-dead: keep the grave (it blocks stale
                # alive gossip) but do NOT re-rumour — we never believed
                # the node alive, so nothing changed that peers need to
                # hear from us, and re-queueing with a fresh budget is
                # what keeps rumours about long-dead nodes endemic.
                self._grave_add(node, state, inc, now)
                self.counters["deaths" if state == DEAD else "leaves"] += 1
                self.events.append((STATE_NAMES[state], node, inc))
                return True
            if not self._admit_room(node, now):
                return False
            self.view[node] = Member(state, inc, now, 0.0)
            self._alive_add(node)
            self.counters["joins"] += 1
            self.events.append(("join", node, inc))
            if rumor:
                self._queue_rumor(node, state, inc)
            return True
        if not _overrides(state, inc, member.state, member.incarnation):
            return False
        was_alive = member.state == ALIVE
        if state >= DEAD:
            del self.view[node]
            if was_alive:
                self._alive_remove(node)
            self._suspects.pop(node, None)
            self._grave_add(node, state, inc, now)
            self.counters["deaths" if state == DEAD else "leaves"] += 1
            self.events.append((STATE_NAMES[state], node, inc))
            if rumor:
                self._queue_rumor(node, state, inc)
            return True
        member.state, member.incarnation, member.since = state, inc, now
        if state == ALIVE:
            if not was_alive:
                self._alive_add(node)
                self._suspects.pop(node, None)
                self.counters["refutes"] += 1
                self.events.append(("alive", node, inc))
        else:  # SUSPECT
            member.deadline = now + self._suspicion_timeout()
            self._suspects[node] = None
            if was_alive:
                self._alive_remove(node)
            self.counters["suspects"] += 1
            self.events.append(("suspect", node, inc))
        if rumor:
            self._queue_rumor(node, state, inc)
        return True

    def _about_self(self, state: int, inc: int) -> None:
        """Someone is spreading a rumour about *us*; refute if damaging."""
        if state != ALIVE and inc >= self.incarnation:
            self.incarnation = inc + 1
            self.counters["refutes"] += 1
            self.events.append(("refute", self.node_id, self.incarnation))
            self._queue_rumor(self.node_id, ALIVE, self.incarnation)

    def _suspect(self, node: NodeId, now: float) -> None:
        """A probe of ours went unanswered: raise local suspicion."""
        member = self.view.get(node)
        if member is not None and member.state == ALIVE:
            self._apply(node, SUSPECT, member.incarnation, now)

    def fail_fast(self, node: NodeId, now: float) -> None:
        """Direct evidence of failure (loud link error): suspect at once."""
        self._suspect(node, now)

    # ------------------------------------------------------------ leave/blast

    def announce_leave(self, now: float) -> list[tuple[NodeId, dict]]:
        """Gossip a graceful departure; the host stops the node afterwards."""
        self.incarnation += 1
        blast = {"k": "g",
                 "r": [[_text(self.node_id), LEFT, self.incarnation]]
                 + self._rumors.take(self.config.piggyback)}
        fanout = min(len(self._alive_list), max(3, self.config.piggyback // 2))
        return [(n, blast) for n in self.rng.sample(self._alive_list, fanout)]

    # ---------------------------------------------------------------- helpers

    def _packet(self, kind: str, seq: int, dest: NodeId | None = None) -> dict:
        return {
            "k": kind, "s": seq,
            "r": self._rumors.take(self.config.piggyback),
            "m": self._view_sample(dest),
        }

    def _view_sample(self, dest: NodeId | None = None) -> list[str]:
        k = self.config.sample_size
        alive = self._alive_list
        if not alive or k <= 0:
            return []
        if len(alive) <= k:
            return [_text(n) for n in alive]
        if self.embed is None or dest is None:
            return [_text(n) for n in self.rng.sample(alive, k)]
        # Directed half: the entries the *destination* most wants —
        # those ring-nearest to it — via bisect over the sorted alive
        # positions; uniform half for global mixing (pure greedy
        # exchange can silo the overlay).
        picked = self._nearest(dest, k - k // 2)
        # Top up with random picks; duplicates are just skipped, which
        # is far cheaper than random.sample's bookkeeping on this path.
        randrange = self.rng.randrange
        m = len(alive)
        for _ in range(k):
            if len(picked) >= k:
                break
            n = alive[randrange(m)]
            if n != dest:
                picked.add(n)
        return [_text(n) for n in picked]

    def _nearest(self, dest: NodeId, k: int) -> set[NodeId]:
        """The ``k`` alive members ring-nearest to ``dest`` (two-pointer)."""
        pos = self._pos_sorted
        m = len(pos)
        if not m or k <= 0:
            return set()
        circle = self.circle
        target = self.embed(dest) % circle
        right = bisect_left(pos, (target, dest))
        left = right - 1
        out: set[NodeId] = set()
        steps = 0
        while len(out) < k and steps < m:
            d_right = (pos[right % m][0] - target) % circle
            d_left = (target - pos[left % m][0]) % circle
            if d_right <= d_left:
                node = pos[right % m][1]
                right += 1
            else:
                node = pos[left % m][1]
                left -= 1
            steps += 1
            if node != dest:
                out.add(node)
        return out

    def _queue_rumor(self, node: NodeId, state: int, inc: int) -> None:
        budget = max(3, math.ceil(
            self.config.retransmit_mult * math.log2(max(2, len(self._alive_list) + 1))
        ))
        self._rumors.put(node, state, inc, budget)

    def _suspicion_timeout(self) -> float:
        return self.config.suspicion_mult * self.config.period

    def _admit_room(self, newcomer: NodeId, now: float) -> bool:
        """Make room for ``newcomer`` under ``max_view``; False if full."""
        if len(self.view) < self.config.max_view:
            return True
        # The refusal path must be O(1)-ish: at view saturation every
        # unknown sample/rumour entry lands here, so anything that
        # scans the view per refusal turns the protocol quadratic.
        if self.rank is not None and self._evict_worse_than(newcomer):
            return True
        self.counters["view_overflow"] += 1
        return False

    def _evict_worse_than(self, newcomer: NodeId) -> bool:
        """Drop the worst-ranked alive member if ``newcomer`` ranks better.

        The heap is lazy: entries for members that died, were evicted or
        got re-ranked are discarded on pop.  Forgetting an alive member
        is not a belief change, so no rumour and no event fire.
        """
        heap = self._rank_heap
        while heap:
            neg_rank, node = heap[0]
            member = self.view.get(node)
            if member is None or member.state != ALIVE:
                heapq.heappop(heap)
                continue
            if -neg_rank <= self.rank(newcomer):
                return False  # the newcomer is no improvement
            heapq.heappop(heap)
            del self.view[node]
            self._alive_remove(node)
            self._rumors.discard(node)
            return True
        return False

    def _alive_add(self, node: NodeId) -> None:
        if node not in self._alive_pos:
            self._alive_pos[node] = len(self._alive_list)
            self._alive_list.append(node)
            if self.rank is not None:
                heapq.heappush(self._rank_heap, (-self.rank(node), node))
            if self.embed is not None:
                insort(self._pos_sorted, (self.embed(node) % self.circle, node))

    def _alive_remove(self, node: NodeId) -> None:
        pos = self._alive_pos.pop(node, None)
        if pos is None:
            return
        last = self._alive_list.pop()
        if last != node:
            self._alive_list[pos] = last
            self._alive_pos[last] = pos
        if self.embed is not None:
            entry = (self.embed(node) % self.circle, node)
            i = bisect_left(self._pos_sorted, entry)
            if i < len(self._pos_sorted) and self._pos_sorted[i] == entry:
                del self._pos_sorted[i]

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq


def _overrides(state: int, inc: int, cur_state: int, cur_inc: int) -> bool:
    """SWIM's rumour precedence (Section 4.2), with rejoin semantics.

    - ``alive`` needs a strictly newer incarnation, whatever the current
      state — this is both refutation (over suspect) and rejoin (over a
      dead tombstone, after the returning node bumps past it).
    - ``suspect`` overrides alive at the same incarnation (that is the
      whole point of suspicion) but never a tombstone.
    - ``dead``/``left`` override alive/suspect at the same incarnation,
      but not an already-final tombstone, and never a *newer* alive.
    """
    if state == ALIVE:
        return inc > cur_inc
    if state == SUSPECT:
        if cur_state == ALIVE:
            return inc >= cur_inc
        if cur_state == SUSPECT:
            return inc > cur_inc
        return False
    # DEAD / LEFT
    return cur_state < DEAD and inc >= cur_inc
