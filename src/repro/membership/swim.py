"""SWIM membership as an ordinary iOverlay :class:`Algorithm`.

The adapter owns everything the pure protocol core refuses to know
about: message framing (one algorithm type, JSON fields), the engine
timer that drives protocol periods, feeding discoveries and deaths into
``known_hosts`` (so every gossip/dissemination primitive sees a *live*
host set instead of the observer's one-shot bootstrap sample), the
``ioverlay_membership_*`` telemetry counters and the membership trace
events.  Loud link failures reported by the engine (``BROKEN_LINK``)
short-circuit the probe cycle via :meth:`SwimCore.fail_fast`.
"""

from __future__ import annotations

import random

from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import ALGORITHM_TYPE_BASE, MsgType
from repro.membership.protocol import DEAD, LEFT, SwimConfig, SwimCore
from repro.telemetry.tracing import EventType

__all__ = ["MEMBER_MSG", "SwimMembershipAlgorithm"]

#: the single wire type all SWIM packets travel under
MEMBER_MSG = ALGORITHM_TYPE_BASE + 40

#: timer token driving protocol periods (two ticks per period)
_TICK_TOKEN = 40

_EVENT_TRACE = {
    "join": EventType.MEMBER_JOIN,
    "alive": EventType.MEMBER_REFUTE,
    "refute": EventType.MEMBER_REFUTE,
    "suspect": EventType.MEMBER_SUSPECT,
    "dead": EventType.MEMBER_DEAD,
    "left": EventType.MEMBER_LEFT,
}

_EVENT_COUNTER = {
    "join": "joins",
    "alive": "refutes",
    "refute": "refutes",
    "suspect": "suspects",
    "dead": "deaths",
    "left": "leaves",
}


class SwimMembershipAlgorithm(Algorithm):
    """Keep ``known_hosts`` converged with the live overlay under churn."""

    def __init__(
        self,
        config: SwimConfig | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        self.swim_config = config if config is not None else SwimConfig()
        self.core: SwimCore | None = None
        self._boot_hosts: set[NodeId] = set()
        self._counters = None
        self._proto_counter = None
        self._proto_seen: dict[str, int] = {}
        self._view_gauge = None
        self._tracer = None
        self.register(MEMBER_MSG, self._on_member_msg)

    # ------------------------------------------------------------- lifecycle

    def view_embedding(self):
        """Optional ``(embed, circle)`` ring embedding for bounded-view
        retention and directed anti-entropy samples (``SwimCore.embed``)."""
        return None

    def on_start(self) -> None:
        embedding = self.view_embedding()
        embed, circle = embedding if embedding is not None else (None, 0)
        self.core = SwimCore(
            self.node_id,
            self.swim_config,
            rng=random.Random(self.rng.random()),
            now=self.engine.now(),
            embed=embed,
            circle=circle,
        )
        self._boot_hosts = set(self.known_hosts)
        for host in self.known_hosts:
            self.core.note_member(host)
        self.core.announce_join()
        self._bind_telemetry()
        self.engine.set_timer(self.swim_config.period / 2, _TICK_TOKEN)

    def on_bootstrapped(self) -> None:
        if self.core is None:
            return
        for host in list(self.known_hosts):
            if self.core.state_of(host) in (DEAD, LEFT):
                # Bootstrap replies are hints from an observer whose
                # liveness view can lag (a BOOT in flight at the moment
                # of death resurrects the sender there).  SWIM's verdict
                # on a buried member outranks the hint.
                self.known_hosts.discard(host)
            else:
                self._boot_hosts.add(host)
                self.core.note_member(host)

    def on_timer(self, token: int) -> Disposition | None:
        if token != _TICK_TOKEN or self.core is None:
            return Disposition.DONE
        now = self.engine.now()
        self._transmit(self.core.tick(now))
        if not self.core.n_alive() and self._boot_hosts:
            # Isolated: every member we knew is buried.  Re-contact the
            # bootstrap seeds and re-announce under a bumped incarnation
            # so a cluster that falsely buried us reopens the grave.
            for host in self._boot_hosts:
                self.core.note_member(host, force=True)
            self.core.rejoin()
        self._drain(now)
        self.engine.set_timer(self.swim_config.period / 2, _TICK_TOKEN)
        return Disposition.DONE

    def on_broken_link(self, msg: Message) -> Disposition | None:
        fields = msg.fields()
        peer = NodeId.parse(fields["peer"])
        # Only an outbound failure ("down": our dial or send toward the
        # peer failed) is crash evidence.  An upstream teardown ("up" on
        # sim, "both" on the net backend) is ambiguous — the peer may
        # simply have disconnected deliberately (e.g. the ring corrector
        # reshaping its links) — and suspecting it would start a
        # suspicion/refutation flap; the probe cycle decides instead.
        if self.core is not None and fields.get("direction") == "down":
            self.core.fail_fast(peer, self.engine.now())
            self._drain(self.engine.now())
        # Do NOT drop the peer from known_hosts here (the base class
        # default): suspicion + refutation decide, not one torn link.
        return Disposition.DONE

    def announce_leave(self) -> None:
        """Gossip a graceful departure before the host stops this node."""
        if self.core is not None:
            self._transmit(self.core.announce_leave(self.engine.now()))

    # ------------------------------------------------------------------ wire

    def _on_member_msg(self, msg: Message) -> Disposition:
        if self.core is not None and msg.sender != self.node_id:
            now = self.engine.now()
            self._transmit(self.core.handle(msg.sender, msg.fields(), now))
            self._drain(now)
        return Disposition.DONE

    def _transmit(self, out: list[tuple[NodeId, dict]]) -> None:
        for dest, packet in out:
            self.send(
                Message.with_fields(MEMBER_MSG, self.node_id, 0, **packet), dest
            )

    # ----------------------------------------------------------- view -> host

    def _drain(self, now: float) -> None:
        core = self.core
        assert core is not None
        for what, node, inc in core.drain_events():
            if what in ("join", "alive"):
                self.known_hosts.add(node)
            elif what in ("dead", "left"):
                self.known_hosts.discard(node)
            if self._counters is not None:
                self._counters.labels(kind=_EVENT_COUNTER[what]).inc()
            if self._tracer is not None and self._tracer.enabled:
                self._tracer.append_raw(
                    now, str(self.node_id), _EVENT_TRACE[what],
                    "", 0, {"peer": str(node), "incarnation": inc},
                )
        if self._view_gauge is not None:
            self._view_gauge.set(core.n_alive())
        if self._proto_counter is not None:
            for kind in ("pings", "acks", "ping_reqs", "rumors_rx"):
                value = core.counters[kind]
                delta = value - self._proto_seen.get(kind, 0)
                if delta:
                    self._proto_seen[kind] = value
                    self._proto_counter.labels(kind=kind).inc(delta)

    # -------------------------------------------------------------- telemetry

    def _bind_telemetry(self) -> None:
        tel = getattr(getattr(self.engine, "config", None), "telemetry", None)
        if tel is None:
            return
        reg = tel.registry
        self._counters = reg.counter(
            "ioverlay_membership_events_total",
            "Membership conclusions reached by the SWIM protocol",
            ("kind",),
        )
        self._proto_counter = reg.counter(
            "ioverlay_membership_packets_total",
            "SWIM probe/dissemination packet counts by kind",
            ("kind",),
        )
        self._view_gauge = reg.gauge(
            "ioverlay_membership_view_size",
            "Members currently believed alive",
            ("node",),
        ).labels(node=str(self.node_id))
        self._tracer = tel.tracer
