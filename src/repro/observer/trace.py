"""Centralized trace collection.

The observer records the content of any message of type ``trace`` in its
log files, serving as "a centralized facility to collect and record
debugging information, performance data and other traces" (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core.ids import NodeId


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: when, who, which application, what."""

    time: float
    node: NodeId
    app: int
    text: str


class TraceLog:
    """An append-only, filterable log of trace records."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def record(self, time: float, node: NodeId, app: int, text: str) -> None:
        self._records.append(TraceRecord(time, node, app, text))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def from_node(self, node: NodeId) -> list[TraceRecord]:
        return [record for record in self._records if record.node == node]

    def matching(self, substring: str) -> list[TraceRecord]:
        return [record for record in self._records if substring in record.text]

    def dump(self, path: str | Path) -> None:
        """Write the log as tab-separated lines (time, node, app, text)."""
        lines = (
            f"{record.time:.6f}\t{record.node}\t{record.app}\t{record.text}"
            for record in self._records
        )
        Path(path).write_text("\n".join(lines) + ("\n" if self._records else ""))

    def clear(self) -> None:
        self._records.clear()
