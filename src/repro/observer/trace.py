"""Centralized trace collection.

The observer records the content of any message of type ``trace`` in its
log files, serving as "a centralized facility to collect and record
debugging information, performance data and other traces" (Section 2.2).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core.ids import NodeId


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: when, who, which application, what.

    ``trace_id`` is the wire-propagated message id (``sender/app#seq``)
    when the traced text concerns one data message; empty otherwise.
    The id is a pure function of the immutable message header, so the
    same logical message yields the *same* id whether it was observed
    under the virtual-time simulator or re-decoded from real sockets —
    that identity is what lets dump comparisons (and the determinism
    guard) cover traces that cross worker boundaries.
    """

    time: float
    node: NodeId
    app: int
    text: str
    trace_id: str = ""


class TraceLog:
    """An append-only, filterable log of trace records."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []
        #: per-path count of records already written by dump_jsonl
        self._dumped: dict[str, int] = {}

    def record(self, time: float, node: NodeId, app: int, text: str,
               trace_id: str = "") -> None:
        self._records.append(TraceRecord(time, node, app, text, trace_id))

    def for_trace(self, trace_id: str) -> list[TraceRecord]:
        """Records about one message, in arrival order."""
        return [r for r in self._records if r.trace_id == trace_id]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def from_node(self, node: NodeId) -> list[TraceRecord]:
        return [record for record in self._records if record.node == node]

    def matching(self, substring: str) -> list[TraceRecord]:
        return [record for record in self._records if substring in record.text]

    def dump(self, path: str | Path) -> None:
        """Write the log as tab-separated lines (time, node, app, text).

        The write is atomic (temp file + rename): a crash mid-dump or a
        concurrent reader never observes a truncated log.
        """
        lines = (
            f"{record.time:.6f}\t{record.node}\t{record.app}\t{record.text}"
            for record in self._records
        )
        text = "\n".join(lines) + ("\n" if self._records else "")
        target = Path(path)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, target)

    def dump_jsonl(self, path: str | Path, append: bool = True) -> int:
        """Write the log as JSON lines; returns records written.

        With ``append=True`` (the default) only records added since the
        last ``dump_jsonl`` to the same path are appended, so a periodic
        dump loop costs O(new records), not O(log).  With ``append=False``
        the whole log is rewritten atomically.
        """
        key = str(Path(path))
        start = self._dumped.get(key, 0) if append else 0
        fresh = self._records[start:]
        lines = "".join(
            json.dumps(
                {"time": r.time, "node": str(r.node), "app": r.app,
                 "text": r.text, "trace_id": r.trace_id},
                sort_keys=True,
            ) + "\n"
            for r in fresh
        )
        if append:
            with open(key, "a", encoding="utf-8") as handle:
                handle.write(lines)
        else:
            tmp = key + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(lines)
            os.replace(tmp, key)
        self._dumped[key] = len(self._records)
        return len(fresh)

    def clear(self) -> None:
        self._records.clear()
        self._dumped.clear()
