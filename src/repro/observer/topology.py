"""Topology snapshots assembled from node status reports.

The paper's observer visually illustrates "the current network topology
of each of the applications with geographical locations of all nodes" on
a world map.  Headless, we provide the same information as data: an edge
list with rates, exportable as DOT or consumed programmatically by the
experiments (Figs. 10, 12, 13 render these topologies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ids import NodeId
from repro.observer.status import NodeStatus


@dataclass(frozen=True)
class TopologyEdge:
    """A directed overlay link with its most recent measured send rate."""

    src: NodeId
    dst: NodeId
    rate: float


class TopologySnapshot:
    """The overlay graph as the observer currently understands it."""

    def __init__(self, statuses: dict[NodeId, NodeStatus]) -> None:
        self._nodes = sorted(statuses)
        edges: list[TopologyEdge] = []
        for status in statuses.values():
            for dest in status.downstreams:
                edges.append(TopologyEdge(status.node, dest, status.send_rates.get(dest, 0.0)))
        self._edges = sorted(edges, key=lambda e: (e.src, e.dst))

    @property
    def nodes(self) -> list[NodeId]:
        return list(self._nodes)

    @property
    def edges(self) -> list[TopologyEdge]:
        return list(self._edges)

    def out_degree(self, node: NodeId) -> int:
        return sum(1 for edge in self._edges if edge.src == node)

    def in_degree(self, node: NodeId) -> int:
        return sum(1 for edge in self._edges if edge.dst == node)

    def degree(self, node: NodeId) -> int:
        """Total degree (in + out) — the numerator of the paper's node stress."""
        return self.in_degree(node) + self.out_degree(node)

    def children(self, node: NodeId) -> list[NodeId]:
        return [edge.dst for edge in self._edges if edge.src == node]

    def parents(self, node: NodeId) -> list[NodeId]:
        return [edge.src for edge in self._edges if edge.dst == node]

    def is_tree_rooted_at(self, root: NodeId) -> bool:
        """True if the snapshot is a spanning tree rooted at ``root``.

        Used by experiment assertions: every node except the root has
        exactly one parent, and every node is reachable from the root.
        """
        for node in self._nodes:
            expected = 0 if node == root else 1
            if self.in_degree(node) != expected:
                return False
        reached = {root}
        frontier = [root]
        while frontier:
            current = frontier.pop()
            for child in self.children(current):
                if child not in reached:
                    reached.add(child)
                    frontier.append(child)
        return reached == set(self._nodes)

    def to_dot(self, labels: dict[NodeId, str] | None = None) -> str:
        """Render as a Graphviz digraph; edge labels are KB/s rates."""
        labels = labels or {}
        lines = ["digraph overlay {"]
        for node in self._nodes:
            label = labels.get(node, str(node))
            lines.append(f'  "{node}" [label="{label}"];')
        for edge in self._edges:
            lines.append(
                f'  "{edge.src}" -> "{edge.dst}" [label="{edge.rate / 1000:.1f} KB/s"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def to_edge_list(self) -> list[tuple[str, str, float]]:
        return [(str(edge.src), str(edge.dst), edge.rate) for edge in self._edges]
