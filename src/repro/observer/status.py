"""Node status reports collected by the observer.

Once a node is bootstrapped, the observer periodically requests status
updates, "which include lengths of all engine buffers, measurements of
QoS metrics, and the list of upstream and downstream nodes"
(Section 2.2).  :class:`NodeStatus` is the parsed form of one report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ids import NodeId
from repro.core.message import Message


@dataclass
class NodeStatus:
    """The last known state of one overlay node."""

    node: NodeId
    received_at: float
    upstreams: list[NodeId] = field(default_factory=list)
    downstreams: list[NodeId] = field(default_factory=list)
    recv_buffers: dict[NodeId, int] = field(default_factory=dict)
    send_buffers: dict[NodeId, int] = field(default_factory=dict)
    recv_rates: dict[NodeId, float] = field(default_factory=dict)
    send_rates: dict[NodeId, float] = field(default_factory=dict)
    apps: list[int] = field(default_factory=list)
    lost_messages: int = 0
    lost_bytes: int = 0
    #: telemetry snapshot (registry JSON form) when the node runs with
    #: telemetry enabled; empty otherwise.  The observer merges these
    #: into a cluster-wide aggregate.
    metrics: dict = field(default_factory=dict)

    @classmethod
    def from_message(cls, msg: Message, received_at: float) -> "NodeStatus":
        """Parse a ``STATUS`` message produced by an engine."""
        return cls.from_fields(msg.fields(), received_at)

    @classmethod
    def from_fields(cls, fields: dict, received_at: float) -> "NodeStatus":
        """Parse the dict form of a status report.

        Aggregation frames (``W_AGG``) carry status roll-ups as plain
        field dicts — the same shape a ``STATUS`` payload decodes to —
        so proxied subtrees reconstruct through the identical parser.
        """
        return cls(
            node=NodeId.parse(fields["node"]),
            received_at=received_at,
            upstreams=[NodeId.parse(text) for text in fields.get("upstreams", [])],
            downstreams=[NodeId.parse(text) for text in fields.get("downstreams", [])],
            recv_buffers={
                NodeId.parse(peer): int(depth)
                for peer, depth in fields.get("recv_buffers", {}).items()
            },
            send_buffers={
                NodeId.parse(peer): int(depth)
                for peer, depth in fields.get("send_buffers", {}).items()
            },
            recv_rates={
                NodeId.parse(peer): float(rate)
                for peer, rate in fields.get("recv_rates", {}).items()
            },
            send_rates={
                NodeId.parse(peer): float(rate)
                for peer, rate in fields.get("send_rates", {}).items()
            },
            apps=[int(app) for app in fields.get("apps", [])],
            lost_messages=int(fields.get("lost_messages", 0)),
            lost_bytes=int(fields.get("lost_bytes", 0)),
            metrics=fields.get("metrics", {}),
        )

    @property
    def total_buffered(self) -> int:
        """Messages waiting across all buffers of the node."""
        return sum(self.recv_buffers.values()) + sum(self.send_buffers.values())
