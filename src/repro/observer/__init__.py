"""The observer: centralized bootstrap, monitoring, control and traces."""

from repro.observer.observer import Observer
from repro.observer.status import NodeStatus
from repro.observer.topology import TopologyEdge, TopologySnapshot
from repro.observer.trace import TraceLog, TraceRecord

__all__ = [
    "Observer",
    "NodeStatus",
    "TopologyEdge",
    "TopologySnapshot",
    "TraceLog",
    "TraceRecord",
]
