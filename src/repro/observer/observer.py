"""The observer: centralized bootstrap, monitoring and control.

The observer (Section 2.2) is the single non-distributed component of
iOverlay.  It:

- answers ``boot`` requests with a random subset of alive nodes,
- periodically requests status updates from every bootstrapped node,
- records ``trace`` messages centrally,
- acts as a control panel: deploy applications, join/leave, terminate
  nodes and sources, and change emulated bandwidth at runtime,
- can send algorithm-specific control messages with two optional
  integer parameters.

The class is transport-agnostic: it talks to nodes through an
:class:`ObserverTransport`, implemented by the simulator (direct
delivery with latency) and by the asyncio stack (real TCP, optionally
via the firewall proxy).
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.core.ids import CONTROL_APP, AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.observer.status import NodeStatus
from repro.observer.topology import TopologySnapshot
from repro.observer.trace import TraceLog
from repro.telemetry.tracing import EventType, Tracer


class ObserverTransport(Protocol):
    """How the observer reaches nodes and tells the time."""

    def observer_send(self, node: NodeId, msg: Message) -> None:
        """Deliver a control message to ``node``'s publicized port."""

    def observer_now(self) -> float:
        """Current time (virtual in the simulator, wall-clock live)."""


class Observer:
    """Centralized monitoring facility and control panel."""

    #: identity stamped on messages originating at the observer
    OBSERVER_ID = NodeId("0.0.0.0", 1)

    def __init__(
        self,
        transport: ObserverTransport,
        bootstrap_fanout: int = 8,
        seed: int = 0,
        lease_timeout: float | None = None,
    ) -> None:
        self._transport = transport
        self.bootstrap_fanout = bootstrap_fanout
        self.rng = random.Random(seed)
        self.alive: dict[NodeId, None] = {}  # insertion-ordered set
        self.statuses: dict[NodeId, NodeStatus] = {}
        self.traces = TraceLog()
        self.boot_count = 0
        #: seconds of observer-side silence before a node's lease expires
        #: (``None`` disables lease tracking entirely)
        self.lease_timeout = lease_timeout
        #: when each alive node was last heard from (any message type)
        self.last_seen: dict[NodeId, float] = {}
        #: total leases ever expired by :meth:`expire_leases`
        self.lease_expiries = 0
        #: nodes whose state arrives pre-reduced inside ``W_AGG`` frames
        #: from an aggregating proxy subtree: the poll loop skips them
        #: (their aggregator polls locally), which is what turns the
        #: observer's fan-out from O(nodes) into O(direct children).
        self.aggregated: set[NodeId] = set()
        #: per-aggregator accumulated metric snapshots (deltas applied)
        self._agg_metrics: dict[NodeId, dict] = {}
        #: fleet-wide lifecycle tracer rebuilt from forwarded trace events
        self.flow_tracer = Tracer(capacity=65536, enabled=True)
        self.agg_frames = 0
        self.agg_bytes = 0

    # ------------------------------------------------------------- incoming path

    def on_message(self, msg: Message) -> None:
        """Entry point for every message a node sends to the observer."""
        if self.lease_timeout is not None:
            self.last_seen[msg.sender] = self._transport.observer_now()
        if msg.type == MsgType.BOOT:
            self._handle_boot(msg)
        elif msg.type == MsgType.STATUS:
            self.statuses[msg.sender] = NodeStatus.from_message(
                msg, received_at=self._transport.observer_now()
            )
        elif msg.type == MsgType.TRACE:
            self._handle_trace(msg)
        elif msg.type == MsgType.W_AGG:
            self._handle_agg(msg)
        # Unknown types are ignored: the observer is never a single point
        # of failure for the data plane.

    def _handle_trace(self, msg: Message) -> None:
        """Record a TRACE frame; structured payloads carry a trace id."""
        now = self._transport.observer_now()
        text = msg.payload.decode()
        tid = ""
        if text.startswith("{"):
            try:
                fields = msg.fields()
            except Exception:
                fields = None
            if fields is not None and "text" in fields:
                text = str(fields["text"])
                tid = str(fields.get("trace_id", ""))
        self.traces.record(now, msg.sender, msg.app, text, trace_id=tid)

    def _handle_agg(self, msg: Message) -> None:
        """Fold one aggregation-tree flush into the fleet view.

        The frame carries the subtree's membership, status roll-ups
        (statuses were absorbed by the aggregator instead of being
        relayed one by one), metric *deltas* since the aggregator's last
        successful flush, and head-sampled lifecycle trace events.  Its
        arrival renews the lease of every member — the subtree's
        liveness signal is the flush itself.
        """
        now = self._transport.observer_now()
        fields = msg.fields()
        aggregator = msg.sender
        self.agg_frames += 1
        self.agg_bytes += msg.size
        members = [NodeId.parse(text) for text in fields.get("members", [])]
        for node in members:
            self.alive.setdefault(node, None)
            self.aggregated.add(node)
            if self.lease_timeout is not None:
                self.last_seen[node] = now
        for text in fields.get("departed", []):
            node = NodeId.parse(text)
            self.aggregated.discard(node)
            self.mark_down(node)
        for node_text, status_fields in fields.get("statuses", {}).items():
            try:
                status = NodeStatus.from_fields(status_fields, received_at=now)
            except Exception:
                continue  # a malformed roll-up entry never kills the view
            self.statuses[status.node] = status
        delta = fields.get("metrics") or {}
        if delta:
            from repro.telemetry.metrics import merge_snapshots

            held = self._agg_metrics.get(aggregator)
            if fields.get("full") or held is None:
                # First flush of a new upstream epoch carries the full
                # accumulated snapshot: replace, never merge, or a
                # proxy redial would double-count its whole subtree.
                self._agg_metrics[aggregator] = delta
            else:
                self._agg_metrics[aggregator] = merge_snapshots([held, delta])
        traces = fields.get("traces") or []
        if traces:
            self.flow_tracer.ingest(traces)

    def _handle_boot(self, msg: Message) -> None:
        """First level of bootstrap support: reply with random alive nodes."""
        newcomer = msg.sender
        peers = [node for node in self.alive if node != newcomer]
        subset = peers if len(peers) <= self.bootstrap_fanout else self.rng.sample(
            peers, self.bootstrap_fanout
        )
        self.alive.setdefault(newcomer, None)
        self.boot_count += 1
        reply = Message.with_fields(
            MsgType.BOOT_REPLY,
            self.OBSERVER_ID,
            CONTROL_APP,
            hosts=[str(node) for node in subset],
        )
        self._transport.observer_send(newcomer, reply)

    def mark_down(self, node: NodeId) -> None:
        """Forget a node that terminated (fabric notification)."""
        self.alive.pop(node, None)
        self.statuses.pop(node, None)
        self.last_seen.pop(node, None)
        self.aggregated.discard(node)

    # -------------------------------------------------------------------- leases

    def expire_leases(self, now: float | None = None) -> list[NodeId]:
        """Tear down nodes whose heartbeat lease has lapsed.

        A node's lease is renewed by *any* message it sends (status
        reply, trace, boot); a node silent for longer than
        ``lease_timeout`` is presumed dead or partitioned, trace-logged
        and marked down so the bootstrap view stops handing it out.
        Returns the nodes expired on this sweep.  No-op when lease
        tracking is disabled.
        """
        if self.lease_timeout is None:
            return []
        if now is None:
            now = self._transport.observer_now()
        expired = [
            node
            for node, seen in self.last_seen.items()
            if now - seen > self.lease_timeout
        ]
        for node in expired:
            self.lease_expiries += 1
            silent = now - self.last_seen[node]
            self.traces.record(
                now, node, CONTROL_APP,
                f"lease-expired silent={silent:.3f}s timeout={self.lease_timeout}s",
            )
            self.mark_down(node)
        return expired

    # --------------------------------------------------------------- status polls

    def poll_all(self) -> int:
        """Send a status ``request`` to every *directly-attached* alive node.

        Members of an aggregating subtree are skipped: their aggregator
        polls them locally and flushes the roll-up upward, so the root's
        request fan-out scales with its direct children (O(tree depth)
        hops to any status), not with the fleet.  Returns the number of
        requests sent.
        """
        request = Message.with_fields(MsgType.REQUEST, self.OBSERVER_ID, CONTROL_APP)
        polled = 0
        for node in list(self.alive):
            if node in self.aggregated:
                continue
            self._transport.observer_send(node, request.clone())
            polled += 1
        return polled

    def topology(self) -> TopologySnapshot:
        """The overlay graph per the most recent status reports."""
        return TopologySnapshot(dict(self.statuses))

    # ------------------------------------------------------------ cluster metrics

    def cluster_metrics(self) -> dict:
        """Merge the per-node telemetry snapshots into one aggregate.

        Each status report carries the reporting node's registry snapshot
        (when telemetry is enabled); counters and histograms sum across
        nodes while gauges keep the freshest sample.  Returns ``{}`` when
        no node has reported metrics.
        """
        from repro.telemetry.metrics import merge_snapshots

        snapshots = [
            status.metrics for status in self.statuses.values() if status.metrics
        ]
        snapshots.extend(self._agg_metrics.values())
        return merge_snapshots(snapshots) if snapshots else {}

    def prometheus(self) -> str:
        """The cluster-wide aggregate in Prometheus text exposition format."""
        from repro.telemetry.exporters import to_prometheus

        return to_prometheus(self.cluster_metrics())

    # ---------------------------------------------------------------- flow queries

    def flow_events(self, trace_id: str) -> list:
        """Forwarded lifecycle events of one message, time-ordered."""
        return self.flow_tracer.events_for(trace_id)

    def flow_path(self, trace_id: str) -> list[str]:
        """The stitched node path one message took across the fleet."""
        return self.flow_tracer.path(trace_id)

    def flow_report(self, trace_id: str) -> dict:
        """The stitched causal view of one message: path + per-hop dwell.

        Works across worker boundaries because the trace id is a pure
        function of the immutable wire header — every worker's tracer
        assigns the identical id, and the aggregation tree forwards the
        (head-sampled) events to this root.  Each hop reports when the
        message was first and last seen on that node; the dwell is the
        node's contribution to end-to-end latency.
        """
        events = self.flow_events(trace_id)
        hops = []
        for node in self.flow_path(trace_id):
            times = [e.time for e in events if e.node == node]
            hops.append({
                "node": node,
                "first_seen": min(times),
                "last_seen": max(times),
                "dwell": max(times) - min(times),
                "events": [e.event for e in events if e.node == node],
            })
        forwards = [e for e in events if e.event == EventType.FORWARD]
        return {
            "trace_id": trace_id,
            "path": [h["node"] for h in hops],
            "hops": hops,
            "events": [e.to_dict() for e in events],
            "forwards": len(forwards),
            "end_to_end": (max(e.time for e in events) - min(e.time for e in events))
            if events else 0.0,
        }

    # -------------------------------------------------------------- control panel

    def deploy_source(self, node: NodeId, app: AppId, payload_size: int = 5120) -> None:
        """Deploy an application data source on ``node`` (``sDeploy``)."""
        self._control(node, Message.with_fields(
            MsgType.S_DEPLOY, self.OBSERVER_ID, app, app=app, payload_size=payload_size,
        ))

    def terminate_source(self, node: NodeId, app: AppId) -> None:
        """Terminate an application data source (``sTerminate``)."""
        self._control(node, Message.with_fields(
            MsgType.S_TERMINATE, self.OBSERVER_ID, app, app=app,
        ))

    def terminate_node(self, node: NodeId) -> None:
        """Terminate a node at will; its engine cleans up gracefully."""
        self._control(node, Message.with_fields(MsgType.TERMINATE, self.OBSERVER_ID, CONTROL_APP))

    def connect(self, src: NodeId, dest: NodeId) -> None:
        """Ask ``src`` to open a persistent connection to ``dest``."""
        self._control(src, Message.with_fields(
            MsgType.CONNECT, self.OBSERVER_ID, CONTROL_APP, dest=str(dest),
        ))

    def disconnect(self, src: NodeId, dest: NodeId) -> None:
        self._control(src, Message.with_fields(
            MsgType.DISCONNECT, self.OBSERVER_ID, CONTROL_APP, dest=str(dest),
        ))

    def set_node_bandwidth(
        self, node: NodeId, category: str, rate: float | None
    ) -> None:
        """Emulate per-node bandwidth: category is total, up or down."""
        if category not in ("total", "up", "down"):
            raise ValueError(f"category must be total/up/down, got {category!r}")
        self._control(node, Message.with_fields(
            MsgType.SET_BANDWIDTH, self.OBSERVER_ID, CONTROL_APP,
            category=category, rate=rate,
        ))

    def set_link_bandwidth(self, node: NodeId, peer: NodeId, rate: float | None) -> None:
        """Emulate per-link bandwidth on ``node``'s outgoing link to ``peer``."""
        self._control(node, Message.with_fields(
            MsgType.SET_BANDWIDTH, self.OBSERVER_ID, CONTROL_APP,
            category="link", peer=str(peer), rate=rate,
        ))

    def send_control(
        self, node: NodeId, type_: int, param1: int = 0, param2: int = 0, app: AppId = CONTROL_APP
    ) -> None:
        """Send an algorithm-specific control message with two int params."""
        self._control(node, Message.with_fields(
            MsgType.CONTROL, self.OBSERVER_ID, app,
            type=type_, param1=param1, param2=param2,
        ))

    def send_message(self, node: NodeId, msg: Message) -> None:
        """Deliver an arbitrary pre-built message to a node's port.

        Experiments use this to inject algorithm-specific messages (e.g.
        ``sAssign`` and ``sFederate`` in the service-federation study).
        """
        self._control(node, msg)

    def _control(self, node: NodeId, msg: Message) -> None:
        self._transport.observer_send(node, msg)
