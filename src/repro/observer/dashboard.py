"""A headless rendering of the observer's view.

The paper's observer is a Windows GUI drawing nodes on a world map with
live throughput labels (its Fig. 2).  The reproduction renders the same
information as text: a node table (buffers, apps, rates), the overlay
edge list with rates, and a compact tree view when the topology is a
tree — suitable for terminals, logs and tests.
"""

from __future__ import annotations

from repro.core.ids import NodeId
from repro.observer.observer import Observer
from repro.observer.topology import TopologySnapshot


def render_nodes(observer: Observer, labels: dict[NodeId, str] | None = None) -> str:
    """One line per alive node: buffers, apps, aggregate rates."""
    labels = labels or {}
    lines = [f"{'node':<18} {'apps':<8} {'buffered':>8} {'in KB/s':>9} {'out KB/s':>9}"]
    for node in observer.alive:
        status = observer.statuses.get(node)
        name = labels.get(node, str(node))
        if status is None:
            lines.append(f"{name:<18} {'-':<8} {'-':>8} {'-':>9} {'-':>9}")
            continue
        apps = ",".join(str(a) for a in status.apps) or "-"
        rate_in = sum(status.recv_rates.values()) / 1000
        rate_out = sum(status.send_rates.values()) / 1000
        lines.append(
            f"{name:<18} {apps:<8} {status.total_buffered:>8} "
            f"{rate_in:>9.1f} {rate_out:>9.1f}"
        )
    return "\n".join(lines)


def render_edges(observer: Observer, labels: dict[NodeId, str] | None = None) -> str:
    """The overlay links with their measured rates."""
    labels = labels or {}
    topology = observer.topology()
    lines = []
    for edge in topology.edges:
        src = labels.get(edge.src, str(edge.src))
        dst = labels.get(edge.dst, str(edge.dst))
        lines.append(f"{src} -> {dst}  {edge.rate / 1000:8.1f} KB/s")
    return "\n".join(lines) if lines else "(no links reported)"


def render_tree(
    topology: TopologySnapshot,
    root: NodeId,
    labels: dict[NodeId, str] | None = None,
) -> str:
    """An ASCII tree of the dissemination topology rooted at ``root``.

    Falls back to the edge list when the snapshot is not a tree.
    """
    labels = labels or {}
    if not topology.is_tree_rooted_at(root):
        return "\n".join(
            f"{labels.get(e.src, str(e.src))} -> {labels.get(e.dst, str(e.dst))}"
            for e in topology.edges
        )
    lines: list[str] = []

    def walk(node: NodeId, prefix: str, is_last: bool, is_root: bool) -> None:
        name = labels.get(node, str(node))
        if is_root:
            lines.append(name)
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + name)
            child_prefix = prefix + ("    " if is_last else "|   ")
        children = sorted(topology.children(node), key=str)
        for i, child in enumerate(children):
            walk(child, child_prefix, i == len(children) - 1, False)

    walk(root, "", True, True)
    return "\n".join(lines)


def render_metrics(observer: Observer, limit: int | None = None) -> str:
    """The cluster-wide telemetry aggregate, one line per metric family.

    Counters and histograms show their sum across all label sets; gauges
    show the sum of the freshest samples (total occupancy).  Histogram
    rows additionally estimate p50/p99 by linear interpolation over the
    family's bucket-wise sum (the same estimator Prometheus's
    ``histogram_quantile`` applies to the exported ``_bucket`` series).
    Empty when no node reports metrics (telemetry disabled).
    """
    from repro.telemetry.metrics import quantile_from_counts

    aggregate = observer.cluster_metrics()
    if not aggregate:
        return "(no metrics reported)"
    lines = [f"{'metric':<48} {'kind':<10} {'series':>6} {'total':>14} "
             f"{'p50':>10} {'p99':>10}"]
    names = sorted(aggregate)
    if limit is not None:
        names = names[:limit]
    for name in names:
        metric = aggregate[name]
        series = metric.get("series", [])
        p50 = p99 = "-"
        if metric.get("kind") == "histogram":
            total = sum(s.get("count", 0) for s in series)
            if series and total:
                bounds = series[0].get("buckets", [])
                counts = [0] * (len(bounds) + 1)
                for s in series:
                    if s.get("buckets") == bounds:
                        for i, c in enumerate(s.get("counts", [])):
                            counts[i] += c
                p50 = f"{quantile_from_counts(bounds, counts, 0.50):.4g}"
                p99 = f"{quantile_from_counts(bounds, counts, 0.99):.4g}"
        else:
            total = sum(s.get("value", 0) for s in series)
        text = f"{total:.0f}" if float(total) == int(total) else f"{total:.3f}"
        lines.append(f"{name:<48} {metric.get('kind', '?'):<10} {len(series):>6} "
                     f"{text:>14} {p50:>10} {p99:>10}")
    return "\n".join(lines)


def render_dashboard(
    observer: Observer,
    labels: dict[NodeId, str] | None = None,
    root: NodeId | None = None,
) -> str:
    """The full observer screen: nodes, links, metrics, optionally the tree."""
    sections = [
        "== nodes ==",
        render_nodes(observer, labels),
        "",
        "== overlay links ==",
        render_edges(observer, labels),
    ]
    if root is not None:
        sections += ["", "== dissemination tree ==",
                     render_tree(observer.topology(), root, labels)]
    if observer.cluster_metrics():
        sections += ["", "== metrics ==", render_metrics(observer)]
    if len(observer.traces):
        sections += ["", f"== traces ({len(observer.traces)} recorded) =="]
        sections += [f"[{r.time:8.2f}] {r.node}: {r.text}" for r in list(observer.traces)[-5:]]
    return "\n".join(sections)
