"""Structured message-lifecycle tracing.

Every data message gets a deterministic **trace id** derived from its
immutable header (original sender, application, sequence number), so the
id survives forwarding by reference in the simulator *and* re-decoding
from wire bytes in the asyncio engine — the same message carries the
same id on every node it visits.

Engines record typed :class:`TraceEvent` s at each lifecycle step
(:class:`EventType`): emitted at the source, enqueued into a receiver
buffer, picked by a switch round, deferred on back pressure, retried,
forwarded onto a link, dropped on failure, delivered to the local
algorithm.  The events of one id, ordered by time, reconstruct the
message's full path source → sink; :mod:`repro.telemetry.exporters`
renders them as Chrome trace-event JSON loadable in ``chrome://tracing``
or Perfetto.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.core.message import Message

__all__ = ["EventType", "TraceEvent", "Tracer", "trace_id"]


class EventType:
    """The typed lifecycle steps of a data message (string constants)."""

    SOURCE_EMIT = "source-emit"          # produced by a local source task
    ENQUEUE = "enqueue"                  # entered a receiver buffer
    SWITCH_PICK = "switch-pick"          # taken off a port by a switch round
    CREDIT_EXHAUSTED = "credit-exhausted"  # port skipped: WRR credit spent
    DEFER = "defer"                      # send hit a full sender buffer
    RETRY = "retry"                      # a deferred forward was retried
    FORWARD = "forward"                  # left this node on a link
    DROP = "drop"                        # lost to a failure or teardown
    DELIVER = "deliver"                  # consumed by the local algorithm

    # Port-level link-health events (not tied to one message): the
    # LIVE -> SUSPECT -> PROBING -> DEAD detection ladder of the
    # resilience layer (repro.net.resilience).
    LINK_SUSPECT = "link-suspect"        # receive silence past the timeout
    LINK_PROBE = "link-probe"            # reactive liveness probe dispatched
    LINK_DEAD = "link-dead"              # probe unanswered; teardown fires

    # Cluster-level events recorded by the placement controller
    # (repro.cluster.controller): process fleet lifecycle, not tied to
    # one message or one node's engine.
    WORKER_SPAWN = "worker-spawn"        # a worker process was launched
    WORKER_DEAD = "worker-dead"          # crash/heartbeat-timeout confirmed
    NODE_PLACED = "node-placed"          # a node was placed on a worker
    NODE_REDEPLOYED = "node-redeployed"  # re-placed after its worker died
    RESPAWN_BACKOFF = "respawn-backoff"  # a crash-looping child delayed
    RESPAWN_EXHAUSTED = "respawn-exhausted"  # respawn budget spent; gave up

    # Federation events recorded by the root controller
    # (repro.cluster.federation): the controller-of-controllers tier.
    CONTROLLER_JOIN = "controller-join"  # a child controller registered
    CONTROLLER_DEAD = "controller-dead"  # child-controller loss confirmed
    SHARD_REDEPLOYED = "shard-redeployed"  # a dead child's whole shard
                                           # re-placed through the root policy

    # Membership-plane events (repro.membership): what the SWIM protocol
    # concluded about a peer, recorded at the node that concluded it.
    MEMBER_JOIN = "member-join"          # a new member entered the view
    MEMBER_SUSPECT = "member-suspect"    # probe silence raised suspicion
    MEMBER_REFUTE = "member-refute"      # a suspicion was refuted (alive)
    MEMBER_DEAD = "member-dead"          # suspicion expired unrefuted
    MEMBER_LEFT = "member-left"          # a graceful departure was gossiped

    # Churn-driver events (repro.membership.churn): ground-truth faults
    # the schedule injected, so traces separate injected churn from the
    # protocol's (possibly wrong) conclusions about it.
    CHURN_JOIN = "churn-join"            # schedule started a new node
    CHURN_CRASH = "churn-crash"          # schedule killed a node abruptly
    CHURN_LEAVE = "churn-leave"          # schedule stopped a node gracefully

    # Backpressure-routing events (repro.algorithms.routing): per-tick
    # forwarding decisions and backlog exchanges, recorded at the node
    # that made them.
    ROUTE_DECISION = "route-decision"    # a tick picked (commodity, next hop)
    BACKLOG_REPORT = "backlog-report"    # per-commodity backlogs sent upstream

    ALL = (SOURCE_EMIT, ENQUEUE, SWITCH_PICK, CREDIT_EXHAUSTED,
           DEFER, RETRY, FORWARD, DROP, DELIVER,
           LINK_SUSPECT, LINK_PROBE, LINK_DEAD,
           WORKER_SPAWN, WORKER_DEAD, NODE_PLACED, NODE_REDEPLOYED,
           RESPAWN_BACKOFF, RESPAWN_EXHAUSTED,
           CONTROLLER_JOIN, CONTROLLER_DEAD, SHARD_REDEPLOYED,
           MEMBER_JOIN, MEMBER_SUSPECT, MEMBER_REFUTE, MEMBER_DEAD,
           MEMBER_LEFT, CHURN_JOIN, CHURN_CRASH, CHURN_LEAVE,
           ROUTE_DECISION, BACKLOG_REPORT)


def trace_id(msg: Message) -> str:
    """Deterministic id for one data message: ``sender/app#seq``.

    The id is memoized on the message (``Message._trace_id``): it is a
    pure function of immutable header fields, and recording sits on the
    engines' per-message path where re-rendering it per event would be
    the single largest telemetry cost.
    """
    tid = msg._trace_id
    if tid is None:
        tid = msg._trace_id = f"{msg.sender}/{msg.app}#{msg.seq}"
    return tid


@dataclass(frozen=True)
class TraceEvent:
    """One lifecycle step of one message, observed on one node."""

    time: float          # caller-supplied clock (virtual or monotonic)
    node: str            # where the event was observed
    event: str           # an EventType constant
    trace_id: str        # "" for events not tied to one message
    app: int = 0
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "time": self.time,
            "node": self.node,
            "event": self.event,
            "trace_id": self.trace_id,
            "app": self.app,
        }
        if self.detail:
            out["detail"] = self.detail
        return out


class Tracer:
    """A bounded, append-only buffer of :class:`TraceEvent` s.

    The buffer is a ring: once ``capacity`` events are held the oldest
    are discarded (``dropped`` counts them), so a long-running deployment
    can leave tracing on without unbounded memory growth.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = True,
                 sample: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self.capacity = capacity
        self.enabled = enabled
        #: head-based sampling: record lifecycle events only for data
        #: messages whose ``seq % sample == 0``.  The sequence number is
        #: part of the immutable header and survives both by-reference
        #: forwarding and wire re-decoding, so a sampled message carries
        #: its *complete* source→sink lifecycle while 1/sample of the
        #: trace volume is paid.  ``1`` (the default) traces everything;
        #: port-level events (e.g. credit exhaustion) are never sampled
        #: away since they are not tied to one message.
        self.sample = sample
        # The ring is six preallocated parallel lists indexed by one
        # cursor, not a deque of per-event objects.  A slot *store*
        # allocates no GC-tracked container, so steady-state recording
        # keeps the interpreter's allocation counters balanced — a
        # tuple-per-event ring keeps tens of thousands of young tuples
        # alive and drives continuous gen0/gen1 collections, which cost
        # far more than the appends themselves.  Events are materialized
        # lazily on read.
        self._times: list[float] = [0.0] * capacity
        self._nodes: list[str] = [""] * capacity
        self._kinds: list[str] = [""] * capacity
        self._tids: list[str] = [""] * capacity
        self._apps: list[int] = [0] * capacity
        self._details: list[dict | None] = [None] * capacity
        self._cursor = 0  # next slot to write (== oldest once wrapped)
        self._recorded = 0
        self._dump_positions: dict[str, int] = {}

    def record(
        self,
        time: float,
        node: str,
        event: str,
        trace_id: str = "",
        app: int = 0,
        **detail: Any,
    ) -> None:
        if not self.enabled:
            return
        self.append_raw(time, node, event, trace_id, app, detail)

    def append_raw(
        self,
        time: float,
        node: str,
        event: str,
        trace_id: str,
        app: int,
        detail: dict,
    ) -> None:
        """Hot-path append: the caller has already checked ``enabled``
        and passes an interned (treat-as-immutable) ``detail`` dict, so
        no per-event container is allocated."""
        i = self._cursor
        self._times[i] = time
        self._nodes[i] = node
        self._kinds[i] = event
        self._tids[i] = trace_id
        self._apps[i] = app
        self._details[i] = detail
        i += 1
        self._cursor = 0 if i == self.capacity else i
        self._recorded += 1

    # --- introspection ---------------------------------------------------------

    def _slots(self) -> range:
        """Ring slot indices in recording order (oldest first)."""
        held = min(self._recorded, self.capacity)
        if self._recorded <= self.capacity:
            return range(held)
        start = self._cursor  # oldest surviving slot once wrapped
        return range(start, start + held)

    def _event_at(self, slot: int) -> TraceEvent:
        i = slot % self.capacity
        return TraceEvent(
            self._times[i], self._nodes[i], self._kinds[i],
            self._tids[i], self._apps[i], self._details[i] or {},
        )

    def __len__(self) -> int:
        return min(self._recorded, self.capacity)

    def __iter__(self) -> Iterator[TraceEvent]:
        return (self._event_at(slot) for slot in self._slots())

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including since-discarded ones)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Events discarded because the ring buffer wrapped."""
        return self._recorded - len(self)

    def events(self) -> list[TraceEvent]:
        return [self._event_at(slot) for slot in self._slots()]

    def events_since(self, cursor: int) -> tuple[list[TraceEvent], int]:
        """Events recorded after position ``cursor`` (a prior ``recorded``
        value) that the ring still holds, plus the new cursor.

        This is the incremental-read primitive the aggregating observer
        proxy flushes with: each flush forwards only fresh events and
        remembers where it stopped.  Events that aged out of the ring
        between reads are simply unavailable (the ring's ``dropped``
        counter accounts for them).
        """
        start = max(min(cursor, self._recorded), self.dropped)
        events = [self._event_at(slot)
                  for slot in self._slots()[start - self.dropped:]]
        return events, self._recorded

    def ingest(self, events: Iterable[dict[str, Any]]) -> int:
        """Append event dicts produced by :meth:`TraceEvent.to_dict`.

        The root observer rebuilds its fleet-wide tracer from the event
        batches that aggregation frames carry upward; ids forwarded from
        worker tracers keep stitching because they are pure functions of
        the immutable message header.  Returns how many were appended.
        """
        count = 0
        for event in events:
            self.append_raw(
                float(event.get("time", 0.0)),
                str(event.get("node", "")),
                str(event.get("event", "")),
                str(event.get("trace_id", "")),
                int(event.get("app", 0)),
                event.get("detail") or {},
            )
            count += 1
        return count

    def events_for(self, trace_id: str) -> list[TraceEvent]:
        """All events of one message, in time order."""
        return sorted(
            (self._event_at(slot) for slot in self._slots()
             if self._tids[slot % self.capacity] == trace_id),
            key=lambda event: event.time,
        )

    def trace_ids(self) -> list[str]:
        """Distinct message ids present in the buffer, insertion order."""
        seen: dict[str, None] = {}
        for slot in self._slots():
            tid = self._tids[slot % self.capacity]
            if tid:
                seen.setdefault(tid, None)
        return list(seen)

    def path(self, trace_id: str) -> list[str]:
        """The sequence of nodes the message visited (dedup-adjacent)."""
        nodes: list[str] = []
        for event in self.events_for(trace_id):
            if not nodes or nodes[-1] != event.node:
                nodes.append(event.node)
        return nodes

    def clear(self) -> None:
        if self._recorded:
            self._times[:] = [0.0] * self.capacity
            self._nodes[:] = [""] * self.capacity
            self._kinds[:] = [""] * self.capacity
            self._tids[:] = [""] * self.capacity
            self._apps[:] = [0] * self.capacity
            self._details[:] = [None] * self.capacity
        self._cursor = 0
        self._recorded = 0
        self._dump_positions.clear()

    # --- persistence -----------------------------------------------------------

    def dump_jsonl(self, path: str | Path, append: bool = True) -> int:
        """Write events as JSON lines; returns how many were written.

        With ``append=True`` only events not yet written *to this path*
        are appended (incremental dumps from a periodic flusher); with
        ``append=False`` the file is rewritten atomically in full.
        """
        path = Path(path)
        key = str(path)
        if append:
            start = min(self._dump_positions.get(key, 0), self._recorded)
            # Events older than the ring window were discarded and can
            # no longer be written; skip ahead past them.
            start = max(start, self.dropped)
            events = [self._event_at(slot)
                      for slot in self._slots()[start - self.dropped:]]
            with path.open("a") as fh:
                for event in events:
                    fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            self._dump_positions[key] = self._recorded
            return len(events)
        events = self.events()
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w") as fh:
            for event in events:
                fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        os.replace(tmp, path)
        self._dump_positions[key] = self._recorded
        return len(events)
