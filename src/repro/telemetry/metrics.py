"""A label-aware metrics registry: Counter, Gauge, Histogram.

Design constraints (the reasons this does not just vendor a Prometheus
client):

- **O(1) hot path** — instrumented code binds a labelled child once
  (``counter.labels(node=..., peer=...)``) and the per-record call is a
  single attribute increment, no dict lookups, no string formatting;
- **no wall-clock calls** — metrics never read the time themselves, so
  recording is deterministic under the virtual-time simulator; any
  timestamps come from the caller's clock (``kernel.now`` or
  ``time.monotonic``);
- **snapshot interchange** — :meth:`MetricsRegistry.snapshot` produces a
  plain-dict form that travels inside ``STATUS`` messages, merges across
  nodes (:func:`merge_snapshots`), and renders to Prometheus text
  (:mod:`repro.telemetry.exporters`).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "merge_snapshots",
    "snapshot_delta",
    "snapshot_regressed",
    "quantile_from_counts",
]

#: Default histogram bucket upper bounds, in seconds — tuned for queueing
#: delays in the simulator (sub-millisecond switching up to multi-second
#: back-pressure stalls).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class CounterChild:
    """One labelled time series of a counter; monotonically increasing."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class GaugeChild:
    """One labelled time series of a gauge; goes up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramChild:
    """One labelled series of a fixed-bucket histogram."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative per-bucket counts, Prometheus ``le`` semantics."""
        out, running = [], 0
        for n in self.counts:
            running += n
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation.

        Same estimator as PromQL's ``histogram_quantile``: find the
        bucket whose cumulative count first reaches ``q * count`` and
        interpolate linearly inside its ``(lower, upper]`` bound range.
        Observations in the ``+Inf`` bucket clamp to the largest finite
        bound.  Returns ``nan`` on an empty histogram.
        """
        return quantile_from_counts(self.bounds, self.counts, q)


class _Metric:
    """Shared machinery: child registry keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        _validate_name(name)
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], Any] = {}

    def _new_child(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labelvalues: Any) -> Any:
        """Bind (and cache) the child for one label-value combination."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def series(self) -> Iterator[tuple[dict[str, str], Any]]:
        """Every (labels dict, child) pair recorded so far."""
        for key, child in self._children.items():
            yield dict(zip(self.labelnames, key)), child

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, series={len(self._children)})"


class Counter(_Metric):
    """A monotonically increasing, label-aware counter."""

    kind = "counter"

    def _new_child(self) -> CounterChild:
        return CounterChild()

    def inc(self, amount: float = 1.0, **labelvalues: Any) -> None:
        """Convenience single-call form (binds the child each time)."""
        self.labels(**labelvalues).inc(amount)


class Gauge(_Metric):
    """A label-aware instantaneous value."""

    kind = "gauge"

    def _new_child(self) -> GaugeChild:
        return GaugeChild()

    def set(self, value: float, **labelvalues: Any) -> None:
        self.labels(**labelvalues).set(value)


class Histogram(_Metric):
    """A label-aware fixed-bucket histogram (no wall-clock, no locks)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds: {bounds}")
        super().__init__(name, help, labelnames)
        self.buckets = bounds

    def _new_child(self) -> HistogramChild:
        return HistogramChild(self.buckets)

    def observe(self, value: float, **labelvalues: Any) -> None:
        self.labels(**labelvalues).observe(value)


class MetricsRegistry:
    """All metrics of one node (or one shared simulation).

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    twice with the same name returns the same metric, so independent
    components may bind instruments without coordinating.  Re-declaring
    a name with a different kind or label set is a hard error — silent
    divergence would corrupt every exporter downstream.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is None:
            metric = Histogram(name, help, labelnames, buckets)
            self._metrics[name] = metric
            return metric
        self._check_compatible(existing, Histogram, name, labelnames)
        assert isinstance(existing, Histogram)
        if existing.buckets != tuple(sorted(float(b) for b in buckets)):
            raise ValueError(f"metric {name!r} re-declared with different buckets")
        return existing

    def _get_or_create(self, cls: type, name: str, help: str, labelnames: Sequence[str]):
        existing = self._metrics.get(name)
        if existing is None:
            metric = cls(name, help, labelnames)
            self._metrics[name] = metric
            return metric
        self._check_compatible(existing, cls, name, labelnames)
        return existing

    @staticmethod
    def _check_compatible(existing: _Metric, cls: type, name: str, labelnames: Sequence[str]) -> None:
        if type(existing) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {existing.kind}, "
                f"cannot re-declare as {cls.kind}"
            )
        if existing.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} re-declared with labels {tuple(labelnames)}, "
                f"registered with {existing.labelnames}"
            )

    # --- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def metrics(self) -> list[_Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    # --- snapshots -------------------------------------------------------------

    def snapshot(self, **label_filter: Any) -> dict[str, Any]:
        """A plain-dict, JSON-serializable view of every series.

        ``label_filter`` keeps only series whose labels carry exactly the
        given values (e.g. ``snapshot(node="10.0.0.1:7000")`` extracts
        one node's slice of a shared registry); metrics left with no
        matching series are omitted.
        """
        wanted = {k: str(v) for k, v in label_filter.items()}
        out: dict[str, Any] = {}
        for metric in self.metrics():
            series_out = []
            for labels, child in metric.series():
                if any(labels.get(k) != v for k, v in wanted.items()):
                    continue
                entry: dict[str, Any] = {"labels": labels}
                if metric.kind == "histogram":
                    entry["buckets"] = list(child.bounds)
                    entry["counts"] = list(child.counts)
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                else:
                    entry["value"] = child.value
                series_out.append(entry)
            if series_out:
                out[metric.name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "series": series_out,
                }
        return out


def merge_snapshots(snapshots: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Combine per-node snapshots into one cluster-wide snapshot.

    Series are keyed by (metric name, label values).  Counters and
    histograms from colliding series are summed; for gauges the last
    snapshot wins (per-node gauges normally never collide because their
    labels include the node).  Metric kind mismatches are a hard error.
    """
    merged: dict[str, Any] = {}
    for snap in snapshots:
        for name, metric in snap.items():
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    "kind": metric["kind"],
                    "help": metric.get("help", ""),
                    "labelnames": list(metric.get("labelnames", [])),
                    "series": [
                        {k: (list(v) if isinstance(v, list) else dict(v) if isinstance(v, dict) else v)
                         for k, v in entry.items()}
                        for entry in metric["series"]
                    ],
                }
                continue
            if target["kind"] != metric["kind"]:
                raise ValueError(
                    f"metric {name!r}: kind mismatch across snapshots "
                    f"({target['kind']} vs {metric['kind']})"
                )
            index = {_series_key(entry): entry for entry in target["series"]}
            for entry in metric["series"]:
                existing = index.get(_series_key(entry))
                if existing is None:
                    copied = {k: (list(v) if isinstance(v, list) else dict(v) if isinstance(v, dict) else v)
                              for k, v in entry.items()}
                    target["series"].append(copied)
                    index[_series_key(copied)] = copied
                elif metric["kind"] == "counter":
                    existing["value"] += entry["value"]
                elif metric["kind"] == "histogram":
                    if existing["buckets"] != entry["buckets"]:
                        raise ValueError(f"metric {name!r}: bucket mismatch across snapshots")
                    existing["counts"] = [a + b for a, b in zip(existing["counts"], entry["counts"])]
                    existing["sum"] += entry["sum"]
                    existing["count"] += entry["count"]
                else:  # gauge: last writer wins
                    existing["value"] = entry["value"]
    return merged


def snapshot_delta(prev: dict[str, Any], curr: dict[str, Any]) -> dict[str, Any]:
    """What changed between two snapshots of the *same* source.

    Returns a snapshot-form dict that, merged onto ``prev`` with
    :func:`merge_snapshots`, reproduces ``curr``: counter series carry
    ``curr - prev`` (dropped when zero), histogram series carry
    bucket-wise count differences, gauges carry their current value only
    when it changed.  This is the delta encoding the observer-proxy
    aggregation tree forwards upward on every flush, so the root pays
    for activity, not fleet size.

    A series whose counter/histogram values *decreased* (the reporting
    node restarted and its counters reset) is re-emitted in full, the
    standard Prometheus counter-reset convention — the accumulated view
    upstream stays monotone and the restarted node's fresh activity is
    not silently discarded.
    """
    delta: dict[str, Any] = {}
    for name, metric in curr.items():
        prev_metric = prev.get(name)
        prev_index = (
            {_series_key(entry): entry for entry in prev_metric["series"]}
            if prev_metric is not None else {}
        )
        series_out = []
        for entry in metric["series"]:
            before = prev_index.get(_series_key(entry))
            kind = metric["kind"]
            if kind == "counter":
                base = before["value"] if before is not None else 0.0
                diff = entry["value"] - base
                if diff < 0:  # counter reset: re-emit in full
                    diff = entry["value"]
                if diff:
                    series_out.append({"labels": dict(entry["labels"]), "value": diff})
            elif kind == "histogram":
                if before is not None and before["buckets"] == entry["buckets"]:
                    counts = [a - b for a, b in zip(entry["counts"], before["counts"])]
                    total = entry["count"] - before["count"]
                    total_sum = entry["sum"] - before["sum"]
                    if total < 0 or any(c < 0 for c in counts):  # reset
                        counts = list(entry["counts"])
                        total, total_sum = entry["count"], entry["sum"]
                else:
                    counts = list(entry["counts"])
                    total, total_sum = entry["count"], entry["sum"]
                if total:
                    series_out.append({
                        "labels": dict(entry["labels"]),
                        "buckets": list(entry["buckets"]),
                        "counts": counts, "sum": total_sum, "count": total,
                    })
            else:  # gauge: forward only when the value moved
                if before is None or before["value"] != entry["value"]:
                    series_out.append({"labels": dict(entry["labels"]), "value": entry["value"]})
        if series_out:
            delta[name] = {
                "kind": metric["kind"],
                "help": metric.get("help", ""),
                "labelnames": list(metric.get("labelnames", [])),
                "series": series_out,
            }
    return delta


def snapshot_regressed(prev: dict[str, Any], curr: dict[str, Any]) -> bool:
    """True when ``curr`` is not a pure accumulation of ``prev``.

    A regression — a whole metric or series vanishing, a counter or
    histogram going backwards, or bucket bounds changing — means the
    measured population itself changed (a child died or restarted), so a
    *delta* against ``prev`` can no longer represent the truth: vanished
    series would silently persist upstream and reset counters would
    double-count.  The aggregation tree answers a regression with a
    full-resync flush (``full=True``), replacing upstream state outright.
    """
    for name, metric in prev.items():
        curr_metric = curr.get(name)
        if curr_metric is None:
            return True
        index = {_series_key(e): e for e in curr_metric.get("series", [])}
        kind = metric.get("kind")
        for entry in metric.get("series", []):
            now = index.get(_series_key(entry))
            if now is None:
                return True
            if kind == "counter" and now["value"] < entry["value"]:
                return True
            if kind == "histogram" and (
                now["count"] < entry["count"] or now["buckets"] != entry["buckets"]
            ):
                return True
    return False


def quantile_from_counts(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Linear-interpolation quantile over per-bucket (non-cumulative) counts.

    ``counts`` has one more slot than ``bounds`` (the trailing ``+Inf``
    bucket), exactly the interchange form of snapshot histogram series —
    dashboards and CLI tools estimate percentiles from scraped
    snapshots without a live :class:`HistogramChild`.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return float("nan")
    rank = q * total
    running = 0.0
    for i, n in enumerate(counts):
        if n == 0:
            continue
        if running + n >= rank:
            if i >= len(bounds):  # +Inf bucket: clamp to last finite bound
                return float(bounds[-1])
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            return lower + (upper - lower) * max(0.0, rank - running) / n
        running += n
    return float(bounds[-1])


def _series_key(entry: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(entry["labels"].items()))


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")
