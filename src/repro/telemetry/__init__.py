"""Unified telemetry: metrics registry, message-lifecycle tracing, exporters.

The paper's observer is "a centralized facility to collect and record
debugging information, performance data and other traces" (Section 2.2).
This package is the reproduction's first-class version of that facility:

- :mod:`repro.telemetry.metrics` — a label-aware registry of Counters,
  Gauges and fixed-bucket Histograms with an O(1) hot path and no
  wall-clock reads, deterministic under the virtual-time simulator;
- :mod:`repro.telemetry.tracing` — typed lifecycle events per data
  message (source-emit → enqueue → switch-pick → … → deliver/drop),
  keyed by a deterministic trace id that survives the wire;
- :mod:`repro.telemetry.exporters` — Prometheus text, JSON snapshots
  (merged cluster-wide by the observer) and Chrome trace-event JSON;
- :mod:`repro.telemetry.instruments` — the pre-bound handles both
  engines record through.

Telemetry is **off by default**: engines carry a ``telemetry`` config
slot that is ``None`` unless an experiment opts in, so the data path
pays nothing when unobserved.  To opt a simulation in::

    from repro.telemetry import Telemetry
    net = SimNetwork(NetworkConfig(telemetry=Telemetry()))
    ...
    print(net.config.telemetry.prometheus())
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.exporters import (
    chrome_trace_events,
    dump_chrome_trace,
    to_json,
    to_prometheus,
    write_prometheus,
)
from repro.telemetry.instruments import EngineInstruments
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.telemetry.tracing import EventType, TraceEvent, Tracer, trace_id

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "merge_snapshots",
    "Tracer",
    "TraceEvent",
    "EventType",
    "trace_id",
    "EngineInstruments",
    "to_prometheus",
    "to_json",
    "write_prometheus",
    "chrome_trace_events",
    "dump_chrome_trace",
]


class Telemetry:
    """One registry + one tracer: the unit engines share or own.

    In the simulator a single instance is shared by every engine (all
    series are distinguished by their ``node`` label and the tracer sees
    the whole cluster); on the live asyncio stack each process owns one
    and the observer aggregates their snapshots.
    """

    def __init__(self, trace_capacity: int = 65536, tracing: bool = True,
                 trace_sample: int = 1) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(capacity=trace_capacity, enabled=tracing,
                             sample=trace_sample)
        self._collectors: list = []

    def instruments_for(self, node: Any) -> EngineInstruments:
        """Bind the per-engine instrument handles for ``node``."""
        instruments = EngineInstruments(self, str(node))
        self._collectors.append(instruments.collect)
        return instruments

    def collect(self) -> None:
        """Fold every engine's shadow counters into the registry.

        Engines record on plain integers (collect-on-scrape); this runs
        automatically before any snapshot or export, so readers always
        see current values without the hot path touching the registry.
        """
        for collect in self._collectors:
            collect()

    def snapshot(self, **label_filter: Any) -> dict[str, Any]:
        self.collect()
        return self.registry.snapshot(**label_filter)

    def prometheus(self) -> str:
        self.collect()
        return to_prometheus(self.registry)

    def __repr__(self) -> str:
        return (
            f"Telemetry(metrics={len(self.registry)}, "
            f"trace_events={len(self.tracer)})"
        )
