"""Pre-bound instrument handles for the message-switching engines.

Both engines (the virtual-time :class:`~repro.sim.engine.SimEngine` and
the asyncio :class:`~repro.net.engine.AsyncioEngine`) record the same
metric families under the same names, so experiments and dashboards read
identically whichever substrate ran.  One :class:`EngineInstruments` is
created per engine at start-up.

The hot path is **collect-on-scrape** (the Prometheus collector
pattern): per-event recording is a plain integer increment on a shadow
counter (``ins.enqueued[label] += 1`` — one dict ``+=``, no method
calls), and the shadows are folded into the registry's labelled children
only when a snapshot or export is taken (:meth:`collect`, driven by
:meth:`Telemetry.snapshot <repro.telemetry.Telemetry.snapshot>`).  Only
the two latency/batch histograms observe per event, and lifecycle trace
appends go through one thin call (:meth:`trace_msg`) guarded by the
caller's ``tracer.enabled`` check.

Metric catalog (all prefixed ``ioverlay_``): see docs/observability.md.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Mapping

from repro.telemetry.metrics import CounterChild, GaugeChild
from repro.telemetry.tracing import EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.message import Message
    from repro.telemetry import Telemetry

#: Queue-wait buckets: sub-millisecond switching up to multi-second
#: back-pressure stalls (virtual or wall seconds).
QUEUE_WAIT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: Switch-round batch-size buckets (messages moved per round).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

# Shared, treat-as-immutable detail dicts: trace events reference these
# instead of allocating a dict per append.
_NO_DETAIL: dict = {}
_RETRY_DONE = {"completed": True}
_RETRY_PARTIAL = {"completed": False}


class EngineInstruments:
    """One engine's shadow counters, bound histograms and tracer handle."""

    def __init__(self, telemetry: "Telemetry", node: str) -> None:
        self.telemetry = telemetry
        self.tracer = telemetry.tracer
        self.node = node
        reg = telemetry.registry

        # --- per-peer shadow counters (engine hot path does `+= 1`) ----
        self.switched: defaultdict[str, int] = defaultdict(int)
        self.credit_stalls: defaultdict[str, int] = defaultdict(int)
        self.defers: defaultdict[str, int] = defaultdict(int)
        self.forwarded: defaultdict[str, int] = defaultdict(int)
        self.enqueued: defaultdict[str, int] = defaultdict(int)
        self.backpressure: defaultdict[str, int] = defaultdict(int)

        # --- node-level shadow counters --------------------------------
        self.n_switch_rounds = 0
        self.n_credit_epochs = 0
        self.n_retries = 0
        self.n_retry_completions = 0
        self.n_drops = 0
        self.n_dropped_bytes = 0
        self.n_domino = 0
        self.n_source = 0
        self.n_delivers = 0
        # resilience layer (repro.net.resilience / net engine supervisor)
        self.n_suspects = 0
        self.n_probes = 0
        self.n_inactivity_deaths = 0
        self.n_connect_failures = 0
        self.n_observer_drops = 0
        self.n_observer_reconnects = 0

        self._switched_metric = reg.counter(
            "ioverlay_engine_switched_messages_total",
            "Data messages moved from a receiver port by switch rounds",
            ("node", "peer"),
        )
        self._credit_metric = reg.counter(
            "ioverlay_engine_credit_stalls_total",
            "Port visits skipped because the WRR credit was exhausted",
            ("node", "peer"),
        )
        self._defer_metric = reg.counter(
            "ioverlay_engine_defers_total",
            "Data sends deferred on a full sender buffer (back pressure)",
            ("node", "peer"),
        )
        self._forward_metric = reg.counter(
            "ioverlay_engine_forwarded_messages_total",
            "Messages that left this node on an overlay link",
            ("node", "peer"),
        )
        self._enqueue_metric = reg.counter(
            "ioverlay_engine_enqueued_messages_total",
            "Data messages accepted into a receiver buffer",
            ("node", "peer"),
        )
        self._backpressure_metric = reg.counter(
            "ioverlay_link_backpressure_total",
            "Link deliveries that blocked on a full in-flight window",
            ("node", "peer"),
        )
        self._recv_gauge = reg.gauge(
            "ioverlay_engine_recv_buffer_messages",
            "Receiver buffer occupancy (messages)",
            ("node", "peer"),
        )
        self._send_gauge = reg.gauge(
            "ioverlay_engine_send_buffer_messages",
            "Sender buffer occupancy (messages)",
            ("node", "peer"),
        )
        self._broken_metric = reg.counter(
            "ioverlay_engine_broken_links_total",
            "Link failures observed, by direction (up/down/both)",
            ("node", "direction"),
        )
        self._stall_metric = reg.counter(
            "ioverlay_engine_bandwidth_stall_seconds_total",
            "Time spent waiting on the bandwidth throttle, by direction",
            ("node", "direction"),
        )

        self._c_switch_rounds: CounterChild = reg.counter(
            "ioverlay_engine_switch_rounds_total",
            "Weighted round-robin passes over the receiver ports",
            ("node",),
        ).labels(node=node)
        self._c_credit_epochs: CounterChild = reg.counter(
            "ioverlay_engine_credit_epochs_total",
            "Deficit-round-robin credit replenishments",
            ("node",),
        ).labels(node=node)
        self._c_retries: CounterChild = reg.counter(
            "ioverlay_engine_retries_total",
            "Retry attempts for partially-forwarded messages",
            ("node",),
        ).labels(node=node)
        self._c_retry_completions: CounterChild = reg.counter(
            "ioverlay_engine_retry_completions_total",
            "Partially-forwarded messages that completed on a retry",
            ("node",),
        ).labels(node=node)
        self._c_drops: CounterChild = reg.counter(
            "ioverlay_engine_dropped_messages_total",
            "Messages lost to failures or link teardown",
            ("node",),
        ).labels(node=node)
        self._c_dropped_bytes: CounterChild = reg.counter(
            "ioverlay_engine_dropped_bytes_total",
            "Bytes lost to failures or link teardown",
            ("node",),
        ).labels(node=node)
        self._c_domino: CounterChild = reg.counter(
            "ioverlay_engine_domino_teardowns_total",
            "BROKEN_SOURCE cascades forwarded downstream (domino effect)",
            ("node",),
        ).labels(node=node)
        self._c_source: CounterChild = reg.counter(
            "ioverlay_engine_source_messages_total",
            "Data messages produced by local application sources",
            ("node",),
        ).labels(node=node)
        self._c_delivers: CounterChild = reg.counter(
            "ioverlay_engine_delivered_messages_total",
            "Data messages consumed by the local algorithm (not re-sent)",
            ("node",),
        ).labels(node=node)
        self._c_suspects: CounterChild = reg.counter(
            "ioverlay_engine_link_suspects_total",
            "Peer links suspected after receive silence past the timeout",
            ("node",),
        ).labels(node=node)
        self._c_probes: CounterChild = reg.counter(
            "ioverlay_engine_liveness_probes_total",
            "Reactive liveness probes dispatched to suspect peers",
            ("node",),
        ).labels(node=node)
        self._c_inactivity_deaths: CounterChild = reg.counter(
            "ioverlay_engine_inactivity_deaths_total",
            "Links confirmed dead by an unanswered liveness probe",
            ("node",),
        ).labels(node=node)
        self._c_connect_failures: CounterChild = reg.counter(
            "ioverlay_engine_connect_failures_total",
            "Failed peer connect attempts (retried under backoff)",
            ("node",),
        ).labels(node=node)
        self._c_observer_drops: CounterChild = reg.counter(
            "ioverlay_engine_observer_drops_total",
            "Observer-bound messages dropped (outbox overflow or shutdown)",
            ("node",),
        ).labels(node=node)
        self._c_observer_reconnects: CounterChild = reg.counter(
            "ioverlay_engine_observer_reconnects_total",
            "Successful observer-link reconnections",
            ("node",),
        ).labels(node=node)

        # Histograms observe per event (distributions cannot be derived
        # from totals); the bound-method aliases skip a lookup per call.
        self._queue_wait = reg.histogram(
            "ioverlay_engine_queue_wait_seconds",
            "Receiver-buffer residence time of switched data messages",
            ("node",),
            buckets=QUEUE_WAIT_BUCKETS,
        ).labels(node=node)
        self.observe_wait = self._queue_wait.observe
        self._batch = reg.histogram(
            "ioverlay_engine_switch_batch_messages",
            "Messages moved per productive switch round",
            ("node",),
            buckets=BATCH_BUCKETS,
        ).labels(node=node)
        self.observe_batch = self._batch.observe
        # Per-hop node residence: enqueue (or source emit) to the forward
        # write that put the message on the outgoing link.  Rolled up the
        # observer tree, this is what gives the root true end-to-end
        # p50/p99 flow latency without shipping every trace event.
        self._hop = reg.histogram(
            "ioverlay_hop_latency_seconds",
            "Per-hop latency: arrival at a node to forward onto the next link",
            ("node",),
            buckets=QUEUE_WAIT_BUCKETS,
        ).labels(node=node)
        self.observe_hop = self._hop.observe

        # per-peer bound children, keyed by str(peer)
        self._by_peer: dict[tuple[str, str], CounterChild | GaugeChild] = {}
        # NodeId.__str__ is format work; trace ids reuse one cached
        # rendering per distinct sender instead of paying it per event.
        self._sender_strs: dict = {}
        # shared {"peer": label} detail dicts, one per peer label
        self._peer_details: dict[str, dict] = {}

    # ------------------------------------------------------------- child cache

    def _peer_child(self, metric, peer: str):
        key = (metric.name, peer)
        child = self._by_peer.get(key)
        if child is None:
            child = metric.labels(node=self.node, peer=peer)
            self._by_peer[key] = child
        return child

    def _tid(self, msg: "Message") -> str:
        """:func:`trace_id`, memoized on the message and with the sender
        rendering cached per NodeId (both are format/hash work the hot
        path should pay at most once per message)."""
        tid = msg._trace_id
        if tid is None:
            sender = self._sender_strs.get(msg.sender)
            if sender is None:
                sender = self._sender_strs[msg.sender] = str(msg.sender)
            tid = msg._trace_id = f"{sender}/{msg.app}#{msg.seq}"
        return tid

    def _peer_detail(self, peer: str) -> dict:
        detail = self._peer_details.get(peer)
        if detail is None:
            detail = self._peer_details[peer] = {"peer": peer}
        return detail

    # ------------------------------------------------------------ trace events
    #
    # Callers check ``ins.tracer.enabled`` first so a metrics-only run
    # never pays for trace-id construction.

    def trace_msg(self, time: float, event: str, msg: "Message",
                  peer: str | None = None) -> None:
        """Append one lifecycle event for ``msg`` to the trace ring.

        Everything is inlined into this one frame — the memoized trace
        id, the interned detail dict and the ring slot stores — because
        this runs for every lifecycle step of every (sampled) data
        message and extra call frames are the dominant per-event cost.
        Detail dicts are shared interned instances and ``msg._app``
        skips the property descriptor: the append allocates nothing but
        the (memoized) trace id.
        """
        tracer = self.tracer
        sample = tracer.sample
        if sample != 1 and msg.seq % sample:
            return
        tid = msg._trace_id
        if tid is None:
            sender = self._sender_strs.get(msg.sender)
            if sender is None:
                sender = self._sender_strs[msg.sender] = str(msg.sender)
            tid = msg._trace_id = f"{sender}/{msg._app}#{msg.seq}"
        if peer is None:
            detail = _NO_DETAIL
        else:
            detail = self._peer_details.get(peer)
            if detail is None:
                detail = self._peer_details[peer] = {"peer": peer}
        i = tracer._cursor
        tracer._times[i] = time
        tracer._nodes[i] = self.node
        tracer._kinds[i] = event
        tracer._tids[i] = tid
        tracer._apps[i] = msg._app
        tracer._details[i] = detail
        i += 1
        tracer._cursor = 0 if i == tracer.capacity else i
        tracer._recorded += 1

    def trace_port(self, time: float, event: str, peer: str) -> None:
        """Append a port-level event not tied to one message."""
        detail = self._peer_details.get(peer)
        if detail is None:
            detail = self._peer_details[peer] = {"peer": peer}
        self.tracer.append_raw(time, self.node, event, "", 0, detail)

    def trace_retry(self, time: float, msg: "Message", completed: bool) -> None:
        tracer = self.tracer
        sample = tracer.sample
        if sample != 1 and msg.seq % sample:
            return
        tracer.append_raw(
            time, self.node, EventType.RETRY, self._tid(msg), msg._app,
            _RETRY_DONE if completed else _RETRY_PARTIAL,
        )

    # ------------------------------------------------------------- rare events

    def on_broken_link(self, direction: str) -> None:
        self._broken_metric.labels(node=self.node, direction=direction).inc()

    def on_throttle_stall(self, direction: str, seconds: float) -> None:
        self._stall_metric.labels(node=self.node, direction=direction).inc(seconds)

    def set_buffer_gauges(
        self, recv: Mapping[str, int], send: Mapping[str, int]
    ) -> None:
        """Refresh occupancy gauges (called from the engine's report loop)."""
        for peer, depth in recv.items():
            self._peer_child(self._recv_gauge, peer).set(depth)
        for peer, depth in send.items():
            self._peer_child(self._send_gauge, peer).set(depth)

    # ---------------------------------------------------------------- scraping

    def collect(self) -> None:
        """Fold the shadow counters into the registry's children.

        Children are written only here, so ``child.value`` is exactly
        what was pushed on the previous collect and the delta keeps
        counters monotone.  Runs on every snapshot/export — the hot path
        never touches the registry.
        """
        for counts, metric in (
            (self.switched, self._switched_metric),
            (self.credit_stalls, self._credit_metric),
            (self.defers, self._defer_metric),
            (self.forwarded, self._forward_metric),
            (self.enqueued, self._enqueue_metric),
            (self.backpressure, self._backpressure_metric),
        ):
            for peer, count in counts.items():
                child = self._peer_child(metric, peer)
                if count > child.value:
                    child.inc(count - child.value)
        for value, child in (
            (self.n_switch_rounds, self._c_switch_rounds),
            (self.n_credit_epochs, self._c_credit_epochs),
            (self.n_retries, self._c_retries),
            (self.n_retry_completions, self._c_retry_completions),
            (self.n_drops, self._c_drops),
            (self.n_dropped_bytes, self._c_dropped_bytes),
            (self.n_domino, self._c_domino),
            (self.n_source, self._c_source),
            (self.n_delivers, self._c_delivers),
            (self.n_suspects, self._c_suspects),
            (self.n_probes, self._c_probes),
            (self.n_inactivity_deaths, self._c_inactivity_deaths),
            (self.n_connect_failures, self._c_connect_failures),
            (self.n_observer_drops, self._c_observer_drops),
            (self.n_observer_reconnects, self._c_observer_reconnects),
        ):
            if value > child.value:
                child.inc(value - child.value)
