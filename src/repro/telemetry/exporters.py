"""Render metrics and traces for external tooling.

Three output formats:

- **Prometheus text exposition** (:func:`to_prometheus`) — scrapeable /
  diff-able counters, gauges and histograms;
- **JSON snapshots** (:func:`to_json`) — the interchange form that
  travels in ``STATUS`` messages and that the observer merges into a
  cluster-wide aggregate;
- **Chrome trace-event JSON** (:func:`chrome_trace_events`,
  :func:`dump_chrome_trace`) — load the file in ``chrome://tracing`` or
  https://ui.perfetto.dev to see every node as a process row with
  instant events, plus one async track per message reconstructing its
  path source → sink.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import TraceEvent

__all__ = [
    "to_prometheus",
    "to_json",
    "write_prometheus",
    "chrome_trace_events",
    "dump_chrome_trace",
]

Snapshot = Mapping[str, Any]


def _as_snapshot(source: MetricsRegistry | Snapshot) -> Snapshot:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


# ----------------------------------------------------------------- Prometheus

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")

def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str], extra: Mapping[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(source: MetricsRegistry | Snapshot) -> str:
    """The Prometheus text exposition format (version 0.0.4)."""
    snapshot = _as_snapshot(source)
    lines: list[str] = []
    for name in sorted(snapshot):
        metric = snapshot[name]
        kind = metric["kind"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {_escape_help(metric['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in metric["series"]:
            labels = entry["labels"]
            if kind == "histogram":
                running = 0
                for bound, count in zip(entry["buckets"], entry["counts"]):
                    running += count
                    le = _format_labels(labels, {"le": _format_value(bound)})
                    lines.append(f"{name}_bucket{le} {running}")
                running += entry["counts"][-1]
                le = _format_labels(labels, {"le": "+Inf"})
                lines.append(f"{name}_bucket{le} {running}")
                lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(entry['sum'])}")
                lines.append(f"{name}_count{_format_labels(labels)} {entry['count']}")
            else:
                lines.append(f"{name}{_format_labels(labels)} {_format_value(entry['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(source: MetricsRegistry | Snapshot, path: str | Path) -> None:
    """Atomically write the Prometheus text dump to ``path``."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(to_prometheus(source))
    os.replace(tmp, path)


# ----------------------------------------------------------------------- JSON

def to_json(source: MetricsRegistry | Snapshot, indent: int | None = None) -> str:
    """The snapshot as a JSON document."""
    return json.dumps(_as_snapshot(source), sort_keys=True, indent=indent)


# ----------------------------------------------------------- Chrome trace JSON

def chrome_trace_events(events: Iterable[TraceEvent]) -> list[dict[str, Any]]:
    """Convert lifecycle events to the Chrome trace-event array format.

    Each overlay node becomes a *process* row (named via a metadata
    event) carrying thread-scoped instant events; each message id
    additionally becomes an async span ("b"/"n"/"e" events sharing the
    id), so selecting one message shows its hop-by-hop path.
    """
    events = sorted(events, key=lambda event: (event.time, event.node))
    pids: dict[str, int] = {}
    out: list[dict[str, Any]] = []

    def pid_for(node: str) -> int:
        pid = pids.get(node)
        if pid is None:
            pid = len(pids) + 1
            pids[node] = pid
            out.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": node},
            })
        return pid

    spans: dict[str, list[TraceEvent]] = {}
    for event in events:
        args: dict[str, Any] = {"trace_id": event.trace_id, "app": event.app}
        args.update(event.detail)
        out.append({
            "name": event.event,
            "cat": "lifecycle",
            "ph": "i",
            "s": "t",
            "ts": event.time * 1e6,
            "pid": pid_for(event.node),
            "tid": 0,
            "args": args,
        })
        if event.trace_id:
            spans.setdefault(event.trace_id, []).append(event)

    for tid, span in spans.items():
        first, last = span[0], span[-1]
        common = {"cat": "message", "name": tid, "id": tid}
        out.append({**common, "ph": "b", "ts": first.time * 1e6,
                    "pid": pid_for(first.node), "tid": 0,
                    "args": {"node": first.node, "event": first.event}})
        for event in span[1:-1]:
            out.append({**common, "ph": "n", "ts": event.time * 1e6,
                        "pid": pid_for(event.node), "tid": 0,
                        "args": {"node": event.node, "event": event.event}})
        out.append({**common, "ph": "e", "ts": last.time * 1e6,
                    "pid": pid_for(last.node), "tid": 0,
                    "args": {"node": last.node, "event": last.event}})
    return out


def dump_chrome_trace(events: Iterable[TraceEvent], path: str | Path) -> int:
    """Atomically write a ``chrome://tracing``-loadable JSON file.

    Returns the number of trace-event records written.
    """
    records = chrome_trace_events(events)
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps({"traceEvents": records, "displayTimeUnit": "ms"}))
    os.replace(tmp, path)
    return len(records)
