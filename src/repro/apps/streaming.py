"""A media streaming application on top of overlay dissemination.

The paper's three-layer model puts the *application* — producer and
interpreter of message payloads — above the algorithm; its Section 4
mentions "successfully and rapidly deploying a Windows-based MPEG-4
real-time streaming multicast application on iOverlay".  This module is
that layer, hardware-free: a constant-bit-rate frame source, a frame
codec, and a playout buffer with the classic streaming quality metrics
(startup delay, on-time/late frames, rebuffering events).

It plugs into any dissemination algorithm; :class:`StreamingTree` wires
it to the node-stress aware tree of Section 3.3.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.algorithms.trees import NodeStressAwareTree
from repro.core.algorithm import Disposition
from repro.core.ids import AppId
from repro.core.message import Message
from repro.errors import CodecError

_FRAME_HEADER = struct.Struct("!Id")  # frame index, media timestamp (s)


def pack_frame(index: int, media_time: float, size: int) -> bytes:
    """A frame payload: 12-byte header, zero-padded to ``size`` bytes."""
    header = _FRAME_HEADER.pack(index, media_time)
    if size < len(header):
        raise CodecError(f"frame size {size} smaller than header {len(header)}")
    return header + bytes(size - len(header))


def unpack_frame(payload: bytes) -> tuple[int, float]:
    if len(payload) < _FRAME_HEADER.size:
        raise CodecError("truncated frame payload")
    index, media_time = _FRAME_HEADER.unpack_from(payload)
    return index, media_time


@dataclass
class StreamStats:
    """Playback quality as the receiver experienced it."""

    on_time: int = 0
    late: int = 0
    duplicates: int = 0
    startup_delay: float | None = None
    rebuffer_events: int = 0
    highest_index: int = -1

    @property
    def received(self) -> int:
        return self.on_time + self.late

    def continuity(self) -> float:
        """Fraction of received frames that made their deadline."""
        return self.on_time / self.received if self.received else 0.0

    def missing(self) -> int:
        """Frames skipped entirely (gaps below the highest index seen).

        Duplicates are counted separately and never inflate ``received``,
        so the gap count is simply expected-minus-distinct-received.
        """
        return (self.highest_index + 1) - self.received if self.highest_index >= 0 else 0


@dataclass
class PlayoutBuffer:
    """Deadline bookkeeping for one receiver.

    Playback starts ``startup_delay`` seconds after the first frame
    arrives; frame *i* with media time ``m_i`` is due at
    ``playback_start + m_i``.  A late frame also re-arms the startup
    delay (a rebuffering event), as players do.
    """

    startup_delay: float = 2.0
    stats: StreamStats = field(default_factory=StreamStats)
    _playback_origin: float | None = None
    _first_media_time: float = 0.0
    _seen: set[int] = field(default_factory=set)

    def on_frame(self, index: int, media_time: float, now: float) -> bool:
        """Account one arriving frame; returns True if it is on time."""
        if index in self._seen:
            self.stats.duplicates += 1
            return True
        self._seen.add(index)
        self.stats.highest_index = max(self.stats.highest_index, index)
        if self._playback_origin is None:
            self._playback_origin = now + self.startup_delay
            self._first_media_time = media_time
            self.stats.startup_delay = self.startup_delay
        deadline = self._playback_origin + (media_time - self._first_media_time)
        if now <= deadline:
            self.stats.on_time += 1
            return True
        self.stats.late += 1
        # Rebuffer: stall playback so the stream can catch up.
        self.stats.rebuffer_events += 1
        self._playback_origin += now - deadline
        return False


class StreamingTree(NodeStressAwareTree):
    """The ns-aware dissemination tree carrying a CBR media stream.

    The source node produces real frame payloads (via the engine's
    ``produce_payload`` hook); every receiver interprets them through a
    playout buffer.  Configure the stream with ``frame_interval`` — the
    engine's source pacing should be set to the same value for CBR
    behaviour (see :func:`streaming_engine_config`).
    """

    def __init__(
        self,
        last_mile: float,
        frame_interval: float = 0.05,
        startup_delay: float = 2.0,
        seed: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(last_mile=last_mile, seed=seed, **kwargs)
        self.frame_interval = frame_interval
        self.playout = PlayoutBuffer(startup_delay=startup_delay)
        self.frames_produced = 0

    # --- producer side -----------------------------------------------------------

    def produce_payload(self, app: AppId, seq: int, size: int) -> bytes:
        self.frames_produced += 1
        return pack_frame(seq, seq * self.frame_interval, size)

    # --- consumer side -------------------------------------------------------------

    def on_data(self, msg: Message) -> Disposition:
        disposition = super().on_data(msg)  # meters + forwards to children
        if not self.is_source:
            try:
                index, media_time = unpack_frame(msg.payload)
            except CodecError:
                return disposition
            self.playout.on_frame(index, media_time, self.engine.now())
        return disposition

    @property
    def stream_stats(self) -> StreamStats:
        return self.playout.stats


def streaming_engine_config(frame_interval: float, buffer_capacity: int = 8):
    """EngineConfig for a CBR source: pacing = one frame per interval,
    small buffers (the paper: delay-sensitive applications want small
    per-node buffers so back pressure surfaces quickly)."""
    from repro.sim.engine import EngineConfig

    return EngineConfig(buffer_capacity=buffer_capacity, source_interval=frame_interval)
