"""Applications: producers/consumers of message payloads (the third tier)."""

from repro.apps.streaming import (
    PlayoutBuffer,
    StreamingTree,
    StreamStats,
    pack_frame,
    streaming_engine_config,
    unpack_frame,
)

__all__ = [
    "PlayoutBuffer",
    "StreamStats",
    "StreamingTree",
    "pack_frame",
    "streaming_engine_config",
    "unpack_frame",
]
