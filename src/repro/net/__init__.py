"""The live asyncio engine: real TCP sockets on localhost or wide-area."""

from repro.net.chaos import ChaosCluster, ChaosController
from repro.net.engine import AsyncioEngine, NetEngineConfig
from repro.net.observer_server import ObserverServer
from repro.net.proxy import ObserverProxy
from repro.net.queues import AsyncBoundedQueue
from repro.net.resilience import (
    BackoffPolicy,
    LinkHealth,
    ObserverOutbox,
    ResilienceConfig,
)

__all__ = [
    "AsyncBoundedQueue",
    "AsyncioEngine",
    "BackoffPolicy",
    "ChaosCluster",
    "ChaosController",
    "LinkHealth",
    "NetEngineConfig",
    "ObserverOutbox",
    "ObserverProxy",
    "ObserverServer",
    "ResilienceConfig",
]
