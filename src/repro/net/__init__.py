"""The live asyncio engine: real TCP sockets on localhost or wide-area."""

from repro.net.engine import AsyncioEngine, NetEngineConfig
from repro.net.observer_server import ObserverServer
from repro.net.proxy import ObserverProxy
from repro.net.queues import AsyncBoundedQueue

__all__ = [
    "AsyncBoundedQueue",
    "AsyncioEngine",
    "NetEngineConfig",
    "ObserverProxy",
    "ObserverServer",
]
