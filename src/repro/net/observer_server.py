"""The live observer: a TCP server wrapping the transport-agnostic core.

Every overlay node keeps one persistent connection to the observer (or
to a :mod:`repro.net.proxy` relaying to it); bootstrap requests, status
updates and traces flow up, control commands flow down the same socket.
"""

from __future__ import annotations

import asyncio
import time

from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.net.framing import (
    expect_hello,
    proxy_meta,
    read_message,
    unwrap_proxy,
    wrap_proxy_down,
    write_message,
)
from repro.observer.observer import Observer


class ObserverServer:
    """Serves the observer protocol on a TCP endpoint."""

    def __init__(self, addr: NodeId, bootstrap_fanout: int = 8, seed: int = 0,
                 poll_interval: float | None = 1.0,
                 lease_timeout: float | None = None) -> None:
        self.addr = addr
        self.observer = Observer(
            transport=self, bootstrap_fanout=bootstrap_fanout, seed=seed,
            lease_timeout=lease_timeout,
        )
        self.poll_interval = poll_interval
        self._writers: dict[NodeId, asyncio.StreamWriter] = {}
        #: node -> connection owner; differs from the node itself when the
        #: node reaches us through a proxy (Section 2.2's firewall relay).
        self._routes: dict[NodeId, NodeId] = {}
        self._server: asyncio.AbstractServer | None = None
        self._poll_task: asyncio.Task | None = None
        self._running = False
        #: total frames / wire bytes received on the root's sockets — the
        #: quantity the aggregation tree exists to reduce (what the
        #: fig_observer_scaling experiment measures).
        self.frames_in = 0
        self.bytes_in = 0

    # --------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._running = True
        self._server = await asyncio.start_server(
            self._accept, host=self.addr.ip, port=self.addr.port
        )
        if self.addr.port == 0:
            actual = self._server.sockets[0].getsockname()[1]
            self.addr = NodeId(self.addr.ip, actual)
        if self.poll_interval is not None:
            self._poll_task = asyncio.ensure_future(self._poll_loop())

    async def stop(self) -> None:
        self._running = False
        if self._poll_task is not None:
            self._poll_task.cancel()
            self._poll_task = None
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------- ObserverTransport

    def observer_send(self, node: NodeId, msg: Message) -> None:
        owner = self._routes.get(node, node)
        writer = self._writers.get(owner)
        if writer is None or writer.is_closing():
            return
        if owner != node:
            # Wrap for the proxy, which routes to the right node downstream.
            msg = wrap_proxy_down(self.addr, node, msg)
        write_message(writer, msg)

    def observer_now(self) -> float:
        return time.monotonic()

    # ------------------------------------------------------------- connections

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            node = await expect_hello(reader)
        except asyncio.CancelledError:
            writer.close()
            return
        except Exception:
            writer.close()
            return
        self._writers[node] = writer
        try:
            while self._running:
                try:
                    msg = await read_message(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                except asyncio.CancelledError:
                    break
                self.frames_in += 1
                self.bytes_in += msg.size
                if msg.type == MsgType.PROXY:
                    self._handle_proxied(node, msg)
                elif msg.type == MsgType.W_AGG:
                    self._handle_agg_frame(node, msg)
                elif msg.type == MsgType.FLOW_QUERY:
                    self._handle_flow_query(node, msg)
                else:
                    self.observer.on_message(msg)
        finally:
            if self._writers.get(node) is writer:
                del self._writers[node]
                self.observer.mark_down(node)
                for routed, owner in list(self._routes.items()):
                    if owner == node:
                        del self._routes[routed]
                        self.observer.mark_down(routed)
            writer.close()

    def _handle_proxied(self, proxy: NodeId, envelope: Message) -> None:
        """Unwrap a frame relayed on a proxy's single upstream connection."""
        inner = unwrap_proxy(envelope)
        origin = NodeId.parse(proxy_meta(envelope)["origin"])
        self._routes[origin] = proxy
        self.observer.on_message(inner)

    def _handle_agg_frame(self, aggregator: NodeId, msg: Message) -> None:
        """An aggregation-tree flush: learn member routes, then fold it in.

        Every member listed in the roll-up is reachable *through* the
        aggregator's connection, so downward control messages to any of
        them are wrapped for that single socket.
        """
        try:
            for text in msg.fields().get("members", []):
                self._routes[NodeId.parse(text)] = aggregator
        except Exception:
            return
        self.observer.on_message(msg)

    def _handle_flow_query(self, client: NodeId, msg: Message) -> None:
        """Answer a causal-path query down the asking connection."""
        writer = self._writers.get(client)
        if writer is None or writer.is_closing():
            return
        try:
            tid = str(msg.fields().get("trace_id", ""))
        except Exception:
            return
        report = self.observer.flow_report(tid)
        write_message(writer, Message.with_fields(
            MsgType.FLOW_REPLY, self.addr, 0, **report
        ))

    async def _poll_loop(self) -> None:
        assert self.poll_interval is not None
        while self._running:
            await asyncio.sleep(self.poll_interval)
            self.observer.poll_all()
            # Lease sweep: a node silent past its lease (partitioned, or
            # dead without the TCP close ever reaching us) is torn down
            # here instead of lingering in the bootstrap view forever.
            for node in self.observer.expire_leases():
                writer = self._writers.pop(node, None)
                if writer is not None:
                    writer.close()
