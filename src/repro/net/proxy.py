"""The observer proxy: fan many node connections into one observer link.

The paper adds a proxy because Windows limits backlogged connections and
desktop observers sit behind firewalls: "the status updates from overlay
nodes are submitted to the proxy, who relays them with a single
connection to the observer" (Section 2.2), letting the observer handle
thousands of virtualized nodes.

Two operating modes share one class:

**Relay mode** (``flush_interval=None``, the default) is the byte
funnel of the original paper: every upward frame is wrapped in a
``PROXY`` envelope tagged with the originating node; downstream
envelopes carry a destination and are unwrapped here.  Envelopes from a
nested proxy are forwarded unchanged (only their member routes are
learned), so funnels compose.

**Aggregation mode** (``flush_interval`` set) turns the proxy into a
*reducing* node of an observer tree.  Instead of relaying every child
frame it:

- absorbs ``STATUS`` frames, keeping only each child's latest report;
- polls its direct node children itself (the upstream observer skips
  aggregated members entirely);
- merges the children's metric snapshots locally — counters summed,
  gauges last-write, histogram buckets bucket-wise — and forwards only
  the **delta since the last successful flush** upward;
- forwards head-sampled lifecycle trace events from the co-located
  worker telemetry (and from child aggregators) under a per-flush
  budget;
- rolls the subtree's membership and departures into the same ``W_AGG``
  frame, which doubles as the subtree's lease-renewal heartbeat.

Aggregating proxies compose into multi-level trees: a ``W_AGG`` frame
arriving from a child aggregator is folded into this proxy's own state
rather than forwarded, so the root observer reconstructs the fleet view
from O(tree-depth) hops instead of O(nodes) connections.

Aggregation mode also supervises its upstream link: on a drop it
redials under bounded exponential backoff, replays the remembered
``BOOT`` frames of every member, and resynchronizes the delta stream by
flushing the *full* accumulated snapshot (``full=True``), so whatever
state the upstream lost — or double-counts it would otherwise apply —
is reconciled.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from repro.core.ids import CONTROL_APP, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.net.framing import (
    expect_hello,
    open_identified,
    peek_frame_type,
    proxy_frame_bytes,
    proxy_meta,
    read_message,
    unwrap_proxy,
    wrap_proxy_up,
    wrap_proxy_up_bytes,
    write_message,
)
from repro.net.resilience import BackoffPolicy, ObserverOutbox
from repro.telemetry.metrics import (
    merge_snapshots,
    snapshot_delta,
    snapshot_regressed,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry import Telemetry


class ObserverProxy:
    """Relays or pre-reduces node <-> observer traffic over one upstream link."""

    def __init__(
        self,
        addr: NodeId,
        observer_addr: NodeId,
        *,
        flush_interval: float | None = None,
        telemetry: "Telemetry | None" = None,
        trace_budget: int = 256,
        outbox_capacity: int = 1024,
        backoff: BackoffPolicy | None = None,
    ) -> None:
        self.addr = addr
        self.observer_addr = observer_addr
        #: seconds between roll-up flushes; ``None`` = pure relay mode
        self.flush_interval = flush_interval
        #: co-located worker telemetry whose tracer feeds forwarded events
        self.telemetry = telemetry
        #: max local trace events forwarded per flush (head-sampled already)
        self.trace_budget = trace_budget
        self._backoff = backoff or BackoffPolicy(base=0.05, maximum=2.0)
        self._server: asyncio.AbstractServer | None = None
        self._upstream_writer: asyncio.StreamWriter | None = None
        self._upstream_task: asyncio.Task | None = None
        self._flush_task: asyncio.Task | None = None
        self._downstream: dict[NodeId, asyncio.StreamWriter] = {}
        #: downstream connections known to be proxies (they sent PROXY/W_AGG)
        self._child_proxies: set[NodeId] = set()
        #: nested member origin -> direct child that owns the route down
        self._routes: dict[NodeId, NodeId] = {}
        self._running = False
        self.relayed_up = 0
        self.relayed_down = 0

        # ---- aggregation state (flush_interval set) -----------------------
        #: origin str -> latest status fields (metrics stripped)
        self._child_status: dict[str, dict] = {}
        self._status_dirty: set[str] = set()
        #: metrics key (origin str, or "subtree:<child>") -> cumulative snapshot
        self._child_metrics: dict[str, dict] = {}
        #: merged snapshot as of the last *successful* flush (delta baseline)
        self._acked_merged: dict = {}
        #: full-resync pending: first flush after (re)connect replaces, not merges
        self._resync = True
        #: origin str -> packed BOOT frame bytes, replayed after a redial
        #: (hex-encoded only when riding inside a W_AGG JSON ``boots`` map)
        self._boot_frames: dict[str, bytes] = {}
        #: members that left since the last flush (reported once)
        self._departed: set[str] = set()
        self._pending_traces: list[dict] = []
        self._trace_cursor = 0
        self.trace_dropped = 0
        #: relay-path frames awaiting the upstream while it is down
        self._outbox = ObserverOutbox(outbox_capacity)
        self.outbox_drops = 0
        self.agg_flushes = 0
        self.agg_absorbed = 0  # STATUS/W_AGG frames folded instead of relayed
        self.boots_replayed = 0
        self.upstream_reconnects = 0
        self._connected = asyncio.Event()

    @property
    def aggregating(self) -> bool:
        return self.flush_interval is not None

    # ------------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        self._running = True
        # Bind before dialing upstream: the HELLO identity and every
        # envelope origin must carry the *final* address, which with
        # port 0 is only known once the server socket exists.
        self._server = await asyncio.start_server(
            self._accept, host=self.addr.ip, port=self.addr.port
        )
        if self.addr.port == 0:
            actual = self._server.sockets[0].getsockname()[1]
            self.addr = NodeId(self.addr.ip, actual)
        try:
            reader, writer = await open_identified(self.observer_addr, self.addr)
        except BaseException:
            self._server.close()
            self._server = None
            self._running = False
            raise
        self._upstream_writer = writer
        self._connected.set()
        if self.aggregating:
            self._upstream_task = asyncio.ensure_future(self._upstream_supervisor(reader))
            self._flush_task = asyncio.ensure_future(self._flush_loop())
        else:
            self._upstream_task = asyncio.ensure_future(self._upstream_reader(reader))

    async def stop(self) -> None:
        self._running = False
        for task in (self._upstream_task, self._flush_task):
            if task is not None:
                task.cancel()
        self._upstream_task = None
        self._flush_task = None
        if self._upstream_writer is not None:
            self._upstream_writer.close()
            self._upstream_writer = None
        for writer in self._downstream.values():
            writer.close()
        self._downstream.clear()
        self._child_proxies.clear()
        self._routes.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- downstream side

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            node = await expect_hello(reader)
        except asyncio.CancelledError:
            writer.close()
            return
        except Exception:
            writer.close()
            return
        self._downstream[node] = writer
        try:
            while self._running:
                try:
                    msg = await read_message(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError,
                        asyncio.CancelledError):
                    break
                self._on_child_frame(node, msg)
        finally:
            if self._downstream.get(node) is writer:
                del self._downstream[node]
                self._child_gone(node)
            writer.close()

    def _child_gone(self, node: NodeId) -> None:
        """A direct child dropped: purge its aggregation state.

        Nothing of the child (or, for a child aggregator, of its whole
        subtree) may linger in the status or metrics caches — a stale
        series would otherwise keep merging into every future flush and
        a restarted child would double-count against its own ghost.
        """
        self._child_proxies.discard(node)
        origins = [str(node)]
        origins.extend(str(o) for o, owner in self._routes.items() if owner == node)
        for origin, owner in list(self._routes.items()):
            if owner == node:
                del self._routes[origin]
        if not self.aggregating:
            return
        for origin in origins:
            removed = (
                (self._child_status.pop(origin, None) is not None)
                | (self._child_metrics.pop(origin, None) is not None)
                | (self._boot_frames.pop(origin, None) is not None)
            )
            self._status_dirty.discard(origin)
            if removed:
                self._departed.add(origin)
        self._child_metrics.pop(f"subtree:{node}", None)

    def _on_child_frame(self, origin: NodeId, msg: Message) -> None:
        """Route one upward frame: fold it into the roll-up or relay it."""
        if msg.type == MsgType.PROXY:
            # A nested relay proxy's envelope: learn the member route,
            # remember BOOTs passing through, forward unchanged.
            self._child_proxies.add(origin)
            try:
                member = NodeId.parse(proxy_meta(msg)["origin"])
            except Exception:
                return
            self._routes[member] = origin
            if self.aggregating and peek_frame_type(msg) == MsgType.BOOT:
                self._boot_frames[str(member)] = proxy_frame_bytes(msg)
            self._send_up(msg)
            return
        if msg.type == MsgType.W_AGG:
            self._child_proxies.add(origin)
            if self.aggregating:
                self._absorb_child_agg(origin, msg)
            else:
                # Relay mode still composes: learn routes, pass through.
                try:
                    for text in msg.fields().get("members", []):
                        self._routes[NodeId.parse(text)] = origin
                except Exception:
                    pass
                self._send_up(msg)
            return
        if self.aggregating:
            if msg.type == MsgType.STATUS:
                self._absorb_status(origin, msg)
                return
            if msg.type == MsgType.BOOT:
                self._boot_frames[str(origin)] = msg.pack()
        self._send_up(wrap_proxy_up(self.addr, origin, msg))

    def _absorb_status(self, origin: NodeId, msg: Message) -> None:
        """Keep only the child's latest report; metrics ride the delta path."""
        try:
            fields = msg.fields()
        except Exception:
            return
        key = str(origin)
        metrics = fields.pop("metrics", None)
        self._child_status[key] = fields
        self._status_dirty.add(key)
        if metrics:
            self._child_metrics[key] = metrics
        self.agg_absorbed += 1

    def _absorb_child_agg(self, child: NodeId, msg: Message) -> None:
        """Fold a child aggregator's flush into this proxy's own state."""
        try:
            fields = msg.fields()
        except Exception:
            return
        for text in fields.get("members", []):
            self._routes[NodeId.parse(text)] = child
        for origin in fields.get("departed", []):
            self._child_status.pop(origin, None)
            self._child_metrics.pop(origin, None)
            self._boot_frames.pop(origin, None)
            self._status_dirty.discard(origin)
            self._departed.add(origin)
        for origin, frame_hex in fields.get("boots", {}).items():
            self._boot_frames[origin] = bytes.fromhex(frame_hex)
        for origin, status_fields in fields.get("statuses", {}).items():
            self._child_status[origin] = status_fields
            self._status_dirty.add(origin)
        delta = fields.get("metrics") or {}
        if delta:
            key = f"subtree:{child}"
            held = self._child_metrics.get(key)
            if fields.get("full") or held is None:
                self._child_metrics[key] = delta
            else:
                self._child_metrics[key] = merge_snapshots([held, delta])
        self._pending_traces.extend(fields.get("traces", []))
        self.trace_dropped += int(fields.get("trace_dropped", 0))
        self.agg_absorbed += 1

    # --------------------------------------------------------------- upstream side

    def _send_up(self, envelope: Message) -> None:
        upstream = self._upstream_writer
        if upstream is None or upstream.is_closing():
            if self.aggregating:
                # Queue relay-path frames for the redial; bounded, oldest out.
                if self._outbox.push(envelope) is not None:
                    self.outbox_drops += 1
            return
        write_message(upstream, envelope)
        self.relayed_up += 1

    async def _upstream_reader(self, reader: asyncio.StreamReader) -> None:
        while self._running:
            try:
                envelope = await read_message(reader)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            if envelope.type != MsgType.PROXY:
                continue
            dest = NodeId.parse(proxy_meta(envelope)["dest"])
            writer = self._downstream.get(dest)
            if writer is not None:
                if writer.is_closing():
                    continue
                write_message(writer, unwrap_proxy(envelope))
                self.relayed_down += 1
                continue
            # Not a direct child: route the envelope one level down the
            # tree unchanged — the owning child proxy unwraps it.
            owner = self._routes.get(dest)
            writer = self._downstream.get(owner) if owner is not None else None
            if writer is None or writer.is_closing():
                continue
            write_message(writer, envelope)
            self.relayed_down += 1

    async def _upstream_supervisor(self, reader: asyncio.StreamReader) -> None:
        """Keep the upstream link alive: read until it drops, then redial.

        Every reconnect starts a fresh aggregation epoch: the delta
        baseline resets (the next flush carries the full accumulated
        snapshot with ``full=True``), every remembered BOOT frame is
        replayed so the upstream's bootstrap/routing view is rebuilt,
        and all cached statuses are re-marked dirty.
        """
        while self._running:
            await self._upstream_reader(reader)
            if not self._running:
                return
            self._connected.clear()
            if self._upstream_writer is not None:
                self._upstream_writer.close()
                self._upstream_writer = None
            attempt = 0
            while self._running:
                try:
                    reader, writer = await open_identified(self.observer_addr, self.addr)
                    break
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    await asyncio.sleep(self._backoff.delay(attempt))
                    attempt += 1
            if not self._running:
                return
            self._upstream_writer = writer
            self.upstream_reconnects += 1
            self._on_reconnected()
            self._connected.set()

    def _on_reconnected(self) -> None:
        """Reset aggregator state for the new upstream epoch."""
        self._resync = True
        self._acked_merged = {}
        self._status_dirty.update(self._child_status)
        for origin, frame_bytes in self._boot_frames.items():
            self._send_up(wrap_proxy_up_bytes(self.addr, origin, frame_bytes))
            self.boots_replayed += 1
        # Coalesced replay: write every queued frame, popping each only
        # after its write was accepted — the transport flushes the batch.
        upstream = self._upstream_writer
        if upstream is None or upstream.is_closing():
            return
        for head in self._outbox.snapshot():
            write_message(upstream, head)
            self.relayed_up += 1
            self._outbox.pop_head(head)

    # ------------------------------------------------------------------- flushing

    async def _flush_loop(self) -> None:
        assert self.flush_interval is not None
        while self._running:
            await asyncio.sleep(self.flush_interval)
            if not self._running:
                return
            await self.flush()
            self._poll_children()

    def _poll_children(self) -> None:
        """Request fresh statuses from direct *node* children.

        Child proxies are never polled — they run their own flush loops.
        Replies arrive before the next tick and are absorbed into the
        roll-up, so the upstream observer needs no per-node fan-out.
        """
        request = Message.with_fields(
            MsgType.REQUEST, self.addr, CONTROL_APP
        )
        for node, writer in list(self._downstream.items()):
            if node in self._child_proxies or writer.is_closing():
                continue
            write_message(writer, request.clone())

    def _collect_local_traces(self) -> None:
        """Pull fresh head-sampled events from the co-located tracer."""
        if self.telemetry is None:
            return
        events, self._trace_cursor = self.telemetry.tracer.events_since(
            self._trace_cursor
        )
        self._pending_traces.extend(event.to_dict() for event in events)

    async def flush(self) -> bool:
        """Send one roll-up frame upstream; returns True when it left.

        The delta baseline advances only after the frame is written *and
        drained*: a flush lost to a dying connection keeps its changes
        in the baseline difference, so the stream resynchronizes on the
        next successful flush instead of silently losing a delta.
        """
        merged = merge_snapshots(
            [snap for snap in self._child_metrics.values() if snap]
        ) if self._child_metrics else {}
        if not self._resync and snapshot_regressed(self._acked_merged, merged):
            # A child died or restarted: series vanished or counters went
            # backwards.  A delta can't express that — switch this flush
            # to a full replacement so no stale series survives upstream
            # and a restarted child is never double-counted.
            self._resync = True
            self._acked_merged = {}
        delta = snapshot_delta(self._acked_merged, merged)
        self._collect_local_traces()
        if len(self._pending_traces) > self.trace_budget:
            self.trace_dropped += len(self._pending_traces) - self.trace_budget
            del self._pending_traces[self.trace_budget:]
        statuses = {
            origin: self._child_status[origin]
            for origin in self._status_dirty if origin in self._child_status
        }
        members = sorted(set(self._child_status) | {str(o) for o in self._routes}
                         | {str(n) for n in self._downstream
                            if n not in self._child_proxies})
        frame = Message.with_fields(
            MsgType.W_AGG, self.addr, 0,
            members=members,
            departed=sorted(self._departed),
            statuses=statuses,
            metrics=delta,
            traces=self._pending_traces,
            trace_dropped=self.trace_dropped,
            # JSON payload: raw frame bytes must be hex-armoured here (and
            # only here — the relay path ships them raw).
            boots={origin: frame.hex() for origin, frame in self._boot_frames.items()},
            full=self._resync,
        )
        upstream = self._upstream_writer
        if upstream is None or upstream.is_closing():
            return False
        try:
            write_message(upstream, frame)
            await upstream.drain()
        except (ConnectionError, OSError):
            return False
        self._acked_merged = merged
        self._resync = False
        self._status_dirty.clear()
        self._departed.clear()
        self._pending_traces = []
        self.trace_dropped = 0
        self.agg_flushes += 1
        self.relayed_up += 1
        return True
