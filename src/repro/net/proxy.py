"""The observer proxy: fan many node connections into one observer link.

The paper adds a proxy because Windows limits backlogged connections and
desktop observers sit behind firewalls: "the status updates from overlay
nodes are submitted to the proxy, who relays them with a single
connection to the observer" (Section 2.2), letting the observer handle
thousands of virtualized nodes.

Upstream frames are wrapped in ``PROXY`` envelopes tagged with the
originating node so the observer can route replies; downstream
envelopes carry a destination and are unwrapped here.
"""

from __future__ import annotations

import asyncio

from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.net.framing import expect_hello, open_identified, read_message, write_message


class ObserverProxy:
    """Relays node <-> observer traffic over a single upstream connection."""

    def __init__(self, addr: NodeId, observer_addr: NodeId) -> None:
        self.addr = addr
        self.observer_addr = observer_addr
        self._server: asyncio.AbstractServer | None = None
        self._upstream_writer: asyncio.StreamWriter | None = None
        self._upstream_task: asyncio.Task | None = None
        self._downstream: dict[NodeId, asyncio.StreamWriter] = {}
        self._running = False
        self.relayed_up = 0
        self.relayed_down = 0

    async def start(self) -> None:
        self._running = True
        # Bind before dialing upstream: the HELLO identity and every
        # envelope origin must carry the *final* address, which with
        # port 0 is only known once the server socket exists.
        self._server = await asyncio.start_server(
            self._accept, host=self.addr.ip, port=self.addr.port
        )
        if self.addr.port == 0:
            actual = self._server.sockets[0].getsockname()[1]
            self.addr = NodeId(self.addr.ip, actual)
        try:
            reader, writer = await open_identified(self.observer_addr, self.addr)
        except BaseException:
            self._server.close()
            self._server = None
            self._running = False
            raise
        self._upstream_writer = writer
        self._upstream_task = asyncio.ensure_future(self._upstream_reader(reader))

    async def stop(self) -> None:
        self._running = False
        if self._upstream_task is not None:
            self._upstream_task.cancel()
            self._upstream_task = None
        if self._upstream_writer is not None:
            self._upstream_writer.close()
            self._upstream_writer = None
        for writer in self._downstream.values():
            writer.close()
        self._downstream.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- downstream side

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            node = await expect_hello(reader)
        except asyncio.CancelledError:
            writer.close()
            return
        except Exception:
            writer.close()
            return
        self._downstream[node] = writer
        try:
            while self._running:
                try:
                    msg = await read_message(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError,
                        asyncio.CancelledError):
                    break
                self._relay_up(node, msg)
        finally:
            if self._downstream.get(node) is writer:
                del self._downstream[node]
            writer.close()

    def _relay_up(self, origin: NodeId, msg: Message) -> None:
        upstream = self._upstream_writer
        if upstream is None or upstream.is_closing():
            return
        envelope = Message.with_fields(
            MsgType.PROXY, self.addr, 0, origin=str(origin), frame=msg.pack().hex()
        )
        write_message(upstream, envelope)
        self.relayed_up += 1

    # --------------------------------------------------------------- upstream side

    async def _upstream_reader(self, reader: asyncio.StreamReader) -> None:
        while self._running:
            try:
                envelope = await read_message(reader)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            if envelope.type != MsgType.PROXY:
                continue
            fields = envelope.fields()
            dest = NodeId.parse(fields["dest"])
            writer = self._downstream.get(dest)
            if writer is None or writer.is_closing():
                continue
            write_message(writer, Message.unpack(bytes.fromhex(fields["frame"])))
            self.relayed_down += 1
