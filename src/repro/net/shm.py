"""Shared-memory ring transport: the co-machine fast path for peer links.

Cross-worker traffic normally pays a syscall per frame on both sides of
every hop.  When two peers can prove they share a machine (identical
boot cookie, exchanged in the HELLO frame), the dialer offers a pair of
single-producer/single-consumer ring buffers in POSIX shared memory —
one per direction — and the data plane moves to plain ``memcpy``:
frames are appended to a pending buffer by ``send_message`` and flushed
into the ring in one batch per ``drain()``, exactly the duck-typed
endpoint surface (``recv_message``/``send_message``/``drain``/``close``)
the engine's IO loops already speak for loopback channels.

The TCP connection that carried the HELLO is **kept open** but demoted
to a control channel with two jobs:

- **liveness** — a process death (even SIGKILL) closes its sockets, so
  the surviving side reads EOF and runs the very same ``_peer_failed``
  domino a broken socket triggers.  Rings alone can never signal death;
  the socket can, so the failure-detection ladder (and the watchdog's
  HEARTBEAT probes, which simply ride the ring like any other frame)
  is unchanged;
- **doorbells** — a consumer that finds its ring empty parks on the
  socket after setting a ``parked`` flag in the ring header; the
  producer sends one wake-up byte when it publishes into a parked ring.
  The same protocol runs in reverse for producers waiting on a full
  ring.  A short poll fallback bounds the damage of any lost wake-up.

Ring layout (one shared-memory segment per direction)::

    [64-byte header][capacity bytes of ring data]
    header: tail u64 | head u64 | producer_closed u8 | consumer_closed u8
            | consumer_parked u8 | producer_parked u8 | pad | capacity u64

``tail``/``head`` are monotonically increasing byte positions (index =
position % capacity), so empty is ``head == tail`` and full is ``tail -
head == capacity`` with no reserved slot.  The byte stream carries
ordinary wire frames (24-byte header + payload, the same bytes TCP
would carry); partial frames across a sweep are reassembled on the
consumer side.

Lifecycle: the dialer creates both segments and unlinks them on close
(its ``resource_tracker`` covers SIGKILL); the acceptor attaches and
*unregisters* from its tracker (Python 3.11 registers on attach too,
which would otherwise unlink a live segment when the attacher exits).
"""

from __future__ import annotations

import asyncio
import os
import struct
from collections import deque
from multiprocessing import resource_tracker, shared_memory

from repro.core.ids import NodeId
from repro.core.message import HEADER_SIZE, Message
from repro.core.msgtypes import MsgType
from repro.errors import CodecError

#: default ring capacity per direction (bytes) when shm is enabled
DEFAULT_RING_BYTES = 1 << 20

#: poll fallback while parked, in case a doorbell byte is lost (safety
#: net only — TCP does not lose bytes, so this almost never fires)
PARK_POLL = 0.05

_POS = struct.Struct("<Q")
_PAYLOAD_LEN = struct.Struct("!I")  # big-endian, matches the wire header

_HDR_TAIL = 0
_HDR_HEAD = 8
_HDR_PRODUCER_CLOSED = 16
_HDR_CONSUMER_CLOSED = 17
_HDR_CONSUMER_PARKED = 18
_HDR_PRODUCER_PARKED = 19
_HDR_CAPACITY = 24
_HDR_SIZE = 64

_cookie_cache: str | None = None


def machine_cookie() -> str:
    """An identifier all processes on this machine (boot) share.

    Two peers exchanging equal cookies prove they can map the same
    shared-memory segments.  The kernel's boot id is ideal: stable for
    the life of the machine, different across machines and reboots.
    """
    global _cookie_cache
    if _cookie_cache is None:
        try:
            with open("/proc/sys/kernel/random/boot_id") as f:
                _cookie_cache = f.read().strip()
        except OSError:  # non-Linux: fall back to the hostname
            _cookie_cache = f"host:{os.uname().nodename}"
    return _cookie_cache


class RingBuffer:
    """One SPSC byte ring over a ``multiprocessing.shared_memory`` segment.

    Positions are monotonic u64 counters published *after* the bytes
    they cover are written, so the consumer never observes a position
    ahead of valid data.  Exactly one process writes ``tail`` (the
    producer) and one writes ``head`` (the consumer); the closed/parked
    flags are single bytes, each written by exactly one side.
    """

    __slots__ = ("name", "capacity", "_shm", "_mem", "_released")

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int) -> None:
        self.name = shm.name
        self.capacity = capacity
        self._shm = shm
        self._mem = shm.buf
        self._released = False

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES) -> "RingBuffer":
        shm = shared_memory.SharedMemory(create=True, size=_HDR_SIZE + capacity)
        # Segments start zeroed; only the capacity needs recording.
        _POS.pack_into(shm.buf, _HDR_CAPACITY, capacity)
        return cls(shm, capacity)

    @classmethod
    def attach(cls, name: str) -> "RingBuffer":
        shm = shared_memory.SharedMemory(name=name)
        # Python 3.11 registers attached segments with the resource
        # tracker as if we created them; undo that, or this process's
        # exit would unlink a segment the creator still owns.
        try:
            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker variance across versions
            pass
        (capacity,) = _POS.unpack_from(shm.buf, _HDR_CAPACITY)
        if capacity <= 0 or _HDR_SIZE + capacity > shm.size:
            shm.close()
            raise ValueError(f"shm segment {name!r} carries a bogus capacity {capacity}")
        return cls(shm, capacity)

    # --- header accessors ------------------------------------------------------

    def _pos(self, offset: int) -> int:
        return _POS.unpack_from(self._mem, offset)[0]

    def _set_pos(self, offset: int, value: int) -> None:
        _POS.pack_into(self._mem, offset, value)

    def _flag(self, offset: int) -> bool:
        return self._mem[offset] != 0

    def _set_flag(self, offset: int, value: bool) -> None:
        self._mem[offset] = 1 if value else 0

    @property
    def producer_closed(self) -> bool:
        return self._flag(_HDR_PRODUCER_CLOSED)

    @property
    def consumer_closed(self) -> bool:
        return self._flag(_HDR_CONSUMER_CLOSED)

    @property
    def consumer_parked(self) -> bool:
        return self._flag(_HDR_CONSUMER_PARKED)

    @property
    def producer_parked(self) -> bool:
        return self._flag(_HDR_PRODUCER_PARKED)

    def close_producer(self) -> None:
        self._set_flag(_HDR_PRODUCER_CLOSED, True)

    def close_consumer(self) -> None:
        self._set_flag(_HDR_CONSUMER_CLOSED, True)

    def park_consumer(self, parked: bool) -> None:
        self._set_flag(_HDR_CONSUMER_PARKED, parked)

    def park_producer(self, parked: bool) -> None:
        self._set_flag(_HDR_PRODUCER_PARKED, parked)

    # --- data path -------------------------------------------------------------

    @property
    def readable(self) -> int:
        return self._pos(_HDR_TAIL) - self._pos(_HDR_HEAD)

    @property
    def writable(self) -> int:
        return self.capacity - self.readable

    def write_some(self, data: memoryview, offset: int = 0) -> int:
        """Producer: copy as much of ``data[offset:]`` as fits; returns
        the byte count written (0 when the ring is full)."""
        tail = self._pos(_HDR_TAIL)
        free = self.capacity - (tail - self._pos(_HDR_HEAD))
        n = min(free, len(data) - offset)
        if n <= 0:
            return 0
        idx = tail % self.capacity
        first = min(n, self.capacity - idx)
        base = _HDR_SIZE
        self._mem[base + idx : base + idx + first] = data[offset : offset + first]
        if n > first:
            self._mem[base : base + n - first] = data[offset + first : offset + n]
        self._set_pos(_HDR_TAIL, tail + n)  # publish only after the copy
        return n

    def read_available(self) -> bytes:
        """Consumer: copy out and consume every readable byte."""
        head = self._pos(_HDR_HEAD)
        n = self._pos(_HDR_TAIL) - head
        if n <= 0:
            return b""
        idx = head % self.capacity
        first = min(n, self.capacity - idx)
        base = _HDR_SIZE
        if n <= first:
            out = bytes(self._mem[base + idx : base + idx + n])
        else:
            out = bytes(self._mem[base + idx : base + idx + first]) + bytes(
                self._mem[base : base + n - first]
            )
        self._set_pos(_HDR_HEAD, head + n)
        return out

    # --- lifecycle -------------------------------------------------------------

    def release(self, unlink: bool) -> None:
        """Drop this side's mapping; the creator also unlinks the name.

        Unlinking while the peer is still attached is safe (POSIX keeps
        the segment alive until the last mapping closes); a missing name
        means the other side or a resource tracker got there first.
        """
        if self._released:
            return
        self._released = True
        self._mem = memoryview(b"")
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - platform variance
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


class ShmEndpoint:
    """Both halves of one shm peer link: reader *and* writer object.

    Slots into the engine's ``_Peer.reader``/``_Peer.writer`` exactly
    like :class:`repro.net.virtual.LoopbackEndpoint`:
    :func:`~repro.net.framing.read_message` and
    :func:`~repro.net.framing.write_message` dispatch here on the
    ``recv_message``/``send_message`` attributes.

    ``send_message`` only appends to a pending buffer; ``drain()``
    flushes the whole pending batch into the outbound ring — that is
    the writev-style "one flush per destination per wakeup" the batched
    sender loop relies on.  ``recv_message`` sweeps every available
    byte out of the inbound ring per wakeup and parses frames from the
    reassembly buffer, so a burst of N frames costs one ring sweep, not
    N socket reads.
    """

    transport_kind = "shm"

    def __init__(
        self,
        ring_out: RingBuffer,
        ring_in: RingBuffer,
        sock_reader: asyncio.StreamReader,
        sock_writer: asyncio.StreamWriter,
        owns_rings: bool,
        max_payload: int,
    ) -> None:
        self._out = ring_out
        self._in = ring_in
        self._sock_reader = sock_reader
        self._sock_writer = sock_writer
        self._owns_rings = owns_rings
        self._max_payload = max_payload
        self._pending = bytearray()
        self._stream = bytearray()  # inbound bytes awaiting a full frame
        self._frames: deque[Message] = deque()
        self._closed = False
        self._eof = False
        self._doorbell = asyncio.Event()
        self._listener = asyncio.ensure_future(self._listen())

    # --- socket control channel ------------------------------------------------

    async def _listen(self) -> None:
        """Own the socket reader: doorbell bytes wake us, EOF kills us."""
        try:
            while True:
                data = await self._sock_reader.read(4096)
                if not data:
                    break
                self._doorbell.set()
        except (ConnectionError, OSError):
            pass
        self._eof = True
        self._doorbell.set()

    def _ring_doorbell(self) -> None:
        try:
            self._sock_writer.write(b"!")
        except (ConnectionError, OSError, RuntimeError):
            pass

    async def _park(self) -> None:
        """Wait for a doorbell (or the poll fallback / EOF)."""
        self._doorbell.clear()
        try:
            await asyncio.wait_for(self._doorbell.wait(), timeout=PARK_POLL)
        except asyncio.TimeoutError:
            pass

    # --- writer surface --------------------------------------------------------

    def send_message(self, msg: Message) -> None:
        if self._closed or self._eof:
            raise ConnectionResetError("shm link closed")
        pending = self._pending
        frame = msg.cached_frame()
        if frame is not None:  # relay fast path: append the wire bytes as-is
            pending += frame
            return
        pending += msg.header_bytes()
        payload = msg.payload
        if payload:
            pending += payload

    async def drain(self) -> None:
        """Flush the whole pending batch into the outbound ring."""
        if self._closed:
            raise ConnectionResetError("shm link closed")
        if not self._pending:
            return
        data = memoryview(self._pending)
        written = 0
        out = self._out
        try:
            while written < len(data):
                if self._closed or self._eof or out.consumer_closed:
                    raise ConnectionResetError("shm peer is gone")
                n = out.write_some(data, written)
                if n:
                    written += n
                    if out.consumer_parked:
                        self._ring_doorbell()
                    continue
                # Ring full: announce we are waiting, re-check (the
                # consumer may have freed space between our check and
                # the flag store), then park on the doorbell.
                out.park_producer(True)
                try:
                    if out.writable == 0:
                        await self._park()
                finally:
                    out.park_producer(False)
        finally:
            data.release()
            del self._pending[:written]

    # --- reader surface --------------------------------------------------------

    def _sweep(self) -> bool:
        """Move every readable byte out of the ring; True if any arrived."""
        chunk = self._in.read_available()
        if not chunk:
            return False
        if self._in.producer_parked:
            self._ring_doorbell()  # we just freed space it waits for
        stream = self._stream
        stream += chunk
        pos = 0
        end = len(stream)
        while end - pos >= HEADER_SIZE:
            (payload_size,) = _PAYLOAD_LEN.unpack_from(stream, pos + 20)
            if payload_size > self._max_payload:
                raise CodecError(
                    f"frame declares {payload_size} payload bytes; refusing"
                )
            total = HEADER_SIZE + payload_size
            if end - pos < total:
                break
            self._frames.append(
                Message.unpack(memoryview(stream)[pos : pos + total])
            )
            pos += total
        if pos:
            del stream[:pos]
        return True

    def drain_frames(self) -> list[Message]:
        """Every frame already parsed or sitting in the ring, synchronously.

        The batched receiver loop calls this after one awaited
        ``recv_message`` wakeup: the whole burst that arrived with that
        frame is handed over in a single call, so per-message recv
        overhead (await machinery, accounting) is paid once per burst.
        Returns an empty list when nothing further is pending.
        """
        self._sweep()
        frames = self._frames
        if not frames:
            return []
        out = list(frames)
        frames.clear()
        return out

    async def recv_message(self) -> Message:
        frames = self._frames
        while True:
            if frames:
                return frames.popleft()
            if self._closed:
                raise asyncio.IncompleteReadError(partial=b"", expected=HEADER_SIZE)
            if self._sweep():
                continue
            if self._eof or self._in.producer_closed:
                # Drained everything the producer published before it
                # went away: surface the same EOF a socket reader would.
                raise asyncio.IncompleteReadError(partial=b"", expected=HEADER_SIZE)
            self._in.park_consumer(True)
            try:
                if self._in.readable == 0 and not self._eof:
                    await self._park()
            finally:
                self._in.park_consumer(False)

    # --- shared stream surface -------------------------------------------------

    def is_closing(self) -> bool:
        return self._closed

    def at_eof(self) -> bool:
        return (self._eof or self._in.producer_closed) and not self._frames

    def close(self) -> None:
        """Tear the link down: flag the rings, close the socket, unlink.

        Synchronous and idempotent, matching StreamWriter.close(); any
        coroutine parked in recv/drain observes ``_closed`` at its next
        step (asyncio is single-threaded, so no sweep is ever mid-copy
        when this runs).
        """
        if self._closed:
            return
        self._closed = True
        self._out.close_producer()
        self._in.close_consumer()
        self._listener.cancel()
        try:
            self._sock_writer.close()  # FIN doubles as the last doorbell
        except (ConnectionError, OSError, RuntimeError):
            pass
        self._doorbell.set()
        self._out.release(unlink=self._owns_rings)
        self._in.release(unlink=self._owns_rings)


# --------------------------------------------------------------- negotiation


def shm_offer(ring_bytes: int) -> tuple[tuple[RingBuffer, RingBuffer] | None, dict | None]:
    """Create the dialer's ring pair and the HELLO capability field.

    Returns ``(None, None)`` when shared memory is unavailable (no
    ``/dev/shm``, exhausted quota) — the dial then proceeds as plain TCP.
    """
    try:
        c2s = RingBuffer.create(ring_bytes)
    except OSError:
        return None, None
    try:
        s2c = RingBuffer.create(ring_bytes)
    except OSError:
        c2s.release(unlink=True)
        return None, None
    offer = {
        "cookie": machine_cookie(),
        "c2s": c2s.name,
        "s2c": s2c.name,
        "size": ring_bytes,
    }
    return (c2s, s2c), offer


async def dial_shm(
    dest: NodeId, identity: NodeId, ring_bytes: int, timeout: float, max_payload: int
) -> tuple[object, object]:
    """Open a connection to ``dest``, offering shared-memory rings.

    The HELLO carries the offer (boot cookie + segment names); the
    acceptor answers with one SHM_ACK frame.  On acceptance both stream
    ends are replaced by a single :class:`ShmEndpoint`; on denial (or a
    missing/invalid ack) the rings are unlinked and the already-open
    TCP connection is used exactly as :func:`open_identified` would.
    """
    from repro.net.framing import hello_message, read_message, write_message

    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(dest.ip, dest.port), timeout
    )
    rings, offer = shm_offer(ring_bytes)
    try:
        write_message(writer, hello_message(identity, shm=offer))
        await writer.drain()
        if rings is None:
            return reader, writer
        ack = await asyncio.wait_for(read_message(reader), timeout)
        accepted = ack.type == MsgType.SHM_ACK and bool(ack.fields().get("ok"))
    except asyncio.TimeoutError:
        if rings is not None:
            rings[0].release(unlink=True)
            rings[1].release(unlink=True)
        writer.close()
        raise
    except asyncio.CancelledError:
        if rings is not None:
            rings[0].release(unlink=True)
            rings[1].release(unlink=True)
        writer.close()
        raise
    except Exception as exc:
        if rings is not None:
            rings[0].release(unlink=True)
            rings[1].release(unlink=True)
        writer.close()
        raise ConnectionError(f"shm negotiation with {dest} failed: {exc}") from exc
    if not accepted:
        rings[0].release(unlink=True)
        rings[1].release(unlink=True)
        return reader, writer
    endpoint = ShmEndpoint(
        ring_out=rings[0], ring_in=rings[1],
        sock_reader=reader, sock_writer=writer,
        owns_rings=True, max_payload=max_payload,
    )
    return endpoint, endpoint


async def accept_shm(
    offer: object, node_id: NodeId, reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter, enabled: bool, max_payload: int,
) -> "ShmEndpoint | None":
    """Answer a dialer's ring offer; returns the endpoint on acceptance.

    Denies (SHM_ACK ok=false, connection stays plain TCP) when shm is
    disabled locally, the boot cookies differ (different machine — the
    segment names would be meaningless here), or the segments cannot be
    attached.
    """
    from repro.net.framing import write_message

    rings: tuple[RingBuffer, RingBuffer] | None = None
    if enabled and isinstance(offer, dict) and offer.get("cookie") == machine_cookie():
        try:
            c2s = RingBuffer.attach(str(offer["c2s"]))
            try:
                s2c = RingBuffer.attach(str(offer["s2c"]))
            except (KeyError, OSError, ValueError):
                c2s.release(unlink=False)
                raise
            rings = (c2s, s2c)
        except (KeyError, OSError, ValueError):
            rings = None
    try:
        write_message(
            writer,
            Message.with_fields(MsgType.SHM_ACK, node_id, 0, ok=rings is not None),
        )
        await writer.drain()
    except (ConnectionError, OSError):
        if rings is not None:
            rings[0].release(unlink=False)
            rings[1].release(unlink=False)
        raise
    if rings is None:
        return None
    # The acceptor produces into s2c and consumes c2s.
    return ShmEndpoint(
        ring_out=rings[1], ring_in=rings[0],
        sock_reader=reader, sock_writer=writer,
        owns_rings=False, max_payload=max_payload,
    )
