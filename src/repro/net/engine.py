"""The asyncio message switching engine: real sockets, same architecture.

This is the live counterpart of :class:`repro.sim.engine.SimEngine` —
one receiver task per inbound peer, one sender task per outbound peer,
one engine task switching data in weighted round-robin order, a single
``send`` entry point for algorithms, bounded buffers with back pressure,
bandwidth emulation wrapped around the socket path, and passive failure
detection through socket errors.

On top of the passive core sits a resilience layer
(:mod:`repro.net.resilience`): peer dials retry with bounded, jittered
exponential backoff; a watchdog walks every peer link through the
``LIVE -> SUSPECT -> PROBING -> DEAD`` ladder so silently stalled links
are confirmed dead and torn down through the very same ``_peer_failed``
domino as loud socket errors; and the observer link is supervised — a
bounded outbox buffers status/trace messages across observer reconnects
(drop-oldest on overflow, every drop counted).  Fault injection for all
of this lives in :mod:`repro.net.chaos`.

Because asyncio is single-threaded, the paper's headline guarantee holds
natively: the algorithm runs without any thread-safe data structures.
Connections are persistent and full-duplex: one TCP connection carries
both directions of traffic between two nodes, whatever application the
messages belong to.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING

from repro.core.algorithm import Algorithm, Disposition
from repro.core.bandwidth import BandwidthSpec, NodeThrottle
from repro.core.ids import CONTROL_APP, AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType, is_engine_type
from repro.core.stats import LinkStats, LinkStatsSnapshot
from repro.core.switch import PendingForward, ReceiverPort, SwitchScheduler
from repro.errors import BufferClosedError
from repro.net.framing import (
    expect_hello,
    open_identified,
    read_message,
    write_message,
)
from repro.net.queues import AsyncBoundedQueue
from repro.net.resilience import (
    BackoffPolicy,
    LinkHealth,
    ObserverOutbox,
    ResilienceConfig,
)
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.chaos import ChaosController


@dataclass
class NetEngineConfig:
    """Tunables of one asyncio engine."""

    buffer_capacity: int = 64
    report_interval: float = 1.0
    connect_timeout: float = 5.0
    bandwidth: BandwidthSpec = dataclass_field(default_factory=BandwidthSpec)
    #: opt-in telemetry (metrics + lifecycle tracing); live nodes own one
    #: instance each and the observer aggregates their snapshots.
    telemetry: Telemetry | None = None
    #: connection supervision: dial backoff/retry budget, the
    #: inactivity -> probe failure-detection ladder, observer-link
    #: durability.  The defaults keep historical behaviour except that
    #: failed dials now retry and a lost observer link reconnects.
    resilience: ResilienceConfig = dataclass_field(default_factory=ResilienceConfig)
    #: opt-in fault injection; every peer connection is wrapped through
    #: the controller's policies (see :mod:`repro.net.chaos`).
    chaos: "ChaosController | None" = None


@dataclass
class _Peer:
    """One persistent, full-duplex connection to another overlay node."""

    node: NodeId
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    send_queue: AsyncBoundedQueue
    port: ReceiverPort
    stats_out: LinkStats
    stats_in: LinkStats
    sender_task: asyncio.Task | None = None
    receiver_task: asyncio.Task | None = None
    #: wall time of the last frame received on this link (watchdog input)
    last_recv_at: float = 0.0
    #: failure-detection ladder state (:class:`LinkHealth`)
    health: str = LinkHealth.LIVE
    #: when a pending liveness probe is declared unanswered
    probe_deadline: float | None = None
    #: bumped when the transport is swapped (simultaneous-connect
    #: tie-break); IO loops from an older transport must not tear the
    #: peer down on their way out
    epoch: int = 0


class AsyncioEngine:
    """One live overlay node (engine + algorithm) on real TCP sockets."""

    def __init__(
        self,
        node_id: NodeId,
        algorithm: Algorithm,
        observer_addr: NodeId | None = None,
        config: NetEngineConfig | None = None,
    ) -> None:
        self._node_id = node_id
        self.algorithm = algorithm
        self.config = config or NetEngineConfig()
        self._observer_addr = observer_addr
        self.throttle = NodeThrottle(self.config.bandwidth)

        self._peers: dict[NodeId, _Peer] = {}
        self._scheduler = SwitchScheduler()
        self._control: AsyncBoundedQueue[Message] = AsyncBoundedQueue()
        self._wake = asyncio.Event()
        self._send_space = asyncio.Event()
        self._running = False
        self._server: asyncio.AbstractServer | None = None
        self._tasks: list[asyncio.Task] = []
        self._sources: dict[AppId, asyncio.Task] = {}
        self._local_apps: set[AppId] = set()
        self._current_port: ReceiverPort | None = None
        self._source_pending: list[PendingForward] | None = None
        self._observer_writer: asyncio.StreamWriter | None = None

        # resilience: coalesced in-flight dials, seeded backoff policies,
        # and the bounded observer outbox (drop-oldest on overflow).
        res = self.config.resilience
        self._dialing: dict[NodeId, asyncio.Task] = {}
        rng = random.Random(res.seed ^ hash((node_id.ip, node_id.port)))
        self._peer_backoff = BackoffPolicy.for_peers(res, rng)
        self._observer_backoff = BackoffPolicy.for_observer(res, rng)
        self._observer_outbox = ObserverOutbox(res.observer_outbox)
        self._outbox_event = asyncio.Event()

        # Instruments bind in start(): with port 0 the node's identity is
        # only final once the server socket is bound.
        self._ins = None
        self._peer_strs: dict[NodeId, str] = {}
        self._data_sends = 0

    # ------------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Start the TCP server, connect the observer, spawn the engine."""
        if self._running:
            raise RuntimeError("engine already started")
        self._running = True
        self.algorithm.bind(self)
        self._server = await asyncio.start_server(
            self._accept, host=self._node_id.ip, port=self._node_id.port
        )
        if self._node_id.port == 0:
            # "The port number may be explicitly specified at start-up time;
            # otherwise, the engine chooses one of the available ports."
            actual = self._server.sockets[0].getsockname()[1]
            self._node_id = NodeId(self._node_id.ip, actual)
        if self.config.telemetry is not None:
            self._ins = self.config.telemetry.instruments_for(self._node_id)
        if self._observer_addr is not None:
            await self._connect_observer()
        self._tasks.append(asyncio.ensure_future(self._engine_loop()))
        self._tasks.append(asyncio.ensure_future(self._report_loop()))
        if self.config.resilience.inactivity_timeout is not None:
            self._tasks.append(asyncio.ensure_future(self._watchdog_loop()))

    async def stop(self) -> None:
        """Graceful termination: close all sockets, cancel all tasks."""
        if not self._running:
            return
        self._running = False
        self.algorithm.on_stop()
        for task in self._sources.values():
            task.cancel()
        self._sources.clear()
        for peer in list(self._peers.values()):
            self._close_peer(peer)
        self._peers.clear()
        if self._observer_writer is not None:
            self._observer_writer.close()
            self._observer_writer = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._wake.set()
        self._send_space.set()
        self._outbox_event.set()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        self._dialing.clear()

    @property
    def running(self) -> bool:
        """True between start() and stop()."""
        return self._running

    # ------------------------------------------------------------- EngineServices

    @property
    def node_id(self) -> NodeId:
        """This node's publicized identity (ip:port of its server)."""
        return self._node_id

    def now(self) -> float:
        """Wall-clock seconds (monotonic)."""
        return time.monotonic()

    def send(self, msg: Message, dest: NodeId) -> None:
        """The single engine call available to algorithms (non-blocking)."""
        if not self._running:
            return
        if dest == self._node_id:
            self._control.put_force(msg)
            self._wake.set()
            return
        if self._ins is not None and msg.type == MsgType.DATA:
            self._data_sends += 1
        peer = self._peers.get(dest)
        if peer is None:
            # Connection establishment is asynchronous; buffer the message
            # with the connect task so send() itself never blocks.
            self._tasks.append(asyncio.ensure_future(self._connect_and_send(dest, msg)))
            return
        self._enqueue_to_peer(peer, msg)

    def _enqueue_to_peer(self, peer: _Peer, msg: Message) -> None:
        if peer.send_queue.closed:
            return
        if msg.type == MsgType.DATA:
            if peer.send_queue.put_nowait(msg):
                return
            self._defer_data(msg, peer.node)
        else:
            peer.send_queue.put_force(msg)

    async def _connect_and_send(self, dest: NodeId, msg: Message) -> None:
        peer = await self._ensure_peer(dest)
        if peer is None:
            self._notify_broken_link(dest, direction="down")
            return
        self._enqueue_to_peer(peer, msg)

    def send_to_observer(self, msg: Message) -> None:
        """Queue a message for the observer via the reconnect outbox.

        The outbox survives observer restarts: messages queued while the
        link is down are flushed once the supervisor redials.  Overflow
        evicts the oldest entry and the drop is counted — a status
        report can be lost under sustained outage, but never silently.
        """
        if self._observer_addr is None or not self._running:
            return
        dropped = self._observer_outbox.push(msg)
        if dropped is not None and self._ins is not None:
            self._ins.n_observer_drops += 1
        self._outbox_event.set()

    def upstreams(self) -> list[NodeId]:
        """Peers with a receiver port on this node."""
        return [port.peer for port in self._scheduler.ports]

    def downstreams(self) -> list[NodeId]:
        """Peers this node holds a persistent connection to."""
        return list(self._peers)

    def link_stats(self, peer_id: NodeId) -> LinkStatsSnapshot | None:
        """Outgoing QoS snapshot for the link to ``peer_id``."""
        peer = self._peers.get(peer_id)
        if peer is None:
            return None
        return peer.stats_out.snapshot(self.now())

    def start_source(self, app: AppId, payload_size: int) -> None:
        """Deploy a back-to-back application data source here."""
        if app in self._sources or not self._running:
            return
        self._local_apps.add(app)
        self._sources[app] = asyncio.ensure_future(self._source_loop(app, payload_size))

    def stop_source(self, app: AppId) -> None:
        """Terminate a deployed source."""
        task = self._sources.pop(app, None)
        self._local_apps.discard(app)
        if task is not None:
            task.cancel()

    def set_timer(self, delay: float, token: int = 0) -> None:
        """Deliver a TIMER message to the algorithm after ``delay``."""
        msg = Message.with_fields(MsgType.TIMER, self._node_id, CONTROL_APP, token=token)
        asyncio.get_running_loop().call_later(delay, self._enqueue_notification, msg)

    def set_port_weight(self, peer: NodeId, weight: int) -> None:
        """Dynamically retune a receiver port's round-robin weight."""
        self._scheduler.set_weight(peer, weight)
        self._wake.set()

    def measure(self, peer: NodeId) -> None:
        """Probe RTT to ``peer``; the algorithm receives MEASURE_REPLY."""
        probe = Message.with_fields(
            MsgType.HEARTBEAT, self._node_id, CONTROL_APP,
            probe="req", t0=self.now(), origin=str(self._node_id),
        )
        self.send(probe, peer)

    # ----------------------------------------------------------------- connections

    async def connect(self, dest: NodeId) -> bool:
        """Ensure a persistent connection to ``dest`` exists."""
        return await self._ensure_peer(dest) is not None

    async def _ensure_peer(self, dest: NodeId) -> _Peer | None:
        peer = self._peers.get(dest)
        if peer is not None:
            return peer
        # Coalesce concurrent dials to one supervised attempt sequence:
        # shield() keeps the dial alive if an individual caller is
        # cancelled (stop() cancels the task itself).
        task = self._dialing.get(dest)
        if task is None or task.done():
            task = asyncio.ensure_future(self._dial(dest))
            self._dialing[dest] = task
            self._tasks.append(task)
        return await asyncio.shield(task)

    async def _dial(self, dest: NodeId) -> _Peer | None:
        """One supervised connect: bounded retries with jittered backoff."""
        res = self.config.resilience
        attempts = max(1, res.connect_retries)
        try:
            for attempt in range(attempts):
                if attempt:
                    await asyncio.sleep(self._peer_backoff.delay(attempt - 1))
                if not self._running:
                    return None
                existing = self._peers.get(dest)
                if existing is not None:  # an inbound connection won meanwhile
                    return existing
                try:
                    reader, writer = await self._open_connection(dest)
                except (OSError, asyncio.TimeoutError):
                    if self._ins is not None:
                        self._ins.n_connect_failures += 1
                    continue
                if not self._running:  # stopped while the dial was in flight
                    writer.close()
                    return None
                existing = self._peers.get(dest)
                if existing is not None:
                    # Simultaneous connect: both sides dialed each other.
                    # Deterministic tie-break — the connection dialed by
                    # the lower NodeId is canonical on both ends.
                    if self._node_id < dest:
                        self._adopt_connection(existing, reader, writer)
                    else:
                        writer.close()
                    return existing
                return self._register_peer(dest, reader, writer)
            return None
        finally:
            if self._dialing.get(dest) is asyncio.current_task():
                del self._dialing[dest]

    async def _open_connection(
        self, dest: NodeId
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        chaos = self.config.chaos
        if chaos is not None:
            chaos.check_connect(self._node_id, dest)
        reader, writer = await open_identified(
            dest, self._node_id, timeout=self.config.connect_timeout
        )
        if chaos is not None:
            reader, writer = chaos.wrap(self._node_id, dest, reader, writer)
        return reader, writer

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            chaos = self.config.chaos
            if chaos is not None:
                delay = chaos.accept_delay_for(self._node_id)
                if delay > 0:
                    await asyncio.sleep(delay)
            peer_id = await expect_hello(reader)
        except asyncio.CancelledError:
            writer.close()
            return
        except Exception:
            writer.close()
            return
        if not self._running:
            writer.close()
            return
        if self.config.chaos is not None:
            reader, writer = self.config.chaos.wrap(self._node_id, peer_id, reader, writer)
        existing = self._peers.get(peer_id)
        if existing is not None:
            # Simultaneous connect resolved deterministically: keep the
            # connection dialed by the lower NodeId, on both ends.
            if peer_id < self._node_id:
                self._adopt_connection(existing, reader, writer)
            else:
                writer.close()
            return
        self._register_peer(peer_id, reader, writer)
        self._enqueue_notification(
            Message.with_fields(MsgType.NEW_UPSTREAM, self._node_id, CONTROL_APP, peer=str(peer_id))
        )

    def _register_peer(
        self, node: NodeId, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> _Peer:
        buffer: AsyncBoundedQueue[Message] = AsyncBoundedQueue(self.config.buffer_capacity)
        port = ReceiverPort(peer=node, buffer=buffer)  # type: ignore[arg-type]
        peer = _Peer(
            node=node,
            reader=reader,
            writer=writer,
            send_queue=AsyncBoundedQueue(self.config.buffer_capacity),
            port=port,
            stats_out=LinkStats(),
            stats_in=LinkStats(),
            last_recv_at=self.now(),
        )
        self._peers[node] = peer
        self._scheduler.add_port(port)
        peer.sender_task = asyncio.ensure_future(self._sender_loop(peer, peer.epoch))
        peer.receiver_task = asyncio.ensure_future(self._receiver_loop(peer, peer.epoch))
        self._tasks.extend([peer.sender_task, peer.receiver_task])
        return peer

    def _adopt_connection(
        self, peer: _Peer, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Swap ``peer``'s transport for the canonical connection.

        Used by the simultaneous-connect tie-break: the losing socket is
        closed and replaced in place — queues, receiver port, stats and
        pending forwards all survive, and no BROKEN_LINK is signalled.
        The epoch bump keeps the old transport's IO loops (already
        cancelled, but possibly holding a just-raised socket error) from
        tearing down the adopted link on their way out.
        """
        peer.epoch += 1
        for task in (peer.sender_task, peer.receiver_task):
            if task is not None:
                task.cancel()
        peer.writer.close()
        peer.reader = reader
        peer.writer = writer
        peer.last_recv_at = self.now()
        peer.health = LinkHealth.LIVE
        peer.probe_deadline = None
        peer.sender_task = asyncio.ensure_future(self._sender_loop(peer, peer.epoch))
        peer.receiver_task = asyncio.ensure_future(self._receiver_loop(peer, peer.epoch))
        self._tasks.extend([peer.sender_task, peer.receiver_task])

    def _close_peer(self, peer: _Peer) -> None:
        peer.send_queue.close()
        peer.writer.close()
        if peer.sender_task is not None:
            peer.sender_task.cancel()
        if peer.receiver_task is not None:
            peer.receiver_task.cancel()
        self._scheduler.remove_port(peer.node)

    def _peer_failed(self, peer: _Peer) -> None:
        if self._peers.get(peer.node) is not peer:
            return
        del self._peers[peer.node]
        lost = peer.send_queue.drain()
        for msg in lost:
            peer.stats_out.loss.record(msg.size)
            if self._ins is not None:
                self._ins.n_drops += 1
                self._ins.n_dropped_bytes += msg.size
                if self._ins.tracer.enabled:
                    self._ins.trace_msg(self.now(), EventType.DROP, msg)
        self._close_peer(peer)
        self.throttle.drop_link(peer.node)
        for port in self._scheduler.ports:
            port.discard_dest(peer.node)
        if self._source_pending is not None:
            for forward in self._source_pending:
                forward.remaining = [d for d in forward.remaining if d != peer.node]
        self._notify_broken_link(peer.node, direction="both")
        self._send_space.set()
        self._wake.set()

    def _boot_message(self) -> Message:
        return Message.with_fields(
            MsgType.BOOT, self._node_id, CONTROL_APP, node=str(self._node_id)
        )

    async def _connect_observer(self) -> None:
        """Open the initial observer link (failures propagate to start())
        and hand it to the supervisor, which flushes the outbox and
        redials with backoff whenever the link drops."""
        assert self._observer_addr is not None
        reader, writer = await open_identified(
            self._observer_addr, self._node_id, timeout=self.config.connect_timeout
        )
        self._observer_writer = writer
        self._tasks.append(asyncio.ensure_future(self._observer_reader(reader, writer)))
        self.send_to_observer(self._boot_message())
        self._tasks.append(asyncio.ensure_future(self._observer_loop()))

    def _drop_observer_writer(self, writer: asyncio.StreamWriter) -> None:
        """Forget a failed observer link and wake the supervisor."""
        if self._observer_writer is not writer:
            return
        writer.close()
        self._observer_writer = None
        self._outbox_event.set()

    async def _observer_reader(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Control messages from the observer arrive on the persistent link."""
        while self._running:
            try:
                msg = await read_message(reader)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                if self._running:
                    self._drop_observer_writer(writer)
                return
            self._control.put_force(msg)
            self._wake.set()

    async def _observer_loop(self) -> None:
        """Observer-link supervisor: flush the outbox, redial on loss.

        One task owns all observer writes, so frames never interleave.
        A send failure parks the head message in the outbox (at-least-
        once across reconnects); redials use bounded exponential backoff
        and re-introduce the node with a fresh BOOT so the observer's
        lease is renewed after a restart or partition.
        """
        res = self.config.resilience
        attempt = 0
        while self._running:
            writer = self._observer_writer
            if writer is None or writer.is_closing():
                if not res.observer_reconnect:
                    return
                if (
                    res.observer_retry_budget is not None
                    and attempt >= res.observer_retry_budget
                ):
                    return
                await asyncio.sleep(self._observer_backoff.delay(attempt))
                attempt += 1
                if not self._running:
                    return
                try:
                    reader, writer = await open_identified(
                        self._observer_addr, self._node_id,
                        timeout=self.config.connect_timeout,
                    )
                except (OSError, asyncio.TimeoutError):
                    continue
                attempt = 0
                self._observer_writer = writer
                self._tasks.append(
                    asyncio.ensure_future(self._observer_reader(reader, writer))
                )
                if self._ins is not None:
                    self._ins.n_observer_reconnects += 1
                try:
                    write_message(writer, self._boot_message())
                    await writer.drain()
                except (ConnectionError, OSError):
                    self._drop_observer_writer(writer)
                    continue
            while self._running and self._observer_outbox:
                writer = self._observer_writer
                if writer is None or writer.is_closing():
                    break
                msg = self._observer_outbox.head()
                try:
                    write_message(writer, msg)
                    await writer.drain()
                except (ConnectionError, OSError):
                    self._drop_observer_writer(writer)
                    break
                self._observer_outbox.pop_head(msg)
            writer = self._observer_writer
            if writer is not None and not writer.is_closing():
                self._outbox_event.clear()
                if not self._observer_outbox and self._running:
                    await self._outbox_event.wait()

    # --------------------------------------------------------------------- engine

    async def _engine_loop(self) -> None:
        self.algorithm.on_start()
        while self._running:
            progressed = self._drain_control()
            progressed = self._switch_round() or progressed
            if progressed:
                await asyncio.sleep(0)  # let IO tasks breathe under load
            else:
                self._wake.clear()
                await self._wake.wait()

    def _drain_control(self) -> bool:
        progressed = False
        while self._running and not self._control.is_empty:
            msg = self._control.get_nowait()
            progressed = True
            if is_engine_type(msg.type):
                self._engine_process(msg)
            else:
                self.algorithm.process(msg)
        return progressed

    def _engine_process(self, msg: Message) -> None:
        if msg.type == MsgType.TERMINATE:
            asyncio.ensure_future(self.stop())
        elif msg.type == MsgType.SET_BANDWIDTH:
            self._apply_bandwidth(msg)
        elif msg.type == MsgType.CONNECT:
            self._tasks.append(
                asyncio.ensure_future(self.connect(NodeId.parse(msg.fields()["dest"])))
            )
        elif msg.type == MsgType.DISCONNECT:
            peer = self._peers.get(NodeId.parse(msg.fields()["dest"]))
            if peer is not None:
                self._peer_failed(peer)
        elif msg.type == MsgType.REQUEST:
            self.send_to_observer(self._status_report())
            self.algorithm.process(msg)
        elif msg.type == MsgType.HEARTBEAT:
            self._handle_probe(msg)

    def _handle_probe(self, msg: Message) -> None:
        fields = msg.fields()
        origin = NodeId.parse(fields["origin"])
        if fields.get("probe") == "req":
            echo = Message.with_fields(
                MsgType.HEARTBEAT, self._node_id, CONTROL_APP,
                probe="resp", t0=fields["t0"], origin=fields["origin"],
                liveness=fields.get("liveness", 0),
            )
            self.send(echo, origin)
        elif fields.get("probe") == "resp":
            if fields.get("liveness"):
                # Watchdog traffic: receiving the frame already reset the
                # peer's inactivity clock; the algorithm never sees it.
                return
            peer = msg.sender
            rtt = self.now() - float(fields["t0"])
            self._enqueue_notification(Message.with_fields(
                MsgType.MEASURE_REPLY, self._node_id, CONTROL_APP,
                peer=str(peer), rtt=rtt, send_rate=self.send_rate(peer),
            ))

    def _apply_bandwidth(self, msg: Message) -> None:
        fields = msg.fields()
        category, rate = fields["category"], fields["rate"]
        if category == "total":
            self.throttle.set_total(rate)
        elif category == "up":
            self.throttle.set_up(rate)
        elif category == "down":
            self.throttle.set_down(rate)
        elif category == "link":
            self.throttle.set_link(NodeId.parse(fields["peer"]), rate)

    def _status_report(self) -> Message:
        now = self.now()
        fields = dict(
            node=str(self._node_id),
            upstreams=[str(p) for p in self.upstreams()],
            downstreams=[str(d) for d in self.downstreams()],
            recv_buffers={str(p.peer): len(p.buffer) for p in self._scheduler.ports},
            send_buffers={str(n): len(p.send_queue) for n, p in self._peers.items()},
            recv_rates={str(n): p.stats_in.throughput.rate(now) for n, p in self._peers.items()},
            send_rates={str(n): p.stats_out.throughput.rate(now) for n, p in self._peers.items()},
            apps=sorted(self._local_apps),
        )
        if self.config.telemetry is not None:
            self._refresh_buffer_gauges()
            fields["metrics"] = self.config.telemetry.snapshot(node=str(self._node_id))
        return Message.with_fields(MsgType.STATUS, self._node_id, CONTROL_APP, **fields)

    def _refresh_buffer_gauges(self) -> None:
        if self._ins is None:
            return
        self._ins.set_buffer_gauges(
            recv={str(p.peer): len(p.buffer) for p in self._scheduler.ports},
            send={str(n): len(p.send_queue) for n, p in self._peers.items()},
        )

    def _switch_round(self) -> bool:
        """Deficit weighted round robin (see SimEngine._switch_round)."""
        progressed = False
        ins = self._ins
        moved = 0
        for port in self._scheduler.rotation():
            if not port.has_work():
                continue
            if port.credit <= 0:
                if ins is not None:
                    ins.credit_stalls[port.label] += 1
                    epoch = self._scheduler.epochs
                    if ins.tracer.enabled and port.stall_epoch != epoch:
                        port.stall_epoch = epoch
                        ins.trace_port(self.now(), EventType.CREDIT_EXHAUSTED, port.label)
                continue
            if port.pending:
                before = len(port.pending)
                self._retry_pending(port)
                completed = before - len(port.pending)
                if completed:
                    port.credit -= completed
                    progressed = True
                if port.blocked or port.credit <= 0:
                    continue
            while port.credit > 0 and not port.blocked and not port.buffer.is_empty:
                msg = port.buffer.get_nowait()  # type: ignore[attr-defined]
                port.switched += 1
                moved += 1
                if ins is not None:
                    self._record_pick(port, msg)
                self._current_port = port
                sends_before = self._data_sends
                try:
                    disposition = self.algorithm.process(msg)
                finally:
                    self._current_port = None
                if disposition is Disposition.HOLD:
                    port.held += 1
                elif ins is not None and self._data_sends == sends_before:
                    ins.n_delivers += 1
                    if ins.tracer.enabled:
                        ins.trace_msg(self.now(), EventType.DELIVER, msg)
                progressed = True
                if not port.blocked:
                    port.credit -= 1
        if ins is not None:
            ins.n_switch_rounds += 1
            if moved:
                ins.observe_batch(float(moved))
        # Epoch boundary; the backlog must be explicitly non-empty so a
        # momentarily-stale O(1) has_work() cannot fire a vacuous epoch.
        scheduler = self._scheduler
        has_backlog = False
        if scheduler.has_work():  # O(1) pre-filter; may be stale-positive
            all_spent = True
            for port in scheduler.ports_view():
                if port.has_work():
                    has_backlog = True
                    if port.credit > 0:
                        all_spent = False
                        break
            has_backlog = has_backlog and all_spent
        if has_backlog:
            scheduler.replenish_credits()
            if ins is not None:
                ins.n_credit_epochs += 1
            progressed = True
        return progressed

    def _peer_str(self, node: NodeId) -> str:
        """Cached ``str(node)`` for telemetry labels (NodeId.__str__ formats)."""
        label = self._peer_strs.get(node)
        if label is None:
            label = self._peer_strs[node] = str(node)
        return label

    def _record_pick(self, port: ReceiverPort, msg: Message) -> None:
        """Telemetry for one switched message (queue wait + pick event)."""
        ins = self._ins
        now = self.now()
        ins.switched[port.label] += 1
        times = port.wait_times
        if times:
            ins.observe_wait(now - times.popleft())
        if ins.tracer.enabled:
            ins.trace_msg(now, EventType.SWITCH_PICK, msg, port.label)

    def _retry_pending(self, port: ReceiverPort) -> bool:
        progressed = False
        ins = self._ins
        for forward in port.pending:
            progressed = self._try_forward(forward) or progressed
            if ins is not None:
                ins.n_retries += 1
                if forward.done:
                    ins.n_retry_completions += 1
                if ins.tracer.enabled:
                    ins.trace_retry(self.now(), forward.msg, forward.done)
        port.prune_pending()
        return progressed

    def _try_forward(self, forward: PendingForward) -> bool:
        placed_any = False
        still_remaining: list[NodeId] = []
        for dest in forward.remaining:
            peer = self._peers.get(dest)
            if peer is None or peer.send_queue.closed:
                placed_any = True
                continue
            if peer.send_queue.put_nowait(forward.msg):
                placed_any = True
            else:
                still_remaining.append(dest)
        forward.remaining = still_remaining
        return placed_any

    def _defer_data(self, msg: Message, dest: NodeId) -> None:
        ins = self._ins
        if ins is not None:
            label = self._peer_str(dest)
            ins.defers[label] += 1
            if ins.tracer.enabled:
                ins.trace_msg(self.now(), EventType.DEFER, msg, label)
        if self._current_port is not None:
            self._current_port.deferred += 1
            pending = self._current_port.pending
            if pending and pending[-1].msg is msg:
                pending[-1].remaining.append(dest)
            else:
                self._current_port.add_pending(PendingForward(msg, [dest]))
        elif self._source_pending is not None:
            if self._source_pending and self._source_pending[-1].msg is msg:
                self._source_pending[-1].remaining.append(dest)
            else:
                self._source_pending.append(PendingForward(msg, [dest]))
        else:
            peer = self._peers.get(dest)
            if peer is not None and not peer.send_queue.closed:
                peer.send_queue.put_force(msg)

    # --------------------------------------------------------------------- source

    async def _source_loop(self, app: AppId, payload_size: int) -> None:
        seq = 0
        while self._running and app in self._local_apps:
            payload = self.algorithm.produce_payload(app, seq, payload_size)
            msg = Message(MsgType.DATA, self._node_id, app, payload, seq=seq)
            seq += 1
            if self._ins is not None:
                self._ins.n_source += 1
                if self._ins.tracer.enabled:
                    self._ins.trace_msg(self.now(), EventType.SOURCE_EMIT, msg)
            self._source_pending = []
            try:
                self.algorithm.process(msg)
                while any(f.remaining for f in self._source_pending) and self._running:
                    self._send_space.clear()
                    await self._send_space.wait()
                    for forward in self._source_pending:
                        self._try_forward(forward)
                    self._source_pending = [f for f in self._source_pending if f.remaining]
            finally:
                self._source_pending = None
            if self._peers:
                await asyncio.sleep(0)
            else:
                await asyncio.sleep(0.01)  # nobody to talk to; do not spin

    # ------------------------------------------------------------------ I/O tasks

    async def _sender_loop(self, peer: _Peer, epoch: int = 0) -> None:
        try:
            while self._running:
                try:
                    msg = await peer.send_queue.get()
                except BufferClosedError:
                    return
                delay = self.throttle.reserve_send(peer.node, msg.size, self.now())
                if delay > 0:
                    if self._ins is not None:
                        self._ins.on_throttle_stall("up", delay)
                    await asyncio.sleep(delay)
                try:
                    write_message(peer.writer, msg)
                    await peer.writer.drain()
                except (ConnectionError, OSError):
                    if self._running and peer.epoch == epoch:
                        peer.stats_out.loss.record(msg.size)
                        self._peer_failed(peer)
                    return
                now = self.now()
                peer.stats_out.throughput.record(msg.size, now)
                ins = self._ins
                if ins is not None and msg.type == MsgType.DATA:
                    label = peer.port.label
                    ins.forwarded[label] += 1
                    if ins.tracer.enabled:
                        ins.trace_msg(now, EventType.FORWARD, msg, label)
                self._send_space.set()
                self._wake.set()
        except asyncio.CancelledError:
            raise

    async def _receiver_loop(self, peer: _Peer, epoch: int = 0) -> None:
        try:
            while self._running:
                try:
                    msg = await read_message(peer.reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    if self._running and peer.epoch == epoch:
                        self._peer_failed(peer)
                    return
                # Any inbound frame proves the link alive: reset the
                # failure-detection ladder before anything can block.
                peer.last_recv_at = self.now()
                if peer.health != LinkHealth.LIVE:
                    peer.health = LinkHealth.LIVE
                    peer.probe_deadline = None
                delay = self.throttle.reserve_recv(msg.size, self.now())
                if delay > 0:
                    if self._ins is not None:
                        self._ins.on_throttle_stall("down", delay)
                    await asyncio.sleep(delay)
                peer.stats_in.throughput.record(msg.size, self.now())
                if msg.type == MsgType.DATA:
                    try:
                        await peer.port.buffer.put(msg)  # type: ignore[attr-defined]
                    except BufferClosedError:
                        return
                    ins = self._ins
                    if ins is not None:
                        now = self.now()
                        label = peer.port.label
                        ins.enqueued[label] += 1
                        peer.port.wait_times.append(now)
                        if ins.tracer.enabled:
                            ins.trace_msg(now, EventType.ENQUEUE, msg, label)
                else:
                    self._control.put_force(msg)
                self._wake.set()
        except asyncio.CancelledError:
            raise

    async def _report_loop(self) -> None:
        while self._running:
            await asyncio.sleep(self.config.report_interval)
            if not self._running:
                return
            now = self.now()
            self._refresh_buffer_gauges()
            for node, peer in list(self._peers.items()):
                self._enqueue_notification(Message.with_fields(
                    MsgType.UP_THROUGHPUT, self._node_id, CONTROL_APP,
                    peer=str(node), rate=peer.stats_in.throughput.rate(now),
                ))
                self._enqueue_notification(Message.with_fields(
                    MsgType.DOWN_THROUGHPUT, self._node_id, CONTROL_APP,
                    peer=str(node), rate=peer.stats_out.throughput.rate(now),
                ))

    # ------------------------------------------------------------------ watchdog

    async def _watchdog_loop(self) -> None:
        """Confirm silent link failures: inactivity -> probe -> teardown.

        A peer that has sent nothing for ``inactivity_timeout`` becomes
        SUSPECT and is probed (a tiny HEARTBEAT request the remote
        engine echoes — on demand only, never a periodic heartbeat).
        Any return traffic resets the ladder; an unanswered probe past
        ``probe_timeout`` confirms the link DEAD and fires the same
        ``_peer_failed`` domino teardown as a loud socket error.
        """
        res = self.config.resilience
        timeout = res.inactivity_timeout
        assert timeout is not None
        interval = res.watchdog_interval()
        while self._running:
            await asyncio.sleep(interval)
            if not self._running:
                return
            now = self.now()
            ins = self._ins
            for peer in list(self._peers.values()):
                if self._peers.get(peer.node) is not peer:
                    continue  # torn down while we iterated
                if now - peer.last_recv_at <= timeout:
                    continue  # the receiver loop resets health on traffic
                if peer.health == LinkHealth.LIVE:
                    peer.health = LinkHealth.SUSPECT
                    if ins is not None:
                        ins.n_suspects += 1
                        if ins.tracer.enabled:
                            ins.trace_port(now, EventType.LINK_SUSPECT, peer.port.label)
                    self._send_liveness_probe(peer, now)
                elif (
                    peer.health == LinkHealth.PROBING
                    and peer.probe_deadline is not None
                    and now >= peer.probe_deadline
                ):
                    peer.health = LinkHealth.DEAD
                    if ins is not None:
                        ins.n_inactivity_deaths += 1
                        if ins.tracer.enabled:
                            ins.trace_port(now, EventType.LINK_DEAD, peer.port.label)
                    self._peer_failed(peer)

    def _send_liveness_probe(self, peer: _Peer, now: float) -> None:
        """SUSPECT -> PROBING: one probe, one deadline."""
        if peer.send_queue.closed:
            return
        probe = Message.with_fields(
            MsgType.HEARTBEAT, self._node_id, CONTROL_APP,
            probe="req", t0=now, origin=str(self._node_id), liveness=1,
        )
        peer.send_queue.put_force(probe)
        peer.health = LinkHealth.PROBING
        peer.probe_deadline = now + self.config.resilience.probe_timeout
        if self._ins is not None:
            self._ins.n_probes += 1
            if self._ins.tracer.enabled:
                self._ins.trace_port(now, EventType.LINK_PROBE, peer.port.label)

    # --------------------------------------------------------------------- helpers

    def _enqueue_notification(self, msg: Message) -> None:
        if not self._running:
            return
        self._control.put_force(msg)
        self._wake.set()

    def _notify_broken_link(self, peer: NodeId, direction: str) -> None:
        if self._ins is not None:
            self._ins.on_broken_link(direction)
        self._enqueue_notification(Message.with_fields(
            MsgType.BROKEN_LINK, self._node_id, CONTROL_APP,
            peer=str(peer), direction=direction,
        ))

    def recv_rate(self, peer_id: NodeId) -> float:
        """Measured incoming throughput from ``peer_id`` (B/s)."""
        peer = self._peers.get(peer_id)
        return 0.0 if peer is None else peer.stats_in.throughput.rate(self.now())

    def send_rate(self, peer_id: NodeId) -> float:
        """Measured outgoing throughput to ``peer_id`` (B/s)."""
        peer = self._peers.get(peer_id)
        return 0.0 if peer is None else peer.stats_out.throughput.rate(self.now())
