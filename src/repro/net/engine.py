"""The asyncio engine backend: EngineCore over real (or loopback) transports.

All switching semantics — control draining, the weighted-round-robin
switch, pending-forward retries, probe/bandwidth/status handling, source
pacing, telemetry — live in :class:`repro.core.engine_core.EngineCore`.
This module supplies what is transport-specific: TCP server/dial
machinery, one receiver task and one sender task per persistent
full-duplex peer connection, and the resilience layer
(:mod:`repro.net.resilience`): peer dials retry with bounded, jittered
exponential backoff; a watchdog walks every peer link through the
``LIVE -> SUSPECT -> PROBING -> DEAD`` ladder so silently stalled links
are confirmed dead and torn down through the very same ``_peer_failed``
domino as loud socket errors; and the observer link is supervised — a
bounded outbox buffers status/trace messages across observer reconnects
(drop-oldest on overflow, every drop counted).  Fault injection lives in
:mod:`repro.net.chaos`.

Co-hosted peers (see :mod:`repro.net.virtual`) skip sockets entirely:
when the config carries a loopback resolver, dials to nodes on the same
host return in-process channel endpoints that move :class:`Message`
objects by reference — the IO loops below never notice the difference
because framing dispatches on the endpoint type.

Because asyncio is single-threaded, the paper's headline guarantee holds
natively: the algorithm runs without any thread-safe data structures.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING, Any, Coroutine, Iterable

from repro.core.algorithm import Algorithm
from repro.core.bandwidth import BandwidthSpec
from repro.core.engine_core import EngineCore
from repro.core.ids import CONTROL_APP, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.core.stats import LinkStats
from repro.core.switch import ReceiverPort
from repro.errors import BufferClosedError
from repro.net.framing import (
    MAX_FRAME_PAYLOAD,
    expect_hello_fields,
    open_identified,
    read_message,
    write_batch,
    write_message,
)
from repro.net.queues import AsyncBoundedQueue
from repro.net.resilience import (
    BackoffPolicy,
    LinkHealth,
    ObserverOutbox,
    ResilienceConfig,
)
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.chaos import ChaosController
    from repro.net.virtual import LoopbackResolver


@dataclass
class NetEngineConfig:
    """Tunables of one asyncio engine."""

    buffer_capacity: int = 64
    report_interval: float = 1.0
    connect_timeout: float = 5.0
    bandwidth: BandwidthSpec = dataclass_field(default_factory=BandwidthSpec)
    #: opt-in telemetry (metrics + lifecycle tracing); live nodes own one
    #: instance each and the observer aggregates their snapshots.
    telemetry: Telemetry | None = None
    #: connection supervision: dial backoff/retry budget, the
    #: inactivity -> probe failure-detection ladder, observer-link
    #: durability.  The defaults keep historical behaviour except that
    #: failed dials now retry and a lost observer link reconnects.
    resilience: ResilienceConfig = dataclass_field(default_factory=ResilienceConfig)
    #: opt-in fault injection; every peer connection is wrapped through
    #: the controller's policies (see :mod:`repro.net.chaos`).
    chaos: "ChaosController | None" = None
    #: optional in-process dial shortcut for co-hosted virtual nodes
    #: (see :class:`repro.net.virtual.VirtualHost`); ``None`` means every
    #: peer is reached over a real socket.
    loopback: "LoopbackResolver | None" = None
    #: shared-memory ring capacity per link direction, in bytes; ``0``
    #: (the default) disables the co-machine fast path entirely.  When
    #: set, peer dials offer ring channels in the HELLO (accepted only
    #: when both sides carry the same boot cookie and have this enabled)
    #: and fall back to plain TCP otherwise; the cluster layer enables
    #: it for cross-worker links.  Ignored while chaos is installed —
    #: fault injection targets the socket layer.
    shm_ring_bytes: int = 0
    #: messages the source emits per wakeup.  asyncio round-robins every
    #: runnable task once per loop cycle, so a burst of K turns each
    #: cycle's switch sweeps, sender drains, and ring batches into
    #: K-frame waves instead of single-message trickles — the fixed
    #: per-wakeup costs amortize across the wave.  Flow control still
    #: bounds the in-flight total via the send buffers.
    source_burst: int = 32


@dataclass
class _Peer:
    """One persistent, full-duplex connection to another overlay node.

    ``reader``/``writer`` are either asyncio streams or in-process
    loopback endpoints with the same duck-typed surface.
    """

    node: NodeId
    reader: Any
    writer: Any
    send_queue: AsyncBoundedQueue
    port: ReceiverPort
    stats_out: LinkStats
    stats_in: LinkStats
    sender_task: asyncio.Task | None = None
    receiver_task: asyncio.Task | None = None
    #: wall time of the last frame received on this link (watchdog input)
    last_recv_at: float = 0.0
    #: failure-detection ladder state (:class:`LinkHealth`)
    health: str = LinkHealth.LIVE
    #: when a pending liveness probe is declared unanswered
    probe_deadline: float | None = None
    #: bumped when the transport is swapped (simultaneous-connect
    #: tie-break); IO loops from an older transport must not tear the
    #: peer down on their way out
    epoch: int = 0


class AsyncioEngine(EngineCore):
    """One live overlay node (engine + algorithm) on real TCP sockets."""

    def __init__(
        self,
        node_id: NodeId,
        algorithm: Algorithm,
        observer_addr: NodeId | None = None,
        config: NetEngineConfig | None = None,
    ) -> None:
        super().__init__(
            node_id, algorithm, config or NetEngineConfig(),
            control=AsyncBoundedQueue(),
            wake=asyncio.Event(),
            send_space=asyncio.Event(),
        )
        self._observer_addr = observer_addr
        self._peers: dict[NodeId, _Peer] = {}
        self._server: asyncio.AbstractServer | None = None
        self._tasks: list[asyncio.Task] = []
        self._observer_writer: asyncio.StreamWriter | None = None

        # resilience: coalesced in-flight dials, seeded backoff policies,
        # and the bounded observer outbox (drop-oldest on overflow).
        res = self.config.resilience
        self._dialing: dict[NodeId, asyncio.Task] = {}
        rng = random.Random(res.seed ^ hash((node_id.ip, node_id.port)))
        self._peer_backoff = BackoffPolicy.for_peers(res, rng)
        self._observer_backoff = BackoffPolicy.for_observer(res, rng)
        self._observer_outbox = ObserverOutbox(res.observer_outbox)
        self._outbox_event = asyncio.Event()
        # Instruments bind in start(): with port 0 the node's identity is
        # only final once the server socket is bound.

    # ------------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Start the TCP server, connect the observer, spawn the engine."""
        if self._running:
            raise RuntimeError("engine already started")
        self._running = True
        self.algorithm.bind(self)
        self._server = await asyncio.start_server(
            self._accept, host=self._node_id.ip, port=self._node_id.port
        )
        if self._node_id.port == 0:
            # "The port number may be explicitly specified at start-up time;
            # otherwise, the engine chooses one of the available ports."
            actual = self._server.sockets[0].getsockname()[1]
            self._node_id = NodeId(self._node_id.ip, actual)
        self._bind_instruments()
        if self._observer_addr is not None:
            await self._connect_observer()
        self._tasks.append(asyncio.ensure_future(self._engine_loop()))
        self._tasks.append(asyncio.ensure_future(self._report_loop()))
        if self.config.resilience.inactivity_timeout is not None:
            self._tasks.append(asyncio.ensure_future(self._watchdog_loop()))

    async def stop(self) -> None:
        """Graceful termination: close all sockets, cancel all tasks."""
        if not self._running:
            return
        self._running = False
        self.algorithm.on_stop()
        for task in self._sources.values():
            task.cancel()
        self._sources.clear()
        for peer in list(self._peers.values()):
            self._close_peer(peer)
        self._peers.clear()
        if self._observer_writer is not None:
            self._observer_writer.close()
            self._observer_writer = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._wake.set()
        self._send_space.set()
        self._outbox_event.set()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        self._dialing.clear()

    # ------------------------------------------------------ Clock / ObserverSink

    def now(self) -> float:
        """Wall-clock seconds (monotonic)."""
        return time.monotonic()

    def send_to_observer(self, msg: Message) -> None:
        """Queue a message for the observer via the reconnect outbox.

        The outbox survives observer restarts: messages queued while the
        link is down are flushed once the supervisor redials.  Overflow
        evicts the oldest entry and the drop is counted — a status
        report can be lost under sustained outage, but never silently.
        """
        if self._observer_addr is None or not self._running:
            return
        dropped = self._observer_outbox.push(msg)
        if dropped is not None and self._ins is not None:
            self._ins.n_observer_drops += 1
        self._outbox_event.set()

    # -------------------------------------------------------------- Transport port

    def _dispatch(self, msg: Message, dest: NodeId) -> None:
        if self._ins is not None and msg.type == MsgType.DATA:
            self._data_sends += 1
        peer = self._peers.get(dest)
        if peer is None:
            # Connection establishment is asynchronous; buffer the message
            # with the connect task so send() itself never blocks.
            self._tasks.append(asyncio.ensure_future(self._connect_and_send(dest, msg)))
            return
        self._enqueue_to_peer(peer, msg)

    def _enqueue_to_peer(self, peer: _Peer, msg: Message) -> None:
        if peer.send_queue.closed:
            return
        self._stage(msg, peer.node, peer.send_queue)

    async def _connect_and_send(self, dest: NodeId, msg: Message) -> None:
        peer = await self._ensure_peer(dest)
        if peer is None:
            self._notify_broken_link(dest, direction="down")
            return
        self._enqueue_to_peer(peer, msg)

    def _outbound_queue(self, dest: NodeId) -> AsyncBoundedQueue | None:
        peer = self._peers.get(dest)
        return None if peer is None else peer.send_queue

    def downstreams(self) -> list[NodeId]:
        """Peers this node holds a persistent connection to."""
        return list(self._peers)

    def transport_mix(self) -> dict[str, int]:
        """Live peer links counted by transport kind.

        ``{"shm": 2, "tcp": 1}`` — the cluster benchmarks use this to
        attribute throughput to the transport actually carrying it.
        """
        mix: dict[str, int] = {}
        for peer in self._peers.values():
            kind = getattr(peer.writer, "transport_kind", "tcp")
            mix[kind] = mix.get(kind, 0) + 1
        return mix

    def _request_connect(self, dest: NodeId) -> None:
        self._tasks.append(asyncio.ensure_future(self.connect(dest)))

    def _request_shutdown(self) -> None:
        asyncio.ensure_future(self.stop())

    def _spawn(self, coro: Coroutine, name: str) -> asyncio.Task:
        return asyncio.ensure_future(coro)

    async def _sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)

    def _call_later(self, delay: float, callback: Any, *args: Any) -> None:
        asyncio.get_running_loop().call_later(delay, callback, *args)

    async def _yield_control(self) -> None:
        await asyncio.sleep(0)  # let IO tasks breathe under load

    def _source_pacing(self) -> float:
        return 0.0 if self._peers else 0.01  # nobody to talk to; do not spin

    def _source_burst(self) -> int:
        return self.config.source_burst if self._peers else 1

    def _rounds_per_wakeup(self) -> int:
        # Effectively "sweep the whole backlog, then flush + yield once":
        # the inner rounds drain the bounded receive buffers and stop as
        # soon as a round makes no progress, so a generous budget costs
        # nothing when idle yet turns each wakeup into a full-batch sweep
        # under load.
        return 256

    def _credit_scale(self) -> int:
        # One credit epoch covers a whole batch instead of one message;
        # DRR fairness ratios are preserved (every weight scales alike),
        # only the interleaving granularity coarsens.
        return 64

    def _send_buffer_levels(self) -> dict[str, int]:
        return {str(n): len(p.send_queue) for n, p in self._peers.items()}

    def _recv_rates(self, now: float) -> dict[str, float]:
        return {str(n): p.stats_in.throughput.rate(now) for n, p in self._peers.items()}

    def _send_rates(self, now: float) -> dict[str, float]:
        return {str(n): p.stats_out.throughput.rate(now) for n, p in self._peers.items()}

    def _up_rate_reports(self, now: float) -> Iterable[tuple[str, float]]:
        for node, peer in list(self._peers.items()):
            yield str(node), peer.stats_in.throughput.rate(now)

    def _down_rate_reports(self, now: float) -> Iterable[tuple[str, float]]:
        for node, peer in list(self._peers.items()):
            yield str(node), peer.stats_out.throughput.rate(now)

    def _stats_in(self, peer: NodeId) -> LinkStats | None:
        entry = self._peers.get(peer)
        return None if entry is None else entry.stats_in

    def _stats_out(self, peer: NodeId) -> LinkStats | None:
        entry = self._peers.get(peer)
        return None if entry is None else entry.stats_out

    # ----------------------------------------------------------------- connections

    async def connect(self, dest: NodeId) -> bool:
        """Ensure a persistent connection to ``dest`` exists."""
        return await self._ensure_peer(dest) is not None

    def disconnect(self, dest: NodeId) -> None:
        """Gracefully tear down the connection to ``dest`` (if any).

        Unlike :meth:`_peer_failed`, this is a deliberate local action:
        no BROKEN_LINK notification is raised here (the remote side still
        observes the closed transport through its own failure path).
        """
        peer = self._peers.pop(dest, None)
        if peer is None:
            return
        for msg in peer.send_queue.drain():
            peer.stats_out.loss.record(msg.size)
            self._record_loss(msg)
        self._close_peer(peer)
        self.throttle.drop_link(dest)
        for port in self._scheduler.ports:
            port.discard_dest(dest)
        if self._source_pending is not None:
            for forward in self._source_pending:
                forward.remaining = [d for d in forward.remaining if d != dest]
        for app in list(self._app_downstreams):
            self._app_downstreams[app].discard(dest)
        self._send_space.set()
        self._wake.set()

    async def _ensure_peer(self, dest: NodeId) -> _Peer | None:
        peer = self._peers.get(dest)
        if peer is not None:
            return peer
        # Coalesce concurrent dials to one supervised attempt sequence:
        # shield() keeps the dial alive if an individual caller is
        # cancelled (stop() cancels the task itself).
        task = self._dialing.get(dest)
        if task is None or task.done():
            task = asyncio.ensure_future(self._dial(dest))
            self._dialing[dest] = task
            self._tasks.append(task)
        return await asyncio.shield(task)

    async def _dial(self, dest: NodeId) -> _Peer | None:
        """One supervised connect: bounded retries with jittered backoff."""
        res = self.config.resilience
        attempts = max(1, res.connect_retries)
        try:
            for attempt in range(attempts):
                if attempt:
                    await asyncio.sleep(self._peer_backoff.delay(attempt - 1))
                if not self._running:
                    return None
                existing = self._peers.get(dest)
                if existing is not None:  # an inbound connection won meanwhile
                    return existing
                try:
                    reader, writer = await self._open_connection(dest)
                except (OSError, asyncio.TimeoutError):
                    if self._ins is not None:
                        self._ins.n_connect_failures += 1
                    continue
                if not self._running:  # stopped while the dial was in flight
                    writer.close()
                    return None
                existing = self._peers.get(dest)
                if existing is not None:
                    # Simultaneous connect: both sides dialed each other.
                    # Deterministic tie-break — the connection dialed by
                    # the lower NodeId is canonical on both ends.
                    if self._node_id < dest:
                        self._adopt_connection(existing, reader, writer)
                    else:
                        writer.close()
                    return existing
                return self._register_peer(dest, reader, writer)
            return None
        finally:
            if self._dialing.get(dest) is asyncio.current_task():
                del self._dialing[dest]

    async def _open_connection(self, dest: NodeId) -> tuple[Any, Any]:
        loopback = self.config.loopback
        if loopback is not None:
            # Co-hosted peers bypass sockets (and chaos wrapping, which
            # targets the socket layer): the resolver hands both engines
            # in-process channel endpoints in one synchronous step.
            pair = loopback.dial(self._node_id, dest)
            if pair is not None:
                return pair
        chaos = self.config.chaos
        if chaos is not None:
            chaos.check_connect(self._node_id, dest)
        elif self.config.shm_ring_bytes > 0:
            # Offer shared-memory ring channels in the HELLO; the dial
            # degrades to the plain-TCP connection it already opened
            # when the peer is off-machine or has shm disabled.
            from repro.net.shm import dial_shm

            return await dial_shm(
                dest, self._node_id, self.config.shm_ring_bytes,
                self.config.connect_timeout, MAX_FRAME_PAYLOAD,
            )
        reader, writer = await open_identified(
            dest, self._node_id, timeout=self.config.connect_timeout
        )
        if chaos is not None:
            reader, writer = chaos.wrap(self._node_id, dest, reader, writer)
        return reader, writer

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            chaos = self.config.chaos
            if chaos is not None:
                delay = chaos.accept_delay_for(self._node_id)
                if delay > 0:
                    await asyncio.sleep(delay)
            peer_id, hello_fields = await expect_hello_fields(reader)
            offer = hello_fields.get("shm")
            if offer is not None:
                # Answer the ring offer before the link goes live: the
                # dialer blocks on our SHM_ACK verdict either way.
                from repro.net.shm import accept_shm

                endpoint = await accept_shm(
                    offer, self._node_id, reader, writer,
                    enabled=(
                        self.config.shm_ring_bytes > 0
                        and self.config.chaos is None
                        and self._running
                    ),
                    max_payload=MAX_FRAME_PAYLOAD,
                )
                if endpoint is not None:
                    self.accept_transport(peer_id, endpoint, endpoint)
                    return
        except asyncio.CancelledError:
            writer.close()
            return
        except Exception:
            writer.close()
            return
        if self.config.chaos is not None:
            reader, writer = self.config.chaos.wrap(self._node_id, peer_id, reader, writer)
        self.accept_transport(peer_id, reader, writer)

    def accept_transport(self, peer_id: NodeId, reader: Any, writer: Any) -> None:
        """Admit an identified inbound transport (socket or loopback)."""
        if not self._running:
            writer.close()
            return
        existing = self._peers.get(peer_id)
        if existing is not None:
            # Simultaneous connect resolved deterministically: keep the
            # connection dialed by the lower NodeId, on both ends.
            if peer_id < self._node_id:
                self._adopt_connection(existing, reader, writer)
            else:
                writer.close()
            return
        self._register_peer(peer_id, reader, writer)
        self._enqueue_notification(
            Message.with_fields(MsgType.NEW_UPSTREAM, self._node_id, CONTROL_APP, peer=str(peer_id))
        )

    def _register_peer(self, node: NodeId, reader: Any, writer: Any) -> _Peer:
        buffer: AsyncBoundedQueue[Message] = AsyncBoundedQueue(self.config.buffer_capacity)
        port = ReceiverPort(peer=node, buffer=buffer)  # type: ignore[arg-type]
        peer = _Peer(
            node=node,
            reader=reader,
            writer=writer,
            send_queue=AsyncBoundedQueue(self.config.buffer_capacity),
            port=port,
            stats_out=LinkStats(),
            stats_in=LinkStats(),
            last_recv_at=self.now(),
        )
        self._peers[node] = peer
        self._scheduler.add_port(port)
        peer.sender_task = asyncio.ensure_future(self._sender_loop(peer, peer.epoch))
        peer.receiver_task = asyncio.ensure_future(self._receiver_loop(peer, peer.epoch))
        self._tasks.extend([peer.sender_task, peer.receiver_task])
        return peer

    def _adopt_connection(self, peer: _Peer, reader: Any, writer: Any) -> None:
        """Swap ``peer``'s transport for the canonical connection.

        Used by the simultaneous-connect tie-break: the losing socket is
        closed and replaced in place — queues, receiver port, stats and
        pending forwards all survive, and no BROKEN_LINK is signalled.
        The epoch bump keeps the old transport's IO loops (already
        cancelled, but possibly holding a just-raised socket error) from
        tearing down the adopted link on their way out.
        """
        peer.epoch += 1
        for task in (peer.sender_task, peer.receiver_task):
            if task is not None:
                task.cancel()
        peer.writer.close()
        peer.reader = reader
        peer.writer = writer
        peer.last_recv_at = self.now()
        peer.health = LinkHealth.LIVE
        peer.probe_deadline = None
        peer.sender_task = asyncio.ensure_future(self._sender_loop(peer, peer.epoch))
        peer.receiver_task = asyncio.ensure_future(self._receiver_loop(peer, peer.epoch))
        self._tasks.extend([peer.sender_task, peer.receiver_task])

    def _close_peer(self, peer: _Peer) -> None:
        peer.send_queue.close()
        peer.writer.close()
        if peer.sender_task is not None:
            peer.sender_task.cancel()
        if peer.receiver_task is not None:
            peer.receiver_task.cancel()
        self._scheduler.remove_port(peer.node)

    def _peer_failed(self, peer: _Peer) -> None:
        if self._peers.get(peer.node) is not peer:
            return
        del self._peers[peer.node]
        for msg in peer.send_queue.drain():
            peer.stats_out.loss.record(msg.size)
            self._record_loss(msg)
        self._close_peer(peer)
        self.throttle.drop_link(peer.node)
        for port in self._scheduler.ports:
            port.discard_dest(peer.node)
        if self._source_pending is not None:
            for forward in self._source_pending:
                forward.remaining = [d for d in forward.remaining if d != peer.node]
        for app in list(self._app_downstreams):
            self._app_downstreams[app].discard(peer.node)
        self._notify_broken_link(peer.node, direction="both")
        # Domino effect: a full-duplex peer was also an upstream, so any
        # application fed exclusively through it has lost its source.
        self._domino_upstream_lost(peer.node)
        self._send_space.set()
        self._wake.set()

    # ------------------------------------------------------------------- observer

    def _boot_message(self) -> Message:
        return Message.with_fields(
            MsgType.BOOT, self._node_id, CONTROL_APP, node=str(self._node_id)
        )

    async def _connect_observer(self) -> None:
        """Open the initial observer link (failures propagate to start())
        and hand it to the supervisor, which flushes the outbox and
        redials with backoff whenever the link drops."""
        assert self._observer_addr is not None
        reader, writer = await open_identified(
            self._observer_addr, self._node_id, timeout=self.config.connect_timeout
        )
        self._observer_writer = writer
        self._tasks.append(asyncio.ensure_future(self._observer_reader(reader, writer)))
        self._send_boot()
        self._tasks.append(asyncio.ensure_future(self._observer_loop()))

    def _drop_observer_writer(self, writer: asyncio.StreamWriter) -> None:
        """Forget a failed observer link and wake the supervisor."""
        if self._observer_writer is not writer:
            return
        writer.close()
        self._observer_writer = None
        self._outbox_event.set()

    async def _observer_reader(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Control messages from the observer arrive on the persistent link."""
        while self._running:
            try:
                msg = await read_message(reader)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                if self._running:
                    self._drop_observer_writer(writer)
                return
            self._control.put_force(msg)
            self._wake.set()

    async def _observer_loop(self) -> None:
        """Observer-link supervisor: flush the outbox, redial on loss.

        One task owns all observer writes, so frames never interleave.
        A send failure parks the head message in the outbox (at-least-
        once across reconnects); redials use bounded exponential backoff
        and re-introduce the node with a fresh BOOT so the observer's
        lease is renewed after a restart or partition.
        """
        res = self.config.resilience
        attempt = 0
        while self._running:
            writer = self._observer_writer
            if writer is None or writer.is_closing():
                if not res.observer_reconnect:
                    return
                if (
                    res.observer_retry_budget is not None
                    and attempt >= res.observer_retry_budget
                ):
                    return
                await asyncio.sleep(self._observer_backoff.delay(attempt))
                attempt += 1
                if not self._running:
                    return
                try:
                    reader, writer = await open_identified(
                        self._observer_addr, self._node_id,
                        timeout=self.config.connect_timeout,
                    )
                except (OSError, asyncio.TimeoutError):
                    continue
                attempt = 0
                self._observer_writer = writer
                self._tasks.append(
                    asyncio.ensure_future(self._observer_reader(reader, writer))
                )
                if self._ins is not None:
                    self._ins.n_observer_reconnects += 1
                try:
                    write_message(writer, self._boot_message())
                    await writer.drain()
                except (ConnectionError, OSError):
                    self._drop_observer_writer(writer)
                    continue
            while self._running and self._observer_outbox:
                writer = self._observer_writer
                if writer is None or writer.is_closing():
                    break
                # Coalesced flush: write everything queued, then drain
                # once.  Heads are popped only after the flush succeeds
                # (at-least-once across reconnects, order preserved);
                # pop_head's identity check skips any message the
                # bounded outbox evicted while we were draining.
                batch = self._observer_outbox.snapshot()
                try:
                    for msg in batch:
                        write_message(writer, msg)
                    await writer.drain()
                except (ConnectionError, OSError):
                    self._drop_observer_writer(writer)
                    break
                for msg in batch:
                    self._observer_outbox.pop_head(msg)
            writer = self._observer_writer
            if writer is not None and not writer.is_closing():
                self._outbox_event.clear()
                if not self._observer_outbox and self._running:
                    await self._outbox_event.wait()

    # ------------------------------------------------------------------ I/O tasks

    async def _sender_loop(self, peer: _Peer, epoch: int = 0) -> None:
        """One writer per peer link, flushing whole batches per wakeup.

        Every wakeup drains the entire ``send_queue`` and writes the
        batch through one ``drain()`` — a writev-style flush that turns
        N per-frame syscalls (or ring publishes) into one.  The switch
        stages a round's worth of frames before this task runs again,
        so a round's output to one destination leaves in a single
        flush.  The rate limiter still paces per message: when a
        reservation asks for a delay, everything already written is
        flushed before the sleep so pacing never holds released bytes
        hostage.
        """
        queue = peer.send_queue
        throttle = self.throttle
        writer = peer.writer
        batch: list[Message] = []
        try:
            while self._running:
                try:
                    batch.append(await queue.get())
                except BufferClosedError:
                    return
                if not queue.is_empty:
                    batch.extend(queue.drain())
                flushed = 0  # messages safely handed to the transport
                try:
                    if throttle.active:
                        for written, msg in enumerate(batch):
                            delay = throttle.reserve_send(peer.node, msg.size, self.now())
                            if delay > 0:
                                if written > flushed:
                                    await writer.drain()
                                    flushed = written
                                if self._ins is not None:
                                    self._ins.on_throttle_stall("up", delay)
                                await asyncio.sleep(delay)
                            write_message(writer, msg)
                    else:  # unconstrained: one vectorized stage for the burst
                        write_batch(writer, batch)
                    await writer.drain()
                    flushed = len(batch)
                except (ConnectionError, OSError):
                    if self._running and peer.epoch == epoch:
                        for msg in batch[flushed:]:
                            peer.stats_out.loss.record(msg.size)
                        self._peer_failed(peer)
                    return
                now = self.now()
                ins = self._ins
                nbytes = 0
                for msg in batch:
                    nbytes += msg.size
                peer.stats_out.throughput.record_bulk(nbytes, len(batch), now)
                if ins is not None:
                    for msg in batch:
                        if msg.type == MsgType.DATA:
                            label = peer.port.label
                            ins.forwarded[label] += 1
                            t0 = msg._hop_t0
                            if t0 is not None:
                                ins.observe_hop(now - t0 if now > t0 else 0.0)
                            if ins.tracer.enabled:
                                ins.trace_msg(now, EventType.FORWARD, msg, label)
                batch.clear()
                self._send_space.set()
                self._wake.set()
        except asyncio.CancelledError:
            raise

    async def _receiver_loop(self, peer: _Peer, epoch: int = 0) -> None:
        reader = peer.reader
        throttle = self.throttle
        buffer = peer.port.buffer
        meter = peer.stats_in.throughput
        # Batch surface (shm endpoints): after one awaited frame, every
        # other frame of the same burst is handed over synchronously.
        drain_frames = getattr(reader, "drain_frames", None)
        data_type = MsgType.DATA
        batch: list[Message] = []
        try:
            while self._running:
                try:
                    batch.append(await read_message(reader))
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    if self._running and peer.epoch == epoch:
                        self._peer_failed(peer)
                    return
                if drain_frames is not None:
                    more = drain_frames()
                    if more:
                        batch.extend(more)
                now = self.now()
                # Any inbound frame proves the link alive: reset the
                # failure-detection ladder before anything can block.
                peer.last_recv_at = now
                if peer.health != LinkHealth.LIVE:
                    peer.health = LinkHealth.LIVE
                    peer.probe_deadline = None
                nbytes = 0
                data_only = True
                for msg in batch:
                    nbytes += msg.size
                    if msg._type != data_type:
                        data_only = False
                if throttle.active:
                    for msg in batch:
                        delay = throttle.reserve_recv(msg.size, self.now())
                        if delay > 0:
                            if self._ins is not None:
                                self._ins.on_throttle_stall("down", delay)
                            await asyncio.sleep(delay)
                meter.record_bulk(nbytes, len(batch), now)
                ins = self._ins
                if data_only and ins is None:
                    # Pure data burst: one bulk append per buffer-space
                    # window instead of per-message queue bookkeeping.
                    try:
                        placed = buffer.put_many_nowait(batch)
                        peer.port.note_bytes(sum(m.size for m in batch[:placed]))
                        while placed < len(batch):
                            # Wake the engine *before* parking for space:
                            # it is the one that frees the buffer.
                            self._wake.set()
                            await buffer.put(batch[placed])  # type: ignore[attr-defined]
                            peer.port.note_bytes(batch[placed].size)
                            placed += 1
                            more = buffer.put_many_nowait(batch, placed)
                            peer.port.note_bytes(
                                sum(m.size for m in batch[placed:placed + more])
                            )
                            placed += more
                    except BufferClosedError:
                        return
                else:
                    for msg in batch:
                        if msg._type == data_type:
                            try:
                                if not buffer.put_nowait(msg):
                                    self._wake.set()  # engine frees the space
                                    await buffer.put(msg)  # type: ignore[attr-defined]
                            except BufferClosedError:
                                return
                            peer.port.note_bytes(msg.size)
                            if ins is not None:
                                now = self.now()
                                label = peer.port.label
                                ins.enqueued[label] += 1
                                peer.port.wait_times.append(now)
                                msg._hop_t0 = now  # this hop's clock starts here
                                if ins.tracer.enabled:
                                    ins.trace_msg(now, EventType.ENQUEUE, msg, label)
                        else:
                            if msg.type == MsgType.BROKEN_SOURCE:
                                self._propagate_broken_source(msg, peer.node)
                            self._control.put_force(msg)
                batch.clear()
                self._wake.set()
        except asyncio.CancelledError:
            raise

    # ------------------------------------------------------------------ watchdog

    async def _watchdog_loop(self) -> None:
        """Confirm silent link failures: inactivity -> probe -> teardown.

        A peer that has sent nothing for ``inactivity_timeout`` becomes
        SUSPECT and is probed (a tiny HEARTBEAT request the remote
        engine echoes — on demand only, never a periodic heartbeat).
        Any return traffic resets the ladder; an unanswered probe past
        ``probe_timeout`` confirms the link DEAD and fires the same
        ``_peer_failed`` domino teardown as a loud socket error.
        """
        res = self.config.resilience
        timeout = res.inactivity_timeout
        assert timeout is not None
        interval = res.watchdog_interval()
        while self._running:
            await asyncio.sleep(interval)
            if not self._running:
                return
            now = self.now()
            ins = self._ins
            for peer in list(self._peers.values()):
                if self._peers.get(peer.node) is not peer:
                    continue  # torn down while we iterated
                if now - peer.last_recv_at <= timeout:
                    continue  # the receiver loop resets health on traffic
                if peer.health == LinkHealth.LIVE:
                    peer.health = LinkHealth.SUSPECT
                    if ins is not None:
                        ins.n_suspects += 1
                        if ins.tracer.enabled:
                            ins.trace_port(now, EventType.LINK_SUSPECT, peer.port.label)
                    self._send_liveness_probe(peer, now)
                elif (
                    peer.health == LinkHealth.PROBING
                    and peer.probe_deadline is not None
                    and now >= peer.probe_deadline
                ):
                    peer.health = LinkHealth.DEAD
                    if ins is not None:
                        ins.n_inactivity_deaths += 1
                        if ins.tracer.enabled:
                            ins.trace_port(now, EventType.LINK_DEAD, peer.port.label)
                    self._peer_failed(peer)

    def _send_liveness_probe(self, peer: _Peer, now: float) -> None:
        """SUSPECT -> PROBING: one probe, one deadline."""
        if peer.send_queue.closed:
            return
        probe = Message.with_fields(
            MsgType.HEARTBEAT, self._node_id, CONTROL_APP,
            probe="req", t0=now, origin=str(self._node_id), liveness=1,
        )
        peer.send_queue.put_force(probe)
        peer.health = LinkHealth.PROBING
        peer.probe_deadline = now + self.config.resilience.probe_timeout
        if self._ins is not None:
            self._ins.n_probes += 1
            if self._ins.tracer.enabled:
                self._ins.trace_port(now, EventType.LINK_PROBE, peer.port.label)
