"""Event-loop policy selection for the asyncio backend.

The engine is loop-agnostic; the only policy decision is whether to
install `uvloop <https://github.com/MagicStack/uvloop>`_ when the
deployment opted in (``--uvloop`` on the worker / cluster CLIs, or
``ClusterConfig.uvloop``).  uvloop is an optional accelerator, never a
dependency: when the import fails the stock asyncio loop is used and
the chosen implementation is reported through telemetry (worker
registration carries a ``loop`` field) so a benchmark run can always
tell which loop it actually measured.
"""

from __future__ import annotations


def install_uvloop(enabled: bool) -> str:
    """Install uvloop's event-loop policy if ``enabled`` and importable.

    Returns the name of the loop implementation that will actually run
    (``"uvloop"`` or ``"asyncio"``).  Must be called before the first
    ``asyncio.run`` of the process — a running loop is never replaced.
    """
    if not enabled:
        return "asyncio"
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return "asyncio"
    uvloop.install()
    return "uvloop"
