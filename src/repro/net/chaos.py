"""Deterministic fault injection for the asyncio transport.

The simulator's :mod:`repro.sim.failure` toolkit can stall or cut a
:class:`~repro.sim.link.SimLink` directly; real sockets offer no such
handle.  This module closes that gap: a :class:`ChaosController` holds
seedable fault policies, and engines created with ``config.chaos`` route
every peer connection through thin stream wrappers that consult it.
The supported faults mirror (and extend) the sim toolkit:

- **connection refusal** — dialing a refused destination raises
  ``ConnectionRefusedError`` before any socket is opened (also
  probabilistically via ``refusal_rate``);
- **mid-stream reset** (:meth:`ChaosController.cut_link`) — both
  directions of the TCP connection fail loudly on the next IO and the
  underlying transport is aborted;
- **byte-level stall** (:meth:`ChaosController.stall_link`) — writes on
  the directed flow are silently swallowed and reads park, with *no*
  error on either side: only the inactivity -> probe ladder can notice;
- **delayed accept** — inbound connections are held for a configurable
  time before the HELLO is processed;
- **message truncation** (:meth:`ChaosController.truncate_next`) — the
  next frame leaves half-written and the connection resets, exercising
  the receiver's mid-frame EOF path.

Faults are **one-shot against the connections live at injection time**,
exactly like the simulator's link faults: once a faulted link is torn
down, a supervised redial creates a clean connection and traffic may
resume.  Convergence after a fault therefore means *reconnected or torn
down*, never a permanent churn loop.

:class:`ChaosCluster` builds a localhost fleet of
:class:`~repro.net.engine.AsyncioEngine` nodes sharing one controller
and can arm a :class:`~repro.sim.failure.FailureSchedule` against it —
the same declarative schedule object that drives the simulator, so
robustness experiments run unchanged on either backend.
"""

from __future__ import annotations

import asyncio
import random

from repro.core.algorithm import Algorithm
from repro.core.ids import NodeId
from repro.errors import UnknownNodeError
from repro.net.engine import AsyncioEngine, NetEngineConfig
from repro.sim.failure import FailureEvent, FailureSchedule

__all__ = [
    "ChaosController",
    "ChaosCluster",
    "FailureSchedule",  # re-export: the schedule is backend-agnostic
]


class _LinkChaos:
    """Mutable fault state of one directed flow ``src -> dst``."""

    __slots__ = ("mode", "truncate_armed", "swallowed_bytes", "_event")

    OK = "ok"
    STALL = "stall"
    RESET = "reset"

    def __init__(self) -> None:
        self.mode = self.OK
        self.truncate_armed = False
        self.swallowed_bytes = 0
        self._event: asyncio.Event = asyncio.Event()

    def set_mode(self, mode: str) -> None:
        self.mode = mode
        # Wake current waiters; later waiters park on a fresh event.
        event, self._event = self._event, asyncio.Event()
        event.set()

    async def wait_change(self) -> None:
        await self._event.wait()


class _ChaosReader:
    """StreamReader proxy that parks or fails per the link's fault state."""

    def __init__(self, state: _LinkChaos, reader: asyncio.StreamReader) -> None:
        self._state = state
        self._reader = reader

    async def _gate(self) -> None:
        state = self._state
        while state.mode == _LinkChaos.STALL:
            await state.wait_change()
        if state.mode == _LinkChaos.RESET:
            raise ConnectionResetError("chaos: link reset")

    async def readexactly(self, n: int) -> bytes:
        await self._gate()
        return await self._reader.readexactly(n)

    async def read(self, n: int = -1) -> bytes:
        await self._gate()
        return await self._reader.read(n)

    def at_eof(self) -> bool:
        return self._reader.at_eof()


class _ChaosWriter:
    """StreamWriter proxy that swallows, truncates or resets writes."""

    def __init__(self, state: _LinkChaos, writer: asyncio.StreamWriter) -> None:
        self._state = state
        self._writer = writer

    def write(self, data) -> None:
        state = self._state
        if state.mode == _LinkChaos.RESET:
            raise ConnectionResetError("chaos: link reset")
        if state.mode == _LinkChaos.STALL:
            state.swallowed_bytes += len(data)
            return
        if state.truncate_armed and len(data) > 1:
            state.truncate_armed = False
            self._writer.write(bytes(data)[: len(data) // 2])
            state.set_mode(_LinkChaos.RESET)
            _abort_writer(self._writer)
            return
        self._writer.write(data)

    async def drain(self) -> None:
        state = self._state
        if state.mode == _LinkChaos.RESET:
            raise ConnectionResetError("chaos: link reset")
        if state.mode == _LinkChaos.STALL:
            return
        await self._writer.drain()

    def close(self) -> None:
        self._writer.close()

    def is_closing(self) -> bool:
        return self._writer.is_closing()

    async def wait_closed(self) -> None:
        await self._writer.wait_closed()

    def get_extra_info(self, name, default=None):
        return self._writer.get_extra_info(name, default)


def _abort_writer(writer) -> None:
    """Hard-kill a transport so the remote side sees a loud failure."""
    while isinstance(writer, _ChaosWriter):  # unwrap nesting, defensively
        writer = writer._writer
    transport = getattr(writer, "transport", None)
    if transport is not None:
        transport.abort()
    else:  # pragma: no cover - non-socket writer in tests
        writer.close()


class ChaosController:
    """Seedable fault policies shared by every wrapped engine.

    All randomness (probabilistic refusals, jittered accept delays)
    comes from one ``random.Random(seed)``, so a chaos scenario replays
    identically under a fixed seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        #: probability that any single dial attempt is refused
        self.refusal_rate = 0.0
        #: uniform delay applied to every inbound accept (seconds)
        self.accept_delay = 0.0
        self._refused: set[NodeId] = set()
        self._accept_delays: dict[NodeId, float] = {}
        self._links: dict[tuple[NodeId, NodeId], _LinkChaos] = {}
        self._writers: dict[tuple[NodeId, NodeId], list] = {}
        # injection counters (what chaos *did*, for assertions/reports)
        self.n_refusals = 0
        self.n_stalls = 0
        self.n_resets = 0
        self.n_truncations = 0

    # ------------------------------------------------------------ engine hooks

    def link(self, src: NodeId, dst: NodeId) -> _LinkChaos:
        """The fault state of the directed flow ``src -> dst``."""
        state = self._links.get((src, dst))
        if state is None:
            state = self._links[(src, dst)] = _LinkChaos()
        return state

    def check_connect(self, src: NodeId, dst: NodeId) -> None:
        """Raise ``ConnectionRefusedError`` if this dial must fail."""
        if dst in self._refused or (
            self.refusal_rate and self.rng.random() < self.refusal_rate
        ):
            self.n_refusals += 1
            raise ConnectionRefusedError(f"chaos: connect {src} -> {dst} refused")

    def accept_delay_for(self, node: NodeId) -> float:
        """Seconds an inbound accept on ``node`` is held before HELLO."""
        return self._accept_delays.get(node, self.accept_delay)

    def wrap(self, local: NodeId, remote: NodeId, reader, writer):
        """Wrap one peer connection's streams on ``local``'s side.

        Outgoing bytes ride the ``local -> remote`` flow; incoming bytes
        the ``remote -> local`` flow.  Both sides of a connection wrap
        against the *same* two :class:`_LinkChaos` states, so a fault
        injected on a directed flow applies wherever the bytes would
        cross it.
        """
        registered = self._writers.setdefault((local, remote), [])
        registered[:] = [w for w in registered if not w.is_closing()]
        registered.append(writer)
        # A fresh connection starts clean: faults are one-shot against the
        # links live at injection time (mirroring the sim, where a redial
        # creates a new, unfaulted SimLink).  Without this, a supervisor
        # redial after a confirmed death would inherit the old fault and
        # the pair would churn teardown/reconnect forever.
        out_state, in_state = self.link(local, remote), self.link(remote, local)
        out_state.set_mode(_LinkChaos.OK)
        in_state.set_mode(_LinkChaos.OK)
        return _ChaosReader(in_state, reader), _ChaosWriter(out_state, writer)

    # ------------------------------------------------------------- fault verbs

    def refuse_connect(self, dst: NodeId) -> None:
        """All future dials to ``dst`` fail with ``ConnectionRefusedError``."""
        self._refused.add(dst)

    def allow_connect(self, dst: NodeId) -> None:
        self._refused.discard(dst)

    def set_accept_delay(self, node: NodeId, seconds: float) -> None:
        self._accept_delays[node] = seconds

    def stall_link(self, src: NodeId, dst: NodeId) -> None:
        """Silently stall ``src -> dst``: writes swallowed, reads parked.

        No socket error fires on either side — only engines with
        ``resilience.inactivity_timeout`` configured will ever notice.
        """
        self.n_stalls += 1
        self.link(src, dst).set_mode(_LinkChaos.STALL)

    def unstall_link(self, src: NodeId, dst: NodeId) -> None:
        self.link(src, dst).set_mode(_LinkChaos.OK)

    def cut_link(self, src: NodeId, dst: NodeId) -> None:
        """Reset the connection between ``src`` and ``dst`` mid-stream.

        A TCP reset is loud in both directions; raises
        :class:`~repro.errors.UnknownNodeError` when no wrapped
        connection between the two endpoints ever existed (mirroring the
        sim's ``cut_link``).
        """
        writers = self._writers.get((src, dst), []) + self._writers.get((dst, src), [])
        if not writers:
            raise UnknownNodeError(f"no live link {src} -> {dst}")
        self.n_resets += 1
        self.link(src, dst).set_mode(_LinkChaos.RESET)
        self.link(dst, src).set_mode(_LinkChaos.RESET)
        for writer in writers:
            _abort_writer(writer)

    def truncate_next(self, src: NodeId, dst: NodeId) -> None:
        """Truncate the next frame written on ``src -> dst``, then reset."""
        self.n_truncations += 1
        self.link(src, dst).truncate_armed = True


class ChaosCluster:
    """A localhost fleet of asyncio engines wired through one controller.

    Provides just enough of :class:`~repro.sim.network.SimNetwork`'s
    surface (``engine()``, ``net[name]``, schedule arming) that failure
    experiments written against the simulator run on real sockets too.
    """

    def __init__(
        self,
        chaos: ChaosController | None = None,
        observer_addr: NodeId | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.chaos = chaos if chaos is not None else ChaosController()
        self.observer_addr = observer_addr
        self.host = host
        self._engines: dict[str, AsyncioEngine] = {}
        self._names: dict[NodeId, str] = {}
        self._handles: list[asyncio.TimerHandle] = []
        self._t0: float | None = None
        self._node_factory = None

    # ---------------------------------------------------------------- topology

    async def add_node(
        self,
        algorithm: Algorithm,
        name: str | None = None,
        config: NetEngineConfig | None = None,
    ) -> AsyncioEngine:
        config = config if config is not None else NetEngineConfig()
        config.chaos = self.chaos
        engine = AsyncioEngine(
            NodeId(self.host, 0),
            algorithm,
            observer_addr=self.observer_addr,
            config=config,
        )
        await engine.start()
        if name is None:
            name = f"n{len(self._engines)}"
        self._engines[name] = engine
        self._names[engine.node_id] = name
        return engine

    def engine(self, node: NodeId | str) -> AsyncioEngine:
        name = node if isinstance(node, str) else self._names.get(node)
        engine = self._engines.get(name) if name is not None else None
        if engine is None:
            raise UnknownNodeError(f"no node {node!r} in cluster")
        return engine

    def __getitem__(self, name: NodeId | str) -> NodeId:
        return name if isinstance(name, NodeId) else self.engine(name).node_id

    def engines(self) -> list[AsyncioEngine]:
        return list(self._engines.values())

    async def stop(self) -> None:
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()
        for engine in self._engines.values():
            await engine.stop()

    # --------------------------------------------------------------- schedules

    def arm(self, schedule: FailureSchedule, node_factory=None) -> None:
        """Fire the schedule's events at wall-clock offsets from *now*.

        The same :class:`FailureSchedule` object arms against a
        :class:`~repro.sim.network.SimNetwork` (virtual time) or against
        this cluster (wall time): event semantics map one to one, with
        the chaos controller standing in for direct link handles.

        ``node_factory`` (required when the schedule contains
        ``join_node`` events) is an async callable ``(cluster, name)``
        that creates and starts the arriving node — typically a wrapper
        around :meth:`add_node` that also seeds a membership contact.
        """
        if node_factory is None and any(
            e.kind == "join_node" for e in schedule.events
        ):
            raise ValueError(
                "schedule contains join_node events: arm(schedule, node_factory=...)"
            )
        self._node_factory = node_factory
        loop = asyncio.get_running_loop()
        self._t0 = loop.time()
        for event in sorted(schedule.events, key=lambda e: e.at):
            self._handles.append(loop.call_later(event.at, self._fire, event))

    def _fire(self, event: FailureEvent) -> None:
        try:
            if event.kind == "kill_node":
                asyncio.ensure_future(self.engine(event.node).stop())
            elif event.kind == "join_node":
                assert self._node_factory is not None
                asyncio.ensure_future(
                    self._node_factory(self, str(event.node))
                )
            elif event.kind == "leave_node":
                asyncio.ensure_future(self._graceful_leave(event.node))
            elif event.kind == "cut_link":
                assert event.peer is not None
                self.chaos.cut_link(self[event.node], self[event.peer])
            elif event.kind == "stall_link":
                assert event.peer is not None
                self.chaos.stall_link(self[event.node], self[event.peer])
            elif event.kind == "kill_source":
                assert event.app is not None
                self.engine(event.node).stop_source(event.app)
        except UnknownNodeError:
            # The target already failed or was torn down first; an
            # injected fault racing a real one is not an experiment error.
            pass

    async def _graceful_leave(self, node: NodeId | str) -> None:
        """Announce departure (when the algorithm can), then stop."""
        try:
            engine = self.engine(node)
        except UnknownNodeError:
            return
        announce = getattr(engine.algorithm, "announce_leave", None)
        if callable(announce):
            announce()
            await asyncio.sleep(0.05)  # let the final gossip blast drain
        await engine.stop()
