"""Virtualized nodes: many full iOverlay engines in one process.

The paper's engine "supports virtualized nodes, i.e., more than one
iOverlay node per physical host".  A :class:`VirtualHost` multiplexes N
complete :class:`~repro.net.engine.AsyncioEngine` instances — each with
its own algorithm, switch, buffers, telemetry and TCP server — on one
asyncio event loop.  Traffic between two co-hosted nodes never touches a
socket: the host's :class:`LoopbackResolver` short-circuits the dial
into a pair of in-process :class:`LoopbackEndpoint` channels that move
:class:`~repro.core.message.Message` objects **by reference** (no
header serialization, no payload copies).  Peers outside the host are
reached through the ordinary socket path, so a virtual host drops into
a physical overlay transparently.

Loopback endpoints speak the same duck-typed surface the engine's IO
loops already use (``recv_message``/``send_message``/``drain``/
``close``), and failure semantics mirror sockets: closing either side
raises ``IncompleteReadError`` at the remote reader and
``ConnectionError`` at writers, driving the exact ``_peer_failed``
teardown a dead socket would.  Dialing a co-hosted node that is not
running raises ``ConnectionRefusedError`` like a closed port.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable

from repro.core.algorithm import Algorithm
from repro.core.ids import NodeId
from repro.core.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.engine import AsyncioEngine, NetEngineConfig

#: default in-flight window (messages) per loopback direction — the
#: analog of a socket's send buffer, sized like the engines' buffers.
DEFAULT_WINDOW = 64


class _LoopbackPipe:
    """One direction of a loopback connection: a bounded message FIFO."""

    __slots__ = ("capacity", "items", "closed", "_data", "_space")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.items: deque[Message] = deque()
        self.closed = False
        self._data = asyncio.Event()
        self._space = asyncio.Event()
        self._space.set()

    def send(self, msg: Message) -> None:
        if self.closed:
            raise ConnectionResetError("loopback connection closed")
        self.items.append(msg)
        self._data.set()
        if len(self.items) >= self.capacity:
            self._space.clear()

    async def drain(self) -> None:
        """Block while the in-flight window is full (socket back pressure)."""
        while len(self.items) >= self.capacity and not self.closed:
            self._space.clear()
            await self._space.wait()
        if self.closed:
            raise ConnectionResetError("loopback connection closed")

    async def recv(self) -> Message:
        while not self.items:
            if self.closed:
                # The same EOF the socket reader would see: lets the
                # engine's except-clause run its normal failure path.
                raise asyncio.IncompleteReadError(partial=b"", expected=1)
            self._data.clear()
            await self._data.wait()
        msg = self.items.popleft()
        if len(self.items) < self.capacity:
            self._space.set()
        return msg

    def close(self) -> None:
        self.closed = True
        self._data.set()
        self._space.set()


class LoopbackEndpoint:
    """One side of a full-duplex in-process connection.

    Serves as both the ``reader`` and the ``writer`` object in the
    engine's peer state — :func:`repro.net.framing.read_message` and
    :func:`~repro.net.framing.write_message` dispatch here on the
    presence of ``recv_message``/``send_message``.
    """

    __slots__ = ("_rx", "_tx")

    #: transport label surfaced by the engine's ``transport_mix()``
    transport_kind = "loopback"

    def __init__(self, rx: _LoopbackPipe, tx: _LoopbackPipe) -> None:
        self._rx = rx
        self._tx = tx

    async def recv_message(self) -> Message:
        return await self._rx.recv()

    def send_message(self, msg: Message) -> None:
        self._tx.send(msg)

    async def drain(self) -> None:
        await self._tx.drain()

    def close(self) -> None:
        """Tear down the whole connection, like closing a TCP socket."""
        self._rx.close()
        self._tx.close()

    def is_closing(self) -> bool:
        return self._tx.closed

    def at_eof(self) -> bool:
        return self._rx.closed and not self._rx.items


def loopback_pair(window: int = DEFAULT_WINDOW) -> tuple[LoopbackEndpoint, LoopbackEndpoint]:
    """A connected pair of full-duplex in-process endpoints."""
    a_to_b = _LoopbackPipe(window)
    b_to_a = _LoopbackPipe(window)
    return (
        LoopbackEndpoint(rx=b_to_a, tx=a_to_b),
        LoopbackEndpoint(rx=a_to_b, tx=b_to_a),
    )


class LoopbackResolver:
    """Maps co-hosted node identities to their engines for in-process dials.

    Installed on each co-hosted engine's config; the engine's dial path
    consults it first and falls back to real sockets when the
    destination is not on this host.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._window = window
        self._engines: dict[NodeId, "AsyncioEngine"] = {}
        #: loopback connections brokered (the scaling experiment's proof
        #: that co-hosted traffic is not secretly using sockets)
        self.dials = 0

    def register(self, engine: "AsyncioEngine") -> None:
        self._engines[engine.node_id] = engine

    def unregister(self, node_id: NodeId) -> None:
        self._engines.pop(node_id, None)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._engines

    def dial(self, src: NodeId, dest: NodeId) -> tuple[LoopbackEndpoint, LoopbackEndpoint] | None:
        """Connect ``src`` to co-hosted ``dest`` in one synchronous step.

        Returns the dialer's ``(reader, writer)`` endpoints, or ``None``
        when ``dest`` is not on this host (the caller then dials a real
        socket).  The HELLO identification round trip is unnecessary:
        both identities are known, so the remote engine admits the
        inbound transport directly.
        """
        engine = self._engines.get(dest)
        if engine is None:
            return None
        if not engine.running:
            raise ConnectionRefusedError(f"co-hosted node {dest} is not running")
        ours, theirs = loopback_pair(self._window)
        self.dials += 1
        engine.accept_transport(src, theirs, theirs)
        return ours, ours


class VirtualHost:
    """N full iOverlay nodes multiplexed on one asyncio event loop.

    Every node is a complete :class:`AsyncioEngine` — own algorithm,
    switch, bounded buffers, observer link and (real) server socket for
    off-host peers — but connections between co-hosted nodes are
    zero-copy loopback channels.  Usage::

        host = VirtualHost(observer_addr=obs.addr)
        engines = [host.add_node(MyAlgorithm()) for _ in range(200)]
        await host.start()
        ...
        await host.stop()
    """

    def __init__(
        self,
        observer_addr: NodeId | None = None,
        window: int = DEFAULT_WINDOW,
        ip: str = "127.0.0.1",
    ) -> None:
        self.resolver = LoopbackResolver(window)
        self._observer_addr = observer_addr
        self._ip = ip
        self._nodes: list["AsyncioEngine"] = []

    @property
    def nodes(self) -> list["AsyncioEngine"]:
        """The hosted engines, in add order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(
        self,
        algorithm: Algorithm,
        port: int = 0,
        config: "NetEngineConfig | None" = None,
    ) -> "AsyncioEngine":
        """Create (but do not start) one co-hosted node.

        ``port=0`` lets each node's server pick an ephemeral port; the
        node's final identity is known after :meth:`start`.  A provided
        ``config`` is copied with the host's loopback resolver installed.
        """
        from repro.net.engine import AsyncioEngine, NetEngineConfig

        config = replace(config, loopback=self.resolver) if config is not None \
            else NetEngineConfig(loopback=self.resolver)
        engine = AsyncioEngine(
            NodeId(self._ip, port), algorithm,
            observer_addr=self._observer_addr, config=config,
        )
        self._nodes.append(engine)
        return engine

    async def start(self) -> None:
        """Start every node and publish their final identities for loopback."""
        for engine in self._nodes:
            if not engine.running:
                await engine.start()
                self.resolver.register(engine)

    async def start_node(self, engine: "AsyncioEngine") -> None:
        """Start one previously added node (dynamic placement path).

        The cluster worker places nodes one at a time while the host is
        already live: the node's identity is final (port 0 resolved)
        once this returns, and co-hosted dials to it go over loopback.
        """
        await engine.start()
        self.resolver.register(engine)

    async def stop_node(self, engine: "AsyncioEngine") -> None:
        """Gracefully stop and unlist one co-hosted node."""
        self.resolver.unregister(engine.node_id)
        if engine in self._nodes:
            self._nodes.remove(engine)
        await engine.stop()

    async def stop(self) -> None:
        """Stop every node (reverse add order)."""
        for engine in reversed(self._nodes):
            self.resolver.unregister(engine.node_id)
            await engine.stop()

    async def connect_chain(self, engines: Iterable["AsyncioEngine"] | None = None) -> None:
        """Connect consecutive nodes into a forwarding chain (fig5 shape)."""
        chain = list(engines) if engines is not None else self._nodes
        for left, right in zip(chain, chain[1:]):
            await left.connect(right.node_id)
