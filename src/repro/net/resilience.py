"""Connection supervision policies for the asyncio engine.

The paper's failure handling is *passive*: socket errors, broken pipes
and traffic inactivity (Section 3.1).  The live engine layers three
small, deterministic policies on top of that passive core:

- :class:`BackoffPolicy` — bounded exponential backoff with seeded
  jitter, shared by peer redials and observer reconnects, so transient
  connect failures are retried within a configurable budget instead of
  giving up after one attempt;
- :class:`LinkHealth` — the ``LIVE -> SUSPECT -> PROBING -> DEAD``
  ladder driven by traffic inactivity and probe timeouts, the real-path
  twin of the simulator's ``stall_link`` detection.  Probes are sent
  *only* after inactivity raises suspicion (reactive, on-demand), never
  as periodic heartbeats — the paper forbids active heartbeating;
- :class:`ObserverOutbox` — a bounded, drop-oldest buffer that carries
  status/trace messages across observer reconnects, so a status report
  never vanishes without at least a counted drop.

Everything here is pure policy (no IO): the engine owns the sockets and
asks these objects what to do next, which keeps the layer unit-testable
and the injected randomness reproducible under a fixed seed.

These policies are transport-agnostic on purpose.  A shared-memory ring
link (:mod:`repro.net.shm`) keeps its TCP socket open as the liveness
channel, so socket EOF still signals peer death instantly, and reactive
``HEARTBEAT`` probes ride the ring like any other frame — the
``LIVE -> SUSPECT -> PROBING -> DEAD`` ladder needs no shm-specific
branch.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from repro.core.message import Message


class LinkHealth:
    """States of one peer link's failure-detection ladder."""

    LIVE = "live"          # traffic observed within the inactivity window
    SUSPECT = "suspect"    # silent too long; a probe is being dispatched
    PROBING = "probing"    # probe in flight, awaiting any return traffic
    DEAD = "dead"          # probe timed out; the link is being torn down

    ALL = (LIVE, SUSPECT, PROBING, DEAD)


@dataclass
class ResilienceConfig:
    """Tunables of the engine's resilience layer.

    The defaults keep the engine's historical behaviour wherever a
    feature is new: inactivity detection is off until a timeout is
    configured, while connect retries and observer reconnection are on
    (they only change outcomes that were previously hard failures).
    """

    #: connect attempts per peer dial (>= 1); the retry budget
    connect_retries: int = 3
    #: first backoff delay (seconds); doubles per failed attempt
    backoff_base: float = 0.05
    #: ceiling on a single backoff delay (seconds)
    backoff_max: float = 2.0
    #: jitter fraction added on top of the deterministic delay
    backoff_jitter: float = 0.1
    #: seed for the jitter RNG — fixed seed, fixed delays
    seed: int = 0
    #: seconds of receive silence before a peer becomes SUSPECT;
    #: ``None`` disables the watchdog (socket errors still detect)
    inactivity_timeout: float | None = None
    #: how long a liveness probe may go unanswered before DEAD
    probe_timeout: float = 1.0
    #: watchdog wake period; ``None`` derives it from the timeouts
    check_interval: float | None = None
    #: bounded observer outbox capacity (messages); overflow drops oldest
    observer_outbox: int = 256
    #: whether a lost observer link is redialled in the background
    observer_reconnect: bool = True
    #: ceiling on one observer-reconnect backoff delay (seconds)
    observer_backoff_max: float = 5.0
    #: give up after this many consecutive observer redial failures
    #: (``None`` = keep trying for the life of the node)
    observer_retry_budget: int | None = None

    def watchdog_interval(self) -> float:
        """The wake period of the inactivity watchdog."""
        if self.check_interval is not None:
            return self.check_interval
        assert self.inactivity_timeout is not None
        return max(min(self.inactivity_timeout, self.probe_timeout) / 2.0, 0.01)


class BackoffPolicy:
    """Bounded exponential backoff with deterministic, seeded jitter."""

    def __init__(
        self,
        base: float,
        maximum: float,
        jitter: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        self.base = base
        self.maximum = maximum
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random(0)

    def delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based), in seconds."""
        raw = min(self.base * (2.0 ** attempt), self.maximum)
        if self.jitter:
            raw *= 1.0 + self.jitter * self._rng.random()
        return raw

    @classmethod
    def for_peers(cls, config: ResilienceConfig, rng: random.Random) -> "BackoffPolicy":
        return cls(config.backoff_base, config.backoff_max, config.backoff_jitter, rng)

    @classmethod
    def for_observer(cls, config: ResilienceConfig, rng: random.Random) -> "BackoffPolicy":
        return cls(
            config.backoff_base, config.observer_backoff_max, config.backoff_jitter, rng
        )


class ObserverOutbox:
    """Bounded FIFO of messages awaiting the observer link.

    ``push`` never blocks and never raises: when the box is full the
    *oldest* entry is evicted and returned so the caller can count the
    drop — fresher status beats stale status, and the engine must never
    stall on observability traffic.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"outbox capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque[Message] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def push(self, msg: Message) -> Message | None:
        """Append ``msg``; returns the evicted oldest entry on overflow."""
        dropped = None
        if len(self._items) >= self.capacity:
            dropped = self._items.popleft()
        self._items.append(msg)
        return dropped

    def head(self) -> Message:
        """The oldest queued message (kept queued until :meth:`pop_head`)."""
        return self._items[0]

    def snapshot(self) -> list[Message]:
        """All queued messages, oldest first, without removing them.

        The engine's coalesced flush writes the whole snapshot, drains
        the stream once, and only then pops each entry — preserving the
        at-least-once contract: a failed flush leaves every message
        queued for the next connection.
        """
        return list(self._items)

    def pop_head(self, msg: Message) -> None:
        """Drop ``msg`` if it is still the head (sent successfully)."""
        if self._items and self._items[0] is msg:
            self._items.popleft()

    def clear(self) -> None:
        self._items.clear()
