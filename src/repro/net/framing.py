"""Reading and writing iOverlay messages on asyncio TCP streams.

No extra framing layer is needed: the fixed 24-byte header already
declares the payload size (Fig. 3 of the paper), so a frame is read as
header-then-payload.  The first frame on every fresh connection must be
a ``HELLO`` carrying the sender's publicized identity, because the
ephemeral source port of an outgoing TCP connection does not identify
the overlay node behind it.
"""

from __future__ import annotations

import asyncio
import struct

from repro.core.ids import NodeId, int_to_ip
from repro.core.message import HEADER_SIZE, Message
from repro.core.msgtypes import MsgType
from repro.errors import CodecError

_HEADER_STRUCT = struct.Struct("!IIIIiI")

#: refuse frames whose declared payload exceeds this (protects the reader)
MAX_FRAME_PAYLOAD = 64 * 1024 * 1024


async def read_message(reader: asyncio.StreamReader) -> Message:
    """Read one message; raises ``IncompleteReadError`` on EOF mid-frame
    and :class:`~repro.errors.CodecError` on malformed frames.

    Dispatches on the endpoint type: in-process loopback endpoints
    (:mod:`repro.net.virtual`) hand over the :class:`Message` object by
    reference — no header is ever serialized for co-hosted peers.
    """
    recv = getattr(reader, "recv_message", None)
    if recv is not None:
        return await recv()
    header = await reader.readexactly(HEADER_SIZE)
    type_, ip_int, port, app, seq, payload_size = _HEADER_STRUCT.unpack(header)
    if payload_size > MAX_FRAME_PAYLOAD:
        raise CodecError(f"frame declares {payload_size} payload bytes; refusing")
    payload = await reader.readexactly(payload_size) if payload_size else b""
    return Message(type_, NodeId(int_to_ip(ip_int), port), app, payload, seq=seq)


def write_message(writer: asyncio.StreamWriter, msg: Message) -> None:
    """Queue one message on the stream (caller drains with ``await writer.drain()``).

    Header and payload are written as separate buffers: the payload
    bytes object reaches the transport by reference instead of being
    copied into a concatenated frame first (zero-copy on the data path).
    """
    send = getattr(writer, "send_message", None)
    if send is not None:  # loopback endpoint: pass the object, zero-copy
        send(msg)
        return
    writer.write(msg.header_bytes())
    payload = msg.payload
    if payload:
        writer.write(payload)


def hello_message(node: NodeId) -> Message:
    """The identification frame opening every persistent connection."""
    return Message.with_fields(MsgType.HELLO, node, 0, node=str(node))


# --- proxy envelopes ----------------------------------------------------------
#
# Frames relayed across an observer-proxy hop travel inside a PROXY
# envelope carrying the inner frame as hex.  The inner frame's header is
# preserved byte for byte, which is what propagates trace ids across
# worker boundaries: the id is a pure function of (sender, app, seq), so
# re-decoding the hex yields a message with the *identical* trace id the
# originating worker recorded.


def wrap_proxy_up(proxy: NodeId, origin: NodeId, frame: Message) -> Message:
    """Wrap a node's upward frame for the single upstream connection."""
    return Message.with_fields(
        MsgType.PROXY, proxy, 0, origin=str(origin), frame=frame.pack().hex()
    )


def wrap_proxy_down(sender: NodeId, dest: NodeId, frame: Message) -> Message:
    """Wrap an observer's downward frame for a proxied node."""
    return Message.with_fields(
        MsgType.PROXY, sender, 0, dest=str(dest), frame=frame.pack().hex()
    )


def unwrap_proxy(fields: dict) -> Message:
    """Decode the inner frame of a PROXY envelope's ``fields()``."""
    return Message.unpack(bytes.fromhex(fields["frame"]))


def peek_frame_type(fields: dict) -> int:
    """The inner frame's message type without decoding the whole frame.

    The type is the first 4 header bytes; aggregating proxies use this
    to special-case BOOT frames passing through without paying a full
    unpack per relayed envelope.
    """
    return int.from_bytes(bytes.fromhex(fields["frame"][:8]), "big")


async def open_identified(
    dest: NodeId, identity: NodeId, timeout: float = 10.0
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a TCP connection to ``dest`` and introduce ourselves."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(dest.ip, dest.port), timeout
    )
    write_message(writer, hello_message(identity))
    await writer.drain()
    return reader, writer


async def expect_hello(reader: asyncio.StreamReader, timeout: float = 10.0) -> NodeId:
    """Read the HELLO frame that must open an inbound connection."""
    msg = await asyncio.wait_for(read_message(reader), timeout)
    if msg.type != MsgType.HELLO:
        raise CodecError(f"expected HELLO, got type {msg.type}")
    return NodeId.parse(msg.fields()["node"])
