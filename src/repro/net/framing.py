"""Reading and writing iOverlay messages on asyncio TCP streams.

No extra framing layer is needed: the fixed 24-byte header already
declares the payload size (Fig. 3 of the paper), so a frame is read as
header-then-payload.  The first frame on every fresh connection must be
a ``HELLO`` carrying the sender's publicized identity, because the
ephemeral source port of an outgoing TCP connection does not identify
the overlay node behind it.
"""

from __future__ import annotations

import asyncio
import json
import struct

from repro.core.ids import NodeId
from repro.core.message import HEADER_SIZE, Message
from repro.core.msgtypes import MsgType
from repro.errors import CodecError

_HEADER_STRUCT = struct.Struct("!IIIIiI")
_META_LEN = struct.Struct("!I")

#: refuse frames whose declared payload exceeds this (protects the reader)
MAX_FRAME_PAYLOAD = 64 * 1024 * 1024


async def read_message(reader: asyncio.StreamReader) -> Message:
    """Read one message; raises ``IncompleteReadError`` on EOF mid-frame
    and :class:`~repro.errors.CodecError` on malformed frames.

    Dispatches on the endpoint type: in-process loopback endpoints
    (:mod:`repro.net.virtual`) hand over the :class:`Message` object by
    reference — no header is ever serialized for co-hosted peers.
    """
    recv = getattr(reader, "recv_message", None)
    if recv is not None:
        return await recv()
    header = await reader.readexactly(HEADER_SIZE)
    payload_size = _HEADER_STRUCT.unpack(header)[5]
    if payload_size > MAX_FRAME_PAYLOAD:
        raise CodecError(f"frame declares {payload_size} payload bytes; refusing")
    payload = await reader.readexactly(payload_size) if payload_size else b""
    # Decoding through ``unpack`` keeps the received frame cached on the
    # message, so relaying it re-sends the identical bytes unpacked here.
    return Message.unpack(header + payload, max_payload=MAX_FRAME_PAYLOAD)


def write_message(writer: asyncio.StreamWriter, msg: Message) -> None:
    """Queue one message on the stream (caller drains with ``await writer.drain()``).

    Header and payload are written as separate buffers: the payload
    bytes object reaches the transport by reference instead of being
    copied into a concatenated frame first (zero-copy on the data path).
    """
    send = getattr(writer, "send_message", None)
    if send is not None:  # loopback endpoint: pass the object, zero-copy
        send(msg)
        return
    frame = msg.cached_frame()
    if frame is not None:  # relay fast path: one pre-built buffer
        writer.write(frame)
        return
    writer.write(msg.header_bytes())
    payload = msg.payload
    if payload:
        writer.write(payload)


# --- vectorized batch writes --------------------------------------------------
#
# The sender loop drains its whole queue per wakeup, so header packing
# is naturally batchable: splice every message's six header fields into
# ONE precompiled ``struct.Struct`` call covering the burst, then slice
# the 24-byte views back out.  Python-level call overhead is paid once
# per burst instead of once per frame.

#: batch size -> precompiled N-header struct (bounded: sender bursts
#: cluster around the switch's rounds-per-wakeup, so a few dozen
#: distinct sizes cover steady state; odd sizes fall back per-message)
_BATCH_STRUCTS: dict[int, struct.Struct] = {}
_BATCH_STRUCTS_LIMIT = 512
_HEADER_FMT = "IIIIiI"


def pack_headers(msgs: list[Message]) -> memoryview:
    """Pack every message's 24-byte header with one ``struct`` call.

    Returns a ``len(msgs) * 24``-byte buffer; caller slices per-frame
    views out of it (no per-header bytes objects are materialized).
    """
    n = len(msgs)
    packer = _BATCH_STRUCTS.get(n)
    if packer is None:
        packer = struct.Struct("!" + _HEADER_FMT * n)
        if len(_BATCH_STRUCTS) < _BATCH_STRUCTS_LIMIT:
            _BATCH_STRUCTS[n] = packer
    values: list[int] = []
    for msg in msgs:
        values += msg.header_values()
    return memoryview(packer.pack(*values))


def write_batch(writer: asyncio.StreamWriter, msgs: list[Message]) -> None:
    """Queue a whole sender-drain burst (caller awaits ``writer.drain()``).

    Messages with a cached wire frame go out as that single buffer (the
    relay fast path); everything else has its header batch-packed in one
    vectorized call and its payload handed over by reference.
    """
    send = getattr(writer, "send_message", None)
    if send is not None:  # loopback/shm endpoint: per-object handoff
        for msg in msgs:
            send(msg)
        return
    fresh = [msg for msg in msgs if msg.cached_frame() is None]
    if len(fresh) < 2:
        for msg in msgs:
            write_message(writer, msg)
        return
    headers = pack_headers(fresh)
    index = 0
    for msg in msgs:
        frame = msg.cached_frame()
        if frame is not None:
            writer.write(frame)
            continue
        offset = index * HEADER_SIZE
        writer.write(headers[offset : offset + HEADER_SIZE])
        index += 1
        payload = msg.payload
        if payload:
            writer.write(payload)


def hello_message(node: NodeId, **extra: object) -> Message:
    """The identification frame opening every persistent connection.

    ``extra`` carries capability fields (``None`` values are dropped) —
    today only ``shm``, a shared-memory ring offer for co-machine peers
    (see :mod:`repro.net.shm`).
    """
    fields = {key: value for key, value in extra.items() if value is not None}
    return Message.with_fields(MsgType.HELLO, node, 0, node=str(node), **fields)


# --- proxy envelopes ----------------------------------------------------------
#
# Frames relayed across an observer-proxy hop travel inside a PROXY
# envelope: a 4-byte length, the JSON routing metadata (origin/dest),
# then the inner frame's **raw bytes** — hex would double every proxied
# byte on the observer plane.  The inner frame's header is preserved
# byte for byte, which is what propagates trace ids across worker
# boundaries: the id is a pure function of (sender, app, seq), so
# re-decoding the suffix yields a message with the *identical* trace id
# the originating worker recorded.


def _proxy_envelope(sender: NodeId, meta: dict, frame_bytes: bytes) -> Message:
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode()
    payload = b"".join((_META_LEN.pack(len(meta_bytes)), meta_bytes, frame_bytes))
    return Message(MsgType.PROXY, sender, 0, payload)


def wrap_proxy_up(proxy: NodeId, origin: NodeId, frame: Message) -> Message:
    """Wrap a node's upward frame for the single upstream connection."""
    return _proxy_envelope(proxy, {"origin": str(origin)}, frame.pack())


def wrap_proxy_up_bytes(proxy: NodeId, origin: str, frame_bytes: bytes) -> Message:
    """Re-wrap an already-serialized inner frame (BOOT replay on redial)."""
    return _proxy_envelope(proxy, {"origin": origin}, frame_bytes)


def wrap_proxy_down(sender: NodeId, dest: NodeId, frame: Message) -> Message:
    """Wrap an observer's downward frame for a proxied node."""
    return _proxy_envelope(sender, {"dest": str(dest)}, frame.pack())


def proxy_meta(envelope: Message) -> dict:
    """The envelope's routing metadata ({'origin': ...} or {'dest': ...})."""
    payload = envelope.payload
    (meta_len,) = _META_LEN.unpack_from(payload)
    return json.loads(payload[4 : 4 + meta_len])


def proxy_frame_bytes(envelope: Message) -> bytes:
    """The inner frame's raw wire bytes, without decoding them."""
    payload = envelope.payload
    (meta_len,) = _META_LEN.unpack_from(payload)
    return payload[4 + meta_len :]


def unwrap_proxy(envelope: Message) -> Message:
    """Decode the inner frame of a PROXY envelope."""
    return Message.unpack(proxy_frame_bytes(envelope))


def peek_frame_type(envelope: Message) -> int:
    """The inner frame's message type without decoding the whole frame.

    The type is the first 4 bytes after the metadata — one struct read
    and one 4-byte slice, O(1) in the frame size; aggregating proxies
    use this to special-case BOOT frames passing through without paying
    a full unpack per relayed envelope.
    """
    payload = envelope.payload
    (meta_len,) = _META_LEN.unpack_from(payload)
    start = 4 + meta_len
    return int.from_bytes(payload[start : start + 4], "big")


async def open_identified(
    dest: NodeId, identity: NodeId, timeout: float = 10.0
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a TCP connection to ``dest`` and introduce ourselves."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(dest.ip, dest.port), timeout
    )
    write_message(writer, hello_message(identity))
    await writer.drain()
    return reader, writer


async def expect_hello(reader: asyncio.StreamReader, timeout: float = 10.0) -> NodeId:
    """Read the HELLO frame that must open an inbound connection."""
    node, _ = await expect_hello_fields(reader, timeout)
    return node


async def expect_hello_fields(
    reader: asyncio.StreamReader, timeout: float = 10.0
) -> tuple[NodeId, dict]:
    """Read an inbound HELLO; returns the identity plus capability fields
    (the engine inspects ``fields["shm"]`` for a ring-channel offer)."""
    msg = await asyncio.wait_for(read_message(reader), timeout)
    if msg.type != MsgType.HELLO:
        raise CodecError(f"expected HELLO, got type {msg.type}")
    fields = msg.fields()
    return NodeId.parse(fields["node"]), fields
