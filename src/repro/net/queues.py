"""A bounded asyncio queue with the engine's required surface.

``asyncio.Queue`` lacks close semantics and a capacity-exempt put for
small control messages, so the asyncio engine uses this thin primitive
with the exact surface of :class:`repro.sim.sync.SimQueue` — keeping the
switch logic of both engines structurally identical.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Generic, TypeVar

from repro.errors import BufferClosedError

T = TypeVar("T")


class AsyncBoundedQueue(Generic[T]):
    """Bounded FIFO with blocking put/get, force-put and close."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._capacity = capacity
        self._items: deque[T] = deque()
        self._closed = False
        self._getters: deque[asyncio.Future] = deque()
        self._putters: deque[asyncio.Future] = deque()
        #: optional listener called with the size delta after every
        #: mutation (see :class:`repro.core.buffer.CircularBuffer`)
        self.on_size_change = None

    # --- introspection --------------------------------------------------------------

    @property
    def capacity(self) -> int | None:
        """Nominal bound in items (None = unbounded)."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        """True when at (or past, via put_force) the nominal bound."""
        return self._capacity is not None and len(self._items) >= self._capacity

    @property
    def is_empty(self) -> bool:
        """True when no items are queued."""
        return not self._items

    @property
    def closed(self) -> bool:
        """True once close() was called; puts then raise."""
        return self._closed

    # --- operations -------------------------------------------------------------------

    async def put(self, item: T) -> None:
        """Append ``item``, parking the task while the queue is full."""
        while True:
            if self._closed:
                raise BufferClosedError("put on closed queue")
            if not self.is_full:
                self._items.append(item)
                if self.on_size_change is not None:
                    self.on_size_change(1)
                self._wake(self._getters)
                return
            waiter = asyncio.get_running_loop().create_future()
            self._putters.append(waiter)
            try:
                await waiter
            except asyncio.CancelledError:
                if waiter in self._putters:
                    self._putters.remove(waiter)
                raise

    def put_nowait(self, item: T) -> bool:
        """Append without blocking; False when the queue is full."""
        if self._closed:
            raise BufferClosedError("put on closed queue")
        if self.is_full:
            return False
        self._items.append(item)
        if self.on_size_change is not None:
            self.on_size_change(1)
        self._wake(self._getters)
        return True

    def put_many_nowait(self, items: list[T], start: int = 0) -> int:
        """Append ``items[start:]`` up to capacity; returns how many fit.

        One bulk append plus one waiter wake for a whole batch — the
        batched receiver path uses this so a burst of frames does not
        pay per-message queue bookkeeping.
        """
        if self._closed:
            raise BufferClosedError("put on closed queue")
        n = len(items) - start
        if self._capacity is not None:
            n = min(n, self._capacity - len(self._items))
        if n <= 0:
            return 0
        if start == 0 and n == len(items):
            self._items.extend(items)
        else:
            self._items.extend(items[start : start + n])
        if self.on_size_change is not None:
            self.on_size_change(n)
        self._wake(self._getters)
        return n

    def put_force(self, item: T) -> None:
        """Append past the capacity bound (small control traffic only)."""
        if self._closed:
            raise BufferClosedError("put on closed queue")
        self._items.append(item)
        if self.on_size_change is not None:
            self.on_size_change(1)
        self._wake(self._getters)

    async def get(self) -> T:
        """Remove the oldest item, parking while empty; drains after close."""
        while True:
            if self._items:
                item = self._items.popleft()
                if self.on_size_change is not None:
                    self.on_size_change(-1)
                self._wake(self._putters)
                return item
            if self._closed:
                raise BufferClosedError("get on closed, drained queue")
            waiter = asyncio.get_running_loop().create_future()
            self._getters.append(waiter)
            try:
                await waiter
            except asyncio.CancelledError:
                if waiter in self._getters:
                    self._getters.remove(waiter)
                raise

    def get_nowait(self) -> T:
        """Remove the oldest item; IndexError when empty."""
        if not self._items:
            raise IndexError("queue empty")
        item = self._items.popleft()
        if self.on_size_change is not None:
            self.on_size_change(-1)
        self._wake(self._putters)
        return item

    def drain(self) -> list[T]:
        """Remove and return everything queued, oldest first."""
        items = list(self._items)
        self._items.clear()
        if items and self.on_size_change is not None:
            self.on_size_change(-len(items))
        self._wake(self._putters)
        return items

    def close(self) -> None:
        """Refuse further puts; blocked waiters observe BufferClosedError."""
        if self._closed:
            return
        self._closed = True
        self._wake(self._getters)
        self._wake(self._putters)

    # --- internals ----------------------------------------------------------------------

    def _wake(self, waiters: deque) -> None:
        while waiters:
            waiter = waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
