"""Exception taxonomy for the iOverlay reproduction.

Every exception raised on purpose by this library derives from
:class:`IOverlayError`, so callers can catch library failures with a
single ``except`` clause while still letting programming errors
(``TypeError``, ``ValueError`` from user code, ...) propagate.
"""

from __future__ import annotations


class IOverlayError(Exception):
    """Base class for all errors raised by the iOverlay reproduction."""


class CodecError(IOverlayError):
    """A message could not be encoded to, or decoded from, wire bytes."""


class BufferClosedError(IOverlayError):
    """An operation was attempted on a closed buffer or queue."""


class LinkDownError(IOverlayError):
    """A send was attempted on a link that has failed or been torn down."""


class NodeTerminatedError(IOverlayError):
    """An operation reached a node that has been terminated."""


class BootstrapError(IOverlayError):
    """A node failed to bootstrap from the observer."""


class UnknownNodeError(IOverlayError):
    """A node id did not resolve to any live node."""


class SimulationError(IOverlayError):
    """The discrete-event kernel detected an inconsistent state."""


class DeadlockError(SimulationError):
    """The kernel ran out of events while tasks were still blocked."""


class ConfigurationError(IOverlayError):
    """Invalid engine, network, or experiment configuration."""


class DecodingError(IOverlayError):
    """A network-coding generation could not be decoded (rank deficient)."""


class FederationError(IOverlayError):
    """A service-federation session could not be completed."""


class ClusterError(IOverlayError):
    """A cluster control-plane operation (spawn, place, query) failed."""
