"""Switching bookkeeping: receiver ports, pending forwards, WRR order.

The engine thread "switches data messages from the receiver buffers to
the sender buffers in a weighted round-robin fashion, with dynamically
tunable weights" (Section 2.2).  When a message is successfully
forwarded to only a subset of its intended destinations (some sender
buffers full), the engine "labels each message with its set of remaining
senders, so that they may be tried in the next round."

This module holds that pure bookkeeping, shared by the simulated and the
asyncio engines:

- :class:`ReceiverPort` — one upstream connection's buffer, weight and
  at most one partially-forwarded message,
- :class:`PendingForward` — a message plus its remaining destinations,
- :class:`SwitchScheduler` — the rotating weighted round-robin order.

A port with a pending forward is *blocked*: no further message is taken
from its buffer until the pending one has fully left.  With small
buffers this is exactly the mechanism that produces the paper's back
pressure (Fig. 6b); with large buffers the pressure is delayed (Fig. 7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.buffer import CircularBuffer
from repro.core.ids import NodeId
from repro.core.message import Message


@dataclass
class PendingForward:
    """A message that still owes deliveries to ``remaining`` destinations."""

    msg: Message
    remaining: list[NodeId]

    @property
    def done(self) -> bool:
        return not self.remaining


@dataclass
class ReceiverPort:
    """Engine-side state of one incoming connection.

    ``buffer`` is any bounded FIFO exposing ``is_empty`` and ``__len__``;
    the simulated engine uses a blocking :class:`~repro.sim.sync.SimQueue`
    so that a full buffer parks the receiver task (back pressure), while
    unit tests may use a plain :class:`CircularBuffer`.

    ``pending`` holds messages produced while processing this port's
    traffic that could not be fully forwarded (some sender buffers were
    full).  While any forward is pending the port is *blocked*: no new
    message is taken from its buffer, preserving per-port FIFO order.
    """

    peer: NodeId
    buffer: "CircularBuffer[Message]"
    weight: int = 1
    pending: list[PendingForward] = field(default_factory=list)
    #: back-reference set by :meth:`SwitchScheduler.add_port`; lets the
    #: scheduler maintain its incremental work counters
    scheduler: "SwitchScheduler | None" = field(init=False, default=None, repr=False)
    #: whether this port is currently counted in the scheduler's
    #: pending-ports tally (kept exact by add_pending/prune_pending)
    _pending_counted: bool = field(init=False, default=False, repr=False)
    #: messages the algorithm HOLDs are charged here for observability
    held: int = 0
    #: cumulative messages taken off this port by switch rounds
    switched: int = 0
    #: cumulative sends from this port deferred on a full sender buffer
    deferred: int = 0
    #: deficit-round-robin credit: messages this port may still move in
    #: the current credit epoch.  Consumed as messages *depart* the port
    #: (processed without pending, or a pending forward completing), so
    #: the weight ratio holds even when the contended resource is a full
    #: sender buffer and every message goes through the pending path.
    credit: int = 1
    #: cached ``str(peer)``: telemetry labels this port without paying
    #: NodeId formatting/hashing per message
    label: str = field(init=False, default="")
    #: enqueue timestamps of buffered data messages, FIFO-parallel to
    #: ``buffer`` — feeds the telemetry queue-wait histogram (engines
    #: only touch it when telemetry is enabled)
    wait_times: deque = field(init=False, default_factory=deque)
    #: last credit epoch for which a CREDIT_EXHAUSTED trace event was
    #: emitted — the trace carries one event per port per epoch (the
    #: metric still counts every skipped visit)
    stall_epoch: int = field(init=False, default=-1)
    #: payload+header bytes currently sitting in ``buffer``.  The size
    #: listener only reports message *counts*, so the engines charge and
    #: refund bytes explicitly at their enqueue/dequeue sites via
    #: :meth:`note_bytes` — which keeps the per-port and scheduler-wide
    #: byte gauges O(1) to read (no buffer scan).
    buffered_bytes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.label = str(self.peer)

    def note_bytes(self, delta: int) -> None:
        """Charge (or refund, negative ``delta``) buffered bytes."""
        self.buffered_bytes += delta
        if self.scheduler is not None:
            self.scheduler._buffered_bytes += delta

    @property
    def blocked(self) -> bool:
        """True while a partially-forwarded message occupies this port."""
        if not self.pending:  # the common case: skip the genexpr
            return False
        return any(not forward.done for forward in self.pending)

    def add_pending(self, forward: PendingForward) -> None:
        """Register a partially-forwarded message (keeps counters exact).

        Only forwards that still owe deliveries count toward the
        scheduler's pending-ports tally — a done forward is pruning
        debt, not work.
        """
        self.pending.append(forward)
        if not forward.done and not self._pending_counted and self.scheduler is not None:
            self._pending_counted = True
            self.scheduler._pending_ports += 1

    def prune_pending(self) -> None:
        """Drop completed forwards."""
        if self.pending:
            self.pending = [forward for forward in self.pending if not forward.done]
        # Resync the scheduler's pending-ports tally with reality; this
        # also repairs counts for tests that append to ``pending``
        # directly instead of via add_pending.
        if self.scheduler is not None and self._pending_counted != bool(self.pending):
            self._pending_counted = bool(self.pending)
            self.scheduler._pending_ports += 1 if self._pending_counted else -1

    def discard_dest(self, dest: NodeId) -> None:
        """Remove a (dead) destination from every pending forward."""
        for forward in self.pending:
            forward.remaining = [node for node in forward.remaining if node != dest]
        self.prune_pending()

    def has_work(self) -> bool:
        """True if the buffer holds messages or a forward owes deliveries.

        Forwards already completed in place (``remaining`` emptied) but
        not yet pruned are *not* work — this keeps the engines' credit
        epoch check aligned with what a switch pass can actually move.
        """
        if not self.buffer.is_empty:
            return True
        for forward in self.pending:
            if not forward.done:
                return True
        return False


class SwitchScheduler:
    """Rotating weighted round-robin over receiver ports.

    Each call to :meth:`rotation` yields every registered port exactly
    once, starting after the port that ended the previous rotation, so
    no port can starve another.  Weights are consumed by the engine
    (``weight`` messages per visit); they may be retuned at runtime.
    """

    def __init__(self) -> None:
        self._ports: dict[NodeId, ReceiverPort] = {}
        self._order: list[NodeId] = []
        #: ports in registration order, parallel to ``_order`` — the
        #: rotation source, kept so a pass never rebuilds dict lookups
        self._seq: list[ReceiverPort] = []
        #: reused output list handed out by :meth:`rotation`; valid until
        #: the next call (engines consume each pass before requesting
        #: another, so aliasing is safe)
        self._pass: list[ReceiverPort] = []
        self._cursor = 0
        # Incrementally maintained work counters: total messages sitting
        # in receiver buffers (fed by buffer size listeners) and number
        # of ports with a non-empty pending list (fed by ReceiverPort).
        self._buffered = 0
        self._buffered_bytes = 0
        self._pending_ports = 0
        #: ports whose buffer lacks the size-listener hook; while > 0 the
        #: aggregate queries fall back to scanning
        self._unhooked = 0
        # Bind the listener once so attach/detach identity checks work
        # (each attribute access would otherwise build a fresh bound method).
        self._buffer_listener = self._on_buffer_delta
        #: cumulative round-robin passes handed out (telemetry reads this)
        self.rotations = 0
        #: cumulative credit epochs started (telemetry reads this)
        self.epochs = 0

    # --- registry -------------------------------------------------------------------

    def _on_buffer_delta(self, delta: int) -> None:
        self._buffered += delta

    def add_port(self, port: ReceiverPort) -> None:
        if port.peer in self._ports:
            raise ValueError(f"duplicate receiver port for {port.peer}")
        port.credit = port.weight
        port.scheduler = self
        self._ports[port.peer] = port
        self._order.append(port.peer)
        self._seq.append(port)
        if port.blocked:
            port._pending_counted = True
            self._pending_ports += 1
        else:
            port._pending_counted = False
        # Bounded FIFOs in this repo (CircularBuffer, SimQueue,
        # AsyncBoundedQueue) expose an on_size_change hook; anything else
        # (e.g. a bare queue stub in a unit test) falls back to lazy
        # counting.  Only hooked buffers feed ``_buffered`` — an unhooked
        # buffer's mutations are invisible to the counter, so folding its
        # current length in would leave a stale residue behind.
        if hasattr(port.buffer, "on_size_change"):
            port.buffer.on_size_change = self._buffer_listener
            self._buffered += len(port.buffer)
        else:
            self._unhooked += 1
        # Byte accounting is explicit (note_bytes at the engine enqueue
        # and dequeue sites), so a port arriving with charged bytes just
        # folds them into the scheduler-wide gauge.
        self._buffered_bytes += port.buffered_bytes

    def remove_port(self, peer: NodeId) -> ReceiverPort | None:
        port = self._ports.pop(peer, None)
        if port is not None:
            index = self._order.index(peer)
            self._order.pop(index)
            self._seq.pop(index)
            if port._pending_counted:
                self._pending_ports -= 1
                port._pending_counted = False
            port.scheduler = None
            # Mirror add_port: only a buffer still wired to our listener
            # contributed to ``_buffered`` (and its current length is
            # exact, since every mutation flowed through the hook).
            if getattr(port.buffer, "on_size_change", None) is self._buffer_listener:
                port.buffer.on_size_change = None
                self._buffered -= len(port.buffer)
            elif not hasattr(port.buffer, "on_size_change"):
                self._unhooked -= 1
            self._buffered_bytes -= port.buffered_bytes
            # Drop the reused rotation list's references to the removed
            # port so a caller-held pass cannot see it after removal.
            self._pass.clear()
            if index < self._cursor:
                self._cursor -= 1
            if self._order:
                self._cursor %= len(self._order)
            else:
                self._cursor = 0
        return port

    def get_port(self, peer: NodeId) -> ReceiverPort | None:
        return self._ports.get(peer)

    def set_weight(self, peer: NodeId, weight: int) -> None:
        """Dynamically retune a port's round-robin weight."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        port = self._ports.get(peer)
        if port is None:
            raise KeyError(f"no receiver port for {peer}")
        port.weight = weight
        port.credit = min(port.credit, weight)

    def replenish_credits(self, scale: int = 1) -> None:
        """Start a new deficit-round-robin epoch: credit = weight * scale.

        ``scale`` coarsens the epoch without touching fairness: every
        port's allowance grows by the same factor, so the *ratio*
        between competing upstreams is preserved while each round moves
        a batch instead of a single message (the asyncio backend uses
        this to amortize per-round scheduler overhead).
        """
        self.epochs += 1
        for port in self._seq:
            port.credit = port.weight * scale

    @property
    def ports(self) -> list[ReceiverPort]:
        return list(self._seq)

    def ports_view(self) -> list[ReceiverPort]:
        """The live registration-order port list (do not mutate).

        Engines iterate this per round; unlike :attr:`ports` it does not
        allocate a copy.
        """
        return self._seq

    def __len__(self) -> int:
        return len(self._ports)

    # --- scheduling -------------------------------------------------------------------

    def rotation(self) -> list[ReceiverPort]:
        """One full round-robin pass, resuming after the previous pass.

        The returned list ALIASES internal state: it is reused across
        calls (one allocation per scheduler, not per engine pass), so
        each call overwrites the list handed out by the previous one.
        Callers must finish with a pass before requesting the next and
        must not hold the result across calls; :meth:`remove_port`
        clears it so a stale alias can never resurrect a removed port.
        """
        seq = self._seq
        count = len(seq)
        if not count:
            return []
        self.rotations += 1
        cursor = self._cursor
        ordered = self._pass
        if len(ordered) != count:
            ordered = self._pass = [None] * count  # type: ignore[list-item]
        split = count - cursor
        ordered[:split] = seq[cursor:]
        ordered[split:] = seq[:cursor]
        self._cursor = cursor + 1 if cursor + 1 < count else 0
        return ordered

    def has_work(self) -> bool:
        """True if any port has buffered or pending messages (O(1))."""
        if self._buffered > 0 or self._pending_ports > 0:
            return True
        if self._unhooked:
            return any(port.has_work() for port in self._seq)
        return False

    def total_buffered(self) -> int:
        """Total messages waiting across all receiver buffers (O(1))."""
        if self._unhooked:
            return sum(len(port.buffer) for port in self._seq)
        return self._buffered

    def total_buffered_bytes(self) -> int:
        """Total bytes waiting across all receiver buffers (O(1))."""
        return self._buffered_bytes

    def queue_snapshot(self) -> dict[str, tuple[int, int]]:
        """Per-port ``label -> (depth, buffered_bytes)``, O(ports).

        Depth reads each buffer's maintained ``__len__`` and bytes read
        the :meth:`ReceiverPort.note_bytes` gauge — no message is
        touched, so routing algorithms may call this every tick.
        """
        return {
            port.label: (len(port.buffer), port.buffered_bytes)
            for port in self._seq
        }
