"""Message types used across the engine, the observer and algorithms.

The paper drives everything through typed application-layer messages: the
engine and the observer define a vocabulary of control types, and
algorithms add their own (sQuery, sAware, ...).  Types are 32-bit values
in the wire header; we reserve the low range for the engine/observer and
give algorithms a dedicated range so the two can never collide.
"""

from __future__ import annotations

from enum import IntEnum, unique


@unique
class MsgType(IntEnum):
    """Well-known message types.

    Values below :data:`ALGORITHM_TYPE_BASE` belong to the engine and the
    observer; algorithm-specific types (the ``s*`` family from the
    paper's case studies) live above it.
    """

    # --- engine / data plane -------------------------------------------------
    DATA = 1                 # application payload (the only type an algorithm must handle)
    HEARTBEAT = 2            # on-demand probe/echo: RTT measurement, and the
                             # reactive liveness probe a watchdog sends only
                             # AFTER inactivity raises suspicion (never a
                             # periodic heartbeat — the paper forbids those)

    # --- observer control plane ----------------------------------------------
    BOOT = 10                # node -> observer: bootstrap request
    BOOT_REPLY = 11          # observer -> node: random subset of alive nodes
    REQUEST = 12             # observer -> node: request a status update
    STATUS = 13              # node -> observer: buffers, QoS, neighbour lists
    TERMINATE = 14           # observer -> node: terminate the node gracefully
    SET_BANDWIDTH = 15       # observer -> node: update emulated bandwidth
    CONNECT = 16             # observer -> node: connect to a downstream node
    DISCONNECT = 17          # observer -> node: drop a downstream link
    TRACE = 18               # node -> observer: debugging / measurement trace record
    CONTROL = 19             # observer -> algorithm: generic command, two int params
    HELLO = 20               # first frame on a fresh TCP connection: sender identity
    PROXY = 21               # proxy envelope: routing metadata + raw inner frame
    FLOW_QUERY = 22          # client -> observer: stitched causal path for a trace id
    FLOW_REPLY = 23          # observer -> client: events, path and per-hop latencies
    SHM_ACK = 24             # acceptor -> dialer: verdict on a HELLO's offer of
                             # shared-memory ring channels (co-machine fast path)

    # --- engine -> algorithm notifications ------------------------------------
    BROKEN_SOURCE = 30       # an upstream application source has failed
    BROKEN_LINK = 31         # an adjacent link has been torn down
    UP_THROUGHPUT = 32       # periodic throughput measurement from an upstream
    DOWN_THROUGHPUT = 33     # periodic throughput measurement to a downstream
    NEW_UPSTREAM = 34        # a new incoming connection was accepted
    MEASURE_REPLY = 35       # reply to an on-demand bandwidth/latency probe
    TIMER = 36               # a timer the algorithm armed via set_timer fired

    # --- application deployment ------------------------------------------------
    S_DEPLOY = 40            # observer -> node: deploy an application source here
    S_TERMINATE = 41         # observer -> node: terminate an application source

    # --- algorithm library (tree construction case study) ----------------------
    S_JOIN = 50              # node -> tree: request to join a session
    S_QUERY = 51             # locate a node already in the tree
    S_QUERY_ACK = 52         # acknowledgement electing a parent
    S_ANNOUNCE = 53          # announces the source of a session
    S_STRESS = 54            # periodic node-stress exchange with neighbours
    S_LEAVE = 55             # leave a session

    # --- algorithm library (service federation case study) ---------------------
    S_ASSIGN = 60            # observer -> node: host a service instance
    S_AWARE = 61             # dissemination of a new service's existence
    S_FEDERATE = 62          # service requirement flowing source -> sink
    S_FEDERATE_ACK = 63      # path confirmation sink -> source

    # --- algorithm library (gossip) --------------------------------------------
    GOSSIP = 70              # probabilistically disseminated payload

    # --- algorithm library (backpressure routing) -------------------------------
    S_BACKLOG = 71           # per-commodity queue backlogs, node -> its upstreams
                             # (reverse of data flow: feeds queue differentials)

    # --- cluster control plane (controller <-> worker channel) ------------------
    # The scale-out layer (repro.cluster) shards virtualized nodes across
    # OS processes; each worker keeps one persistent control connection
    # to the placement controller and speaks these verbs on it.
    W_REGISTER = 80          # worker -> controller: first frame, worker identity
    W_SPAWN = 81             # controller -> worker: instantiate + start one node
    W_SPAWNED = 82           # worker -> controller: spawn outcome (node id / error)
    W_HEARTBEAT = 83         # worker -> controller: liveness + process gauges
    W_STOP_NODE = 84         # controller -> worker: gracefully stop one node
    W_NODE_INFO = 85         # controller -> worker: request one node's state
    W_NODE_INFO_REPLY = 86   # worker -> controller: engine + algorithm facts
    W_SHUTDOWN = 87          # controller -> worker: drain and exit cleanly
    W_AGG = 88               # aggregating proxy -> parent: subtree roll-up
                             # (status digest, metric deltas, sampled traces,
                             # member list) flushed once per interval instead
                             # of relaying every child frame individually

    # --- federated control plane (root <-> child controller channel) ------------
    # The control plane composes as a tree: a root controller places
    # NodeSpecs across child controllers (each supervising its own
    # worker fleet) over a plain TCP bootstrap.  The C_* family mirrors
    # the W_* verbs one level up — same framing, same correlated
    # request/reply convention on the header ``seq`` field.
    C_JOIN = 90              # child -> root: first frame, identity + capacity/weight
    C_WELCOME = 91           # root -> child: bootstrap facts (observer endpoint,
                             # pinned proxy port for a respawned child)
    C_PLACE = 92             # root -> child: place one spec on this child's fleet
    C_PLACED = 93            # child -> root: placement outcome (node id + worker)
    C_HEARTBEAT = 94         # child -> root: liveness + aggregate fleet gauges
    C_STOP_NODE = 95         # root -> child: gracefully stop one placed node
    C_NODE_INFO = 96         # root -> child: request one node's state
    C_INFO_REPLY = 97        # child -> root: node facts / generic ack
    C_SHUTDOWN = 98          # root -> child: drain the whole fleet and exit
    C_EVENT = 99             # child -> root: unsolicited shard events (ready,
                             # node-down, node-replaced) keeping the root's
                             # placement map and observer view current


#: First type value available to user-defined algorithms.
ALGORITHM_TYPE_BASE = 1000


def is_engine_type(type_value: int) -> bool:
    """True if the engine itself (not the algorithm) owns this type."""
    return type_value in _ENGINE_OWNED


def type_name(type_value: int) -> str:
    """Human-readable name for a type value (used in traces and repr)."""
    try:
        return MsgType(type_value).name
    except ValueError:
        return f"user({type_value})"


_ENGINE_OWNED = frozenset(
    {
        MsgType.REQUEST,
        MsgType.TERMINATE,
        MsgType.SET_BANDWIDTH,
        MsgType.CONNECT,
        MsgType.DISCONNECT,
        MsgType.HEARTBEAT,
    }
)
