"""Bandwidth emulation: rate limiters and per-node/per-link specifications.

The paper emulates bandwidth availability in three categories
(Section 2.2): per-node total, per-node incoming/outgoing (asymmetric
DSL-style nodes), and per-link limits — specified at start-up or updated
at runtime from the observer.  It does so by wrapping socket send/recv
with timers that control bytes per interval.

We model each constrained resource as a *serialized transmitter*: a pipe
that takes ``size / rate`` seconds per message and is busy in between.
This reproduces the convergence behaviour of the paper's experiments
(Figs. 6–8) exactly: competing links sharing one node budget split it
according to how the switch schedules them (round-robin ⇒ even split).

The limiter is clock-agnostic — callers pass ``now`` explicitly — so the
same code serves virtual time in the simulator and wall-clock time in
the asyncio engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Sentinel rate meaning "unconstrained".
UNLIMITED: float | None = None


class RateLimiter:
    """A serialized transmitter emulating a link of a given rate.

    ``reserve(nbytes, now)`` books the transmission of ``nbytes`` and
    returns the delay (seconds from ``now``) until it completes.  The
    transmitter is busy until then, so concurrent reservations queue up
    behind each other — exactly how bytes behave on a real capped pipe.
    """

    __slots__ = ("_rate", "_next_free")

    def __init__(self, rate: float | None = UNLIMITED) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive or None, got {rate}")
        self._rate = rate
        self._next_free = 0.0

    @property
    def rate(self) -> float | None:
        """Emulated rate in bytes per second (``None`` = unlimited)."""
        return self._rate

    def set_rate(self, rate: float | None) -> None:
        """Update the emulated rate at runtime (observer ``SET_BANDWIDTH``)."""
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive or None, got {rate}")
        self._rate = rate

    def reserve(self, nbytes: int, now: float) -> float:
        """Book ``nbytes`` and return seconds until the transfer completes."""
        if self._rate is None:
            return 0.0
        start = max(now, self._next_free)
        self._next_free = start + nbytes / self._rate
        return self._next_free - now

    def would_delay(self, nbytes: int, now: float) -> float:
        """Like :meth:`reserve` but without booking the transfer."""
        if self._rate is None:
            return 0.0
        start = max(now, self._next_free)
        return start + nbytes / self._rate - now

    def reset(self) -> None:
        """Forget any queued transmissions (used on link teardown)."""
        self._next_free = 0.0


@dataclass
class BandwidthSpec:
    """Emulated bandwidth configuration of one overlay node.

    All rates are bytes per second; ``None`` means unconstrained.  The
    three per-node categories from the paper plus per-link caps:

    - ``total``: combined incoming + outgoing budget,
    - ``up`` / ``down``: separate outgoing / incoming budgets,
    - ``links``: per-destination outgoing caps.
    """

    total: float | None = UNLIMITED
    up: float | None = UNLIMITED
    down: float | None = UNLIMITED
    links: dict[object, float | None] = field(default_factory=dict)

    def copy(self) -> "BandwidthSpec":
        return BandwidthSpec(self.total, self.up, self.down, dict(self.links))


class NodeThrottle:
    """Run-time bandwidth state of a node: shared limiters per category.

    A message *sent* to destination ``dest`` consumes the per-link,
    ``up`` and ``total`` budgets; a message *received* consumes ``down``
    and ``total``.  The returned delay is the slowest of the consulted
    limiters, so the effective rate is the minimum of the applicable
    caps — matching the paper's emulation semantics.
    """

    def __init__(self, spec: BandwidthSpec | None = None) -> None:
        spec = spec or BandwidthSpec()
        self._total = RateLimiter(spec.total)
        self._up = RateLimiter(spec.up)
        self._down = RateLimiter(spec.down)
        self._links: dict[object, RateLimiter] = {
            dest: RateLimiter(rate) for dest, rate in spec.links.items()
        }
        self._refresh_active()

    def _refresh_active(self) -> None:
        # Most nodes run fully unconstrained; one boolean lets the
        # per-message reserve calls bail out before touching a limiter.
        self.active = (
            self._total.rate is not None
            or self._up.rate is not None
            or self._down.rate is not None
            or any(l.rate is not None for l in self._links.values())
        )

    # --- runtime updates (observer SET_BANDWIDTH) --------------------------------

    def set_total(self, rate: float | None) -> None:
        self._total.set_rate(rate)
        self._refresh_active()

    def set_up(self, rate: float | None) -> None:
        self._up.set_rate(rate)
        self._refresh_active()

    def set_down(self, rate: float | None) -> None:
        self._down.set_rate(rate)
        self._refresh_active()

    def set_link(self, dest: object, rate: float | None) -> None:
        limiter = self._links.get(dest)
        if limiter is None:
            self._links[dest] = RateLimiter(rate)
        else:
            limiter.set_rate(rate)
        self._refresh_active()

    def drop_link(self, dest: object) -> None:
        """Forget per-link state when a link is torn down."""
        self._links.pop(dest, None)
        self._refresh_active()

    # --- reservations -------------------------------------------------------------

    def reserve_send(self, dest: object, nbytes: int, now: float) -> float:
        """Book an outgoing message; returns the emulation delay in seconds."""
        if not self.active:
            return 0.0
        delay = self._up.reserve(nbytes, now)
        delay = max(delay, self._total.reserve(nbytes, now))
        link = self._links.get(dest)
        if link is not None:
            delay = max(delay, link.reserve(nbytes, now))
        return delay

    def reserve_recv(self, nbytes: int, now: float) -> float:
        """Book an incoming message; returns the emulation delay in seconds."""
        if not self.active:
            return 0.0
        delay = self._down.reserve(nbytes, now)
        return max(delay, self._total.reserve(nbytes, now))

    # --- inspection -----------------------------------------------------------------

    @property
    def spec(self) -> BandwidthSpec:
        """The current configuration (rates only, not transmitter state)."""
        return BandwidthSpec(
            total=self._total.rate,
            up=self._up.rate,
            down=self._down.rate,
            links={dest: limiter.rate for dest, limiter in self._links.items()},
        )
