"""Node and application identifiers.

The paper identifies an overlay node uniquely by its IP address and port
number (Section 2.2), and tags every message with the identifier of the
application it belongs to.  Both identifiers are small immutable value
objects that pack into the fixed-size message header.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import CodecError

_IPV4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")

# Conversion caches.  An engine talks to a handful of distinct
# addresses but converts them once per packed/unpacked frame, which
# puts these functions on the per-message fast path; the caches turn a
# regex match (or string build) into one dict hit.  Bounded so a
# pathological address stream cannot grow them without limit.
_IP_INT_CACHE: dict[str, int] = {}
_INT_IP_CACHE: dict[int, str] = {}
_ID_CACHE_LIMIT = 16384


def ip_to_int(ip: str) -> int:
    """Convert a dotted-quad IPv4 string to its 32-bit integer form."""
    cached = _IP_INT_CACHE.get(ip)
    if cached is not None:
        return cached
    match = _IPV4_RE.match(ip)
    if match is None:
        raise CodecError(f"not a dotted-quad IPv4 address: {ip!r}")
    octets = [int(part) for part in match.groups()]
    if any(octet > 255 for octet in octets):
        raise CodecError(f"IPv4 octet out of range: {ip!r}")
    value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
    if len(_IP_INT_CACHE) < _ID_CACHE_LIMIT:
        _IP_INT_CACHE[ip] = value
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad IPv4 string."""
    cached = _INT_IP_CACHE.get(value)
    if cached is not None:
        return cached
    if not 0 <= value <= 0xFFFFFFFF:
        raise CodecError(f"IPv4 integer out of range: {value}")
    ip = ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))
    if len(_INT_IP_CACHE) < _ID_CACHE_LIMIT:
        _INT_IP_CACHE[value] = ip
    return ip


@dataclass(frozen=True, slots=True, order=True)
class NodeId:
    """A node in the overlay: uniquely identified by IP address and port.

    The paper allows the port to be explicitly specified at start-up;
    otherwise the engine picks one.  ``NodeId`` is hashable and ordered so
    it can be used as a dictionary key and sorted deterministically.
    """

    ip: str
    port: int
    #: precomputed hash — NodeId keys every peer table, port rotation and
    #: upstream/downstream tracking set on the per-message switch path,
    #: so the dict machinery hashes each id several times per message
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        ip_to_int(self.ip)  # validates the address
        if not 0 <= self.port <= 0xFFFFFFFF:
            raise CodecError(f"port out of range: {self.port}")
        object.__setattr__(self, "_hash", hash((self.ip, self.port)))

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "NodeId":
        """Parse ``"ip:port"`` into a :class:`NodeId`."""
        ip, sep, port = text.rpartition(":")
        if not sep or not port.isdigit():
            raise CodecError(f"not an ip:port node id: {text!r}")
        return cls(ip, int(port))


def _nodeid_hash(self: NodeId) -> int:
    return self._hash


# The frozen dataclass would regenerate hash((ip, port)) per call; the
# assignment swaps in the cached value (identical for equal ids, so dict
# semantics are unchanged).
NodeId.__hash__ = _nodeid_hash  # type: ignore[method-assign]


# The application identifier is a plain 32-bit integer in the header;
# an alias keeps signatures self-documenting.
AppId = int

#: Application id reserved for engine/observer control traffic.
CONTROL_APP: AppId = 0
