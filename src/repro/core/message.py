"""The application-layer message and its 24-byte wire header.

The paper (Fig. 3) defines a fixed 24-byte header:

====================  =======  =============================================
field                 bytes    notes
====================  =======  =============================================
message type          4        :mod:`repro.core.msgtypes`
original sender IP    4        IPv4, network byte order
original sender port  4
application id        4        which deployed application this belongs to
sequence number       4        the only *modifiable* field
payload size          4        number of payload bytes that follow
====================  =======  =============================================

Message content is otherwise immutable and initialized at construction
time, exactly as in the paper.  The engine passes messages by reference
("zero copying"); Python object references give us that for free, and the
immutability contract keeps reference sharing safe.  The one mutable
field, the sequence number, is isolated so concurrent readers of shared
messages are never surprised.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.core.ids import AppId, NodeId, int_to_ip, ip_to_int
from repro.core.msgtypes import type_name
from repro.errors import CodecError

#: Size of the fixed wire header, in bytes (Fig. 3 of the paper).
HEADER_SIZE = 24

_HEADER_STRUCT = struct.Struct("!IIIIiI")

#: Default maximum payload length accepted by :func:`unpack` (messages have
#: "a maximum (but not necessarily fixed) length" — Section 2.2).
MAX_PAYLOAD = 16 * 1024 * 1024

# Interned sender ids, keyed by the header's (ip_int, port) pair.  An
# engine receives frames from a handful of distinct senders, so the
# NodeId (with its dataclass construction and validation) is built once
# per peer instead of once per frame.  Bounded like the ids caches.
_NODE_CACHE: dict[tuple[int, int], NodeId] = {}
_NODE_CACHE_LIMIT = 16384


class Message:
    """An application-layer message: 24-byte header plus payload.

    Instances are cheap to share by reference across engine components.
    All header fields except ``seq`` are read-only after construction.
    """

    __slots__ = ("_type", "_sender", "_app", "seq", "_payload", "_trace_id",
                 "_hop_t0", "_raw", "_raw_seq")

    def __init__(
        self,
        type_: int,
        sender: NodeId,
        app: AppId,
        payload: bytes = b"",
        seq: int = 0,
    ) -> None:
        if not 0 <= type_ <= 0xFFFFFFFF:
            raise CodecError(f"message type out of range: {type_}")
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise CodecError(f"payload must be bytes-like, got {type(payload).__name__}")
        self._type = type_
        self._sender = sender
        self._app = app
        self.seq = seq
        self._payload = bytes(payload)
        # Lazy cache for the telemetry trace id ("sender/app#seq"); the
        # id is derived from immutable header fields, so once built it
        # stays valid wherever the message travels.
        self._trace_id: str | None = None
        # Telemetry-only arrival stamp for the current hop (set at
        # enqueue, read at forward).  Not part of the wire format — the
        # 24-byte header has no spare field — and advisory only: a
        # by-reference multicast may restamp it, which can shorten but
        # never corrupt the observed hop latency.
        self._hop_t0: float | None = None
        # Wire-frame cache: messages that arrived off the wire keep
        # their frame bytes, so a relay re-sends the identical buffer
        # without re-packing (and byte identity across hops is literal).
        # ``_raw_seq`` guards the one mutable header field: the cache is
        # only valid while ``seq`` still matches it.
        self._raw: bytes | None = None
        self._raw_seq = seq

    # --- read-only header accessors -------------------------------------------

    @property
    def type(self) -> int:
        """The 32-bit message type."""
        return self._type

    @property
    def sender(self) -> NodeId:
        """The *original* sender of the message (not the last hop)."""
        return self._sender

    @property
    def app(self) -> AppId:
        """The application this message belongs to."""
        return self._app

    @property
    def commodity(self) -> AppId:
        """The multi-commodity flow this message belongs to.

        Commodities ride the ``app`` header field: the 24-byte wire
        header has no spare slot, and the paper already keys sessions by
        application id, so a commodity *is* an app whose messages share
        a sink.  The alias exists so routing code reads as the
        backpressure literature writes (per-commodity queues, Q_n^c)
        while sinks and telemetry keep attributing by app unchanged.
        """
        return self._app

    @property
    def payload(self) -> bytes:
        """The application data carried by this message."""
        payload = self._payload
        if payload is None:
            # Materialized on first touch: pure relays forward the raw
            # frame without ever slicing the payload out of it.
            payload = self._payload = self._raw[HEADER_SIZE:]  # type: ignore[index]
        return payload

    @property
    def size(self) -> int:
        """Total wire size: header plus payload, in bytes."""
        if self._payload is None:
            return len(self._raw)  # type: ignore[arg-type]
        return HEADER_SIZE + len(self._payload)

    # --- codec -----------------------------------------------------------------

    def pack(self) -> bytes:
        """Serialize to wire bytes (header then payload).

        Messages unpacked off the wire (or packed once already) return
        their cached frame as long as ``seq`` has not been rewritten —
        the relay fast path sends the identical bytes it received.
        """
        raw = self._raw
        if raw is not None and self._raw_seq == self.seq:
            return raw
        payload = self.payload
        raw = _HEADER_STRUCT.pack(
            self._type,
            ip_to_int(self._sender.ip),
            self._sender.port,
            self._app,
            self.seq,
            len(payload),
        ) + payload
        self._raw = raw
        self._raw_seq = self.seq
        return raw

    def cached_frame(self) -> bytes | None:
        """The wire frame, if one is already materialized and current.

        Writers use this to emit a single pre-built buffer instead of
        header + payload; ``None`` means the caller should pack (or
        write the two buffers zero-copy).
        """
        raw = self._raw
        if raw is not None and self._raw_seq == self.seq:
            return raw
        return None

    def header_bytes(self) -> bytes:
        """The packed 24-byte header alone.

        Writers that can emit header and payload as separate buffers
        (e.g. :func:`repro.net.framing.write_message`) avoid copying the
        payload into a concatenated frame — the payload bytes object is
        handed to the transport by reference.
        """
        return _HEADER_STRUCT.pack(
            self._type,
            ip_to_int(self._sender.ip),
            self._sender.port,
            self._app,
            self.seq,
            len(self.payload),
        )

    def header_values(self) -> tuple[int, int, int, int, int, int]:
        """The six header fields in wire order, ready for ``struct`` packing.

        Batch writers (:func:`repro.net.framing.write_batch`) splice the
        tuples of a whole sender-drain burst into ONE vectorized
        ``struct.Struct`` call instead of packing 24 bytes per message.
        """
        return (
            self._type,
            ip_to_int(self._sender.ip),
            self._sender.port,
            self._app,
            self.seq,
            len(self.payload),
        )

    @classmethod
    def unpack(cls, data: bytes | bytearray | memoryview, max_payload: int = MAX_PAYLOAD) -> "Message":
        """Deserialize a message from wire bytes.

        The header is parsed in place (``unpack_from`` on a memoryview —
        no copy of the receive buffer), and only the payload bytes are
        materialized.  Raises :class:`~repro.errors.CodecError` when the
        buffer is truncated, carries trailing garbage, or declares an
        oversized payload.
        """
        view = memoryview(data)
        total = view.nbytes
        if total < HEADER_SIZE:
            raise CodecError(f"truncated header: {total} < {HEADER_SIZE} bytes")
        type_, ip_int, port, app, seq, payload_size = _HEADER_STRUCT.unpack_from(view)
        if payload_size > max_payload:
            raise CodecError(f"declared payload {payload_size} exceeds limit {max_payload}")
        if total != HEADER_SIZE + payload_size:
            raise CodecError(
                f"payload length mismatch: header declares {payload_size}, "
                f"buffer carries {total - HEADER_SIZE}"
            )
        sender = _NODE_CACHE.get((ip_int, port))
        if sender is None:
            sender = NodeId(int_to_ip(ip_int), port)
            if len(_NODE_CACHE) < _NODE_CACHE_LIMIT:
                _NODE_CACHE[(ip_int, port)] = sender
        # Fast path past __init__'s re-validation: every field was either
        # range-checked above or is structurally valid by construction.
        # The payload stays unmaterialized (sliced lazily from the cached
        # frame) so a pure relay never copies it out.
        msg = cls.__new__(cls)
        msg._type = type_
        msg._sender = sender
        msg._app = app
        msg.seq = seq
        msg._payload = None if payload_size else b""
        msg._trace_id = None
        msg._hop_t0 = None
        msg._raw = data if type(data) is bytes else view.tobytes()
        msg._raw_seq = seq
        return msg

    # --- copying ---------------------------------------------------------------

    def clone(self) -> "Message":
        """Deep-copy the message (the paper's ``Msg`` copy constructor).

        Algorithms that want to re-``send`` a non-data message they
        received must clone it first (Section 2.3); data messages may be
        forwarded by reference.
        """
        return Message(self._type, self._sender, self._app, self.payload, seq=self.seq)

    def with_seq(self, seq: int) -> "Message":
        """A copy sharing the payload but carrying a different sequence number."""
        clone = Message.__new__(Message)
        clone._type = self._type
        clone._sender = self._sender
        clone._app = self._app
        clone.seq = seq
        clone._payload = self.payload
        clone._trace_id = None
        clone._hop_t0 = None
        clone._raw = None
        clone._raw_seq = seq
        return clone

    # --- structured payload helpers ---------------------------------------------

    @classmethod
    def with_fields(
        cls,
        type_: int,
        sender: NodeId,
        app: AppId,
        /,
        seq: int = 0,
        **fields: Any,
    ) -> "Message":
        """Build a message whose payload is a JSON object of ``fields``.

        Control messages in the reproduction carry small structured
        payloads; JSON keeps them debuggable while still being counted
        byte-for-byte in overhead experiments.
        """
        payload = json.dumps(fields, sort_keys=True, separators=(",", ":")).encode()
        return cls(type_, sender, app, payload, seq=seq)

    def fields(self) -> dict[str, Any]:
        """Decode a JSON-object payload produced by :meth:`with_fields`."""
        try:
            decoded = json.loads(self.payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"payload is not a JSON object: {exc}") from exc
        if not isinstance(decoded, dict):
            raise CodecError("payload JSON is not an object")
        return decoded

    # --- dunder ----------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Message({type_name(self._type)}, sender={self._sender}, "
            f"app={self._app}, seq={self.seq}, payload={self.size - HEADER_SIZE}B)"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self._type == other._type
            and self._sender == other._sender
            and self._app == other._app
            and self.seq == other.seq
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self._type, self._sender, self._app, self.seq, self.payload))
